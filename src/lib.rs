//! # halide
//!
//! A Rust reproduction of *Halide: A Language and Compiler for Optimizing
//! Parallelism, Locality, and Recomputation in Image Processing Pipelines*
//! (Ragan-Kelley et al., PLDI 2013).
//!
//! This facade crate re-exports the whole system:
//!
//! * [`lang`] — the algorithm language: [`Func`], [`Var`], [`RDom`],
//!   [`ImageParam`], [`Pipeline`] (Sec. 2 of the paper);
//! * [`schedule`] — the schedule representation: splits, loop kinds,
//!   compute/store levels (Sec. 3);
//! * [`lower`] — the compiler: lowering, bounds inference, sliding window,
//!   storage folding, flattening, vectorization (Sec. 4);
//! * [`exec`] — the backend: [`Realizer`] runs compiled pipelines on the
//!   multithreaded runtime with a simulated GPU device (Sec. 4.6 substitute);
//! * [`autotune`] — the stochastic schedule search (Sec. 5);
//! * [`pipelines`] — the paper's benchmark applications (Sec. 6);
//! * [`serve`] — the compile-once / realize-many pipeline server (program
//!   cache, buffer pooling, bounded concurrent admission);
//! * [`trace`] — observability: the sampling per-Func profiler, compile
//!   telemetry, request tracing, and the chrome://tracing exporter (see
//!   `docs/observability.md`);
//! * [`ir`] and [`runtime`] — the underlying IR and runtime substrates.
//!
//! # Quickstart: the two-stage blur of Sec. 3.1
//!
//! ```
//! use halide::{Func, ImageParam, Pipeline, Realizer, Var};
//! use halide::ir::Type;
//! use halide::runtime::Buffer;
//!
//! // Algorithm (what to compute):
//! let input = ImageParam::new("quick_input", Type::f32(), 2);
//! let (x, y) = (Var::new("x"), Var::new("y"));
//! let blurx = Func::new("quick_blurx");
//! blurx.define(&[x.clone(), y.clone()],
//!     (input.at_clamped(vec![x.expr() - 1, y.expr()])
//!    + input.at_clamped(vec![x.expr(),     y.expr()])
//!    + input.at_clamped(vec![x.expr() + 1, y.expr()])) / 3.0f32);
//! let out = Func::new("quick_out");
//! out.define(&[x.clone(), y.clone()],
//!     (blurx.at(vec![x.expr(), y.expr() - 1])
//!    + blurx.at(vec![x.expr(), y.expr()])
//!    + blurx.at(vec![x.expr(), y.expr() + 1])) / 3.0f32);
//!
//! // Schedule (how to compute it) — tiled, parallel, fused:
//! out.tile_dims("x", "y", "xo", "yo", "xi", "yi", 32, 32).parallelize("yo");
//! blurx.compute_at(&out, "xo");
//!
//! // Compile and run:
//! let module = halide::lower(&Pipeline::new(&out)).unwrap();
//! let image = Buffer::from_fn_2d(halide::ir::ScalarType::Float(32), 64, 64,
//!     |x, y| (x + y) as f64);
//! let result = Realizer::new(&module)
//!     .input("quick_input", image)
//!     .realize(&[64, 64])
//!     .unwrap();
//! assert_eq!(result.output.dims()[0].extent, 64);
//! // Blurring a linear ramp reproduces it away from the borders: the 3x3
//! // average of (x + y) is (x + y).
//! assert!((result.output.at_f64(&[10, 10]) - 20.0).abs() < 1e-4);
//! assert!((result.output.at_f64(&[31, 17]) - 48.0).abs() < 1e-4);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub use halide_autotune as autotune;
pub use halide_exec as exec;
pub use halide_fuzz as fuzz;
pub use halide_ir as ir;
pub use halide_lang as lang;
pub use halide_lower as lower_crate;
pub use halide_pipelines as pipelines;
pub use halide_runtime as runtime;
pub use halide_schedule as schedule;
pub use halide_serve as serve;
pub use halide_trace as trace;

pub use halide_autotune::{Autotuner, TuneOptions};
pub use halide_exec::{Realization, Realizer};
pub use halide_ir::Expr;
pub use halide_lang::{Func, ImageParam, Param, Pipeline, RDom, Var};
pub use halide_lower::{lower, lower_with_options, LowerOptions, Module};
pub use halide_runtime::{Buffer, BufferPool, CounterSnapshot};
pub use halide_schedule::{FuncSchedule, LoopLevel, TailStrategy};
pub use halide_serve::{PipelineServer, ServeConfig};
