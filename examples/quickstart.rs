//! Quickstart: define the two-stage blur of Sec. 3.1, try three schedules,
//! and print how the choice of schedule changes the work performed and the
//! runtime without changing the result.
use halide::pipelines::blur::{make_input, reference, BlurApp, BlurSchedule};

fn main() {
    let input = make_input(256, 192);
    let expected = reference(&input);
    println!("two-stage 3x3 blur on a 256x192 image\n");
    for schedule in [
        BlurSchedule::BreadthFirst,
        BlurSchedule::FullFusion,
        BlurSchedule::ParallelTiledVector,
    ] {
        let app = BlurApp::new();
        let module = app.compile(schedule).expect("schedule lowers");
        let result = app.run(&module, &input, 4, true).expect("schedule runs");
        assert!(
            result.output.max_abs_diff(&expected) < 1e-4,
            "results never change"
        );
        println!(
            "{:<28} {:>8.2} ms   {:>12} arith ops   peak live {:>9} B",
            schedule.label(),
            result.wall_time.as_secs_f64() * 1e3,
            result.counters.arith_ops,
            result.counters.peak_bytes_live
        );
    }
    println!("\nEvery schedule computed exactly the same image — only performance changed.");
}
