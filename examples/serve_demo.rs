//! `serve_demo` — drive the compile-once / realize-many pipeline server
//! with a mixed multi-app request stream from several client threads.
//!
//! ```text
//! cargo run --release --example serve_demo
//! cargo run --release --example serve_demo -- --clients 8 --rounds 40
//! ```
//!
//! The demo warms the program cache for three apps (blur, histogram
//! equalization, bilateral grid), then lets N client threads hammer the
//! server round-robin and prints what a service dashboard would show:
//! request count, latency percentiles, throughput, cold compiles, cache
//! residency, and buffer-pool hit rate — plus, with request tracing on
//! for the whole run, a per-request span summary (where does a request's
//! time actually go between queueing, compiling, realizing, and
//! responding) and the three hottest Funcs of one profiled realization.

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Instant;

use halide::pipelines::{AppKind, ScheduleChoice};
use halide::serve::{PipelineServer, Request, ServeConfig};
use halide::Realizer;

fn arg(name: &str, default: usize) -> usize {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let clients = arg("--clients", 4);
    let rounds = arg("--rounds", 25);
    let (w, h) = (192, 128);
    let apps = [AppKind::Blur, AppKind::Histogram, AppKind::BilateralGrid];

    // Trace every request of the run; the lifecycle summary below is
    // aggregated from the recorded spans.
    halide::trace::set_enabled(true);

    let server = PipelineServer::new(ServeConfig {
        max_in_flight: clients.max(1),
        queue_capacity: 4 * clients.max(1),
        ..ServeConfig::default()
    });

    println!("registry: {} named pipelines", server.registry().len());
    println!("warming {} programs at {w}x{h}...", apps.len());
    for app in apps {
        let cold = server
            .warm(app, ScheduleChoice::Tuned, w, h)
            .expect("demo apps compile")
            .expect("cache starts cold");
        println!(
            "  {:<20} compiled in {:>8.1} ms",
            app.name(),
            cold.as_secs_f64() * 1e3
        );
    }

    let inputs: Vec<Arc<_>> = apps.iter().map(|a| Arc::new(a.make_input(w, h))).collect();
    println!("\nserving {clients} clients x {rounds} rounds of mixed traffic...");
    let start = Instant::now();
    std::thread::scope(|scope| {
        for c in 0..clients {
            let (server, inputs) = (&server, &inputs);
            scope.spawn(move || {
                for r in 0..rounds {
                    let i = (c + r) % apps.len();
                    let req = Request::new(apps[i], ScheduleChoice::Tuned, Arc::clone(&inputs[i]));
                    let resp = server.call(&req).expect("warm requests succeed");
                    assert!(resp.cold_compile.is_none(), "cache was warmed");
                    // Dropping resp returns the output buffer to the pool.
                }
            });
        }
    });
    let wall = start.elapsed();

    let stats = server.stats();
    let rps = stats.requests as f64 / wall.as_secs_f64();
    println!("\n== dashboard ==");
    println!("requests        {:>10}", stats.requests);
    println!("rejected        {:>10}", stats.rejected);
    println!("shed (deadline) {:>10}", stats.shed);
    println!("coalesced       {:>10}", stats.coalesced);
    println!("realizations    {:>10}", stats.realizations);
    println!("slot limit      {:>10}", stats.concurrency_limit);
    println!("throughput      {rps:>10.1} req/s");
    println!("latency p50     {:>10.2} ms", stats.latency.p50_ms);
    println!("latency p95     {:>10.2} ms", stats.latency.p95_ms);
    println!("latency p99     {:>10.2} ms", stats.latency.p99_ms);
    println!("cold compiles   {:>10}", stats.cold_compiles);
    println!("cached programs {:>10}", stats.cached_programs);
    println!("evicted programs{:>10}", stats.evicted_programs);
    println!(
        "pool hit rate   {:>9.1}%  ({} hits / {} misses, {} idle bytes)",
        100.0 * stats.pool.hit_rate(),
        stats.pool.hits,
        stats.pool.misses,
        stats.pool.idle_bytes
    );

    assert_eq!(stats.requests, (clients * rounds) as u64);
    assert!(
        stats.pool.hit_rate() > 0.5,
        "steady-state traffic should be pool hits"
    );

    // Per-request span summary: every request recorded a span tree
    // (queued -> compile -> realize -> respond under a "request"
    // umbrella); aggregate each phase across the run.
    let events = halide::trace::global().events();
    let mut phases: BTreeMap<&str, (u64, u64, u64)> = BTreeMap::new(); // count, total ns, max ns
    for e in &events {
        if e.pid != halide::trace::PID_SERVE {
            continue;
        }
        let name: &str = match e.name.as_str() {
            "queued" => "queued",
            "compile" => "compile",
            "realize" => "realize",
            "respond" => "respond",
            "coalesced-wait" => "coalesced-wait",
            "request" => "request (total)",
            _ => continue,
        };
        let entry = phases.entry(name).or_default();
        entry.0 += 1;
        entry.1 += e.dur_ns;
        entry.2 = entry.2.max(e.dur_ns);
    }
    println!(
        "\n== request lifecycle (from {} trace events) ==",
        events.len()
    );
    for (name, (count, total_ns, max_ns)) in &phases {
        println!(
            "{name:<16} x{count:<6} mean {:>8.3} ms  max {:>8.3} ms",
            *total_ns as f64 / *count as f64 / 1e6,
            *max_ns as f64 / 1e6
        );
    }
    assert!(
        phases.contains_key("request (total)"),
        "traced requests record an umbrella span"
    );

    // Hottest Funcs: one directly-profiled realization of the deepest demo
    // app (the sampling profiler attributes wall time to produce nests).
    let app = AppKind::BilateralGrid;
    let built = app
        .build(w, h, ScheduleChoice::Tuned)
        .expect("demo app lowers");
    let realizer = Realizer::new(&built.module)
        .input(built.input_name.clone(), app.make_input(w, h))
        .profile(true);
    for _ in 0..10 {
        realizer
            .realize(&app.output_extents(w, h))
            .expect("profiled realize");
    }
    let report = realizer.profile_report().expect("profiling was enabled");
    println!(
        "\n== top 3 hottest Funcs, {} profiled ({} samples) ==",
        app.name(),
        report.total_samples
    );
    for f in report.top(3) {
        println!(
            "{:<24} {:>5.1}%  {:>8.3} ms est  x{} calls  peak {} bytes",
            f.name,
            100.0 * f.time_frac,
            f.est_time.as_secs_f64() * 1e3,
            f.invocations,
            f.peak_alloc_bytes
        );
    }
}
