//! Autotune the blur pipeline (Sec. 5): stochastic search over schedules,
//! verifying every candidate against a reference output, and printing the
//! best schedule found per generation.
use halide::autotune::{Autotuner, TuneOptions};
use halide::pipelines::blur::{make_input, BlurApp};
use halide::Realizer;

fn main() {
    let (w, h) = (192, 128);
    let app = BlurApp::new();
    let pipeline = app.pipeline();
    let input = make_input(w, h);
    let input_name = app.input.name().to_string();

    let mut reference: Option<halide::runtime::Buffer> = None;
    let evaluator = move |p: &halide::Pipeline| {
        let module = halide::lower(p).ok()?;
        let result = Realizer::new(&module)
            .input(input_name.clone(), input.clone())
            .threads(4)
            .instrument(false)
            .realize(&[w, h])
            .ok()?;
        match &reference {
            None => reference = Some(result.output),
            Some(r) => {
                if r.max_abs_diff(&result.output) > 1e-4 {
                    return None;
                }
            }
        }
        Some(result.wall_time)
    };

    let tuner = Autotuner::new(TuneOptions {
        population: 12,
        generations: 5,
        ..Default::default()
    });
    let result = tuner.tune(&pipeline, evaluator);
    println!(
        "evaluated {} candidates, rejected {}",
        result.evaluated, result.rejected
    );
    for stat in &result.history {
        println!(
            "generation {:>2}: best {:.2} ms",
            stat.generation,
            stat.best.as_secs_f64() * 1e3
        );
    }
    println!("\nbest schedule:");
    for (func, schedule) in &result.best {
        println!("  {func}: {}", schedule.describe());
    }
}
