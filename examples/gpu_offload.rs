//! Run the bilateral grid on the simulated GPU device: the same scheduling
//! model drives kernel launches and lazy host<->device copies (Sec. 4.6).
use halide::pipelines::bilateral_grid::{make_input, BilateralGridApp};

fn main() {
    let input = make_input(128, 96);

    let cpu = BilateralGridApp::new();
    cpu.schedule_good();
    let cpu_result = cpu
        .run(&cpu.compile().expect("lowers"), &input, 4)
        .expect("runs");

    let gpu = BilateralGridApp::new();
    gpu.schedule_gpu();
    let gpu_result = gpu
        .run(&gpu.compile().expect("lowers"), &input, 4)
        .expect("runs");

    assert!(cpu_result.output.max_abs_diff(&gpu_result.output) < 1e-4);
    println!(
        "CPU schedule: {:.1} ms",
        cpu_result.wall_time.as_secs_f64() * 1e3
    );
    println!(
        "GPU schedule: {:.1} ms, {} kernel launches, {} host<->device copies ({} bytes)",
        gpu_result.wall_time.as_secs_f64() * 1e3,
        gpu_result.counters.kernel_launches,
        gpu_result.counters.device_copies,
        gpu_result.counters.device_bytes_copied
    );
    println!("identical output from both targets");
}
