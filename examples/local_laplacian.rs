//! Run the local Laplacian filter (the 99-stage pipeline of Fig. 1) and show
//! how pipeline size and schedule interact.
use halide::lang::analyze;
use halide::pipelines::local_laplacian::{make_input, LocalLaplacianApp};

fn main() {
    let input = make_input(128, 128);
    let app = LocalLaplacianApp::new(4, 8, 1.5, 0.6);
    let stats = analyze(&app.pipeline());
    println!(
        "local Laplacian: {} functions, {} stencil edges, depth {}, structure {}",
        stats.functions,
        stats.stencils,
        stats.depth,
        stats.structure()
    );

    app.schedule_good();
    let module = app.compile().expect("lowers");
    let result = app.run(&module, &input, 4).expect("runs");
    println!(
        "enhanced a 128x128 image in {:.1} ms ({} allocations, peak live {} B)",
        result.wall_time.as_secs_f64() * 1e3,
        result.counters.allocations,
        result.counters.peak_bytes_live
    );
}
