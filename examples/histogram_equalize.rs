//! Histogram equalization (the reduction example of Sec. 2): a scatter
//! reduction, a recursive scan, and a data-dependent gather.
use halide::pipelines::histogram::{make_input, reference, HistogramApp};

fn main() {
    let (w, h) = (320, 240);
    let input = make_input(w, h);
    let app = HistogramApp::new(w as i32, h as i32);
    app.schedule_good();
    let module = app.compile().expect("lowers");
    let result = app.run(&module, &input, 4).expect("runs");
    let expected = reference(&input);
    assert_eq!(result.output.max_abs_diff(&expected), 0.0);

    let range = |b: &halide::runtime::Buffer| {
        let v = b.to_f64_vec();
        let min = v.iter().cloned().fold(f64::MAX, f64::min);
        let max = v.iter().cloned().fold(f64::MIN, f64::max);
        (min, max)
    };
    println!("input  intensity range: {:?}", range(&input));
    println!("output intensity range: {:?}", range(&result.output));
    println!(
        "ran in {:.2} ms ({} arithmetic ops)",
        result.wall_time.as_secs_f64() * 1e3,
        result.counters.arith_ops
    );
}
