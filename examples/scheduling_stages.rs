//! Regenerates the IR excerpts in `docs/scheduling.md`: the camera pipe
//! walked from its naive schedule to the tuned one, one scheduling
//! directive at a time.
//!
//! ```sh
//! cargo run --release --example scheduling_stages                            # print to stdout
//! cargo run --release --example scheduling_stages -- --write docs/scheduling.md   # splice into the doc
//! cargo run --release --example scheduling_stages -- --check docs/scheduling.md   # fail on drift (CI)
//! ```
//!
//! Each excerpt is spliced between `<!-- generated:NAME -->` /
//! `<!-- /generated:NAME -->` markers, so the handbook's IR can never
//! silently drift from what the compiler actually produces.

use std::fmt::Write as _;

use halide::ir::{Expr, ExprNode, Stmt, StmtNode};
use halide::pipelines::camera_pipe::CameraPipeApp;
use halide::pipelines::interpolate::InterpolateApp;
use halide::TailStrategy;

/// The five schedules of the walkthrough. Stage 1 is the naive
/// breadth-first default; each later stage adds one directive; stage 5 is
/// exactly `CameraPipeApp::schedule_good`.
const STAGE_NAMES: [&str; 5] = [
    "stage1-naive",
    "stage2-fuse",
    "stage3-parallel",
    "stage4-reorder",
    "stage5-vectorize",
];

/// Builds a fresh camera pipe with the schedule of walkthrough stage `n`.
fn staged_app(n: usize) -> CameraPipeApp {
    let app = CameraPipeApp::new(2.2, 0.8);
    if n >= 5 {
        app.schedule_good();
        return app;
    }
    if n >= 2 {
        // compute_at: the whole chain per strip of 16 scanlines.
        app.curve.compute_root();
        app.out.split_dim("y", "yo", "yi", 16);
        for f in stage_funcs(&app) {
            f.compute_at(&app.out, "yo");
        }
    }
    if n >= 3 {
        // parallelize the strip loop.
        app.out.parallelize("yo");
    }
    if n >= 4 {
        // reorder the channel loop inside the strip loop.
        app.out.reorder_dims(&["yo", "c", "yi", "x"]);
    }
    app
}

/// The scheduling stages of the walkthrough, in handbook order.
fn stages() -> Vec<(&'static str, String)> {
    let mut out = Vec::new();
    for (i, name) in STAGE_NAMES.iter().enumerate() {
        out.push((*name, skeleton_of(&staged_app(i + 1))));
    }

    // The vectorized demosaic store: ramps, dense loads, a masked select.
    let app = CameraPipeApp::new(2.2, 0.8);
    app.schedule_good();
    let module = halide::lower(&app.pipeline()).expect("tuned camera pipe lowers");
    out.push((
        "green-store-vectorized",
        find_store(&module.stmt, "camera_green").expect("camera_green is stored somewhere"),
    ));

    // The hoisted channel masks of the colour-matrix stage.
    out.push((
        "corrected-masks",
        find_produce_skeleton(&module.stmt, "camera_corrected")
            .expect("camera_corrected has a produce nest"),
    ));

    out.extend(pyramid_stages());
    out
}

/// The "Vectorizing pyramids" chapter's excerpts: one interior downsample
/// level of the interpolate pipeline scalar vs. rounded up to full vectors,
/// the guarded main/tail partition of the output split, and a predicated
/// tail store.
fn pyramid_stages() -> Vec<(&'static str, String)> {
    let mut out = Vec::new();

    // Scalar baseline: every stage at root with parallel rows, nothing
    // vectorized — the schedule the pyramid apps shipped with while
    // divisibility-only vectorization kept their odd extents scalar.
    let app = InterpolateApp::new(3);
    for f in app.pipeline().funcs() {
        if f.name() != app.out.name() {
            f.compute_root().parallelize("y");
        }
    }
    let module = halide::lower(&app.pipeline()).expect("scalar interpolate lowers");
    out.push((
        "pyramid-scalar",
        find_produce_skeleton(&module.stmt, "interp_down_1")
            .expect("interp_down_1 has a produce nest"),
    ));

    // The tuned schedule: interior levels round up, the output guards.
    let app = InterpolateApp::new(3);
    app.schedule_good();
    let module = halide::lower(&app.pipeline()).expect("tuned interpolate lowers");
    out.push((
        "pyramid-roundup",
        find_produce_skeleton(&module.stmt, "interp_down_1")
            .expect("interp_down_1 has a produce nest"),
    ));
    out.push((
        "pyramid-output-guard",
        find_produce_skeleton(&module.stmt, "interp_out").expect("interp_out has a produce nest"),
    ));

    // The predicate variant of the output split: the tail copy stores
    // full-width with a lane mask instead of narrowing the loop.
    let app = InterpolateApp::new(3);
    for f in app.pipeline().funcs() {
        if f.name() == app.out.name() {
            continue;
        }
        f.compute_root()
            .parallelize("y")
            .split_dim_tail("x", "xo", "xi", 16, TailStrategy::RoundUp)
            .vectorize_dim("xi");
    }
    app.out
        .split_dim_tail("x", "xo", "xi", 16, TailStrategy::Predicate)
        .vectorize_dim("xi");
    let module = halide::lower(&app.pipeline()).expect("predicated interpolate lowers");
    out.push((
        "pyramid-predicate-store",
        find_predicated_store(&module.stmt, "interp_out")
            .expect("the predicate tail stores interp_out with a mask"),
    ));

    out
}

fn stage_funcs(app: &CameraPipeApp) -> [&halide::Func; 6] {
    [
        &app.denoised,
        &app.green,
        &app.red,
        &app.blue,
        &app.corrected,
        &app.curved,
    ]
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let write_to = flag_value(&args, "--write");
    let check_against = flag_value(&args, "--check");

    if args.iter().any(|a| a == "--time") {
        time_stages();
        return;
    }

    let blocks = stages();

    if let Some(path) = check_against {
        let doc =
            std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
        let mut drifted = Vec::new();
        for (name, text) in &blocks {
            match extract_block(&doc, name) {
                Some(found) if found.trim_end() == text.trim_end() => {}
                Some(_) => drifted.push(name.to_string()),
                None => drifted.push(format!("{name} (markers missing)")),
            }
        }
        if drifted.is_empty() {
            println!(
                "{path}: all {} generated IR excerpts are current",
                blocks.len()
            );
            return;
        }
        eprintln!(
            "{path}: generated IR excerpts have drifted from the compiler's output: {}",
            drifted.join(", ")
        );
        eprintln!(
            "regenerate with: cargo run --release --example scheduling_stages -- --write {path}"
        );
        std::process::exit(1);
    }

    if let Some(path) = write_to {
        let mut doc =
            std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
        for (name, text) in &blocks {
            doc = splice_block(&doc, name, text)
                .unwrap_or_else(|| panic!("{path} has no markers for generated block {name:?}"));
        }
        std::fs::write(&path, doc).expect("writing the doc");
        println!("{path}: spliced {} generated IR excerpts", blocks.len());
        return;
    }

    for (name, text) in &blocks {
        println!("\n{}\n== {name}\n{}\n", "=".repeat(72), "=".repeat(72));
        println!("{text}");
    }
}

/// Runs every walkthrough stage on both execution engines and prints the
/// timing progression quoted (as a point-in-time snapshot) by
/// `docs/scheduling.md`. Sizes match `BENCH_exec.json --quick`.
fn time_stages() {
    use halide::exec::Backend;
    let (w, h, threads, reps) = (192i64, 128i64, 2usize, 3usize);
    let raw = halide::pipelines::camera_pipe::make_raw_input(w, h);
    println!("camera pipe, {w}x{h}, {threads} threads, best of {reps}:");
    println!(
        "{:<18} {:>12} {:>12} {:>9}",
        "stage", "interp", "compiled", "speedup"
    );
    for (i, name) in STAGE_NAMES.iter().enumerate() {
        let app = staged_app(i + 1);
        let module = halide::lower(&app.pipeline()).expect("stage lowers");
        let mut times = [f64::MAX; 2];
        for (b, backend) in [Backend::Interp, Backend::Compiled].into_iter().enumerate() {
            for _ in 0..reps {
                let r = app
                    .run_on(&module, &raw, threads, false, backend)
                    .expect("stage runs");
                times[b] = times[b].min(r.wall_time.as_secs_f64());
            }
        }
        println!(
            "{:<18} {:>10.1}ms {:>10.1}ms {:>8.2}x",
            name,
            times[0] * 1e3,
            times[1] * 1e3,
            times[0] / times[1]
        );
    }
}

/// Each `CameraPipeApp` the walkthrough builds registers its funcs afresh,
/// so the registry uniquifies their names (`camera_green$3`). The suffix is
/// construction-order bookkeeping, not schedule content — strip it from the
/// excerpts (and ignore it when searching) so the doc shows the real names
/// and stays stable however many stages run first.
fn scrub(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    let mut chars = text.chars().peekable();
    while let Some(c) = chars.next() {
        if c == '$' && chars.peek().is_some_and(|d| d.is_ascii_digit()) {
            while chars.peek().is_some_and(|d| d.is_ascii_digit()) {
                chars.next();
            }
        } else {
            out.push(c);
        }
    }
    out
}

/// A registered name without its `$n` uniquification suffix.
fn base_name(name: &str) -> &str {
    name.split('$').next().unwrap_or(name)
}

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

// ---- generated-block splicing ---------------------------------------------

fn markers(name: &str) -> (String, String) {
    (
        format!("<!-- generated:{name} -->"),
        format!("<!-- /generated:{name} -->"),
    )
}

/// The text between a block's markers (exclusive), without the ```text fence.
fn extract_block(doc: &str, name: &str) -> Option<String> {
    let (open, close) = markers(name);
    let start = doc.find(&open)? + open.len();
    let end = doc[start..].find(&close)? + start;
    let body = &doc[start..end];
    let body = body.trim_start_matches('\n');
    let body = body.strip_prefix("```text\n")?;
    let body = body
        .strip_suffix("```\n")
        .or_else(|| body.strip_suffix("```"))?;
    Some(body.to_string())
}

/// Replaces a block's contents, keeping the markers and the ```text fence.
fn splice_block(doc: &str, name: &str, text: &str) -> Option<String> {
    let (open, close) = markers(name);
    let start = doc.find(&open)? + open.len();
    let end = doc[start..].find(&close)? + start;
    let mut out = String::with_capacity(doc.len() + text.len());
    out.push_str(&doc[..start]);
    out.push_str("\n```text\n");
    out.push_str(text.trim_end());
    out.push_str("\n```\n");
    out.push_str(&doc[end..]);
    Some(out)
}

// ---- IR skeletons ---------------------------------------------------------

/// Lowers the app with its current schedule and prints the loop-nest
/// skeleton: loops, produces, allocations, and one-line elided stores.
fn skeleton_of(app: &CameraPipeApp) -> String {
    let module = halide::lower(&app.pipeline()).expect("camera pipe lowers");
    let mut out = String::new();
    skeleton(&module.stmt, 0, &mut out);
    scrub(&out)
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

/// Renders an expression if it is short, `…` otherwise — skeletons show
/// structure, not arithmetic.
fn short(e: &Expr) -> String {
    let s = e.to_string();
    if s.len() <= 48 {
        s
    } else {
        "…".to_string()
    }
}

fn skeleton(s: &Stmt, depth: usize, out: &mut String) {
    match s.node() {
        StmtNode::For {
            name,
            min,
            extent,
            kind,
            body,
        } => {
            indent(out, depth);
            let _ = writeln!(
                out,
                "{kind} {name} in [{}, {} + {})",
                short(min),
                short(min),
                short(extent)
            );
            skeleton(body, depth + 1, out);
        }
        StmtNode::Producer {
            name,
            is_produce,
            body,
        } => {
            if *is_produce {
                indent(out, depth);
                let _ = writeln!(out, "produce {name}:");
                skeleton(body, depth + 1, out);
            } else {
                skeleton(body, depth, out);
            }
        }
        StmtNode::Allocate {
            name,
            ty,
            size,
            body,
        } => {
            indent(out, depth);
            let _ = writeln!(out, "allocate {name}[{ty} * {}]", short(size));
            skeleton(body, depth, out);
        }
        StmtNode::LetStmt { name, value, body } => {
            indent(out, depth);
            let _ = writeln!(out, "let {name} = {}", short(value));
            skeleton(body, depth, out);
        }
        StmtNode::Block { stmts } => {
            for s in stmts {
                skeleton(s, depth, out);
            }
        }
        StmtNode::Store { name, index, .. } => {
            indent(out, depth);
            let _ = writeln!(out, "{name}[{}] = …", short(index));
        }
        StmtNode::IfThenElse {
            condition,
            then_case,
            else_case,
        } => {
            indent(out, depth);
            let _ = writeln!(out, "if {}:", short(condition));
            skeleton(then_case, depth + 1, out);
            if let Some(e) = else_case {
                indent(out, depth);
                out.push_str("else:\n");
                skeleton(e, depth + 1, out);
            }
        }
        StmtNode::Assert { .. }
        | StmtNode::Evaluate { .. }
        | StmtNode::NoOp
        | StmtNode::Provide { .. }
        | StmtNode::Realize { .. } => {}
    }
}

/// The full text of the first `Store` into `buf` (wrapped for readability).
fn find_store(s: &Stmt, buf: &str) -> Option<String> {
    match s.node() {
        StmtNode::Store { name, .. } if base_name(name) == buf => {
            Some(scrub(&wrap(&s.to_string(), 76)))
        }
        StmtNode::For { body, .. }
        | StmtNode::Producer { body, .. }
        | StmtNode::Allocate { body, .. }
        | StmtNode::LetStmt { body, .. } => find_store(body, buf),
        StmtNode::Block { stmts } => stmts.iter().find_map(|s| find_store(s, buf)),
        StmtNode::IfThenElse {
            then_case,
            else_case,
            ..
        } => find_store(then_case, buf)
            .or_else(|| else_case.as_ref().and_then(|e| find_store(e, buf))),
        _ => None,
    }
}

/// The full text of the first *predicated* `Store` into `buf` — the masked
/// tail store a `TailStrategy::Predicate` split emits.
fn find_predicated_store(s: &Stmt, buf: &str) -> Option<String> {
    match s.node() {
        StmtNode::Store {
            name,
            predicate: Some(_),
            ..
        } if base_name(name) == buf => Some(scrub(&wrap(&s.to_string(), 76))),
        StmtNode::For { body, .. }
        | StmtNode::Producer { body, .. }
        | StmtNode::Allocate { body, .. }
        | StmtNode::LetStmt { body, .. } => find_predicated_store(body, buf),
        StmtNode::Block { stmts } => stmts.iter().find_map(|s| find_predicated_store(s, buf)),
        StmtNode::IfThenElse {
            then_case,
            else_case,
            ..
        } => find_predicated_store(then_case, buf).or_else(|| {
            else_case
                .as_ref()
                .and_then(|e| find_predicated_store(e, buf))
        }),
        _ => None,
    }
}

/// The skeleton of the `produce` nest for `func` (wherever it sits).
fn find_produce_skeleton(s: &Stmt, func: &str) -> Option<String> {
    match s.node() {
        StmtNode::Producer {
            name, is_produce, ..
        } if *is_produce && base_name(name) == func => {
            let mut out = String::new();
            skeleton(s, 0, &mut out);
            Some(scrub(&out))
        }
        StmtNode::For { body, .. }
        | StmtNode::Producer { body, .. }
        | StmtNode::Allocate { body, .. }
        | StmtNode::LetStmt { body, .. } => find_produce_skeleton(body, func),
        StmtNode::Block { stmts } => stmts.iter().find_map(|s| find_produce_skeleton(s, func)),
        StmtNode::IfThenElse {
            then_case,
            else_case,
            ..
        } => find_produce_skeleton(then_case, func).or_else(|| {
            else_case
                .as_ref()
                .and_then(|e| find_produce_skeleton(e, func))
        }),
        _ => None,
    }
}

/// Greedy soft-wrap at spaces so the giant one-line stores fit a code block.
fn wrap(s: &str, width: usize) -> String {
    let mut out = String::new();
    for line in s.lines() {
        let mut col = 0;
        for tok in line.split_inclusive(' ') {
            if col + tok.len() > width && col > 0 {
                out.push('\n');
                out.push_str("    ");
                col = 4;
            }
            out.push_str(tok);
            col += tok.len();
        }
        out.push('\n');
    }
    out
}

// Keep the skeleton printer honest about unhandled shapes.
#[allow(dead_code)]
fn exhaustiveness_reminder(e: &ExprNode) {
    let _ = e;
}
