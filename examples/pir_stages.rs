//! Shows the pre-codegen optimizer at work: the linear program IR (PIR)
//! of a pipeline after linearization and after every optimization pass
//! that changed it, plus a per-app instruction-count summary.
//!
//! ```sh
//! cargo run --release --example pir_stages                      # blur, stage dumps
//! cargo run --release --example pir_stages -- --app camera-pipe # another app (by slug)
//! cargo run --release --example pir_stages -- --stats           # per-app summary table
//! ```
//!
//! The stage dumps are the optimizer's own trace
//! ([`compile_traced`](halide::exec::Program::compile_traced)): snapshot 0
//! is the raw linearization of the lowered statement, and each subsequent
//! snapshot is the IR after one pass application that reported changes —
//! the same sequence the fixed-point driver in `crates/exec/src/opt.rs`
//! iterates until no pass fires. `--stats` prints, for every benchmark app
//! at its tuned schedule, the executable instruction count before and
//! after optimization and which passes did the eliminating; the same
//! numbers land in `BENCH_exec.json` under `"pir"`.

use halide::exec::{OptLevel, Program};
use halide::pipelines::{apps::ScheduleChoice, AppKind};

/// Image size the modules are built at. Compilation never executes the
/// loops, so the size only shapes loop bounds; this matches the
/// `BENCH_exec.json --quick` configuration.
const SIZE: (i64, i64) = (192, 128);

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.iter().any(|a| a == "--stats") {
        stats_table();
        return;
    }
    let app = match args
        .iter()
        .position(|a| a == "--app")
        .and_then(|i| args.get(i + 1))
    {
        Some(slug) => AppKind::from_slug(slug)
            .unwrap_or_else(|| panic!("unknown app {slug:?}; use one of {:?}", slugs())),
        None => AppKind::Blur,
    };
    dump_stages(app);
}

fn slugs() -> Vec<&'static str> {
    AppKind::ALL.iter().map(|a| a.slug()).collect()
}

/// Prints every PIR snapshot the optimizer records for the app's tuned
/// schedule: the linearized program, then the IR after each pass that
/// changed something.
fn dump_stages(app: AppKind) {
    let built = app
        .build(SIZE.0, SIZE.1, ScheduleChoice::Tuned)
        .expect("tuned schedule lowers");
    let (program, stages) =
        Program::compile_traced(&built.module, OptLevel::Default).expect("tuned schedule compiles");
    let report = program.opt_report();
    println!(
        "{} (tuned, {}x{}): {} -> {} instructions in {} fixed-point iteration(s)",
        app.name(),
        SIZE.0,
        SIZE.1,
        report.before_insts,
        report.after_insts,
        report.iterations
    );
    for (i, stage) in stages.iter().enumerate() {
        println!("\n{}", "=".repeat(72));
        if stage.changes == 0 {
            println!("== stage {i}: {}", stage.name);
        } else {
            println!("== stage {i}: {} ({} change(s))", stage.name, stage.changes);
        }
        println!("{}", "=".repeat(72));
        print!("{}", stage.pir);
    }
}

/// Prints the per-app optimization summary: executable instruction counts
/// at `OptLevel::None` vs `OptLevel::Default` and the per-pass change
/// totals, for every app's tuned schedule.
fn stats_table() {
    println!(
        "{:<20} {:>8} {:>8} {:>7}  passes (changes)",
        "app (tuned)", "before", "after", "saved"
    );
    for app in AppKind::ALL {
        let built = app
            .build(SIZE.0, SIZE.1, ScheduleChoice::Tuned)
            .expect("tuned schedule lowers");
        let program = Program::compile_with(&built.module, OptLevel::Default)
            .expect("tuned schedule compiles");
        let report = program.opt_report();
        let saved = report.before_insts.saturating_sub(report.after_insts);
        let pct = 100.0 * saved as f64 / report.before_insts.max(1) as f64;
        let passes: Vec<String> = report
            .passes
            .iter()
            .filter(|p| p.changes > 0)
            .map(|p| format!("{} {}", p.name, p.changes))
            .collect();
        println!(
            "{:<20} {:>8} {:>8} {:>6.1}%  {}",
            app.name(),
            report.before_insts,
            report.after_insts,
            pct,
            passes.join(", ")
        );
    }
}
