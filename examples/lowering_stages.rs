//! Prints the Sec. 3.1 two-stage blur after each lowering pass.
//!
//! This is the companion program to `docs/lowering.md`: every IR snippet in
//! that walkthrough was produced by this example, so re-running it shows how
//! the current compiler's output compares to the documented one.
//!
//! ```sh
//! cargo run --release --example lowering_stages
//! ```

use halide::ir::Type;
use halide::lower_crate::{flatten, inject, sliding, vectorize};
use halide::{Func, ImageParam, Pipeline, Var};

fn main() {
    // The two-stage blur of Sec. 3.1, with the paper's Fig. 1 schedule:
    // the output tiled, the horizontal pass computed per row of tiles.
    let input = ImageParam::new("input", Type::f32(), 2);
    let (x, y) = (Var::new("x"), Var::new("y"));
    let blurx = Func::new("blurx");
    blurx.define(
        &[x.clone(), y.clone()],
        (input.at_clamped(vec![x.expr() - 1, y.expr()])
            + input.at_clamped(vec![x.expr(), y.expr()])
            + input.at_clamped(vec![x.expr() + 1, y.expr()]))
            / 3.0f32,
    );
    let out = Func::new("blury");
    out.define(
        &[x.clone(), y.clone()],
        (blurx.at(vec![x.expr(), y.expr() - 1])
            + blurx.at(vec![x.expr(), y.expr()])
            + blurx.at(vec![x.expr(), y.expr() + 1]))
            / 3.0f32,
    );
    out.split_dim("y", "yo", "yi", 8)
        .parallelize("yo")
        .split_dim("x", "xo", "xi", 8)
        .vectorize_dim("xi");
    blurx.compute_at(&out, "yo");

    let pipeline = Pipeline::new(&out);
    pipeline.validate_schedules().unwrap();
    let mut env = inject::snapshot_pipeline(&pipeline);
    let order = pipeline.realization_order();
    let output = pipeline.output().name();

    inject::inline_all(&mut env, &order, &output).unwrap();

    banner("1. loop synthesis + bounds inference (let-bound bounds)");
    let stmt = inject::build_pipeline_stmt(&env, &order, &output).unwrap();
    println!("{stmt}");

    banner("2. sliding window + storage folding");
    let (stmt, report) = sliding::sliding_and_folding(&stmt, &env, true, true);
    let stmt = halide::ir::simplify_stmt(&stmt);
    println!("{stmt}");
    println!("// slid: {:?}, folded: {:?}", report.slid, report.folded);

    banner("3. flattening");
    let stmt = flatten::flatten(&stmt);
    println!("{stmt}");

    banner("4. vectorization / unrolling + final simplification");
    let stmt = vectorize::vectorize_and_unroll(&stmt).unwrap();
    let stmt = halide::ir::simplify_stmt(&stmt);
    println!("{stmt}");

    // A second schedule for the sliding-window pass: computing blurx one row
    // at a time while storing it at the root makes consecutive rows of blury
    // reuse two of the three blurx rows each needs.
    let input = ImageParam::new("sin", Type::f32(), 2);
    let blurx = Func::new("sblurx");
    blurx.define(
        &[x.clone(), y.clone()],
        (input.at_clamped(vec![x.expr() - 1, y.expr()])
            + input.at_clamped(vec![x.expr(), y.expr()])
            + input.at_clamped(vec![x.expr() + 1, y.expr()]))
            / 3.0f32,
    );
    let out = Func::new("sblury");
    out.define(
        &[x.clone(), y.clone()],
        (blurx.at(vec![x.expr(), y.expr() - 1])
            + blurx.at(vec![x.expr(), y.expr()])
            + blurx.at(vec![x.expr(), y.expr() + 1]))
            / 3.0f32,
    );
    blurx.compute_at(&out, "y");
    blurx.store_root();

    let pipeline = Pipeline::new(&out);
    pipeline.validate_schedules().unwrap();
    let mut env = inject::snapshot_pipeline(&pipeline);
    let order = pipeline.realization_order();
    let output = pipeline.output().name();
    inject::inline_all(&mut env, &order, &output).unwrap();

    banner("appendix: store_root + compute_at(y), before sliding");
    let stmt = inject::build_pipeline_stmt(&env, &order, &output).unwrap();
    println!("{stmt}");

    banner("appendix: after sliding window + storage folding");
    let (stmt, report) = sliding::sliding_and_folding(&stmt, &env, true, true);
    let stmt = halide::ir::simplify_stmt(&stmt);
    println!("{stmt}");
    println!("// slid: {:?}, folded: {:?}", report.slid, report.folded);
}

fn banner(title: &str) {
    println!("\n{}", "=".repeat(72));
    println!("== {title}");
    println!("{}\n", "=".repeat(72));
}
