//! Offline stand-in for the `criterion` crate.
//!
//! The build container has no registry access, so this shim implements the
//! harness subset the workspace's benches use: [`Criterion`],
//! [`BenchmarkGroup`] with `sample_size` / `measurement_time` /
//! `warm_up_time` / `bench_function` / `bench_with_input`, [`BenchmarkId`],
//! [`black_box`], and the [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurement model: each benchmark is warmed up for `warm_up_time`, then
//! timed in batches until `measurement_time` elapses or `sample_size`
//! samples are collected, and the median / mean / min per-iteration times
//! are printed. No plots, no statistics beyond that — the point is that
//! `cargo bench` compiles and produces stable, comparable numbers offline.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Prevents the optimizer from deleting a benchmarked computation.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Identifies one benchmark within a group, mirroring
/// `criterion::BenchmarkId`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter label.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id made from a parameter label alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.id.fmt(f)
    }
}

/// Runs the closure under test and records per-iteration timings.
pub struct Bencher<'a> {
    samples: &'a mut Vec<Duration>,
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
}

impl Bencher<'_> {
    /// Times `routine`, collecting one sample per call until the sample
    /// budget or the measurement window is exhausted.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let warm_deadline = Instant::now() + self.warm_up;
        while Instant::now() < warm_deadline {
            black_box(routine());
        }
        let measure_deadline = Instant::now() + self.measurement;
        while self.samples.len() < self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
            if Instant::now() >= measure_deadline && !self.samples.is_empty() {
                break;
            }
        }
    }
}

/// A named collection of related benchmarks, mirroring
/// `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Sets the target number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the measurement window per benchmark.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = t;
        self
    }

    /// Sets the warm-up window per benchmark.
    pub fn warm_up_time(&mut self, t: Duration) -> &mut Self {
        self.warm_up_time = t;
        self
    }

    /// Runs one benchmark under this group's settings.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let id = id.into();
        let mut samples = Vec::new();
        let mut bencher = Bencher {
            samples: &mut samples,
            warm_up: self.warm_up_time,
            measurement: self.measurement_time,
            sample_size: self.sample_size,
        };
        f(&mut bencher);
        report(&self.name, &id, &samples);
        self.criterion.benchmarks_run += 1;
        self
    }

    /// Runs one benchmark that borrows a shared input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group. Accepted for API compatibility; reporting is
    /// incremental so there is nothing left to flush.
    pub fn finish(&mut self) {}
}

fn report(group: &str, id: &BenchmarkId, samples: &[Duration]) {
    if samples.is_empty() {
        println!("{group}/{id}: no samples collected");
        return;
    }
    let mut sorted: Vec<Duration> = samples.to_vec();
    sorted.sort();
    let median = sorted[sorted.len() / 2];
    let min = sorted[0];
    let total: Duration = sorted.iter().sum();
    let mean = total / sorted.len() as u32;
    println!(
        "{group}/{id}: median {median:?}  mean {mean:?}  min {min:?}  ({} samples)",
        sorted.len()
    );
}

/// Top-level benchmark driver, mirroring `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {
    benchmarks_run: usize,
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 20,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(300),
        }
    }

    /// Runs a stand-alone benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        self.benchmark_group("bench").bench_function(id, f);
        self
    }
}

/// Declares a benchmark group function, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench `main`, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` passes flags like `--bench`; this harness has no
            // CLI, so arguments are accepted and ignored.
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group
            .sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        let mut runs = 0u32;
        group.bench_function(BenchmarkId::new("count", "up"), |b| {
            b.iter(|| {
                runs += 1;
                black_box(runs)
            })
        });
        group.finish();
        assert!(runs > 0);
        assert_eq!(c.benchmarks_run, 1);
    }
}
