//! Offline stand-in for the `parking_lot` crate.
//!
//! The container this workspace builds in has no registry access, so this
//! shim re-implements the tiny API subset the tree uses — [`Mutex`] and
//! [`RwLock`] with `parking_lot`'s non-poisoning lock methods — on top of the
//! standard library primitives. Poisoned locks are recovered rather than
//! propagated, which matches `parking_lot`'s semantics of never poisoning.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock with `parking_lot`'s panic-free `lock()` API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex and returns the protected value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    ///
    /// Unlike `std`, this never returns a poison error: a lock poisoned by a
    /// panicking holder is recovered, mirroring `parking_lot` behaviour.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(guard),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the protected value.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock with `parking_lot`'s panic-free API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock protecting `value`.
    pub fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock and returns the protected value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock, recovering from poisoning.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write lock, recovering from poisoning.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1, 2]);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }
}
