//! Offline stand-in for the `proptest` crate.
//!
//! The build container has no registry access, so this shim implements the
//! API subset the workspace's property tests use: the [`strategy::Strategy`]
//! trait with `prop_map` / `prop_recursive` / `boxed`, range and tuple
//! strategies, [`strategy::Just`], [`arbitrary::any`], and the
//! [`proptest!`] / [`prop_oneof!`] / [`prop_assert!`] / [`prop_assert_eq!`]
//! macros.
//!
//! Differences from real proptest, by design:
//! * **deterministic** — every test function draws its cases from a fixed
//!   seed, so CI runs are exactly reproducible (no flaky property tests);
//! * **no shrinking** — a failing case reports the panic directly; the
//!   failing inputs are printed via the case counter and seed instead.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

#[doc(hidden)]
pub mod __rt {
    //! Macro runtime support; not part of the public API.
    pub use rand;
}

/// Strategy combinators: how random values of each type are produced.
pub mod strategy {
    use rand::rngs::StdRng;
    use std::ops::Range;
    use std::rc::Rc;

    /// A recipe for generating random values of an output type.
    ///
    /// This mirrors `proptest::strategy::Strategy`, minus shrinking: a
    /// strategy is just a cloneable generator from an RNG to a value.
    pub trait Strategy: Clone {
        /// The type of value this strategy produces.
        type Value;

        /// Draws one value from the strategy.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        /// Maps the produced value through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O + Clone,
        {
            Map { inner: self, f }
        }

        /// Builds a recursive strategy: `self` is the leaf case and `f`
        /// wraps an inner strategy into a branch case. `depth` bounds the
        /// recursion; the size/branch hints are accepted for API
        /// compatibility but unused.
        fn prop_recursive<F, S>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            f: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> S,
            S: Strategy<Value = Self::Value> + 'static,
        {
            let leaf = self.boxed();
            let mut strat = leaf.clone();
            for _ in 0..depth {
                // Mix the leaf back in at every level so generated values
                // cover all depths up to `depth`, not only the deepest.
                let branch = f(strat).boxed();
                strat = Union::new(vec![leaf.clone(), branch]).boxed();
            }
            strat
        }

        /// Erases the concrete strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            let this = self;
            BoxedStrategy {
                gen: Rc::new(move |rng| this.generate(rng)),
            }
        }
    }

    /// A type-erased, cloneable strategy.
    pub struct BoxedStrategy<T> {
        gen: Rc<dyn Fn(&mut StdRng) -> T>,
    }

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy {
                gen: Rc::clone(&self.gen),
            }
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            (self.gen)(rng)
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    /// The result of [`Strategy::prop_map`].
    #[derive(Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O + Clone,
    {
        type Value = O;
        fn generate(&self, rng: &mut StdRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice between several strategies of the same value type.
    /// Built by the [`prop_oneof!`](crate::prop_oneof) macro.
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Creates a union over `options`; must be non-empty.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<T> Clone for Union<T> {
        fn clone(&self) -> Self {
            Union {
                options: self.options.clone(),
            }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            use rand::Rng;
            let idx = rng.gen_range(0..self.options.len());
            self.options[idx].generate(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    use rand::Rng;
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    macro_rules! impl_tuple_strategy {
        ($($name:ident : $idx:tt),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A: 0);
    impl_tuple_strategy!(A: 0, B: 1);
    impl_tuple_strategy!(A: 0, B: 1, C: 2);
    impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
    impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
    impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);
}

/// `any::<T>()` support for types with a canonical uniform strategy.
pub mod arbitrary {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use std::marker::PhantomData;

    /// Strategy returned by [`any`], producing uniform values of `T`.
    pub struct AnyStrategy<T>(PhantomData<T>);

    impl<T> Clone for AnyStrategy<T> {
        fn clone(&self) -> Self {
            AnyStrategy(PhantomData)
        }
    }

    impl<T: rand::Standard> Strategy for AnyStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            use rand::Rng;
            rng.gen::<T>()
        }
    }

    /// Returns the canonical strategy for `T` (uniform over the type).
    pub fn any<T: rand::Standard>() -> AnyStrategy<T> {
        AnyStrategy(PhantomData)
    }
}

/// Per-`proptest!`-block configuration.
pub mod test_runner {
    /// Mirrors `proptest::test_runner::Config`: how many cases to run per
    /// property, plus the (fixed) RNG seed that makes runs deterministic.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of random cases each property is checked against.
        pub cases: u32,
        /// Seed for the deterministic case generator.
        pub seed: u64,
    }

    impl ProptestConfig {
        /// Config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig {
                cases,
                ..Default::default()
            }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // Fixed seed: property tests must not flake in CI. Change the
            // seed here (or set `seed` in a custom config) to explore a
            // different deterministic case stream.
            ProptestConfig {
                cases: 256,
                seed: 0x5eed_cafe_f00d_d00d,
            }
        }
    }
}

/// Everything a property-test file needs, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// Declares deterministic property tests. Mirrors `proptest::proptest!`:
/// an optional `#![proptest_config(..)]` header followed by `fn` items whose
/// arguments are drawn from strategies via `pat in strategy` bindings.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::test_runner::ProptestConfig::default()); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`]; do not invoke directly.
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_fns {
    (($cfg:expr); $( $(#[$meta:meta])* fn $name:ident( $($pat:pat in $strat:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng = <$crate::__rt::rand::rngs::StdRng as $crate::__rt::rand::SeedableRng>::seed_from_u64(config.seed);
                let strategies = ( $( $strat, )+ );
                for case in 0..config.cases {
                    let ( $($pat,)+ ) = $crate::strategy::Strategy::generate(&strategies, &mut rng);
                    let result = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(|| $body));
                    if let Err(payload) = result {
                        eprintln!(
                            "proptest case {}/{} failed (seed {:#x})",
                            case + 1, config.cases, config.seed,
                        );
                        ::std::panic::resume_unwind(payload);
                    }
                }
            }
        )*
    };
}

/// Uniform choice between strategy arms; mirrors `proptest::prop_oneof!`.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Asserts a condition inside a property; mirrors `proptest::prop_assert!`.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property; mirrors `proptest::prop_assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_and_tuples(a in -5i32..5, b in 0u8..3, flip in any::<bool>()) {
            prop_assert!((-5..5).contains(&a));
            prop_assert!(b < 3);
            let _ = flip;
        }

        #[test]
        fn oneof_and_map(v in prop_oneof![Just(1i64), Just(2), 10i64..20]) {
            prop_assert!(v == 1 || v == 2 || (10..20).contains(&v));
        }
    }

    proptest! {
        #[test]
        fn recursion_terminates(n in (0i32..4).prop_recursive(3, 24, 3, |inner| {
            (inner.clone(), inner).prop_map(|(a, b)| a.saturating_add(b).min(100))
        })) {
            prop_assert!(n <= 100);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::strategy::Strategy;
        use rand::SeedableRng;
        let strat = (0i64..1_000_000).prop_map(|v| v * 2);
        let mut r1 = rand::rngs::StdRng::seed_from_u64(42);
        let mut r2 = rand::rngs::StdRng::seed_from_u64(42);
        for _ in 0..32 {
            assert_eq!(strat.generate(&mut r1), strat.generate(&mut r2));
        }
    }
}
