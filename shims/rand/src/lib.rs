//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The build container has no registry access, so this shim provides the
//! pieces the workspace actually uses: [`rngs::StdRng`], the [`Rng`] and
//! [`SeedableRng`] traits, `gen`, `gen_bool`, and `gen_range` over integer
//! and float ranges. The generator is xoshiro256++ seeded via splitmix64 —
//! deterministic for a given seed, which is exactly what the autotuner's
//! reproducible search and the CI property tests need.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use std::ops::Range;

/// A type that can be produced uniformly at random by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws a value from the RNG's raw 64-bit output stream.
    fn from_rng(rng: &mut dyn RngCore) -> Self;
}

/// The object-safe core of a random generator: a stream of 64-bit words.
pub trait RngCore {
    /// Returns the next 64 bits of the stream.
    fn next_u64(&mut self) -> u64;
}

impl Standard for bool {
    fn from_rng(rng: &mut dyn RngCore) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn from_rng(rng: &mut dyn RngCore) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn from_rng(rng: &mut dyn RngCore) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for f64 {
    fn from_rng(rng: &mut dyn RngCore) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn from_rng(rng: &mut dyn RngCore) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// A range that [`Rng::gen_range`] can sample from uniformly.
pub trait SampleRange<T> {
    /// Draws a uniform sample from the range.
    fn sample(self, rng: &mut dyn RngCore) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Modulo bias is negligible for the small spans used here.
                let offset = (rng.next_u64() as u128 % span) as i128;
                (self.start as i128 + offset) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample(self, rng: &mut dyn RngCore) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::from_rng(rng) * (self.end - self.start)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample(self, rng: &mut dyn RngCore) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f32::from_rng(rng) * (self.end - self.start)
    }
}

/// User-facing random-value methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Returns a uniformly random value of type `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_rng(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        f64::from_rng(self) < p
    }

    /// Returns a uniform sample from `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }
}

impl<R: RngCore> Rng for R {}

/// A generator that can be constructed from a seed, mirroring
/// `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generator types, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard deterministic generator: xoshiro256++ seeded by
    /// splitmix64. Statistically strong enough for schedule search and
    /// property tests; not cryptographically secure (neither is the real
    /// `StdRng` contract).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++ (Blackman & Vigna, public domain reference).
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let f: f64 = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
            let u = rng.gen_range(0..5usize);
            assert!(u < 5);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4_000..6_000).contains(&hits), "p=0.5 hit {hits}/10000");
    }
}
