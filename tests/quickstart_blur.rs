//! Facade-crate integration test: the Sec. 3.1 two-stage blur exactly as the
//! `src/lib.rs` quickstart doctest builds it (tiled + parallel +
//! `compute_at`), but asserting output *values* against a hand-computed
//! reference, not just buffer extents.

use halide::ir::{ScalarType, Type};
use halide::runtime::Buffer;
use halide::{Func, ImageParam, Pipeline, Realizer, Var};

const W: i64 = 64;
const H: i64 = 64;

fn input_value(x: i64, y: i64) -> f64 {
    (x + y) as f64
}

/// The blur of the quickstart, computed directly in f32 arithmetic with
/// clamped input sampling (matching `ImageParam::at_clamped`).
fn reference_blur(x: i64, y: i64) -> f64 {
    let clamp_x = |v: i64| v.clamp(0, W - 1);
    let clamp_y = |v: i64| v.clamp(0, H - 1);
    // `at_clamped` clamps *every* coordinate of the input read, so blurx
    // evaluated one row beyond the output (the compiler extends its realized
    // region for the vertical stencil) re-reads the edge row.
    let blurx = |x: i64, y: i64| -> f32 {
        let yc = clamp_y(y);
        let s = input_value(clamp_x(x - 1), yc) as f32
            + input_value(clamp_x(x), yc) as f32
            + input_value(clamp_x(x + 1), yc) as f32;
        s / 3.0
    };
    (blurx(x, y - 1) + blurx(x, y) + blurx(x, y + 1)) as f64 / 3.0
}

fn build_quickstart() -> (ImageParam, Func, Func) {
    let input = ImageParam::new("qb_input", Type::f32(), 2);
    let (x, y) = (Var::new("x"), Var::new("y"));
    let blurx = Func::new("qb_blurx");
    blurx.define(
        &[x.clone(), y.clone()],
        (input.at_clamped(vec![x.expr() - 1, y.expr()])
            + input.at_clamped(vec![x.expr(), y.expr()])
            + input.at_clamped(vec![x.expr() + 1, y.expr()]))
            / 3.0f32,
    );
    let out = Func::new("qb_out");
    out.define(
        &[x.clone(), y.clone()],
        (blurx.at(vec![x.expr(), y.expr() - 1])
            + blurx.at(vec![x.expr(), y.expr()])
            + blurx.at(vec![x.expr(), y.expr() + 1]))
            / 3.0f32,
    );
    (input, blurx, out)
}

#[test]
fn quickstart_blur_values_match_reference() {
    let (input, blurx, out) = build_quickstart();

    // The exact schedule of the quickstart doctest.
    out.tile_dims("x", "y", "xo", "yo", "xi", "yi", 32, 32)
        .parallelize("yo");
    blurx.compute_at(&out, "xo");

    let module = halide::lower(&Pipeline::new(&out)).unwrap();
    let image = Buffer::from_fn_2d(ScalarType::Float(32), W, H, input_value);
    let result = Realizer::new(&module)
        .input(input.name(), image)
        .realize(&[W, H])
        .unwrap();

    assert_eq!(result.output.dims()[0].extent, W);
    assert_eq!(result.output.dims()[1].extent, H);
    for y in 0..H {
        for x in 0..W {
            let got = result.output.at_f64(&[x, y]);
            let want = reference_blur(x, y);
            assert!(
                (got - want).abs() < 1e-4,
                "blur({x}, {y}) = {got}, reference says {want}"
            );
        }
    }

    // Interior pixels of the (x + y) ramp blur to exactly themselves, an
    // easy closed-form spot check independent of the reference above.
    for (x, y) in [(10, 10), (31, 17), (32, 32), (50, 62)] {
        let got = result.output.at_f64(&[x, y]);
        assert!(
            (got - (x + y) as f64).abs() < 1e-4,
            "interior blur({x}, {y}) = {got}, expected {}",
            x + y
        );
    }
}

#[test]
fn quickstart_schedule_equals_default_schedule_output() {
    // The same algorithm under the default (breadth-first) schedule must
    // produce identical values: schedules never change results.
    let (input, _blurx, out) = build_quickstart();
    let module = halide::lower(&Pipeline::new(&out)).unwrap();
    let image = Buffer::from_fn_2d(ScalarType::Float(32), W, H, input_value);
    let result = Realizer::new(&module)
        .input(input.name(), image)
        .realize(&[W, H])
        .unwrap();
    for y in 0..H {
        for x in 0..W {
            let got = result.output.at_f64(&[x, y]);
            let want = reference_blur(x, y);
            assert!(
                (got - want).abs() < 1e-4,
                "default-schedule blur({x}, {y}) = {got}, reference says {want}"
            );
        }
    }
}
