//! Differential tests between the two execution engines.
//!
//! The compiled register machine (`Backend::Compiled`, the default) is
//! defined to be observationally identical to the tree-walking interpreter
//! (`Backend::Interp`, the reference semantics): **bit-identical** outputs
//! and identical structural counters (allocations, parallel tasks, kernel
//! launches) on every pipeline — and so is the compiled engine at every
//! optimizer level: each test realizes the interpreter once and compares
//! it against `OptLevel::None` (raw linearize → emit) and
//! `OptLevel::Default` (the full pass pipeline), so an optimizer pass that
//! changes a single bit or drops a single counted operation fails here.
//! These tests drive the matrix over random schedules of blur, over every
//! benchmark app, and over a deep multi-stage app (interpolate).

use proptest::prelude::*;

use halide::exec::{Backend, OptLevel, Realizer};
use halide::pipelines::blur::{make_input, BlurApp};
use halide::pipelines::interpolate::{self, InterpolateApp};
use halide::runtime::Buffer;
use halide::Module;

/// Realizes `module` on the interpreter and on the compiled engine at both
/// optimizer levels, with identical bindings, and asserts bit-identical
/// outputs plus identical structural counters across all three.
fn assert_backends_identical(
    module: &Module,
    input_name: &str,
    input: &Buffer,
    extents: &[i64],
    threads: usize,
    what: &str,
) {
    let run = |backend: Backend, opt: OptLevel| {
        Realizer::new(module)
            .input(input_name.to_string(), input.clone())
            .threads(threads)
            .backend(backend)
            .opt_level(opt)
            .realize(extents)
            .unwrap_or_else(|e| panic!("{what}: {} backend failed: {e}", backend.name()))
    };
    let interp = run(Backend::Interp, OptLevel::Default);
    let b = interp.output.to_f64_vec();
    // `peak_bytes_live` depends on how many parallel iterations happen to
    // overlap in time, so it is excluded; everything else — including the
    // per-op counters — must agree.
    let mut r = interp.counters;
    r.peak_bytes_live = 0;

    for (label, opt) in [
        ("opt=none", OptLevel::None),
        ("opt=default", OptLevel::Default),
    ] {
        let compiled = run(Backend::Compiled, opt);

        // Bit-identical outputs: compare exact f64 bit patterns, not a
        // tolerance.
        let a = compiled.output.to_f64_vec();
        assert_eq!(a.len(), b.len(), "{what} [{label}]: output sizes differ");
        for (i, (x, y)) in a.iter().zip(b.iter()).enumerate() {
            assert!(
                x.to_bits() == y.to_bits(),
                "{what} [{label}]: outputs diverge at flat index {i}: compiled {x} vs interp {y}"
            );
        }

        let mut c = compiled.counters;
        c.peak_bytes_live = 0;
        assert_eq!(
            c, r,
            "{what} [{label}]: counters diverge between compiled and interpreting backends"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Random valid blur schedules produce bit-identical outputs and
    /// counters on both backends.
    #[test]
    fn random_blur_schedules_agree_across_backends(
        split_x in prop_oneof![Just(8i64), Just(16), Just(32)],
        split_y in prop_oneof![Just(4i64), Just(8), Just(16)],
        parallel_outer in any::<bool>(),
        vectorize_inner in any::<bool>(),
        fuse_choice in 0u8..4,
        threads in 1usize..4,
    ) {
        let input = make_input(67, 49);
        let app = BlurApp::new();
        app.out.tile_dims("x", "y", "xo", "yo", "xi", "yi", split_x, split_y);
        if parallel_outer {
            app.out.parallelize("yo");
        }
        if vectorize_inner {
            app.out.split_dim("xi", "xio", "xii", 4).vectorize_dim("xii");
        }
        match fuse_choice {
            0 => { app.blurx.compute_root(); }
            1 => { app.blurx.compute_at(&app.out, "xo"); }
            2 => {
                app.blurx.compute_at(&app.out, "yo");
                app.blurx.store_root();
            }
            _ => { app.blurx.compute_inline(); }
        }
        let module = halide::lower(&app.pipeline()).expect("valid schedule must lower");
        assert_backends_identical(
            &module,
            "blur_input",
            &input,
            &[67, 49],
            threads,
            &format!(
                "blur sx={split_x} sy={split_y} par={parallel_outer} vec={vectorize_inner} fuse={fuse_choice}"
            ),
        );
    }
}

/// The predicated, vectorized tuned schedules: the camera pipe (masked
/// selects, clamped gathers, dense vector memory ops) and the bilateral
/// grid (data-dependent trilinear gathers) — the shapes the compiled
/// engine's whole-register blend and bulk gather/scatter paths cover, each
/// with its per-lane interpreter twin. Counters include the access-pattern
/// classification, so the two engines must also agree on *how* every
/// vector access was performed.
#[test]
fn vectorized_camera_pipe_agrees_across_backends() {
    let app = halide::pipelines::camera_pipe::CameraPipeApp::new(2.2, 0.8);
    app.schedule_good();
    let module = halide::lower(&app.pipeline()).expect("tuned camera pipe lowers");
    let input = halide::pipelines::camera_pipe::make_raw_input(67, 49);
    assert_backends_identical(
        &module,
        &app.input.name(),
        &input,
        &[67, 49, 3],
        2,
        "camera pipe (tuned, vectorized)",
    );
}

#[test]
fn vectorized_bilateral_grid_agrees_across_backends() {
    let app = halide::pipelines::bilateral_grid::BilateralGridApp::new();
    app.schedule_good();
    let module = halide::lower(&app.pipeline()).expect("tuned bilateral grid lowers");
    let input = halide::pipelines::bilateral_grid::make_input(48, 40);
    assert_backends_identical(
        &module,
        &app.input.name(),
        &input,
        &[48, 40],
        2,
        "bilateral grid (tuned, vectorized)",
    );
}

/// Every benchmark app under its naive and tuned schedules, through the
/// full backend × optimizer-level matrix. Odd sizes so split/vectorize
/// boundary (tail) paths are exercised, not just whole tiles.
#[test]
fn every_app_agrees_across_backends_and_opt_levels() {
    use halide::pipelines::{apps::ScheduleChoice, AppKind};
    let (w, h) = (67, 49);
    for app in AppKind::ALL {
        for (schedule, label) in [
            (ScheduleChoice::Naive, "naive"),
            (ScheduleChoice::Tuned, "tuned"),
        ] {
            let built = app
                .build(w, h, schedule)
                .unwrap_or_else(|e| panic!("{} ({label}): lowering failed: {e}", app.name()));
            let input = app.make_input(w, h);
            assert_backends_identical(
                &built.module,
                &built.input_name,
                &input,
                &app.output_extents(w, h),
                2,
                &format!("{} ({label})", app.name()),
            );
        }
    }
}

/// Odd and sub-vector output extents under vectorized schedules: shapes
/// where the vector width never divides the extent (7×5 with factor 4 is
/// one whole vector plus a 3-lane tail per row; 5×4 leaves a single-lane
/// tail), degenerate single-row images (9×1), and a single-column image
/// (1×23, vectorized along y because a split factor may not exceed the
/// extent it splits). Every realize hits the predicated masked-lane tail
/// path on most or all iterations. The fuzzer found its first real
/// miscompilations near this corner, so the matrix is pinned here
/// deterministically too.
#[test]
fn odd_and_sub_vector_extents_agree_across_backends() {
    // (width, height, vectorized dim, factor): factor ≤ extent, never
    // dividing it, so the tail predicate is live in every case.
    for &(w, h, dim, factor) in &[
        (7i64, 5i64, "x", 4i64),
        (7, 5, "x", 2),
        (5, 4, "x", 4),
        (9, 1, "x", 4),
        (1, 23, "y", 4),
        (1, 23, "y", 8),
    ] {
        for &par in &[false, true] {
            let input = make_input(w, h);
            let app = BlurApp::new();
            let (outer, inner) = (format!("{dim}o"), format!("{dim}i"));
            app.out
                .split_dim(dim, &outer, &inner, factor)
                .vectorize_dim(&inner);
            // Parallelize whichever spatial dim was not vectorized.
            if par {
                app.out.parallelize(if dim == "x" { "y" } else { "x" });
            }
            app.blurx.compute_root();
            let module = halide::lower(&app.pipeline()).expect("valid schedule must lower");
            assert_backends_identical(
                &module,
                "blur_input",
                &input,
                &[w, h],
                2,
                &format!("blur {w}x{h} vec {dim} by {factor} par={par} (tail-heavy vectorization)"),
            );
        }
    }
}

/// The same odd shapes through a compute_at producer, so the *producer's*
/// per-consumer-iteration region also lands on odd sub-vector extents.
#[test]
fn odd_extents_with_fused_producer_agree_across_backends() {
    for &(w, h) in &[(7i64, 5i64), (5, 4), (9, 3)] {
        let input = make_input(w, h);
        let app = BlurApp::new();
        app.out.split_dim("x", "xo", "xi", 4).vectorize_dim("xi");
        app.blurx.compute_at(&app.out, "y");
        let module = halide::lower(&app.pipeline()).expect("valid schedule must lower");
        assert_backends_identical(
            &module,
            "blur_input",
            &input,
            &[w, h],
            2,
            &format!("blur {w}x{h} fused producer, vectorized consumer"),
        );
    }
}

/// A deep multi-stage app: interpolate, under its three schedule flavours
/// (including the simulated-GPU one, which must also report identical
/// kernel-launch and copy counters).
#[test]
fn interpolate_agrees_across_backends_on_every_schedule() {
    let input = interpolate::make_input(64, 48);
    for flavour in ["naive", "tuned", "gpu"] {
        let app = InterpolateApp::new(3);
        match flavour {
            "tuned" => app.schedule_good(),
            "gpu" => app.schedule_gpu(),
            _ => {}
        }
        let module = halide::lower(&app.pipeline()).expect("interpolate lowers");
        assert_backends_identical(
            &module,
            &app.input.name(),
            &input,
            &[64, 48],
            2,
            &format!("interpolate ({flavour})"),
        );
    }
}
