//! Differential tests between the two execution engines.
//!
//! The compiled register machine (`Backend::Compiled`, the default) is
//! defined to be observationally identical to the tree-walking interpreter
//! (`Backend::Interp`, the reference semantics): **bit-identical** outputs
//! and identical structural counters (allocations, parallel tasks, kernel
//! launches) on every pipeline. These tests drive both engines over random
//! schedules of blur and over a deep multi-stage app (interpolate) and
//! assert exactly that.

use proptest::prelude::*;

use halide::exec::{Backend, Realizer};
use halide::pipelines::blur::{make_input, BlurApp};
use halide::pipelines::interpolate::{self, InterpolateApp};
use halide::runtime::Buffer;
use halide::Module;

/// Realizes `module` on both backends with identical bindings and asserts
/// bit-identical outputs plus identical structural counters.
fn assert_backends_identical(
    module: &Module,
    input_name: &str,
    input: &Buffer,
    extents: &[i64],
    threads: usize,
    what: &str,
) {
    let run = |backend: Backend| {
        Realizer::new(module)
            .input(input_name.to_string(), input.clone())
            .threads(threads)
            .backend(backend)
            .realize(extents)
            .unwrap_or_else(|e| panic!("{what}: {} backend failed: {e}", backend.name()))
    };
    let compiled = run(Backend::Compiled);
    let interp = run(Backend::Interp);

    // Bit-identical outputs: compare exact f64 bit patterns, not a tolerance.
    let a = compiled.output.to_f64_vec();
    let b = interp.output.to_f64_vec();
    assert_eq!(a.len(), b.len(), "{what}: output sizes differ");
    for (i, (x, y)) in a.iter().zip(b.iter()).enumerate() {
        assert!(
            x.to_bits() == y.to_bits(),
            "{what}: outputs diverge at flat index {i}: compiled {x} vs interp {y}"
        );
    }

    // Identical structural counters. (`peak_bytes_live` depends on how many
    // parallel iterations happen to overlap in time, so it is excluded;
    // everything else — including the per-op counters — must agree.)
    let mut c = compiled.counters;
    let mut r = interp.counters;
    c.peak_bytes_live = 0;
    r.peak_bytes_live = 0;
    assert_eq!(
        c, r,
        "{what}: counters diverge between compiled and interpreting backends"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Random valid blur schedules produce bit-identical outputs and
    /// counters on both backends.
    #[test]
    fn random_blur_schedules_agree_across_backends(
        split_x in prop_oneof![Just(8i64), Just(16), Just(32)],
        split_y in prop_oneof![Just(4i64), Just(8), Just(16)],
        parallel_outer in any::<bool>(),
        vectorize_inner in any::<bool>(),
        fuse_choice in 0u8..4,
        threads in 1usize..4,
    ) {
        let input = make_input(67, 49);
        let app = BlurApp::new();
        app.out.tile_dims("x", "y", "xo", "yo", "xi", "yi", split_x, split_y);
        if parallel_outer {
            app.out.parallelize("yo");
        }
        if vectorize_inner {
            app.out.split_dim("xi", "xio", "xii", 4).vectorize_dim("xii");
        }
        match fuse_choice {
            0 => { app.blurx.compute_root(); }
            1 => { app.blurx.compute_at(&app.out, "xo"); }
            2 => {
                app.blurx.compute_at(&app.out, "yo");
                app.blurx.store_root();
            }
            _ => { app.blurx.compute_inline(); }
        }
        let module = halide::lower(&app.pipeline()).expect("valid schedule must lower");
        assert_backends_identical(
            &module,
            "blur_input",
            &input,
            &[67, 49],
            threads,
            &format!(
                "blur sx={split_x} sy={split_y} par={parallel_outer} vec={vectorize_inner} fuse={fuse_choice}"
            ),
        );
    }
}

/// The predicated, vectorized tuned schedules: the camera pipe (masked
/// selects, clamped gathers, dense vector memory ops) and the bilateral
/// grid (data-dependent trilinear gathers) — the shapes the compiled
/// engine's whole-register blend and bulk gather/scatter paths cover, each
/// with its per-lane interpreter twin. Counters include the access-pattern
/// classification, so the two engines must also agree on *how* every
/// vector access was performed.
#[test]
fn vectorized_camera_pipe_agrees_across_backends() {
    let app = halide::pipelines::camera_pipe::CameraPipeApp::new(2.2, 0.8);
    app.schedule_good();
    let module = halide::lower(&app.pipeline()).expect("tuned camera pipe lowers");
    let input = halide::pipelines::camera_pipe::make_raw_input(67, 49);
    assert_backends_identical(
        &module,
        &app.input.name(),
        &input,
        &[67, 49, 3],
        2,
        "camera pipe (tuned, vectorized)",
    );
}

#[test]
fn vectorized_bilateral_grid_agrees_across_backends() {
    let app = halide::pipelines::bilateral_grid::BilateralGridApp::new();
    app.schedule_good();
    let module = halide::lower(&app.pipeline()).expect("tuned bilateral grid lowers");
    let input = halide::pipelines::bilateral_grid::make_input(48, 40);
    assert_backends_identical(
        &module,
        &app.input.name(),
        &input,
        &[48, 40],
        2,
        "bilateral grid (tuned, vectorized)",
    );
}

/// A deep multi-stage app: interpolate, under its three schedule flavours
/// (including the simulated-GPU one, which must also report identical
/// kernel-launch and copy counters).
#[test]
fn interpolate_agrees_across_backends_on_every_schedule() {
    let input = interpolate::make_input(64, 48);
    for flavour in ["naive", "tuned", "gpu"] {
        let app = InterpolateApp::new(3);
        match flavour {
            "tuned" => app.schedule_good(),
            "gpu" => app.schedule_gpu(),
            _ => {}
        }
        let module = halide::lower(&app.pipeline()).expect("interpolate lowers");
        assert_backends_identical(
            &module,
            &app.input.name(),
            &input,
            &[64, 48],
            2,
            &format!("interpolate ({flavour})"),
        );
    }
}
