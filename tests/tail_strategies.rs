//! End-to-end tests of the split tail strategies (guard_with_if, predicate,
//! round_up): vectorizing dimensions whose extents the factor does not
//! divide, on both execution backends, bit-identical to the unscheduled
//! reference.

use halide::exec::{Backend, OptLevel, Realizer};
use halide::ir::{ScalarType, Type};
use halide::runtime::Buffer;
use halide::{lower, Func, ImageParam, Pipeline, TailStrategy, Var};

const W: i64 = 37; // deliberately not a multiple of the split factor
const H: i64 = 23;
const F: i64 = 8;

fn input_image(w: i64, h: i64) -> Buffer {
    Buffer::from_fn_2d(ScalarType::Float(32), w, h, |x, y| {
        (x * 3 + y * 7) as f64 * 0.25
    })
}

/// A two-stage pipeline (producer + consumer) whose output is `prefix_out`.
fn two_stage(prefix: &str) -> (ImageParam, Func, Func) {
    let input = ImageParam::new(format!("{prefix}_in"), Type::f32(), 2);
    let (x, y) = (Var::new("x"), Var::new("y"));
    let prod = Func::new(format!("{prefix}_prod"));
    prod.define(
        &[x.clone(), y.clone()],
        input.at_clamped(vec![x.expr() - 1, y.expr()])
            + input.at_clamped(vec![x.expr() + 1, y.expr()]),
    );
    let out = Func::new(format!("{prefix}_out"));
    out.define(
        &[x.clone(), y.clone()],
        prod.at(vec![x.expr(), y.expr()]) * 2.0f32 + 1.0f32,
    );
    (input, prod, out)
}

fn realize_all_engines(prefix: &str, out: &Func, input: &ImageParam) -> Vec<(String, Buffer)> {
    let module = lower(&Pipeline::new(out)).unwrap();
    let mut results = Vec::new();
    for backend in Backend::ALL {
        let levels: &[OptLevel] = match backend {
            Backend::Compiled => &[OptLevel::None, OptLevel::Default],
            Backend::Interp => &[OptLevel::Default],
        };
        for level in levels {
            let r = Realizer::new(&module)
                .input(input.name(), input_image(W, H))
                .backend(backend)
                .opt_level(*level)
                .realize(&[W, H])
                .unwrap_or_else(|e| panic!("{prefix} on {}/{level:?}: {e}", backend.name()));
            results.push((format!("{}/{level:?}", backend.name()), r.output));
        }
    }
    results
}

fn reference(prefix: &str) -> Buffer {
    let (input, _, out) = two_stage(&format!("{prefix}_ref"));
    let module = lower(&Pipeline::new(&out)).unwrap();
    Realizer::new(&module)
        .input(input.name(), input_image(W, H))
        .backend(Backend::Interp)
        .realize(&[W, H])
        .unwrap()
        .output
}

fn assert_all_match(prefix: &str, results: &[(String, Buffer)], expected: &Buffer) {
    for (label, got) in results {
        assert_eq!(
            got.max_abs_diff(expected),
            0.0,
            "{prefix} diverged from the reference on {label}"
        );
    }
}

#[test]
fn guard_with_if_vectorizes_non_dividing_output_extent() {
    let (input, _, out) = two_stage("tail_guard");
    out.split_dim_tail("x", "xo", "xi", F, TailStrategy::GuardWithIf)
        .vectorize_dim("xi");
    let expected = reference("tail_guard");
    let results = realize_all_engines("tail_guard", &out, &input);
    assert_all_match("guard_with_if", &results, &expected);
}

#[test]
fn predicate_vectorizes_non_dividing_output_extent() {
    let (input, _, out) = two_stage("tail_pred");
    out.split_dim_tail("x", "xo", "xi", F, TailStrategy::Predicate)
        .vectorize_dim("xi");
    let expected = reference("tail_pred");
    let results = realize_all_engines("tail_pred", &out, &input);
    assert_all_match("predicate", &results, &expected);
}

#[test]
fn predicate_tail_issues_masked_ops_with_counter_parity() {
    let (input, _, out) = two_stage("tail_pred_ctr");
    out.split_dim_tail("x", "xo", "xi", F, TailStrategy::Predicate)
        .vectorize_dim("xi");
    let module = lower(&Pipeline::new(&out)).unwrap();
    let mut snaps = Vec::new();
    for backend in Backend::ALL {
        let r = Realizer::new(&module)
            .input(input.name(), input_image(W, H))
            .backend(backend)
            .instrument(true)
            .realize(&[W, H])
            .unwrap();
        snaps.push((backend.name(), r.counters));
    }
    for (name, c) in &snaps {
        assert!(
            c.masked_stores > 0,
            "{name}: predicate tail should issue masked stores, counters: {c}"
        );
        assert!(
            c.dense_loads > 0,
            "{name}: the full tiles should still load densely, counters: {c}"
        );
    }
    let (a, b) = (&snaps[0], &snaps[1]);
    assert_eq!(
        (a.1.loads, a.1.stores, a.1.masked_loads, a.1.masked_stores),
        (b.1.loads, b.1.stores, b.1.masked_loads, b.1.masked_stores),
        "memory-op counters diverged between {} and {}",
        a.0,
        b.0
    );
}

#[test]
fn round_up_densifies_an_interior_producer() {
    let (input, prod, out) = two_stage("tail_roundup");
    prod.compute_root()
        .split_dim_tail("x", "xo", "xi", F, TailStrategy::RoundUp)
        .vectorize_dim("xi");
    let expected = reference("tail_roundup");
    let results = realize_all_engines("tail_roundup", &out, &input);
    assert_all_match("round_up", &results, &expected);

    // The rounded-up interior loops are fully dense: no per-tail masking.
    let module = lower(&Pipeline::new(&out)).unwrap();
    let r = Realizer::new(&module)
        .input(input.name(), input_image(W, H))
        .instrument(true)
        .realize(&[W, H])
        .unwrap();
    assert!(r.counters.dense_stores > 0, "counters: {}", r.counters);
    assert_eq!(r.counters.masked_stores, 0, "counters: {}", r.counters);
}

#[test]
fn tail_strategies_allow_extents_smaller_than_the_factor() {
    // 5-wide output split by 8: shift-inwards must refuse at run time, the
    // guard strategies must produce correct results.
    for (label, tail) in [
        ("guard_with_if", TailStrategy::GuardWithIf),
        ("predicate", TailStrategy::Predicate),
    ] {
        let (input, _, out) = two_stage(&format!("tail_small_{label}"));
        out.split_dim_tail("x", "xo", "xi", F, tail)
            .vectorize_dim("xi");
        let module = lower(&Pipeline::new(&out)).unwrap();
        let r = Realizer::new(&module)
            .input(input.name(), input_image(5, H))
            .realize(&[5, H])
            .unwrap_or_else(|e| panic!("{label} on a 5-wide output: {e}"));
        assert_eq!(r.output.at_f64(&[2, 3]), {
            let i = |x: i64, y: i64| (x * 3 + y * 7) as f64 * 0.25;
            (i(1, 3) + i(3, 3)) as f32 as f64 * 2.0 + 1.0
        });
    }
}

#[test]
fn vectorizing_a_non_constant_extent_names_the_dim_and_suggests_strategies() {
    let input = ImageParam::new("tail_diag_in", Type::f32(), 2);
    let (x, y) = (Var::new("x"), Var::new("y"));
    let out = Func::new("tail_diag_out");
    out.define(
        &[x.clone(), y.clone()],
        input.at_clamped(vec![x.expr(), y.expr()]),
    );
    out.vectorize_dim("x"); // no split: the extent is the symbolic output width
    let err = lower(&Pipeline::new(&out)).unwrap_err().to_string();
    assert!(err.contains("tail_diag_out.x"), "diagnostic: {err}");
    assert!(err.contains("extent"), "diagnostic: {err}");
    assert!(
        err.contains("guard_with_if") && err.contains("predicate") && err.contains("round_up"),
        "diagnostic should suggest the tail strategies: {err}"
    );
}

#[test]
fn round_up_on_the_output_is_rejected() {
    let (_, _, out) = two_stage("tail_roundup_out");
    out.split_dim_tail("x", "xo", "xi", F, TailStrategy::RoundUp)
        .vectorize_dim("xi");
    let err = lower(&Pipeline::new(&out)).unwrap_err().to_string();
    assert!(err.contains("round_up"), "error: {err}");
    assert!(err.contains("caller-allocated"), "error: {err}");
}
