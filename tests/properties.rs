//! Property-based tests over the compiler's core invariants, using proptest.
//!
//! These check the properties the paper's design depends on:
//! * the simplifier never changes the value of an expression;
//! * interval analysis is sound (the true value always lies inside the
//!   inferred bounds);
//! * schedules — random compositions of valid directives — never change the
//!   result of a pipeline, only its cost.

use proptest::prelude::*;

use halide::exec::{eval_expr, Context, Frame};
use halide::ir::interval::bounds_of_expr_in_scope;
use halide::ir::{simplify, Expr, Interval, Scope};
use halide::pipelines::blur::{make_input, reference, BlurApp};
use halide::runtime::{ThreadPool, Value};

/// Builds a random integer expression over variables `a` and `b`.
fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        (-20i32..20).prop_map(Expr::int),
        Just(Expr::var_i32("a")),
        Just(Expr::var_i32("b")),
    ];
    leaf.prop_recursive(3, 24, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(x, y)| x + y),
            (inner.clone(), inner.clone()).prop_map(|(x, y)| x - y),
            (inner.clone(), inner.clone()).prop_map(|(x, y)| x * y),
            (inner.clone(), inner.clone()).prop_map(|(x, y)| Expr::min(x, y)),
            (inner.clone(), inner.clone()).prop_map(|(x, y)| Expr::max(x, y)),
            (inner.clone(), inner.clone()).prop_map(|(x, y)| Expr::select(
                Expr::lt(x.clone(), y.clone()),
                x,
                y
            )),
            (inner.clone(), (1i32..8)).prop_map(|(x, d)| x / d),
            (inner, (1i32..8)).prop_map(|(x, d)| x % d),
        ]
    })
}

fn eval_with(e: &Expr, a: i64, b: i64) -> i64 {
    let ctx = Context::new(ThreadPool::serial(), false);
    let mut frame = Frame::default();
    frame.env.push("a", Value::int(a));
    frame.env.push("b", Value::int(b));
    eval_expr(e, &frame, &ctx)
        .expect("closed integer expression evaluates")
        .as_int()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// simplify(e) evaluates to the same value as e for every assignment.
    #[test]
    fn simplification_preserves_value(e in arb_expr(), a in -10i64..10, b in -10i64..10) {
        let simplified = simplify(&e);
        prop_assert_eq!(eval_with(&e, a, b), eval_with(&simplified, a, b));
    }

    /// Interval analysis brackets the true value of the expression whenever
    /// the variables stay inside their declared ranges.
    #[test]
    fn interval_analysis_is_sound(
        e in arb_expr(),
        a in -5i64..5,
        b in -5i64..5,
    ) {
        let mut scope = Scope::new();
        scope.push("a", Interval::new(Expr::int(-5), Expr::int(5)));
        scope.push("b", Interval::new(Expr::int(-5), Expr::int(5)));
        let bounds = bounds_of_expr_in_scope(&e, &scope);
        let value = eval_with(&e, a, b);
        if let Some(min) = &bounds.min {
            let min = min.as_const_int().expect("bounds over constant ranges fold to constants");
            prop_assert!(value >= min, "value {value} below inferred min {min} for {e}");
        }
        if let Some(max) = &bounds.max {
            let max = max.as_const_int().expect("bounds over constant ranges fold to constants");
            prop_assert!(value <= max, "value {value} above inferred max {max} for {e}");
        }
    }
}

// A random-schedule variant of the "schedules never change results"
// guarantee: random (but valid) combinations of split factors, loop kinds
// and fusion levels applied to the blur pipeline always reproduce the
// reference output. This is the same check the autotuner relies on.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn random_schedules_preserve_blur_results(
        split_x in prop_oneof![Just(4i64), Just(8), Just(16), Just(32)],
        split_y in prop_oneof![Just(4i64), Just(8), Just(16)],
        parallel_outer in any::<bool>(),
        vectorize_inner in any::<bool>(),
        fuse_choice in 0u8..3,
    ) {
        let input = make_input(72, 56);
        let expected = reference(&input);

        let app = BlurApp::new();
        app.out.tile_dims("x", "y", "xo", "yo", "xi", "yi", split_x, split_y);
        if parallel_outer {
            app.out.parallelize("yo");
        }
        if vectorize_inner && split_x >= 8 {
            app.out.split_dim("xi", "xio", "xii", 4).vectorize_dim("xii");
        }
        match fuse_choice {
            0 => { app.blurx.compute_root(); }
            1 => { app.blurx.compute_at(&app.out, "xo"); }
            _ => { app.blurx.compute_inline(); }
        }

        let module = halide::lower(&app.pipeline()).expect("valid schedule must lower");
        let result = app.run(&module, &input, 2, false).expect("valid schedule must run");
        prop_assert!(result.output.max_abs_diff(&expected) < 1e-4);
    }
}
