//! Property-based tests over the compiler's core invariants, using proptest.
//!
//! These check the properties the paper's design depends on:
//! * the simplifier never changes the value of an expression;
//! * interval analysis is sound (the true value always lies inside the
//!   inferred bounds);
//! * schedules — random compositions of valid directives — never change the
//!   result of a pipeline, only its cost.

use proptest::prelude::*;

use halide::exec::{eval_expr, Context, Frame};
use halide::ir::interval::bounds_of_expr_in_scope;
use halide::ir::{simplify, Expr, Interval, Scope};
use halide::pipelines::blur::{make_input, reference, BlurApp};
use halide::runtime::{ThreadPool, Value};

/// Builds a random integer expression over variables `a` and `b`.
fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        (-20i32..20).prop_map(Expr::int),
        Just(Expr::var_i32("a")),
        Just(Expr::var_i32("b")),
    ];
    leaf.prop_recursive(3, 24, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(x, y)| x + y),
            (inner.clone(), inner.clone()).prop_map(|(x, y)| x - y),
            (inner.clone(), inner.clone()).prop_map(|(x, y)| x * y),
            (inner.clone(), inner.clone()).prop_map(|(x, y)| Expr::min(x, y)),
            (inner.clone(), inner.clone()).prop_map(|(x, y)| Expr::max(x, y)),
            (inner.clone(), inner.clone()).prop_map(|(x, y)| Expr::select(
                Expr::lt(x.clone(), y.clone()),
                x,
                y
            )),
            (inner.clone(), (1i32..8)).prop_map(|(x, d)| x / d),
            (inner, (1i32..8)).prop_map(|(x, d)| x % d),
        ]
    })
}

fn eval_with(e: &Expr, a: i64, b: i64) -> i64 {
    let ctx = Context::new(ThreadPool::serial(), false);
    let mut frame = Frame::default();
    frame.env.push("a", Value::int(a));
    frame.env.push("b", Value::int(b));
    eval_expr(e, &frame, &ctx)
        .expect("closed integer expression evaluates")
        .as_int()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// simplify(e) evaluates to the same value as e for every assignment.
    #[test]
    fn simplification_preserves_value(e in arb_expr(), a in -10i64..10, b in -10i64..10) {
        let simplified = simplify(&e);
        prop_assert_eq!(eval_with(&e, a, b), eval_with(&simplified, a, b));
    }

    /// Interval analysis brackets the true value of the expression whenever
    /// the variables stay inside their declared ranges.
    #[test]
    fn interval_analysis_is_sound(
        e in arb_expr(),
        a in -5i64..5,
        b in -5i64..5,
    ) {
        let mut scope = Scope::new();
        scope.push("a", Interval::new(Expr::int(-5), Expr::int(5)));
        scope.push("b", Interval::new(Expr::int(-5), Expr::int(5)));
        let bounds = bounds_of_expr_in_scope(&e, &scope);
        let value = eval_with(&e, a, b);
        if let Some(min) = &bounds.min {
            let min = min.as_const_int().expect("bounds over constant ranges fold to constants");
            prop_assert!(value >= min, "value {value} below inferred min {min} for {e}");
        }
        if let Some(max) = &bounds.max {
            let max = max.as_const_int().expect("bounds over constant ranges fold to constants");
            prop_assert!(value <= max, "value {value} above inferred max {max} for {e}");
        }
    }
}

// A random-schedule variant of the "schedules never change results"
// guarantee: random (but valid) combinations of split factors, loop kinds
// and fusion levels applied to the blur pipeline always reproduce the
// reference output. This is the same check the autotuner relies on.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn random_schedules_preserve_blur_results(
        split_x in prop_oneof![Just(4i64), Just(8), Just(16), Just(32)],
        split_y in prop_oneof![Just(4i64), Just(8), Just(16)],
        parallel_outer in any::<bool>(),
        vectorize_inner in any::<bool>(),
        fuse_choice in 0u8..3,
    ) {
        let input = make_input(72, 56);
        let expected = reference(&input);

        let app = BlurApp::new();
        app.out.tile_dims("x", "y", "xo", "yo", "xi", "yi", split_x, split_y);
        if parallel_outer {
            app.out.parallelize("yo");
        }
        if vectorize_inner && split_x >= 8 {
            app.out.split_dim("xi", "xio", "xii", 4).vectorize_dim("xii");
        }
        match fuse_choice {
            0 => { app.blurx.compute_root(); }
            1 => { app.blurx.compute_at(&app.out, "xo"); }
            _ => { app.blurx.compute_inline(); }
        }

        let module = halide::lower(&app.pipeline()).expect("valid schedule must lower");
        let result = app.run(&module, &input, 2, false).expect("valid schedule must run");
        prop_assert!(result.output.max_abs_diff(&expected) < 1e-4);
    }

    /// Predicated-tail schedules — splits whose factor does not divide the
    /// extent, with a guard_with_if or predicate tail and a vectorized
    /// inner — produce bit-identical results on the interpreter and the
    /// compiled machine, and match the scalar reference. The masked
    /// loads/stores a predicate tail emits must not read or write a single
    /// lane differently between the engines.
    #[test]
    fn predicated_tail_schedules_agree_across_engines(
        width in 33i64..97,
        height in 21i64..60,
        factor in prop_oneof![Just(8i64), Just(16), Just(32)],
        tail_pick in any::<bool>(),
        parallel_rows in any::<bool>(),
    ) {
        use halide::exec::Backend;
        use halide::TailStrategy;

        let tail = if tail_pick { TailStrategy::Predicate } else { TailStrategy::GuardWithIf };
        let input = make_input(width, height);
        let expected = reference(&input);

        let app = BlurApp::new();
        app.blurx.compute_root();
        app.out
            .split_dim_tail("x", "xo", "xi", factor, tail)
            .vectorize_dim("xi");
        if parallel_rows {
            app.out.parallelize("y");
        }

        let module = halide::lower(&app.pipeline()).expect("valid schedule must lower");
        let interp = app
            .run_on(&module, &input, 2, true, Backend::Interp)
            .expect("interpreter must run");
        let compiled = app
            .run_on(&module, &input, 2, true, Backend::Compiled)
            .expect("compiled machine must run");
        prop_assert!(interp.output.max_abs_diff(&expected) < 1e-4);
        let a = interp.output.to_f64_vec();
        let b = compiled.output.to_f64_vec();
        prop_assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(&b).enumerate() {
            prop_assert!(
                x.to_bits() == y.to_bits(),
                "lane {} diverges: interp {} vs compiled {}", i, x, y
            );
        }
        // A non-dividing factor with a predicate tail must actually take
        // the masked path; both engines count the same masked ops.
        if tail == TailStrategy::Predicate && width % factor != 0 {
            prop_assert!(compiled.counters.masked_stores > 0);
            prop_assert_eq!(interp.counters.masked_stores, compiled.counters.masked_stores);
            prop_assert_eq!(interp.counters.masked_loads, compiled.counters.masked_loads);
        }
    }
}

// The compiled engine's vector memory paths rest on the bulk Buffer
// accessors (gather, scatter, strided, clamped-gather) producing exactly
// what a per-lane loop over the single-element accessors produces — on
// arbitrary indices, strides, and element types. These properties are that
// licence, exercised on randomly derived index vectors.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn bulk_gather_scatter_and_strided_agree_with_per_lane_loops(
        seed in 0u64..u64::MAX,
        lanes in 1usize..12,
        base in -4i64..36,
        stride in -5i64..6,
        lo in -4i64..20,
        hi in -4i64..40,
    ) {
        use halide::ir::ScalarType;
        use halide::runtime::Buffer;

        let len = 32usize;
        // Alternate element kinds off the seed (the shim's tuple strategies
        // stop at six parameters).
        let ty = if seed % 2 == 0 { ScalarType::Float(32) } else { ScalarType::Int(32) };
        let b = Buffer::with_extents(ty, &[len as i64]);
        for i in 0..len {
            b.set_flat_f64(i, (i as f64) * 1.25 - 7.0);
        }

        // Random (possibly out-of-range) indices from a splitmix-style hash.
        let mut state = seed;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) as i64 % 40) - 4 // in [-4, 36): some lanes OOB
        };
        let idx: Vec<i64> = (0..lanes).map(|_| next()).collect();

        // Gather: agrees with per-lane reads, or reports the first OOB lane.
        match b.gather_flat_f64(&idx) {
            Ok(v) => {
                for (k, &i) in idx.iter().enumerate() {
                    prop_assert!((0..len as i64).contains(&i));
                    prop_assert_eq!(v[k], b.get_flat_f64(i as usize));
                }
            }
            Err(bad) => {
                let first = idx.iter().copied().find(|i| !(0..len as i64).contains(i));
                prop_assert_eq!(Some(bad), first);
            }
        }

        // Clamped gather: agrees with clamp-then-read per lane.
        match b.gather_flat_f64_clamped(&idx, lo, hi) {
            Ok(v) => {
                for (k, &i) in idx.iter().enumerate() {
                    let c = i.min(hi).max(lo);
                    prop_assert!((0..len as i64).contains(&c));
                    prop_assert_eq!(v[k], b.get_flat_f64(c as usize));
                }
            }
            Err(bad) => {
                let first = idx
                    .iter()
                    .map(|i| (*i).min(hi).max(lo))
                    .find(|c| !(0..len as i64).contains(c));
                prop_assert_eq!(Some(bad), first);
            }
        }

        // Strided read: agrees with per-lane reads at base + stride * k.
        match b.read_flat_strided_f64s(base, stride, lanes) {
            Ok(v) => {
                for (k, x) in v.iter().enumerate() {
                    prop_assert_eq!(*x, b.get_flat_f64((base + stride * k as i64) as usize));
                }
            }
            Err(bad) => {
                let first = (0..lanes)
                    .map(|k| base + stride * k as i64)
                    .find(|i| !(0..len as i64).contains(i));
                prop_assert_eq!(Some(bad), first);
            }
        }

        // Scatter: agrees element for element with a per-lane store loop
        // (when all indices are in range — the in-range projection).
        let in_range: Vec<i64> = idx.iter().map(|i| i.rem_euclid(len as i64)).collect();
        let vals: Vec<f64> = (0..lanes).map(|k| k as f64 * 0.5 - 1.0).collect();
        let bulk = Buffer::with_extents(ty, &[len as i64]);
        let lane_by_lane = Buffer::with_extents(ty, &[len as i64]);
        bulk.scatter_flat_f64s(&in_range, &vals).expect("all indices in range");
        for (&i, &v) in in_range.iter().zip(&vals) {
            lane_by_lane.set_flat_f64(i as usize, v);
        }
        prop_assert_eq!(bulk.to_f64_vec(), lane_by_lane.to_f64_vec());

        // Strided write, where the whole run fits.
        if stride != 0 {
            let last = base + stride * (lanes as i64 - 1);
            if (0..len as i64).contains(&base) && (0..len as i64).contains(&last) {
                let bulk = Buffer::with_extents(ty, &[len as i64]);
                let lane_by_lane = Buffer::with_extents(ty, &[len as i64]);
                bulk.write_flat_strided_f64s(base, stride, &vals).expect("run fits");
                for (k, &v) in vals.iter().enumerate() {
                    lane_by_lane.set_flat_f64((base + stride * k as i64) as usize, v);
                }
                prop_assert_eq!(bulk.to_f64_vec(), lane_by_lane.to_f64_vec());
            }
        }
    }
}
