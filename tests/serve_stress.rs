//! Concurrency stress tests for the serving layer: many threads realizing
//! one shared compiled program into pooled buffers must produce exactly the
//! image a single-threaded run produces — sharing and pooling are
//! performance mechanisms, never observable in the results.

use std::sync::Arc;

use halide::exec::Realizer;
use halide::pipelines::{AppKind, ScheduleChoice};
use halide::runtime::BufferPool;
use halide::serve::{PipelineServer, Registry, Request, ServeConfig};

const THREADS: usize = 8;
const ROUNDS: usize = 6;

/// Eight threads share one `Arc<Program>` and one `BufferPool`, each
/// realizing repeatedly into pooled output buffers; every single output must
/// be bit-identical to a single-threaded reference realization into a fresh
/// buffer.
#[test]
fn shared_program_pooled_buffers_are_bit_identical_across_threads() {
    let app = AppKind::Blur;
    let (w, h) = (128, 96);
    let built = app.build(w, h, ScheduleChoice::Tuned).unwrap();
    let input = Arc::new(app.make_input(w, h));
    let extents = app.output_extents(w, h);

    // Single-threaded reference: its own compile, a fresh output buffer.
    let reference = Realizer::new(&built.module)
        .input_shared(built.input_name.clone(), Arc::clone(&input))
        .threads(1)
        .instrument(false)
        .realize(&extents)
        .unwrap()
        .output
        .to_f64_vec();

    // One program, compiled once, shared by every thread.
    let owner = Realizer::new(&built.module);
    let program = owner.program().unwrap();
    let pool = Arc::new(BufferPool::default());
    let output_ty = built.module.output.ty.scalar();

    std::thread::scope(|scope| {
        for _ in 0..THREADS {
            let program = Arc::clone(&program);
            let pool = Arc::clone(&pool);
            let input = Arc::clone(&input);
            let (module, input_name, extents, reference) =
                (&built.module, &built.input_name, &extents, &reference);
            scope.spawn(move || {
                for round in 0..ROUNDS {
                    let out = pool.acquire(output_ty, extents).detach();
                    let realization = Realizer::with_program(module, Arc::clone(&program))
                        .input_shared(input_name.clone(), Arc::clone(&input))
                        .threads(1)
                        .instrument(false)
                        .buffer_pool(Arc::clone(&pool))
                        .realize_into(out)
                        .unwrap();
                    assert_eq!(
                        &realization.output.to_f64_vec(),
                        reference,
                        "round {round}: pooled, program-sharing realization diverged"
                    );
                    pool.release(realization.output);
                }
            });
        }
    });

    // Steady state: after the first wave of allocations, outputs and scratch
    // recycle; with 8 threads × 6 rounds the pool must be mostly hits.
    let stats = pool.stats();
    assert!(
        stats.hits + stats.misses >= (THREADS * ROUNDS) as u64,
        "expected at least one acquisition per realization, saw {stats:?}"
    );
    assert!(
        stats.hit_rate() > 0.5,
        "pool should serve the steady state, got {:?}",
        stats
    );
}

/// The same property end to end through the `PipelineServer`: a mixed
/// multi-app request stream from eight client threads, every response
/// bit-identical to the app's single-threaded direct realization.
#[test]
fn server_under_concurrent_mixed_load_matches_direct_runs() {
    let apps = [AppKind::Blur, AppKind::Histogram, AppKind::BilateralGrid];
    let (w, h) = (96, 64);

    // Direct single-threaded references, one per app.
    let references: Vec<Vec<f64>> = apps
        .iter()
        .map(|app| {
            let built = app.build(w, h, ScheduleChoice::Tuned).unwrap();
            Realizer::new(&built.module)
                .input(built.input_name.clone(), app.make_input(w, h))
                .threads(1)
                .instrument(false)
                .realize(&app.output_extents(w, h))
                .unwrap()
                .output
                .to_f64_vec()
        })
        .collect();

    let server = PipelineServer::with_registry(
        ServeConfig {
            max_in_flight: 4,
            queue_capacity: 64,
            ..ServeConfig::default()
        },
        Registry::with_paper_apps(),
    );
    let inputs: Vec<Arc<_>> = apps.iter().map(|a| Arc::new(a.make_input(w, h))).collect();
    // Pre-compile so no two threads race the same cold key (a race would
    // compile twice and keep one — correct, but the counts below are exact
    // only on a warm cache, which is also the steady state being modeled).
    for app in apps {
        assert!(server
            .warm(app, ScheduleChoice::Tuned, w, h)
            .unwrap()
            .is_some());
    }

    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let (server, apps, inputs, references) = (&server, &apps, &inputs, &references);
            scope.spawn(move || {
                for round in 0..ROUNDS {
                    // Each thread walks the apps in a different order.
                    let i = (t + round) % apps.len();
                    let req = Request::new(apps[i], ScheduleChoice::Tuned, Arc::clone(&inputs[i]));
                    let resp = server.call(&req).unwrap();
                    assert_eq!(
                        resp.output.to_f64_vec(),
                        references[i],
                        "thread {t} round {round}: served {} diverged",
                        apps[i].name()
                    );
                }
            });
        }
    });

    let stats = server.stats();
    assert_eq!(stats.requests, (THREADS * ROUNDS) as u64);
    assert_eq!(stats.rejected, 0);
    // Three apps at one shape each: exactly three compiles ever happen.
    assert_eq!(stats.cold_compiles, 3);
    assert_eq!(stats.cached_programs, 3);
    assert!(
        stats.pool.hit_rate() > 0.5,
        "pool hit rate {:?} too low under steady mixed load",
        stats.pool
    );
    assert_eq!(stats.latency.count, (THREADS * ROUNDS) as u64);
    assert!(stats.latency.p50_ms <= stats.latency.p99_ms);
}

/// Coalescing correctness under real concurrency: many threads submit the
/// *same* request (same app, schedule, shape, and input `Arc`) through a
/// paused server, so the whole batch piles up and is provably coalesced —
/// exactly one compile and one realization serve every thread, and each
/// response is bit-identical to a direct single-threaded realization.
#[test]
fn coalesced_batch_is_bit_identical_and_realizes_once() {
    let app = AppKind::Blur;
    let (w, h) = (128, 96);
    let built = app.build(w, h, ScheduleChoice::Tuned).unwrap();
    let input = Arc::new(app.make_input(w, h));
    let reference = Realizer::new(&built.module)
        .input_shared(built.input_name.clone(), Arc::clone(&input))
        .threads(1)
        .instrument(false)
        .realize(&app.output_extents(w, h))
        .unwrap()
        .output
        .to_f64_vec();

    let server = Arc::new(PipelineServer::with_registry(
        ServeConfig {
            max_in_flight: 4,
            queue_capacity: 64,
            ..ServeConfig::default()
        },
        Registry::with_paper_apps(),
    ));

    const BATCHES: usize = 3;
    for batch in 0..BATCHES {
        // Hold admission shut while every client enqueues: one leader waits
        // for a slot, the rest attach to its flight.
        server.pause();
        let clients: Vec<_> = (0..THREADS)
            .map(|_| {
                let server = Arc::clone(&server);
                let req = Request::new(app, ScheduleChoice::Tuned, Arc::clone(&input));
                std::thread::spawn(move || server.call(&req).unwrap())
            })
            .collect();
        while server.queued() != 1 || server.coalesce_waiting() != (THREADS - 1) as u64 {
            std::thread::yield_now();
        }
        server.resume();

        let responses: Vec<_> = clients.into_iter().map(|c| c.join().unwrap()).collect();
        for (i, resp) in responses.iter().enumerate() {
            assert_eq!(
                resp.output.to_f64_vec(),
                reference,
                "batch {batch} client {i}: coalesced output diverged from direct realization"
            );
        }
        let stats = server.stats();
        assert_eq!(
            stats.realizations,
            (batch + 1) as u64,
            "batch {batch}: each coalesced batch must realize exactly once"
        );
        assert_eq!(stats.cold_compiles, 1, "only the first batch compiles");
        assert_eq!(
            stats.coalesced,
            ((batch + 1) * (THREADS - 1)) as u64,
            "batch {batch}: every non-leader must be served by fan-out"
        );
    }
    let stats = server.stats();
    assert_eq!(stats.requests, (BATCHES * THREADS) as u64);
    assert_eq!(stats.rejected + stats.shed, 0);
}

/// Churn matrix: a tiny two-entry program cache forced to evict by a
/// three-app request mix, a one-slot server with a short queue shedding
/// load, and tight deadlines expiring queued work — all at once, from eight
/// threads. Every request must terminate (no hangs) with `Ok`,
/// `Overloaded`, or `DeadlineExceeded`; successful outputs stay
/// bit-identical to direct realizations even when their program was evicted
/// and recompiled mid-stream.
#[test]
fn eviction_and_shedding_churn_never_corrupts_results() {
    use halide::serve::ServeError;
    use std::time::Duration;

    let apps = [AppKind::Blur, AppKind::Histogram, AppKind::BilateralGrid];
    let (w, h) = (96, 64);
    let references: Vec<Vec<f64>> = apps
        .iter()
        .map(|app| {
            let built = app.build(w, h, ScheduleChoice::Tuned).unwrap();
            Realizer::new(&built.module)
                .input(built.input_name.clone(), app.make_input(w, h))
                .threads(1)
                .instrument(false)
                .realize(&app.output_extents(w, h))
                .unwrap()
                .output
                .to_f64_vec()
        })
        .collect();

    let server = PipelineServer::with_registry(
        ServeConfig {
            max_in_flight: 1,
            queue_capacity: 2,
            cache_max_entries: 2, // three hot apps: guaranteed eviction churn
            default_deadline: Some(Duration::from_secs(5)),
            ..ServeConfig::default()
        },
        Registry::with_paper_apps(),
    );
    let inputs: Vec<Arc<_>> = apps.iter().map(|a| Arc::new(a.make_input(w, h))).collect();

    let (mut ok, mut overloaded, mut shed) = (0u64, 0u64, 0u64);
    std::thread::scope(|scope| {
        let mut workers = Vec::new();
        for t in 0..THREADS {
            let (server, apps, inputs, references) = (&server, &apps, &inputs, &references);
            workers.push(scope.spawn(move || {
                let (mut ok, mut overloaded, mut shed) = (0u64, 0u64, 0u64);
                for round in 0..ROUNDS {
                    let i = (t + round) % apps.len();
                    // A sprinkle of effectively-instant deadlines exercises
                    // shedding alongside real traffic.
                    let mut req =
                        Request::new(apps[i], ScheduleChoice::Tuned, Arc::clone(&inputs[i]));
                    if (t + round) % 7 == 0 {
                        req = req.deadline(Duration::ZERO);
                    }
                    match server.call(&req) {
                        Ok(resp) => {
                            ok += 1;
                            assert_eq!(
                                resp.output.to_f64_vec(),
                                references[i],
                                "thread {t} round {round}: output diverged under churn"
                            );
                        }
                        Err(ServeError::Overloaded { .. }) => overloaded += 1,
                        Err(ServeError::DeadlineExceeded { .. }) => shed += 1,
                        Err(other) => panic!("unexpected serve error under churn: {other}"),
                    }
                }
                (ok, overloaded, shed)
            }));
        }
        for worker in workers {
            let (o, v, s) = worker.join().unwrap();
            ok += o;
            overloaded += v;
            shed += s;
        }
    });

    let stats = server.stats();
    assert_eq!(ok + overloaded + shed, (THREADS * ROUNDS) as u64);
    assert_eq!(stats.requests, ok);
    assert_eq!(stats.rejected, overloaded);
    assert!(
        stats.shed >= shed,
        "every local shed is counted by the server"
    );
    assert!(ok > 0, "some requests must get through the churn");
    assert!(
        stats.cached_programs <= 2,
        "cache budget violated: {} resident",
        stats.cached_programs
    );
    // Three hot apps through two slots: evictions (and hence recompiles)
    // must actually have happened for this test to mean anything.
    assert!(
        stats.evicted_programs > 0,
        "expected cache churn, saw none (cold={}, evicted={})",
        stats.cold_compiles,
        stats.evicted_programs
    );
    assert!(
        stats.cold_compiles > 3,
        "evicted programs recompile on reuse"
    );
}
