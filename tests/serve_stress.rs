//! Concurrency stress tests for the serving layer: many threads realizing
//! one shared compiled program into pooled buffers must produce exactly the
//! image a single-threaded run produces — sharing and pooling are
//! performance mechanisms, never observable in the results.

use std::sync::Arc;

use halide::exec::Realizer;
use halide::pipelines::{AppKind, ScheduleChoice};
use halide::runtime::BufferPool;
use halide::serve::{PipelineServer, Registry, Request, ServeConfig};

const THREADS: usize = 8;
const ROUNDS: usize = 6;

/// Eight threads share one `Arc<Program>` and one `BufferPool`, each
/// realizing repeatedly into pooled output buffers; every single output must
/// be bit-identical to a single-threaded reference realization into a fresh
/// buffer.
#[test]
fn shared_program_pooled_buffers_are_bit_identical_across_threads() {
    let app = AppKind::Blur;
    let (w, h) = (128, 96);
    let built = app.build(w, h, ScheduleChoice::Tuned).unwrap();
    let input = Arc::new(app.make_input(w, h));
    let extents = app.output_extents(w, h);

    // Single-threaded reference: its own compile, a fresh output buffer.
    let reference = Realizer::new(&built.module)
        .input_shared(built.input_name.clone(), Arc::clone(&input))
        .threads(1)
        .instrument(false)
        .realize(&extents)
        .unwrap()
        .output
        .to_f64_vec();

    // One program, compiled once, shared by every thread.
    let owner = Realizer::new(&built.module);
    let program = owner.program().unwrap();
    let pool = Arc::new(BufferPool::default());
    let output_ty = built.module.output.ty.scalar();

    std::thread::scope(|scope| {
        for _ in 0..THREADS {
            let program = Arc::clone(&program);
            let pool = Arc::clone(&pool);
            let input = Arc::clone(&input);
            let (module, input_name, extents, reference) =
                (&built.module, &built.input_name, &extents, &reference);
            scope.spawn(move || {
                for round in 0..ROUNDS {
                    let out = pool.acquire(output_ty, extents).detach();
                    let realization = Realizer::with_program(module, Arc::clone(&program))
                        .input_shared(input_name.clone(), Arc::clone(&input))
                        .threads(1)
                        .instrument(false)
                        .buffer_pool(Arc::clone(&pool))
                        .realize_into(out)
                        .unwrap();
                    assert_eq!(
                        &realization.output.to_f64_vec(),
                        reference,
                        "round {round}: pooled, program-sharing realization diverged"
                    );
                    pool.release(realization.output);
                }
            });
        }
    });

    // Steady state: after the first wave of allocations, outputs and scratch
    // recycle; with 8 threads × 6 rounds the pool must be mostly hits.
    let stats = pool.stats();
    assert!(
        stats.hits + stats.misses >= (THREADS * ROUNDS) as u64,
        "expected at least one acquisition per realization, saw {stats:?}"
    );
    assert!(
        stats.hit_rate() > 0.5,
        "pool should serve the steady state, got {:?}",
        stats
    );
}

/// The same property end to end through the `PipelineServer`: a mixed
/// multi-app request stream from eight client threads, every response
/// bit-identical to the app's single-threaded direct realization.
#[test]
fn server_under_concurrent_mixed_load_matches_direct_runs() {
    let apps = [AppKind::Blur, AppKind::Histogram, AppKind::BilateralGrid];
    let (w, h) = (96, 64);

    // Direct single-threaded references, one per app.
    let references: Vec<Vec<f64>> = apps
        .iter()
        .map(|app| {
            let built = app.build(w, h, ScheduleChoice::Tuned).unwrap();
            Realizer::new(&built.module)
                .input(built.input_name.clone(), app.make_input(w, h))
                .threads(1)
                .instrument(false)
                .realize(&app.output_extents(w, h))
                .unwrap()
                .output
                .to_f64_vec()
        })
        .collect();

    let server = PipelineServer::with_registry(
        ServeConfig {
            max_in_flight: 4,
            queue_capacity: 64,
            ..ServeConfig::default()
        },
        Registry::with_paper_apps(),
    );
    let inputs: Vec<Arc<_>> = apps.iter().map(|a| Arc::new(a.make_input(w, h))).collect();
    // Pre-compile so no two threads race the same cold key (a race would
    // compile twice and keep one — correct, but the counts below are exact
    // only on a warm cache, which is also the steady state being modeled).
    for app in apps {
        assert!(server
            .warm(app, ScheduleChoice::Tuned, w, h)
            .unwrap()
            .is_some());
    }

    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let (server, apps, inputs, references) = (&server, &apps, &inputs, &references);
            scope.spawn(move || {
                for round in 0..ROUNDS {
                    // Each thread walks the apps in a different order.
                    let i = (t + round) % apps.len();
                    let req = Request::new(apps[i], ScheduleChoice::Tuned, Arc::clone(&inputs[i]));
                    let resp = server.call(&req).unwrap();
                    assert_eq!(
                        resp.output.to_f64_vec(),
                        references[i],
                        "thread {t} round {round}: served {} diverged",
                        apps[i].name()
                    );
                }
            });
        }
    });

    let stats = server.stats();
    assert_eq!(stats.requests, (THREADS * ROUNDS) as u64);
    assert_eq!(stats.rejected, 0);
    // Three apps at one shape each: exactly three compiles ever happen.
    assert_eq!(stats.cold_compiles, 3);
    assert_eq!(stats.cached_programs, 3);
    assert!(
        stats.pool.hit_rate() > 0.5,
        "pool hit rate {:?} too low under steady mixed load",
        stats.pool
    );
    assert_eq!(stats.latency.count, (THREADS * ROUNDS) as u64);
    assert!(stats.latency.p50_ms <= stats.latency.p99_ms);
}
