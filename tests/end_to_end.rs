//! Cross-crate integration tests: algorithm definition → scheduling →
//! compilation → execution, exercised through the public facade crate.

use halide::ir::{ScalarType, Type};
use halide::pipelines::blur::{make_input, reference, BlurApp, BlurSchedule};
use halide::runtime::Buffer;
use halide::{lower, Func, ImageParam, Pipeline, Realizer, Var};

/// The central property of the paper: schedules change performance, never
/// results. Every schedule of Fig. 3 produces the reference image.
#[test]
fn schedules_never_change_results() {
    let input = make_input(96, 70);
    let expected = reference(&input);
    for schedule in BlurSchedule::ALL {
        let app = BlurApp::new();
        let module = app.compile(schedule).unwrap();
        for threads in [1, 4] {
            let result = app.run(&module, &input, threads, false).unwrap();
            assert!(
                result.output.max_abs_diff(&expected) < 1e-4,
                "{} with {threads} threads diverged",
                schedule.label()
            );
        }
    }
}

/// A pipeline defined through the facade crate compiles and runs, and
/// scheduling directives applied after definition change the generated loop
/// structure.
#[test]
fn facade_quickstart_roundtrip() {
    let input = ImageParam::new("e2e_input", Type::f32(), 2);
    let (x, y) = (Var::new("x"), Var::new("y"));
    let gradient = Func::new("e2e_gradient");
    gradient.define(
        &[x.clone(), y.clone()],
        input.at_clamped(vec![x.expr() + 1, y.expr()])
            - input.at_clamped(vec![x.expr() - 1, y.expr()]),
    );
    let magnitude = Func::new("e2e_magnitude");
    magnitude.define(
        &[x.clone(), y.clone()],
        gradient.at(vec![x.expr(), y.expr()]).abs(),
    );

    magnitude.split_dim("y", "yo", "yi", 8).parallelize("yo");
    gradient.compute_at(&magnitude, "yo");

    let module = lower(&Pipeline::new(&magnitude)).unwrap();
    assert!(module.pretty().contains("parallel for"));

    let image = Buffer::from_fn_2d(ScalarType::Float(32), 32, 32, |x, _| (x * x) as f64);
    let result = Realizer::new(&module)
        .input("e2e_input", image)
        .threads(2)
        .realize(&[32, 32])
        .unwrap();
    // d(x^2)/dx ~ 2x over a central difference of width 2 => (x+1)^2-(x-1)^2 = 4x
    assert_eq!(result.output.at_f64(&[5, 10]), 20.0);
}

/// The compiler refuses invalid schedules instead of generating wrong code,
/// and the executor refuses invalid realizations.
#[test]
fn errors_are_reported_not_ignored() {
    let app = BlurApp::new();
    app.blurx.compute_at(&app.out, "does_not_exist");
    assert!(lower(&app.pipeline()).is_err());

    let app2 = BlurApp::new();
    let module = app2.compile(BlurSchedule::BreadthFirst).unwrap();
    // missing input binding
    assert!(Realizer::new(&module).realize(&[16, 16]).is_err());
    // wrong output dimensionality
    let input = make_input(16, 16);
    assert!(Realizer::new(&module)
        .input(app2.input.name(), input)
        .realize(&[16])
        .is_err());
}

/// Counters expose the locality / recomputation tradeoff of Sec. 3: fusion
/// amplifies work, breadth-first execution maximizes the live working set.
#[test]
fn counters_reflect_the_tradeoff_space() {
    let input = make_input(128, 96);
    let run = |schedule| {
        let app = BlurApp::new();
        let module = app.compile(schedule).unwrap();
        app.run(&module, &input, 1, true).unwrap().counters
    };
    let breadth_first = run(BlurSchedule::BreadthFirst);
    let fused = run(BlurSchedule::FullFusion);
    let sliding = run(BlurSchedule::SlidingWindow);

    assert!(fused.arith_ops as f64 > breadth_first.arith_ops as f64 * 1.5);
    assert!(fused.peak_bytes_live < breadth_first.peak_bytes_live / 8);
    assert!(sliding.arith_ops < fused.arith_ops);
    assert!(sliding.peak_bytes_live < breadth_first.peak_bytes_live / 4);
}

/// The GPU execution model: the same algorithm scheduled for the simulated
/// device produces identical results and reports launches/copies.
#[test]
fn gpu_schedules_match_cpu_results() {
    let input = make_input(64, 64);
    let cpu = BlurApp::new();
    let cpu_module = cpu.compile(BlurSchedule::Tiled).unwrap();
    let cpu_result = cpu.run(&cpu_module, &input, 2, false).unwrap();

    let gpu = BlurApp::new();
    gpu.out.gpu_tile("x", "y", 16, 16);
    gpu.blurx.compute_at(&gpu.out, "x.block");
    let gpu_module = lower(&gpu.pipeline()).unwrap();
    let gpu_result = gpu.run(&gpu_module, &input, 2, false).unwrap();

    assert!(cpu_result.output.max_abs_diff(&gpu_result.output) < 1e-4);
    assert!(gpu_result.counters.kernel_launches >= 1);
    assert!(gpu_result.counters.device_bytes_copied > 0);
}
