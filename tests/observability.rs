//! End-to-end tests for the observability layer: the sampling per-Func
//! profiler must report *exact* invocation counts that agree between the
//! two execution engines (they are counted, not sampled), and its
//! statistical time attribution must account for essentially all of the
//! realize wall time.

use std::time::Duration;

use halide::exec::{Backend, Realizer};
use halide::pipelines::{AppKind, ScheduleChoice};

/// Realizes `app`'s tuned schedule once with profiling on and returns the
/// per-Func invocation counts, sorted by name. The module is built once
/// by the caller and shared across backends: Func names carry a
/// process-global uniquing suffix, so rebuilding would rename every Func.
fn profiled_invocations(
    app: AppKind,
    built: &halide::pipelines::apps::BuiltApp,
    w: i64,
    h: i64,
    backend: Backend,
) -> Vec<(String, u64)> {
    let realizer = Realizer::new(&built.module)
        .input(built.input_name.clone(), app.make_input(w, h))
        .backend(backend)
        .profile(true);
    realizer
        .realize(&app.output_extents(w, h))
        .expect("tuned app runs");
    let report = realizer.profile_report().expect("profiling was enabled");
    let mut counts: Vec<(String, u64)> = report
        .funcs
        .iter()
        .filter(|f| f.invocations > 0)
        .map(|f| (f.name.clone(), f.invocations))
        .collect();
    counts.sort();
    counts
}

/// Invocation counts are exact (one atomic add per produce-nest entry),
/// so the interpreter and the compiled register machine must agree on
/// them Func for Func — a divergence means one engine entered a produce
/// nest the other didn't, i.e. the engines don't compute the same thing.
#[test]
fn per_func_invocation_counts_agree_across_backends() {
    for (app, w, h) in [(AppKind::Blur, 64, 48), (AppKind::CameraPipe, 64, 48)] {
        let built = app
            .build(w, h, ScheduleChoice::Tuned)
            .expect("tuned app lowers");
        let interp = profiled_invocations(app, &built, w, h, Backend::Interp);
        let compiled = profiled_invocations(app, &built, w, h, Backend::Compiled);
        assert!(
            !interp.is_empty(),
            "{}: the profiler counted no produce entries",
            app.name()
        );
        assert_eq!(
            interp,
            compiled,
            "{}: per-Func invocation counts diverge between engines",
            app.name()
        );
    }
}

/// The sampler's time attribution is statistical, but it must converge:
/// over repeated realizations of the tuned camera pipe, at least 90% of
/// the in-run samples land inside a named Func's produce nest, and the
/// per-Func estimated times sum to the same fraction of the measured
/// wall time (they are defined as wall x samples-share).
#[test]
fn attributed_time_approximates_realize_wall_time() {
    let app = AppKind::CameraPipe;
    let (w, h) = (128, 96);
    let built = app
        .build(w, h, ScheduleChoice::Tuned)
        .expect("tuned camera pipe lowers");
    let realizer = Realizer::new(&built.module)
        .input(built.input_name.clone(), app.make_input(w, h))
        .profile(true);
    // Accumulate runs until the sample count is statistically meaningful
    // (the sampler ticks every millisecond; debug-mode runs are long
    // enough that a handful of realizations suffice).
    for _ in 0..50 {
        realizer
            .realize(&app.output_extents(w, h))
            .expect("tuned camera pipe runs");
        let samples = realizer
            .profile_report()
            .expect("profiling was enabled")
            .total_samples;
        if samples >= 200 {
            break;
        }
    }
    let report = realizer.profile_report().expect("profiling was enabled");
    assert!(
        report.total_samples > 0,
        "repeated profiled realizations were never sampled"
    );
    let frac = report.attributed_frac();
    assert!(
        frac >= 0.90,
        "only {:.1}% of {} samples were attributed to named Funcs",
        frac * 100.0,
        report.total_samples
    );
    let attributed: Duration = report.funcs.iter().map(|f| f.est_time).sum();
    let ratio = attributed.as_secs_f64() / report.total_wall.as_secs_f64().max(1e-12);
    assert!(
        (ratio - frac).abs() < 0.01 && ratio >= 0.90,
        "per-Func estimated times sum to {:.1}% of the {:.3}ms wall time",
        ratio * 100.0,
        report.total_wall.as_secs_f64() * 1e3
    );
}
