//! Bounds inference (Sec. 4.2): computing the region of a producer required
//! by the statements that consume it, using interval analysis.
//!
//! Unlike the polyhedral approach, the region is always an axis-aligned box
//! whose per-dimension bounds are ordinary expressions in the variables of
//! the loops *enclosing* the point where the producer will be realized.
//! Loops *inside* that point are eliminated by substituting their whole
//! iteration interval.
//!
//! # Interaction with let-bound bounds
//!
//! Injection ([`crate::inject`]) names every realization's bounds with
//! `LetStmt`s (`<func>.<dim>.min` / `<func>.<dim>.extent`) and the loop
//! nests reference those *names*, so the statement this pass analyzes is
//! let-dense. The region walker is let-aware: each `LetStmt` (and
//! expression-level `Let`) pushes the interval of its value onto the scope
//! for the duration of its body, with shadowing handled by the stack
//! structure of [`Scope`]. A region returned by [`region_required`] is
//! therefore always expressed in symbols bound *outside* the analyzed
//! statement — lets bound inside it have been resolved away — which is what
//! makes the result evaluatable right at the realization point.

use halide_ir::interval::{bounds_of_expr_in_scope, loop_interval, Interval};
use halide_ir::{CallType, Expr, ExprNode, Range, Scope, Stmt, StmtNode};

use crate::error::{LowerError, Result};

/// The inferred bounds of one producer: one interval per pure dimension.
#[derive(Debug, Clone)]
pub struct RegionBox {
    /// Per-dimension intervals, in the order of the producer's pure args.
    pub dims: Vec<Interval>,
}

impl RegionBox {
    fn empty(ndims: usize) -> Self {
        RegionBox {
            dims: vec![
                Interval {
                    min: None,
                    max: None,
                };
                ndims
            ],
        }
    }

    fn union_in_place(&mut self, dim: usize, other: &Interval) {
        let current = &self.dims[dim];
        // An empty (fully unbounded-by-absence) entry is replaced outright;
        // otherwise union.
        self.dims[dim] = if current.min.is_none() && current.max.is_none() {
            other.clone()
        } else {
            current.union(other)
        };
    }

    /// Converts the box into `Range`s (min, extent).
    ///
    /// `dims` supplies the producer's pure argument names so diagnostics can
    /// name the offending dimension, not just its index.
    ///
    /// # Errors
    ///
    /// Fails if any dimension is unbounded, naming the function *and* the
    /// dimension for diagnosis — the fix is usually a `clamp` in the
    /// algorithm, exactly as in the paper.
    pub fn to_ranges(&self, func: &str, dims: &[String]) -> Result<Vec<Range>> {
        self.dims
            .iter()
            .enumerate()
            .map(|(d, i)| match (&i.min, i.extent()) {
                (Some(min), Some(extent)) => Ok(Range::new(min.clone(), extent)),
                _ => {
                    let dim_name = dims.get(d).map(String::as_str).unwrap_or("?");
                    Err(LowerError::new(format!(
                        "cannot infer bounds for dimension {d} ({dim_name:?}) of {func:?}; \
                         an access is unbounded (consider clamping the coordinate)"
                    ))
                    .in_func(func)
                    .in_dim(dim_name))
                }
            })
            .collect()
    }

    /// True if no call site contributed any bounds (the function is unused in
    /// the analyzed statement).
    pub fn is_empty(&self) -> bool {
        self.dims.iter().all(|i| i.min.is_none() && i.max.is_none())
    }
}

struct RegionWalker<'a> {
    func: &'a str,
    ndims: usize,
    scope: Scope<Interval>,
    region: RegionBox,
}

impl RegionWalker<'_> {
    fn visit_expr(&mut self, e: &Expr) {
        if let ExprNode::Call {
            name,
            call_type,
            args,
            ..
        } = e.node()
        {
            if name == self.func && matches!(call_type, CallType::Halide | CallType::Image) {
                for (d, a) in args.iter().enumerate().take(self.ndims) {
                    let b = bounds_of_expr_in_scope(a, &self.scope);
                    self.region.union_in_place(d, &b);
                }
            }
        }
        // Recurse manually over children (including call args, which may
        // themselves contain further calls — data-dependent gathers).
        match e.node() {
            ExprNode::IntImm { .. }
            | ExprNode::UIntImm { .. }
            | ExprNode::FloatImm { .. }
            | ExprNode::Var { .. } => {}
            ExprNode::Cast { value, .. }
            | ExprNode::Broadcast { value, .. }
            | ExprNode::Not { a: value } => self.visit_expr(value),
            ExprNode::Bin { a, b, .. }
            | ExprNode::Cmp { a, b, .. }
            | ExprNode::And { a, b }
            | ExprNode::Or { a, b } => {
                self.visit_expr(a);
                self.visit_expr(b);
            }
            ExprNode::Select { cond, t, f } => {
                self.visit_expr(cond);
                self.visit_expr(t);
                self.visit_expr(f);
            }
            ExprNode::Ramp { base, stride, .. } => {
                self.visit_expr(base);
                self.visit_expr(stride);
            }
            ExprNode::Let { name, value, body } => {
                self.visit_expr(value);
                let b = bounds_of_expr_in_scope(value, &self.scope);
                self.scope.push(name.clone(), b);
                self.visit_expr(body);
                self.scope.pop(name);
            }
            ExprNode::Load {
                index, predicate, ..
            } => {
                self.visit_expr(index);
                if let Some(p) = predicate {
                    self.visit_expr(p);
                }
            }
            ExprNode::Call { args, .. } => {
                for a in args {
                    self.visit_expr(a);
                }
            }
        }
    }

    fn visit_stmt(&mut self, s: &Stmt) {
        match s.node() {
            StmtNode::LetStmt { name, value, body } => {
                self.visit_expr(value);
                let b = bounds_of_expr_in_scope(value, &self.scope);
                self.scope.push(name.clone(), b);
                self.visit_stmt(body);
                self.scope.pop(name);
            }
            StmtNode::Assert { condition, .. } => self.visit_expr(condition),
            StmtNode::Producer { body, .. } => self.visit_stmt(body),
            StmtNode::For {
                name,
                min,
                extent,
                body,
                ..
            } => {
                self.visit_expr(min);
                self.visit_expr(extent);
                // The loop variable covers [min, min+extent-1]; both ends are
                // reduced to the current scope so that only symbols defined
                // outside the analyzed statement survive.
                let imin = bounds_of_expr_in_scope(min, &self.scope);
                let iextent = bounds_of_expr_in_scope(extent, &self.scope);
                let interval = match (&imin.min, &imin.max, &iextent.max) {
                    // Single-point loop min: no need to union both ends (the
                    // duplicated copies of `lo` otherwise compound through
                    // chained stages).
                    (Some(lo), Some(hi), Some(ext_hi)) if lo == hi => loop_interval(lo, ext_hi),
                    (Some(lo), Some(hi), Some(ext_hi)) => {
                        loop_interval(lo, ext_hi).union(&loop_interval(hi, ext_hi))
                    }
                    _ => Interval::everything(),
                };
                self.scope.push(name.clone(), interval);
                self.visit_stmt(body);
                self.scope.pop(name);
            }
            StmtNode::Provide { value, args, .. } => {
                self.visit_expr(value);
                for a in args {
                    self.visit_expr(a);
                }
            }
            StmtNode::Store {
                value,
                index,
                predicate,
                ..
            } => {
                self.visit_expr(value);
                self.visit_expr(index);
                if let Some(p) = predicate {
                    self.visit_expr(p);
                }
            }
            StmtNode::Realize { bounds, body, .. } => {
                for r in bounds {
                    self.visit_expr(&r.min);
                    self.visit_expr(&r.extent);
                }
                self.visit_stmt(body);
            }
            StmtNode::Allocate { size, body, .. } => {
                self.visit_expr(size);
                self.visit_stmt(body);
            }
            StmtNode::Block { stmts } => {
                for s in stmts {
                    self.visit_stmt(s);
                }
            }
            StmtNode::IfThenElse {
                condition,
                then_case,
                else_case,
            } => {
                self.visit_expr(condition);
                self.visit_stmt(then_case);
                if let Some(e) = else_case {
                    self.visit_stmt(e);
                }
            }
            StmtNode::Evaluate { value } => self.visit_expr(value),
            StmtNode::NoOp => {}
        }
    }
}

/// Computes the region of `func` (with `ndims` pure dimensions) required by
/// every call site inside `stmt`.
///
/// Loop variables bound *inside* `stmt` are folded into the region (their
/// whole range is assumed to execute); variables bound outside remain
/// symbolic, so the result can be evaluated right where the producer will be
/// realized.
pub fn region_required(stmt: &Stmt, func: &str, ndims: usize) -> RegionBox {
    let mut w = RegionWalker {
        func,
        ndims,
        scope: Scope::new(),
        region: RegionBox::empty(ndims),
    };
    w.visit_stmt(stmt);
    w.region
}

/// Counts call sites of `func` in `stmt` (used to verify that a `compute_at`
/// level encloses every consumer).
///
/// This is a plain syntactic count — no interval analysis — so it is cheap
/// to run over the whole (let-dense) pipeline statement.
pub fn count_calls(stmt: &Stmt, func: &str) -> usize {
    use halide_ir::IrVisitor;
    struct Counter<'a> {
        func: &'a str,
        n: usize,
    }
    impl IrVisitor for Counter<'_> {
        fn visit_expr(&mut self, e: &Expr) {
            if let ExprNode::Call {
                name, call_type, ..
            } = e.node()
            {
                if name == self.func && matches!(call_type, CallType::Halide | CallType::Image) {
                    self.n += 1;
                }
            }
            halide_ir::visit_expr_children(self, e);
        }
    }
    let mut c = Counter { func, n: 0 };
    c.visit_stmt(stmt);
    c.n
}

#[cfg(test)]
mod tests {
    use super::*;
    use halide_ir::{ForKind, Type};

    fn call(name: &str, args: Vec<Expr>) -> Expr {
        Expr::call(Type::f32(), name, CallType::Halide, args)
    }

    fn dims(names: &[&str]) -> Vec<String> {
        names.iter().map(|n| n.to_string()).collect()
    }

    #[test]
    fn stencil_region_within_loops() {
        // for y in [0, 8): for x in [0, 16): ... = g(x-1, y+2) + g(x+1, y+2)
        let body = Stmt::provide(
            "out",
            call("g", vec![Expr::var_i32("x") - 1, Expr::var_i32("y") + 2])
                + call("g", vec![Expr::var_i32("x") + 1, Expr::var_i32("y") + 2]),
            vec![Expr::var_i32("x"), Expr::var_i32("y")],
        );
        let s = Stmt::for_loop(
            "y",
            Expr::int(0),
            Expr::int(8),
            ForKind::Serial,
            Stmt::for_loop("x", Expr::int(0), Expr::int(16), ForKind::Serial, body),
        );
        let r = region_required(&s, "g", 2);
        let ranges = r.to_ranges("g", &dims(&["x", "y"])).unwrap();
        assert_eq!(ranges[0].min.as_const_int(), Some(-1));
        assert_eq!(ranges[0].extent.as_const_int(), Some(18));
        assert_eq!(ranges[1].min.as_const_int(), Some(2));
        assert_eq!(ranges[1].extent.as_const_int(), Some(8));
        assert_eq!(count_calls(&s, "g"), 2);
    }

    #[test]
    fn outer_loops_stay_symbolic() {
        // Analyzing only the inner statement: the x loop is inside, y is not.
        let body = Stmt::provide(
            "out",
            call("g", vec![Expr::var_i32("x"), Expr::var_i32("y") - 1]),
            vec![Expr::var_i32("x"), Expr::var_i32("y")],
        );
        let inner = Stmt::for_loop("x", Expr::int(0), Expr::int(4), ForKind::Serial, body);
        let r = region_required(&inner, "g", 2);
        let ranges = r.to_ranges("g", &dims(&["x", "y"])).unwrap();
        assert_eq!(ranges[0].min.as_const_int(), Some(0));
        assert_eq!(ranges[0].extent.as_const_int(), Some(4));
        assert_eq!(ranges[1].min.to_string(), "(y - 1)");
        assert_eq!(ranges[1].extent.as_const_int(), Some(1));
    }

    #[test]
    fn unbounded_access_is_an_error() {
        let idx = Expr::load(Type::i32(), "lut", Expr::var_i32("x"));
        let body = Stmt::provide("out", call("g", vec![idx]), vec![Expr::var_i32("x")]);
        let s = Stmt::for_loop("x", Expr::int(0), Expr::int(4), ForKind::Serial, body);
        let r = region_required(&s, "g", 1);
        let err = r.to_ranges("g", &dims(&["x"])).unwrap_err();
        // The diagnostic names both the function and the dimension.
        assert_eq!(err.func(), Some("g"));
        assert_eq!(err.dim(), Some("x"));
        assert!(err.to_string().contains("\"x\""));
        assert!(err.to_string().contains("\"g\""));
    }

    #[test]
    fn clamped_data_dependent_access_is_bounded() {
        let idx =
            Expr::load(Type::i32(), "lut", Expr::var_i32("x")).clamp(Expr::int(0), Expr::int(7));
        let body = Stmt::provide("out", call("g", vec![idx]), vec![Expr::var_i32("x")]);
        let s = Stmt::for_loop("x", Expr::int(0), Expr::int(4), ForKind::Serial, body);
        let ranges = region_required(&s, "g", 1)
            .to_ranges("g", &dims(&["x"]))
            .unwrap();
        assert_eq!(ranges[0].min.as_const_int(), Some(0));
        assert_eq!(ranges[0].extent.as_const_int(), Some(8));
    }

    #[test]
    fn unused_func_has_empty_region() {
        let s = Stmt::evaluate(Expr::int(0));
        assert!(region_required(&s, "g", 2).is_empty());
        assert_eq!(count_calls(&s, "g"), 0);
    }

    #[test]
    fn let_bound_coordinates_are_resolved() {
        let body = Stmt::let_stmt(
            "t",
            Expr::var_i32("x") * 2,
            Stmt::provide(
                "out",
                call("g", vec![Expr::var_i32("t")]),
                vec![Expr::var_i32("x")],
            ),
        );
        let s = Stmt::for_loop("x", Expr::int(0), Expr::int(5), ForKind::Serial, body);
        let ranges = region_required(&s, "g", 1)
            .to_ranges("g", &dims(&["x"]))
            .unwrap();
        assert_eq!(ranges[0].min.as_const_int(), Some(0));
        assert_eq!(ranges[0].extent.as_const_int(), Some(9));
    }
}
