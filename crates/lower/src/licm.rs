//! Loop-invariant mask hoisting.
//!
//! The predicated pipelines (camera pipe's demosaic, anything built from
//! `select`) evaluate boolean masks on every iteration of the loops that
//! enclose them, even when the mask does not depend on the loop variable at
//! all — e.g. `select(c == 0, …)` inside the per-pixel loops of a
//! colour-matrix stage, or the broadcast half of a vectorized Bayer-phase
//! test. This pass finds such masks and binds them to `LetStmt`s at the head
//! of the loop body, **the same mechanism bounds inference already uses**:
//! both execution engines peel a loop body's leading invariant `let`s and
//! evaluate them once per loop entry (`peel_invariant_lets` in
//! `halide-exec`), so a hoisted mask is computed once per entry instead of
//! once per iteration — in the interpreter and in the compiled register
//! machine alike, which keeps their instruction counters identical.
//!
//! Hoisting is deliberately conservative. A candidate must be:
//!
//! * the condition of a `Select` (or an `&&`/`||`/`!` operand or broadcast
//!   inside one) — masks, not arbitrary arithmetic;
//! * invariant: it references neither the loop variable nor **any** name
//!   bound anywhere inside the loop body (which also rules out shadowing
//!   capture at every occurrence);
//! * load-free and call-free, so evaluation order cannot change observable
//!   behaviour;
//! * division-safe: `/` and `%` only by non-zero constants, so eager
//!   evaluation cannot fault on an iteration that would have skipped it.

use std::collections::HashSet;

use halide_ir::{
    expr_uses_var, free_vars, mutate_expr_children, mutate_stmt_children, BinOp, Expr, ExprNode,
    IrMutator, IrVisitor, Stmt, StmtNode,
};

/// Binds loop-invariant select conditions to `let`s at loop-body heads, so
/// the engines' invariant-let peeling evaluates each mask once per loop
/// entry. Returns the rewritten statement.
pub fn hoist_invariant_masks(stmt: &Stmt) -> Stmt {
    let mut pass = HoistMasks;
    pass.mutate_stmt(stmt)
}

struct HoistMasks;

impl IrMutator for HoistMasks {
    fn mutate_stmt(&mut self, s: &Stmt) -> Stmt {
        // Children first: masks hoisted out of an inner loop become ordinary
        // leading lets the outer traversal leaves alone.
        let s = mutate_stmt_children(self, s);
        let StmtNode::For {
            name,
            min,
            extent,
            kind,
            body,
        } = s.node()
        else {
            return s;
        };
        let tainted = names_bound_inside(body);
        let mut finder = FindMasks {
            loop_var: name,
            tainted: &tainted,
            found: Vec::new(),
        };
        finder.visit_stmt(body);
        if finder.found.is_empty() {
            return s;
        }
        // Replace every occurrence of each mask with its fresh name, then
        // bind the masks at the very head of the body (their free variables
        // are all bound outside the loop, so they precede the existing
        // leading lets safely — and get peeled together with them).
        //
        // Largest masks are replaced first: when one hoistable mask is a
        // subexpression of another (`A` and `A && B` both invariant), the
        // big one must be rewritten before the small one destroys its
        // occurrences. A mask whose replacement never fires (e.g. `A` that
        // only occurred inside `A && B`) gets no `let`.
        let mut masks = finder.found;
        masks.sort_by_key(|m| std::cmp::Reverse(halide_ir::expr_node_count(m)));
        let mut new_body = body.clone();
        let mut lets = Vec::new();
        for mask in masks {
            let fresh = format!("{name}.mask{}", lets.len());
            let var = Expr::var(fresh.clone(), mask.ty());
            let mut repl = ReplaceExpr {
                target: &mask,
                with: &var,
                replaced: 0,
            };
            let replaced_body = repl.mutate_stmt(&new_body);
            if repl.replaced > 0 {
                new_body = replaced_body;
                lets.push((fresh, mask));
            }
        }
        for (fresh, mask) in lets.into_iter().rev() {
            new_body = Stmt::let_stmt(fresh, mask, new_body);
        }
        Stmt::for_loop(name.clone(), min.clone(), extent.clone(), *kind, new_body)
    }
}

/// Collects the select conditions (or their conjunct/disjunct/broadcast
/// parts) that are hoistable out of the enclosing loop.
struct FindMasks<'a> {
    loop_var: &'a str,
    tainted: &'a HashSet<String>,
    found: Vec<Expr>,
}

impl FindMasks<'_> {
    /// Records `e` if hoistable, else recurses into its boolean structure so
    /// the invariant half of a mixed mask (`variant && invariant`) still
    /// hoists.
    fn consider(&mut self, e: &Expr) {
        if self.hoistable(e) {
            if !self.found.contains(e) {
                self.found.push(e.clone());
            }
            return;
        }
        match e.node() {
            ExprNode::And { a, b } | ExprNode::Or { a, b } => {
                self.consider(a);
                self.consider(b);
            }
            ExprNode::Not { a } => self.consider(a),
            ExprNode::Broadcast { value, .. } => self.consider(value),
            _ => {}
        }
    }

    /// True if `e` is a non-trivial, invariant, load/call-free,
    /// division-safe expression.
    fn hoistable(&self, e: &Expr) -> bool {
        if matches!(
            e.node(),
            ExprNode::IntImm { .. }
                | ExprNode::UIntImm { .. }
                | ExprNode::FloatImm { .. }
                | ExprNode::Var { .. }
        ) {
            return false; // leaves cost nothing; a let would be pure overhead
        }
        if expr_uses_var(e, self.loop_var) {
            return false;
        }
        if free_vars(e).iter().any(|v| self.tainted.contains(v)) {
            return false;
        }
        safe_to_evaluate_eagerly(e)
    }
}

impl IrVisitor for FindMasks<'_> {
    fn visit_expr(&mut self, e: &Expr) {
        if let ExprNode::Select { cond, .. } = e.node() {
            self.consider(cond);
        }
        halide_ir::visit_expr_children(self, e);
    }
}

/// True if evaluating `e` unconditionally is indistinguishable from
/// evaluating it lazily: no loads, no calls, no inner lets, and no division
/// or modulo that could fault (only non-zero constant divisors qualify).
fn safe_to_evaluate_eagerly(e: &Expr) -> bool {
    struct Safety {
        safe: bool,
    }
    impl IrVisitor for Safety {
        fn visit_expr(&mut self, e: &Expr) {
            if !self.safe {
                return;
            }
            match e.node() {
                ExprNode::Load { .. } | ExprNode::Call { .. } | ExprNode::Let { .. } => {
                    self.safe = false;
                    return;
                }
                ExprNode::Bin {
                    op: BinOp::Div | BinOp::Mod,
                    b,
                    ..
                } => {
                    if halide_ir::const_int(b).is_none_or(|v| v == 0) {
                        self.safe = false;
                        return;
                    }
                }
                _ => {}
            }
            halide_ir::visit_expr_children(self, e);
        }
    }
    let mut s = Safety { safe: true };
    s.visit_expr(e);
    s.safe
}

/// Every name bound anywhere inside `s`: statement and expression `let`s and
/// nested loop variables. A mask referencing any of these is not invariant
/// (or could be captured by shadowing) and is left alone.
fn names_bound_inside(s: &Stmt) -> HashSet<String> {
    struct Binders {
        names: HashSet<String>,
    }
    impl IrVisitor for Binders {
        fn visit_stmt(&mut self, s: &Stmt) {
            match s.node() {
                StmtNode::LetStmt { name, .. } | StmtNode::For { name, .. } => {
                    self.names.insert(name.clone());
                }
                _ => {}
            }
            halide_ir::visit_stmt_children(self, s);
        }
        fn visit_expr(&mut self, e: &Expr) {
            if let ExprNode::Let { name, .. } = e.node() {
                self.names.insert(name.clone());
            }
            halide_ir::visit_expr_children(self, e);
        }
    }
    let mut b = Binders {
        names: HashSet::new(),
    };
    b.visit_stmt(s);
    b.names
}

/// Replaces every occurrence of one (invariant, uncapturable) expression
/// with a variable reference, counting how many occurrences it found.
struct ReplaceExpr<'a> {
    target: &'a Expr,
    with: &'a Expr,
    replaced: usize,
}

impl IrMutator for ReplaceExpr<'_> {
    fn mutate_expr(&mut self, e: &Expr) -> Expr {
        if e == self.target {
            self.replaced += 1;
            return self.with.clone();
        }
        mutate_expr_children(self, e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use halide_ir::{ForKind, Type};

    fn select_store(cond: Expr) -> Stmt {
        Stmt::store(
            "out",
            Expr::select(cond, Expr::f32(1.0), Expr::f32(0.0)),
            Expr::var_i32("x"),
        )
    }

    fn x_loop(body: Stmt) -> Stmt {
        Stmt::for_loop("x", Expr::int(0), Expr::int(8), ForKind::Serial, body)
    }

    #[test]
    fn invariant_select_condition_is_hoisted() {
        let cond = Expr::eq(Expr::var_i32("c"), Expr::int(0));
        let out = hoist_invariant_masks(&x_loop(select_store(cond.clone())));
        let StmtNode::For { body, .. } = out.node() else {
            panic!("loop survived")
        };
        let StmtNode::LetStmt { name, value, .. } = body.node() else {
            panic!("expected a hoisted mask let, got {body}")
        };
        assert_eq!(name, "x.mask0");
        assert_eq!(*value, cond);
        assert!(body.to_string().contains("select(x.mask0"));
    }

    #[test]
    fn variant_condition_stays_and_invariant_conjunct_hoists() {
        // (x % 2 == 1) && (y % 2 == 0): only the y half is invariant in x.
        let vx = Expr::eq(Expr::var_i32("x") % 2, Expr::int(1));
        let vy = Expr::eq(Expr::var_i32("y") % 2, Expr::int(0));
        let out = hoist_invariant_masks(&x_loop(select_store(Expr::and(vx, vy))));
        let text = out.to_string();
        assert!(text.contains("let x.mask0 = ((y % 2) == 0)"), "{text}");
        assert!(text.contains("((x % 2) == 1) && x.mask0"), "{text}");
    }

    #[test]
    fn masks_referencing_inner_bindings_are_left_alone() {
        // The condition references a let bound inside the body (and thus
        // possibly loop-dependent): no hoist.
        let cond = Expr::eq(Expr::var_i32("t"), Expr::int(0));
        let body = Stmt::let_stmt("t", Expr::var_i32("x") * 2, select_store(cond));
        let out = hoist_invariant_masks(&x_loop(body));
        assert!(!out.to_string().contains("mask"), "{out}");
    }

    #[test]
    fn loads_calls_and_unsafe_divisions_do_not_hoist() {
        let load_cond = Expr::gt(
            Expr::load(Type::f32(), "lut", Expr::var_i32("c")),
            Expr::f32(0.0),
        );
        let div_cond = Expr::eq(Expr::var_i32("c") / Expr::var_i32("d"), Expr::int(0));
        for cond in [load_cond, div_cond] {
            let out = hoist_invariant_masks(&x_loop(select_store(cond)));
            assert!(!out.to_string().contains("mask"), "{out}");
        }
        // A constant divisor is safe.
        let safe = Expr::eq(Expr::var_i32("c") / 4, Expr::int(0));
        let out = hoist_invariant_masks(&x_loop(select_store(safe)));
        assert!(out.to_string().contains("x.mask0"), "{out}");
    }

    #[test]
    fn nested_masks_hoist_largest_first_without_dead_lets() {
        // `A` and `A && B` are both invariant; `A` appears only inside the
        // conjunction. The conjunction must hoist as one mask, and no dead
        // let for `A` may be emitted.
        let a = Expr::eq(Expr::var_i32("y") % 2, Expr::int(0));
        let b = Expr::eq(Expr::var_i32("c"), Expr::int(0));
        let two = Stmt::block_of(vec![
            select_store(a.clone()),
            Stmt::store(
                "out2",
                Expr::select(Expr::and(a, b), Expr::f32(2.0), Expr::f32(3.0)),
                Expr::var_i32("x"),
            ),
        ]);
        let out = hoist_invariant_masks(&x_loop(two));
        let text = out.to_string();
        // The conjunction is replaced whole (mask0 = the && expression),
        // and the bare `A` select uses its own hoisted name.
        assert_eq!(text.matches("let x.mask").count(), 2, "{text}");
        assert!(
            text.contains("select(x.mask0") && text.contains("select(x.mask1"),
            "{text}"
        );
        // No `&&` survives in a select condition: the big mask was rewritten
        // before the small one could shadow it.
        assert!(!text.contains("select(("), "{text}");
    }

    #[test]
    fn duplicate_masks_bind_once() {
        let cond = Expr::eq(Expr::var_i32("c"), Expr::int(0));
        let two = Stmt::block_of(vec![
            select_store(cond.clone()),
            Stmt::store(
                "out2",
                Expr::select(cond, Expr::f32(2.0), Expr::f32(3.0)),
                Expr::var_i32("x"),
            ),
        ]);
        let out = hoist_invariant_masks(&x_loop(two));
        let text = out.to_string();
        assert_eq!(text.matches("let x.mask0").count(), 1, "{text}");
        assert!(!text.contains("mask1"), "{text}");
        assert_eq!(text.matches("select(x.mask0").count(), 2, "{text}");
    }

    #[test]
    fn nested_loops_hoist_to_the_innermost_invariant_level() {
        let cond = Expr::eq(Expr::var_i32("y") % 2, Expr::int(0));
        let inner = x_loop(select_store(cond));
        let outer = Stmt::for_loop("y", Expr::int(0), Expr::int(4), ForKind::Serial, inner);
        let out = hoist_invariant_masks(&outer);
        let text = out.to_string();
        // Hoisted out of the x loop (invariant there), not out of y.
        assert!(text.contains("let x.mask0"), "{text}");
        let StmtNode::For { body, .. } = out.node() else {
            panic!()
        };
        assert!(
            matches!(body.node(), StmtNode::For { .. }),
            "mask must not hoist past the y loop: {text}"
        );
    }

    #[test]
    fn comparisons_over_vectors_hoist_with_their_broadcasts() {
        let mask = Expr::eq(
            Expr::ramp(Expr::var_i32("y"), Expr::int(1), 4) % 2,
            Expr::broadcast(Expr::int(0), 4),
        );
        let out = hoist_invariant_masks(&x_loop(select_store(mask)));
        assert!(out.to_string().contains("x.mask0"), "{out}");
    }
}
