//! Errors produced while compiling a scheduled pipeline.

use std::fmt;

/// An error raised by the lowering passes.
///
/// Besides signalling genuine programmer mistakes, these errors are the
/// mechanism by which the autotuner discards invalid schedules: a schedule
/// that names a non-existent loop level, or that makes bounds inference
/// impossible, fails here rather than producing wrong code (the compiler is
/// "safe by construction", Sec. 4).
///
/// Errors carry the offending function and dimension when the failing pass
/// knows them, so a message about an unbounded access points at the exact
/// coordinate to clamp rather than just the pipeline stage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LowerError {
    message: String,
    func: Option<String>,
    dim: Option<String>,
}

impl LowerError {
    /// Creates an error with the given description.
    pub fn new(message: impl Into<String>) -> Self {
        LowerError {
            message: message.into(),
            func: None,
            dim: None,
        }
    }

    /// Attaches the function the error is about.
    pub fn in_func(mut self, func: impl Into<String>) -> Self {
        self.func = Some(func.into());
        self
    }

    /// Attaches the dimension (pure argument name) the error is about.
    pub fn in_dim(mut self, dim: impl Into<String>) -> Self {
        self.dim = Some(dim.into());
        self
    }

    /// The function this error is about, if known.
    pub fn func(&self) -> Option<&str> {
        self.func.as_deref()
    }

    /// The dimension this error is about, if known.
    pub fn dim(&self) -> Option<&str> {
        self.dim.as_deref()
    }
}

impl fmt::Display for LowerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lowering failed: {}", self.message)?;
        match (&self.func, &self.dim) {
            (Some(func), Some(dim)) => write!(f, " [func {func:?}, dimension {dim:?}]"),
            (Some(func), None) => write!(f, " [func {func:?}]"),
            (None, Some(dim)) => write!(f, " [dimension {dim:?}]"),
            (None, None) => Ok(()),
        }
    }
}

impl std::error::Error for LowerError {}

impl From<halide_schedule::ScheduleError> for LowerError {
    fn from(e: halide_schedule::ScheduleError) -> Self {
        LowerError::new(e.to_string())
    }
}

/// Result alias for lowering.
pub type Result<T> = std::result::Result<T, LowerError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_func_and_dim_context() {
        let e = LowerError::new("cannot infer bounds")
            .in_func("blurx")
            .in_dim("y");
        let text = e.to_string();
        assert!(text.contains("blurx"));
        assert!(text.contains("\"y\""));
        assert_eq!(e.func(), Some("blurx"));
        assert_eq!(e.dim(), Some("y"));
    }
}
