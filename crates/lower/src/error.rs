//! Errors produced while compiling a scheduled pipeline.

use std::fmt;

/// An error raised by the lowering passes.
///
/// Besides signalling genuine programmer mistakes, these errors are the
/// mechanism by which the autotuner discards invalid schedules: a schedule
/// that names a non-existent loop level, or that makes bounds inference
/// impossible, fails here rather than producing wrong code (the compiler is
/// "safe by construction", Sec. 4).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LowerError {
    message: String,
}

impl LowerError {
    /// Creates an error with the given description.
    pub fn new(message: impl Into<String>) -> Self {
        LowerError {
            message: message.into(),
        }
    }
}

impl fmt::Display for LowerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lowering failed: {}", self.message)
    }
}

impl std::error::Error for LowerError {}

impl From<halide_schedule::ScheduleError> for LowerError {
    fn from(e: halide_schedule::ScheduleError) -> Self {
        LowerError::new(e.to_string())
    }
}

/// Result alias for lowering.
pub type Result<T> = std::result::Result<T, LowerError>;
