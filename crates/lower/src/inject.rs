//! Lowering driver: snapshotting the pipeline, inlining, and injecting the
//! storage and computation of every producer at the loop levels chosen by its
//! call schedule (Sec. 4.1), with bounds inference (Sec. 4.2) integrated.
//!
//! # Let-bound bounds
//!
//! Each realization's inferred bounds are bound to *names* rather than
//! substituted through consumer chains: injection emits
//! `let <func>.<dim>.min = …` / `let <func>.<dim>.extent = …` at the
//! realization level, and the producer's loop nest, its `Realize` bounds,
//! and every later pass reference those names. This is what the paper's
//! compiler does, and it is what keeps the lowered statement *linear* in
//! pipeline depth: a loop min is always a small name-plus-offset term, so
//! the region required of the next producer up the chain — computed by the
//! let-aware walker in [`crate::bounds`] — never embeds whole interval
//! expressions of the stages below it.
//!
//! When a function's storage lives at a coarser loop level than its
//! computation (`store_at` ≠ `compute_at`), two sets of bindings with the
//! *same names* are emitted: one at the storage level (sized for the whole
//! intervening loop, referenced by the `Realize`) and one at the compute
//! level (the per-iteration region, referenced by the produce loops). The
//! inner bindings lexically shadow the outer ones; every consumer of these
//! names — the simplifier, substitution, the region walker, the executor's
//! scope — handles that shadowing.
//!
//! The output function needs no lets: its `<out>.<dim>.min/.extent` symbols
//! are bound by the executor from the output buffer supplied at realization
//! time, which is why producers and the output can share one naming scheme.

use std::collections::{BTreeMap, HashMap};

use halide_ir::{
    simplify, simplify_stmt, CallType, Expr, ExprNode, IrMutator, Range, Stmt, StmtNode, Type,
};
use halide_lang::{Pipeline, RVar};
use halide_schedule::{FuncSchedule, LoopLevel};

use crate::bounds::{count_calls, region_required};
use crate::error::{LowerError, Result};
use crate::nest::{build_produce_nest, loop_var, validate_splits};

/// A plain snapshot of one reduction-domain dimension.
#[derive(Debug, Clone)]
pub struct RVarSnapshot {
    /// Loop variable name (as written in the algorithm, e.g. `r.x`).
    pub name: String,
    /// Domain minimum.
    pub min: Expr,
    /// Domain extent.
    pub extent: Expr,
}

/// A plain snapshot of a reduction domain.
#[derive(Debug, Clone)]
pub struct RDomSnapshot {
    /// The domain's dimensions in lexicographic order.
    pub dims: Vec<RVarSnapshot>,
}

/// A plain snapshot of one update definition.
#[derive(Debug, Clone)]
pub struct UpdateDefSnapshot {
    /// Coordinate expressions of the update.
    pub args: Vec<Expr>,
    /// Value stored by the update.
    pub value: Expr,
    /// Reduction domain, if the update iterates over one.
    pub rdom: Option<RDomSnapshot>,
}

/// A plain, immutable snapshot of a `halide_lang::Func`, decoupled from the
/// shared frontend handles so the compiler can rewrite definitions (e.g.
/// inlining) without mutating user objects.
#[derive(Debug, Clone)]
pub struct FuncDef {
    /// Unique function name.
    pub name: String,
    /// Pure argument names, in order.
    pub args: Vec<String>,
    /// Pure definition.
    pub value: Expr,
    /// Update definitions.
    pub updates: Vec<UpdateDefSnapshot>,
    /// The function's schedule.
    pub schedule: FuncSchedule,
    /// Value type.
    pub ty: Type,
}

fn snapshot_rvar(rv: &RVar) -> RVarSnapshot {
    RVarSnapshot {
        name: rv.name().to_string(),
        min: rv.min().clone(),
        extent: rv.extent().clone(),
    }
}

/// Takes a snapshot of every function in the pipeline, keyed by name.
pub fn snapshot_pipeline(pipeline: &Pipeline) -> BTreeMap<String, FuncDef> {
    pipeline
        .funcs()
        .map(|f| {
            let updates = f
                .updates()
                .into_iter()
                .map(|u| UpdateDefSnapshot {
                    args: u.args.clone(),
                    value: u.value.clone(),
                    rdom: u.rdom.as_ref().map(|r| RDomSnapshot {
                        dims: r.dims().iter().map(snapshot_rvar).collect(),
                    }),
                })
                .collect();
            (
                f.name(),
                FuncDef {
                    name: f.name(),
                    args: f.args(),
                    value: f.value(),
                    updates,
                    schedule: f.schedule(),
                    ty: f.ty(),
                },
            )
        })
        .collect()
}

// ---- inlining ---------------------------------------------------------------

struct Inliner<'a> {
    callee: &'a FuncDef,
}

impl IrMutator for Inliner<'_> {
    fn mutate_expr(&mut self, e: &Expr) -> Expr {
        let e = halide_ir::mutate_expr_children(self, e);
        if let ExprNode::Call {
            name,
            call_type: CallType::Halide,
            args,
            ..
        } = e.node()
        {
            if name == &self.callee.name {
                let mut map = std::collections::HashMap::new();
                for (a, arg) in self.callee.args.iter().zip(args.iter()) {
                    map.insert(a.clone(), arg.clone());
                }
                return halide_ir::substitute_map(&self.callee.value, &map);
            }
        }
        e
    }
}

/// Substitutes the definition of `callee` into `expr` at every call site.
pub fn inline_into(expr: &Expr, callee: &FuncDef) -> Expr {
    Inliner { callee }.mutate_expr(expr)
}

/// Inlines every function scheduled `compute_inline` into its callers,
/// processing producers before consumers so chains of inline functions
/// collapse completely.
///
/// # Errors
///
/// Fails if an inline function has update definitions (reductions carry
/// state and cannot be recomputed at every use site) or if the output is
/// scheduled inline.
pub fn inline_all(
    env: &mut BTreeMap<String, FuncDef>,
    order: &[String],
    output: &str,
) -> Result<()> {
    for name in order {
        let def = env[name].clone();
        if !def.schedule.compute_level.is_inline() {
            continue;
        }
        if name == output {
            return Err(LowerError::new(format!(
                "the output function {name:?} cannot be scheduled inline"
            )));
        }
        if !def.updates.is_empty() {
            return Err(LowerError::new(format!(
                "function {name:?} has update definitions and cannot be inlined"
            )));
        }
        for (_, other) in env.iter_mut() {
            if other.name == def.name {
                continue;
            }
            other.value = simplify(&inline_into(&other.value, &def));
            for u in &mut other.updates {
                u.value = simplify(&inline_into(&u.value, &def));
                for a in &mut u.args {
                    *a = simplify(&inline_into(a, &def));
                }
            }
        }
    }
    Ok(())
}

// ---- injection --------------------------------------------------------------

/// The name of the let-bound minimum of dimension `dim` of `func`
/// (`<func>.<dim>.min`).
pub fn bound_min_var(func: &str, dim: &str) -> String {
    format!("{func}.{dim}.min")
}

/// The name of the let-bound extent of dimension `dim` of `func`
/// (`<func>.<dim>.extent`).
pub fn bound_extent_var(func: &str, dim: &str) -> String {
    format!("{func}.{dim}.extent")
}

/// The symbolic region a function is realized over: one [`Range`] per pure
/// dimension, referencing the `<func>.<dim>.min` / `<func>.<dim>.extent`
/// names. For the output function those symbols are bound by the executor
/// from the output buffer supplied at realization time; for every other
/// function, injection emits `LetStmt`s binding them to the inferred region.
pub fn symbolic_region(func: &FuncDef) -> Vec<Range> {
    func.args
        .iter()
        .map(|a| {
            Range::new(
                Expr::var_i32(bound_min_var(&func.name, a)),
                Expr::var_i32(bound_extent_var(&func.name, a)),
            )
        })
        .collect()
}

/// Wraps `body` in `LetStmt`s binding `func`'s `<func>.<dim>.min` /
/// `<func>.<dim>.extent` names to the given concrete region.
fn bind_region_lets(func: &FuncDef, region: &[Range], body: Stmt) -> Stmt {
    let mut s = body;
    for (arg, r) in func.args.iter().zip(region.iter()).rev() {
        s = Stmt::let_stmt(
            bound_extent_var(&func.name, arg),
            simplify(&r.extent),
            Stmt::let_stmt(bound_min_var(&func.name, arg), simplify(&r.min), s),
        );
    }
    s
}

/// Splits a statement into its leading chain of `LetStmt`s and the rest.
///
/// At every injection site the leading lets are the bounds bindings of
/// already-injected (consumer-side) realizations. A new producer's bounds
/// are inferred over the *rest only*, so those names stay symbolic in the
/// result — each stage's bounds reference the next stage's names instead of
/// re-embedding its whole interval expressions, which is what keeps both
/// the lowered statement and inference time linear in pipeline depth. The
/// new realization is then spliced *inside* the peeled chain (see
/// [`rewrap_lets`]) so every name its bounds mention is in scope.
fn peel_leading_lets(s: &Stmt) -> (Vec<(String, Expr)>, Stmt) {
    let mut lets = Vec::new();
    let mut cur = s.clone();
    while let StmtNode::LetStmt { name, value, body } = cur.node() {
        lets.push((name.clone(), value.clone()));
        let next = body.clone();
        cur = next;
    }
    (lets, cur)
}

/// Re-nests `body` under a let chain produced by [`peel_leading_lets`].
fn rewrap_lets(lets: &[(String, Expr)], body: Stmt) -> Stmt {
    lets.iter()
        .rev()
        .fold(body, |b, (n, v)| Stmt::let_stmt(n.clone(), v.clone(), b))
}

/// Rewrites the first `For` loop named `target`, replacing its body with
/// `f(body)`. Returns the rewritten statement and whether the loop was found.
fn transform_loop_body(stmt: &Stmt, target: &str, f: &mut dyn FnMut(Stmt) -> Stmt) -> (Stmt, bool) {
    struct Finder<'a> {
        target: &'a str,
        f: &'a mut dyn FnMut(Stmt) -> Stmt,
        found: bool,
    }
    impl IrMutator for Finder<'_> {
        fn mutate_stmt(&mut self, s: &Stmt) -> Stmt {
            if self.found {
                return s.clone();
            }
            if let StmtNode::For {
                name,
                min,
                extent,
                kind,
                body,
            } = s.node()
            {
                if name == self.target {
                    self.found = true;
                    let new_body = (self.f)(body.clone());
                    return Stmt::for_loop(
                        name.clone(),
                        min.clone(),
                        extent.clone(),
                        *kind,
                        new_body,
                    );
                }
            }
            halide_ir::mutate_stmt_children(self, s)
        }
    }
    let mut finder = Finder {
        target,
        f,
        found: false,
    };
    let out = finder.mutate_stmt(stmt);
    (out, finder.found)
}

/// Extracts (a clone of) the body of the first `For` loop named `target`.
fn loop_body(stmt: &Stmt, target: &str) -> Option<Stmt> {
    let mut result: Option<Stmt> = None;
    let (_, found) = transform_loop_body(stmt, target, &mut |body| {
        result = Some(body.clone());
        body
    });
    if found {
        result
    } else {
        None
    }
}

fn level_loop_name(env: &BTreeMap<String, FuncDef>, level: &LoopLevel) -> Result<Option<String>> {
    match level {
        LoopLevel::Root => Ok(None),
        LoopLevel::Inline => Err(LowerError::new(
            "inline functions are substituted before injection".to_string(),
        )),
        LoopLevel::At { func, var } => {
            let consumer = env.get(func).ok_or_else(|| {
                LowerError::new(format!(
                    "compute_at/store_at references unknown function {func:?}"
                ))
            })?;
            if !consumer.schedule.has_dim(var) && !consumer.args.contains(var) {
                return Err(LowerError::new(format!(
                    "compute_at/store_at references loop {var:?} which is not a dimension of {func:?}"
                )));
            }
            Ok(Some(loop_var(func, var)))
        }
    }
}

/// Per-dimension allocation padding for split loops: how far past the
/// required extent the loop nest can store. Padding the allocation by this
/// much guarantees tail iterations can never store outside it —
/// shift-inwards tails when a required extent is smaller than a split
/// factor, and round_up tails whose last tile runs up to one factor past
/// the required region.
///
/// Walking the split chain *backwards*, `pad(d)` bounds the overrun of
/// dimension `d`'s traversal given the splits later applied to its halves
/// (an outer half re-split with `round_up` multiplies: each extra outer
/// iteration covers a whole factor of `d`). Partitioned tails
/// (`guard_with_if`/`predicate`) never overrun — their stores are confined
/// to the required region by construction — and their halves cannot be
/// re-split, so they reset the overrun to zero.
fn split_padding(func: &FuncDef) -> Vec<i64> {
    use halide_schedule::TailStrategy;
    let mut pad: HashMap<&str, i64> = HashMap::new();
    for s in func.schedule.splits.iter().rev() {
        let po = pad.get(s.outer.as_str()).copied().unwrap_or(0);
        let pi = pad.get(s.inner.as_str()).copied().unwrap_or(0);
        let p = match s.tail {
            // old = min(outer*f, max(e-f, 0)) + inner: the min clamps any
            // outer overrun; a required extent smaller than the factor
            // still reaches f-1, plus whatever the inner's splits add.
            TailStrategy::ShiftInwards => (s.factor - 1) + pi,
            // old = outer*f + inner with outer < ceil(e/f) + po.
            TailStrategy::RoundUp => (s.factor - 1) + po * s.factor + pi,
            TailStrategy::GuardWithIf | TailStrategy::Predicate => 0,
        };
        pad.insert(s.old.as_str(), p);
    }
    func.args
        .iter()
        .map(|a| pad.get(a.as_str()).copied().unwrap_or(0))
        .collect()
}

/// Builds the complete (pre-flattening) statement for a pipeline: the output
/// function's loop nest with every producer's storage and computation
/// injected at its scheduled loop levels, and every realization's bounds
/// bound to `<func>.<dim>.min` / `<func>.<dim>.extent` lets that the loop
/// nests and `Realize` nodes reference by name.
///
/// # Errors
///
/// Fails when a schedule is globally inconsistent: unknown loop levels,
/// compute levels that do not enclose every consumer, or regions whose bounds
/// cannot be inferred.
pub fn build_pipeline_stmt(
    env: &BTreeMap<String, FuncDef>,
    order: &[String],
    output: &str,
) -> Result<Stmt> {
    let out_def = env
        .get(output)
        .ok_or_else(|| LowerError::new(format!("unknown output function {output:?}")))?;
    let mut stmt = build_produce_nest(out_def, &symbolic_region(out_def))?;

    // The output buffer is supplied by the caller and cannot be padded, so
    // the shift-inwards tail strategy requires each split dimension of the
    // output to be at least one split factor wide. Check it at run time.
    // The guard_with_if/predicate strategies handle any extent (that is
    // their purpose), so their splits are exempt.
    let mut guards = Vec::new();
    for split in &out_def.schedule.splits {
        if split.tail == halide_schedule::TailStrategy::RoundUp {
            // Rounding up traverses (and stores) past the required region
            // into the allocation's padding — but the output buffer is
            // caller-allocated and exact, so there is no padding to run into.
            return Err(LowerError::new(format!(
                "split of {:?} in the output function {} uses tail strategy round_up, \
                 which stores past the caller-allocated output buffer; use \
                 guard_with_if or predicate on the output",
                split.old, out_def.name
            ))
            .in_func(&out_def.name)
            .in_dim(&split.old));
        }
        if split.tail != halide_schedule::TailStrategy::ShiftInwards {
            continue;
        }
        if out_def.args.contains(&split.old) {
            let extent = Expr::var_i32(format!("{}.{}.extent", out_def.name, split.old));
            guards.push(Stmt::assert_stmt(
                Expr::ge(extent, Expr::int(split.factor as i32)),
                format!(
                    "output dimension {:?} of {} must be at least {} wide for this schedule",
                    split.old, out_def.name, split.factor
                ),
            ));
        }
    }
    if !guards.is_empty() {
        guards.push(stmt);
        stmt = Stmt::block_of(guards);
    }

    // Inject every non-output, non-inline function, consumers before
    // producers (reverse realization order, skipping the output itself).
    for name in order.iter().rev() {
        if name == output {
            continue;
        }
        let def = &env[name];
        if def.schedule.compute_level.is_inline() {
            continue;
        }

        let compute_loop = level_loop_name(env, &def.schedule.compute_level)?;
        let store_loop = level_loop_name(env, &def.schedule.store_level)?;

        // Region required at the compute level. The leading lets of the
        // compute body — bounds bindings of already-injected realizations —
        // are peeled off before analysis so their names stay symbolic in the
        // inferred region.
        let compute_body = match &compute_loop {
            None => stmt.clone(),
            Some(l) => loop_body(&stmt, l).ok_or_else(|| {
                LowerError::new(format!(
                    "{}: compute_at loop {l:?} does not exist in the current loop nest",
                    def.name
                ))
                .in_func(&def.name)
            })?,
        };
        let (_, compute_body) = peel_leading_lets(&compute_body);
        let total_calls = count_calls(&stmt, &def.name);
        if total_calls == 0 {
            // Dead stage: every consumer was inlined away or it is never used.
            continue;
        }
        let calls_inside = count_calls(&compute_body, &def.name);
        if calls_inside < total_calls {
            return Err(LowerError::new(format!(
                "{}: compute level {} does not enclose all of its consumers",
                def.name, def.schedule.compute_level
            ))
            .in_func(&def.name));
        }
        let compute_region = region_required(&compute_body, &def.name, def.args.len())
            .to_ranges(&def.name, &def.args)?;
        validate_splits(def, &compute_region)?;
        if std::env::var_os("HALIDE_LOWER_DEBUG").is_some() {
            // Diagnostic for bounds-expression growth through deep stage
            // chains (set HALIDE_LOWER_DEBUG=1 to trace).
            let sz: usize = compute_region
                .iter()
                .map(|r| r.min.to_string().len() + r.extent.to_string().len())
                .sum();
            eprintln!("inject {}: compute region {} chars", def.name, sz);
        }

        // Region required at the (equal or coarser) storage level. When the
        // two levels coincide, it is the compute region.
        let same_level = store_loop == compute_loop;
        let store_region = if same_level {
            compute_region.clone()
        } else {
            let store_body = match &store_loop {
                None => stmt.clone(),
                Some(l) => loop_body(&stmt, l).ok_or_else(|| {
                    LowerError::new(format!(
                        "{}: store_at loop {l:?} does not exist in the current loop nest",
                        def.name
                    ))
                    .in_func(&def.name)
                })?,
            };
            let (_, store_body) = peel_leading_lets(&store_body);
            let calls_in_store = count_calls(&store_body, &def.name);
            if calls_in_store < total_calls {
                return Err(LowerError::new(format!(
                    "{}: store level {} does not enclose all of its consumers",
                    def.name, def.schedule.store_level
                ))
                .in_func(&def.name));
            }
            region_required(&store_body, &def.name, def.args.len())
                .to_ranges(&def.name, &def.args)?
        };

        // The Realize covers the symbolic region, padded per dimension so
        // shifted split tails can never store outside the allocation.
        let sym_region = symbolic_region(def);
        let realize_bounds: Vec<Range> = sym_region
            .iter()
            .zip(split_padding(def))
            .map(|(r, pad)| {
                if pad == 0 {
                    r.clone()
                } else {
                    Range::new(r.min.clone(), r.extent.clone() + Expr::int(pad as i32))
                }
            })
            .collect();

        // Build the producer nest over the symbolic region and inject it at
        // the compute level. When the compute level is strictly inside the
        // storage level, the per-iteration compute region is bound right
        // there, shadowing the storage-level bindings of the same names.
        let mut produce = build_produce_nest(def, &sym_region)?;
        if !same_level {
            produce = bind_region_lets(def, &compute_region, produce);
        }
        let inject_produce = &mut |body: Stmt| {
            let (lets, rest) = peel_leading_lets(&body);
            rewrap_lets(&lets, Stmt::block(produce.clone(), rest))
        };
        stmt = match &compute_loop {
            None => inject_produce(stmt),
            Some(l) => {
                let (new_stmt, found) = transform_loop_body(&stmt, l, inject_produce);
                debug_assert!(
                    found,
                    "compute loop vanished between analysis and injection"
                );
                new_stmt
            }
        };

        // Wrap the storage level in a Realize, itself wrapped in the lets
        // binding the storage region to the names the Realize references.
        // Both are spliced *inside* the level's existing leading lets, so
        // this realization's bounds may reference the bound names of every
        // realization injected before it (its consumers).
        let ty = def.ty;
        let fname = def.name.clone();
        let wrap_realize = &mut |body: Stmt| {
            let (lets, rest) = peel_leading_lets(&body);
            rewrap_lets(
                &lets,
                bind_region_lets(
                    def,
                    &store_region,
                    Stmt::realize(fname.clone(), ty, realize_bounds.clone(), rest),
                ),
            )
        };
        stmt = match &store_loop {
            None => wrap_realize(stmt),
            Some(l) => {
                let (new_stmt, found) = transform_loop_body(&stmt, l, wrap_realize);
                debug_assert!(found, "store loop vanished between analysis and injection");
                new_stmt
            }
        };
    }

    Ok(simplify_stmt(&stmt))
}

#[cfg(test)]
mod tests {
    use super::*;
    use halide_ir::Type;
    use halide_lang::{Func, ImageParam, Pipeline, Var};

    fn blur_pipeline(prefix: &str) -> (Pipeline, String, String) {
        let input = ImageParam::new(format!("{prefix}_in"), Type::f32(), 2);
        let (x, y) = (Var::new("x"), Var::new("y"));
        let blurx = Func::new(format!("{prefix}_blurx"));
        blurx.define(
            &[x.clone(), y.clone()],
            input.at_clamped(vec![x.expr() - 1, y.expr()])
                + input.at_clamped(vec![x.expr(), y.expr()])
                + input.at_clamped(vec![x.expr() + 1, y.expr()]),
        );
        let out = Func::new(format!("{prefix}_out"));
        out.define(
            &[x.clone(), y.clone()],
            blurx.at(vec![x.expr(), y.expr() - 1])
                + blurx.at(vec![x.expr(), y.expr()])
                + blurx.at(vec![x.expr(), y.expr() + 1]),
        );
        let blurx_name = blurx.name();
        let out_name = out.name();
        (Pipeline::new(&out), blurx_name, out_name)
    }

    fn contains_realize(s: &Stmt, name: &str) -> bool {
        s.to_string().contains(&format!("realize {name}"))
    }

    #[test]
    fn breadth_first_realizes_at_root() {
        let (p, blurx, out) = blur_pipeline("inject_bf");
        let env = snapshot_pipeline(&p);
        let order = p.realization_order();
        let stmt = build_pipeline_stmt(&env, &order, &out).unwrap();
        let text = stmt.to_string();
        assert!(contains_realize(&stmt, &blurx));
        // Realize must be outermost (before the out loops)
        let realize_pos = text.find("realize").unwrap();
        let out_loop_pos = text.find(&format!("for {out}.y")).unwrap();
        assert!(realize_pos < out_loop_pos);
        // The produced region of blurx extends one row above and below the output.
        assert!(text.contains(&format!("{blurx}.y.min")) || text.contains("- 1"));
    }

    #[test]
    fn inline_schedule_substitutes_definition() {
        let (p, blurx, out) = blur_pipeline("inject_inline");
        p.func(&blurx).unwrap().compute_inline();
        let mut env = snapshot_pipeline(&p);
        let order = p.realization_order();
        inline_all(&mut env, &order, &out).unwrap();
        let stmt = build_pipeline_stmt(&env, &order, &out).unwrap();
        let text = stmt.to_string();
        // no realization of blurx, and the input image is read directly from
        // the out loop nest
        assert!(!contains_realize(&stmt, &blurx));
        assert!(!text.contains(&format!("{blurx}(")));
        assert!(text.contains("inject_inline_in("));
    }

    #[test]
    fn compute_at_injects_inside_consumer_loop() {
        let (p, blurx, out) = blur_pipeline("inject_at");
        p.func(&blurx)
            .unwrap()
            .compute_at(p.func(&out).unwrap(), "y");
        let env = snapshot_pipeline(&p);
        let order = p.realization_order();
        let stmt = build_pipeline_stmt(&env, &order, &out).unwrap();
        let text = stmt.to_string();
        // The realize/produce of blurx must be nested inside the out.y loop.
        let y_loop = text.find(&format!("for {out}.y")).unwrap();
        let realize = text.find(&format!("realize {blurx}")).unwrap();
        assert!(realize > y_loop);
        // Its y extent per iteration is the 3-row stencil window.
        assert!(text.contains("3"));
    }

    #[test]
    fn compute_at_unknown_loop_is_error() {
        let (p, blurx, out) = blur_pipeline("inject_badloop");
        p.func(&blurx)
            .unwrap()
            .compute_at(p.func(&out).unwrap(), "nonexistent");
        let env = snapshot_pipeline(&p);
        let order = p.realization_order();
        assert!(build_pipeline_stmt(&env, &order, &out).is_err());
    }

    #[test]
    fn store_root_compute_inner_realizes_at_root() {
        let (p, blurx, out) = blur_pipeline("inject_slide");
        {
            let b = p.func(&blurx).unwrap();
            b.compute_at(p.func(&out).unwrap(), "y");
            b.store_root();
        }
        let env = snapshot_pipeline(&p);
        let order = p.realization_order();
        let stmt = build_pipeline_stmt(&env, &order, &out).unwrap();
        let text = stmt.to_string();
        let realize = text.find(&format!("realize {blurx}")).unwrap();
        let y_loop = text.find(&format!("for {out}.y")).unwrap();
        let produce = text.find(&format!("produce {blurx}")).unwrap();
        assert!(realize < y_loop, "storage hoisted outside the loop");
        assert!(produce > y_loop, "computation stays inside the loop");
    }

    #[test]
    fn split_and_parallel_schedule_lowers() {
        let (p, blurx, out) = blur_pipeline("inject_tiled");
        {
            let o = p.func(&out).unwrap();
            o.tile_dims("x", "y", "xo", "yo", "xi", "yi", 32, 32);
            o.parallelize("yo");
            let b = p.func(&blurx).unwrap();
            b.compute_at(o, "xo");
        }
        let env = snapshot_pipeline(&p);
        let order = p.realization_order();
        let stmt = build_pipeline_stmt(&env, &order, &out).unwrap();
        let text = stmt.to_string();
        assert!(text.contains(&format!("parallel for {out}.yo")));
        assert!(text.contains(&format!("realize {blurx}")));
        // blurx realize must be inside the xo loop
        let xo = text.find(&format!("for {out}.xo")).unwrap();
        let realize = text.find(&format!("realize {blurx}")).unwrap();
        assert!(realize > xo);
    }

    #[test]
    fn snapshot_captures_updates() {
        let i = Var::new("i");
        let f = Func::new("inject_snapshot_hist");
        f.define(&[i.clone()], Expr::int(0));
        let r = halide_lang::RDom::over("r", 0, 8);
        f.update(vec![r.x().expr()], f.at(vec![r.x().expr()]) + 1, Some(r));
        let p = Pipeline::new(&f);
        let env = snapshot_pipeline(&p);
        let def = &env[&f.name()];
        assert_eq!(def.updates.len(), 1);
        assert_eq!(def.updates[0].rdom.as_ref().unwrap().dims.len(), 1);
        assert_eq!(def.ty, Type::i32());
    }
}
