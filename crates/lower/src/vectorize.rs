//! Vectorization and unrolling (Sec. 4.5).
//!
//! A loop scheduled `vectorized` with constant extent *n* is eliminated: each
//! occurrence of its variable is replaced by the vector `ramp(min, 1, n)`,
//! turning scalar arithmetic into *n*-wide vector arithmetic, dense loads and
//! stores into vector loads/stores, and gathers/scatters where the index is
//! not affine. Because the language has no divergent control flow this is
//! always well defined; scalars that meet vectors are broadcast by the
//! value semantics of the executor.
//!
//! A loop scheduled `unrolled` with constant extent *n* is replaced by *n*
//! copies of its body with the loop variable bound to `min + i`.

use halide_ir::{
    const_int, simplify_stmt, substitute_in_stmt, Expr, ForKind, IrMutator, LetResolver, Stmt,
    StmtNode,
};

use crate::error::{LowerError, Result};

/// The widest vector the backend accepts. Wider vectorize factors are almost
/// certainly schedule bugs (or autotuner excess) and are rejected. Shared
/// with the ahead-of-time legality predicate (`halide_schedule::legality`)
/// so schedule generators and this pass can never disagree on the limit.
pub use halide_schedule::legality::MAX_VECTOR_LANES;

/// How many times a loop may be unrolled before we refuse (guards against
/// code-size explosion from careless schedules). Shared with
/// `halide_schedule::legality` like [`MAX_VECTOR_LANES`].
pub use halide_schedule::legality::MAX_UNROLL;

struct VectorizeUnroll {
    error: Option<LowerError>,
    /// Let bindings enclosing the current node (shadowing- and
    /// budget-aware, see [`LetResolver`]). A vectorized/unrolled loop
    /// extent that is a `<func>.<dim>.extent` name resolves through this to
    /// the constant the schedule promised.
    lets: LetResolver,
}

impl VectorizeUnroll {
    /// The constant value of `extent`, if it is constant either structurally
    /// or after resolving let-bound names.
    fn extent_const(&self, extent: &Expr) -> Option<i64> {
        const_int(extent).or_else(|| const_int(&self.lets.resolve(extent)))
    }
}

impl IrMutator for VectorizeUnroll {
    fn mutate_stmt(&mut self, s: &Stmt) -> Stmt {
        if self.error.is_some() {
            return s.clone();
        }
        if let StmtNode::LetStmt { name, value, body } = s.node() {
            let saved = self.lets.enter(name, value);
            let nb = self.mutate_stmt(body);
            self.lets.exit(name, saved);
            return if nb == *body {
                s.clone()
            } else {
                Stmt::let_stmt(name.clone(), value.clone(), nb)
            };
        }
        if let StmtNode::For {
            name,
            min,
            extent,
            kind,
            body,
        } = s.node()
        {
            match kind {
                ForKind::Vectorized => {
                    let Some(n) = self.extent_const(extent) else {
                        self.error = Some(LowerError::new(format!(
                            "vectorized loop {name:?} must have a constant extent, got {extent}"
                        )));
                        return s.clone();
                    };
                    if n < 1 || n > MAX_VECTOR_LANES {
                        self.error = Some(LowerError::new(format!(
                            "vectorized loop {name:?} has extent {n}, outside 1..={MAX_VECTOR_LANES}"
                        )));
                        return s.clone();
                    }
                    if n == 1 {
                        // A 1-wide vector loop is just the body at the min.
                        let body = substitute_in_stmt(body, name, min);
                        return self.mutate_stmt(&body);
                    }
                    let ramp = Expr::ramp(min.clone(), Expr::int(1), n as u16);
                    let body = substitute_in_stmt(body, name, &ramp);
                    return self.mutate_stmt(&body);
                }
                ForKind::Unrolled => {
                    let Some(n) = self.extent_const(extent) else {
                        self.error = Some(LowerError::new(format!(
                            "unrolled loop {name:?} must have a constant extent, got {extent}"
                        )));
                        return s.clone();
                    };
                    if n < 1 || n > MAX_UNROLL {
                        self.error = Some(LowerError::new(format!(
                            "unrolled loop {name:?} has extent {n}, outside 1..={MAX_UNROLL}"
                        )));
                        return s.clone();
                    }
                    let copies: Vec<Stmt> = (0..n)
                        .map(|i| {
                            let value = halide_ir::simplify(&(min.clone() + Expr::int(i as i32)));
                            let body = substitute_in_stmt(body, name, &value);
                            self.mutate_stmt(&body)
                        })
                        .collect();
                    return Stmt::block_of(copies);
                }
                _ => {}
            }
        }
        halide_ir::mutate_stmt_children(self, s)
    }
}

/// Replaces vectorized and unrolled loops with vector expressions and
/// replicated bodies respectively.
///
/// # Errors
///
/// Fails if a vectorized or unrolled loop has a non-constant or unreasonable
/// extent (the schedule should split by a constant factor first).
pub fn vectorize_and_unroll(stmt: &Stmt) -> Result<Stmt> {
    let mut pass = VectorizeUnroll {
        error: None,
        lets: LetResolver::new(256),
    };
    let out = pass.mutate_stmt(stmt);
    match pass.error {
        Some(e) => Err(e),
        None => Ok(simplify_stmt(&out)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use halide_ir::{ExprNode, Type};

    fn store_loop(kind: ForKind, extent: Expr) -> Stmt {
        Stmt::for_loop(
            "x",
            Expr::int(0),
            extent,
            kind,
            Stmt::store(
                "buf",
                Expr::load(Type::f32(), "src", Expr::var_i32("x")) * 2.0f32,
                Expr::var_i32("x"),
            ),
        )
    }

    #[test]
    fn vectorized_loop_becomes_ramp() {
        let s = store_loop(ForKind::Vectorized, Expr::int(8));
        let out = vectorize_and_unroll(&s).unwrap();
        let text = out.to_string();
        assert!(text.contains("ramp(0, 1, 8)"));
        assert!(!text.contains("for x"));
    }

    #[test]
    fn unrolled_loop_is_replicated() {
        let s = store_loop(ForKind::Unrolled, Expr::int(3));
        let out = vectorize_and_unroll(&s).unwrap();
        let text = out.to_string();
        assert!(text.contains("buf[0]"));
        assert!(text.contains("buf[1]"));
        assert!(text.contains("buf[2]"));
        assert!(!text.contains("for x"));
    }

    #[test]
    fn non_constant_extent_is_error() {
        let s = store_loop(ForKind::Vectorized, Expr::var_i32("n"));
        assert!(vectorize_and_unroll(&s).is_err());
        let s = store_loop(ForKind::Unrolled, Expr::var_i32("n"));
        assert!(vectorize_and_unroll(&s).is_err());
    }

    #[test]
    fn excessive_width_is_error() {
        let s = store_loop(ForKind::Vectorized, Expr::int(1024));
        assert!(vectorize_and_unroll(&s).is_err());
    }

    #[test]
    fn width_one_vector_is_scalarized() {
        let s = store_loop(ForKind::Vectorized, Expr::int(1));
        let out = vectorize_and_unroll(&s).unwrap();
        let text = out.to_string();
        assert!(!text.contains("ramp"));
        assert!(text.contains("buf[0]"));
    }

    #[test]
    fn serial_loops_are_untouched() {
        let s = store_loop(ForKind::Serial, Expr::var_i32("n"));
        let out = vectorize_and_unroll(&s).unwrap();
        assert!(matches!(
            out.node(),
            StmtNode::For {
                kind: ForKind::Serial,
                ..
            }
        ));
    }

    #[test]
    fn nested_vector_and_unroll() {
        let inner = Stmt::for_loop(
            "xi",
            Expr::int(0),
            Expr::int(4),
            ForKind::Vectorized,
            Stmt::store(
                "buf",
                Expr::var_i32("xi") + Expr::var_i32("yi"),
                Expr::var_i32("xi"),
            ),
        );
        let outer = Stmt::for_loop("yi", Expr::int(0), Expr::int(2), ForKind::Unrolled, inner);
        let out = vectorize_and_unroll(&outer).unwrap();
        let text = out.to_string();
        assert!(text.contains("ramp(0, 1, 4)"));
        assert!(!text.contains("for "));
        // ensure the unrolled copies reference distinct yi values
        assert!(text.contains("+ 1)") || text.contains("1 +"));
        let _ = ExprNode::Ramp {
            base: Expr::int(0),
            stride: Expr::int(1),
            lanes: 4,
        };
    }
}
