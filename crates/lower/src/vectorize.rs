//! Vectorization and unrolling (Sec. 4.5).
//!
//! A loop scheduled `vectorized` with constant extent *n* is eliminated: each
//! occurrence of its variable is replaced by the vector `ramp(min, 1, n)`,
//! turning scalar arithmetic into *n*-wide vector arithmetic, dense loads and
//! stores into vector loads/stores, and gathers/scatters where the index is
//! not affine. Because the language has no divergent control flow this is
//! always well defined; scalars that meet vectors are broadcast by the
//! value semantics of the executor.
//!
//! A loop scheduled `unrolled` with constant extent *n* is replaced by *n*
//! copies of its body with the loop variable bound to `min + i`.

use halide_ir::{
    const_int, mutate_expr_children, mutate_stmt_children, simplify_stmt, substitute_in_stmt,
    visit_expr_children, Expr, ExprNode, ForKind, IrMutator, IrVisitor, LetResolver, Stmt,
    StmtNode,
};

use crate::error::{LowerError, Result};

/// The widest vector the backend accepts. Wider vectorize factors are almost
/// certainly schedule bugs (or autotuner excess) and are rejected. Shared
/// with the ahead-of-time legality predicate (`halide_schedule::legality`)
/// so schedule generators and this pass can never disagree on the limit.
pub use halide_schedule::legality::MAX_VECTOR_LANES;

/// How many times a loop may be unrolled before we refuse (guards against
/// code-size explosion from careless schedules). Shared with
/// `halide_schedule::legality` like [`MAX_VECTOR_LANES`].
pub use halide_schedule::legality::MAX_UNROLL;

struct VectorizeUnroll {
    error: Option<LowerError>,
    /// Let bindings enclosing the current node (shadowing- and
    /// budget-aware, see [`LetResolver`]). A vectorized/unrolled loop
    /// extent that is a `<func>.<dim>.extent` name resolves through this to
    /// the constant the schedule promised.
    lets: LetResolver,
}

impl VectorizeUnroll {
    /// The constant value of `extent`, if it is constant either structurally
    /// or after resolving let-bound names.
    fn extent_const(&self, extent: &Expr) -> Option<i64> {
        const_int(extent).or_else(|| const_int(&self.lets.resolve(extent)))
    }
}

impl IrMutator for VectorizeUnroll {
    fn mutate_stmt(&mut self, s: &Stmt) -> Stmt {
        if self.error.is_some() {
            return s.clone();
        }
        if let StmtNode::LetStmt { name, value, body } = s.node() {
            let saved = self.lets.enter(name, value);
            let nb = self.mutate_stmt(body);
            self.lets.exit(name, saved);
            return if nb == *body {
                s.clone()
            } else {
                Stmt::let_stmt(name.clone(), value.clone(), nb)
            };
        }
        if let StmtNode::For {
            name,
            min,
            extent,
            kind,
            body,
        } = s.node()
        {
            match kind {
                ForKind::Vectorized => {
                    let Some(n) = self.extent_const(extent) else {
                        self.error = Some(LowerError::new(format!(
                            "vectorized loop {name:?} must have a constant extent, but its \
                             extent is {extent}; split the dimension by a constant factor and \
                             vectorize the inner half. If the factor does not divide the \
                             extent, pick a tail strategy on the split: guard_with_if (scalar \
                             epilogue, works anywhere), predicate (masked full-width tail, \
                             works anywhere), or round_up (no tail, interior functions only)"
                        )));
                        return s.clone();
                    };
                    if n < 1 || n > MAX_VECTOR_LANES {
                        self.error = Some(LowerError::new(format!(
                            "vectorized loop {name:?} has extent {n}, outside 1..={MAX_VECTOR_LANES}"
                        )));
                        return s.clone();
                    }
                    if n == 1 {
                        // A 1-wide vector loop is just the body at the min.
                        let body = substitute_in_stmt(body, name, min);
                        return self.mutate_stmt(&body);
                    }
                    let ramp = Expr::ramp(min.clone(), Expr::int(1), n as u16);
                    let body = substitute_in_stmt(body, name, &ramp);
                    return self.mutate_stmt(&body);
                }
                ForKind::Unrolled => {
                    let Some(n) = self.extent_const(extent) else {
                        self.error = Some(LowerError::new(format!(
                            "unrolled loop {name:?} must have a constant extent, got {extent}"
                        )));
                        return s.clone();
                    };
                    if n < 1 || n > MAX_UNROLL {
                        self.error = Some(LowerError::new(format!(
                            "unrolled loop {name:?} has extent {n}, outside 1..={MAX_UNROLL}"
                        )));
                        return s.clone();
                    }
                    let copies: Vec<Stmt> = (0..n)
                        .map(|i| {
                            let value = halide_ir::simplify(&(min.clone() + Expr::int(i as i32)));
                            let body = substitute_in_stmt(body, name, &value);
                            self.mutate_stmt(&body)
                        })
                        .collect();
                    return Stmt::block_of(copies);
                }
                _ => {}
            }
        }
        halide_ir::mutate_stmt_children(self, s)
    }
}

/// True when `e` is (or contains) a vector value: a ramp or broadcast node,
/// or a variable let-bound to one. `lets` is the stack of enclosing
/// statement-level bindings with their vectorness; lookups take the last
/// (innermost, shadowing) entry.
fn contains_vector(e: &Expr, lets: &[(String, bool)]) -> bool {
    struct Finder<'a> {
        lets: &'a [(String, bool)],
        found: bool,
    }
    impl IrVisitor for Finder<'_> {
        fn visit_expr(&mut self, e: &Expr) {
            if self.found {
                return;
            }
            match e.node() {
                ExprNode::Ramp { .. } | ExprNode::Broadcast { .. } => {
                    self.found = true;
                    return;
                }
                ExprNode::Var { name, .. } => {
                    if let Some((_, v)) = self.lets.iter().rev().find(|(n, _)| n == name) {
                        if *v {
                            self.found = true;
                        }
                    }
                }
                _ => {}
            }
            visit_expr_children(self, e);
        }
    }
    let mut f = Finder { lets, found: false };
    f.visit_expr(e);
    f.found
}

/// Rewrites every load and store in a subtree to carry `cond` as (part of)
/// its lane predicate. Applied to the body of an `if` whose condition became
/// a vector after ramp substitution: a disabled lane must neither fault on
/// an out-of-range access nor write its result.
struct Predicator {
    cond: Expr,
}

impl IrMutator for Predicator {
    fn mutate_expr(&mut self, e: &Expr) -> Expr {
        let e = mutate_expr_children(self, e);
        if let ExprNode::Load {
            ty,
            name,
            index,
            predicate,
        } = e.node()
        {
            let p = match predicate {
                Some(p) => Expr::and(p.clone(), self.cond.clone()),
                None => self.cond.clone(),
            };
            return Expr::load_predicated(*ty, name.clone(), index.clone(), p);
        }
        e
    }

    fn mutate_stmt(&mut self, s: &Stmt) -> Stmt {
        let s = mutate_stmt_children(self, s);
        if let StmtNode::Store {
            name,
            value,
            index,
            predicate,
        } = s.node()
        {
            let p = match predicate {
                Some(p) => Expr::and(p.clone(), self.cond.clone()),
                None => self.cond.clone(),
            };
            return Stmt::store_predicated(name.clone(), value.clone(), index.clone(), p);
        }
        s
    }
}

/// Converts `if`s whose condition became a vector (a predicate-tail guard
/// after ramp substitution) into predicated loads and stores: the branch
/// body executes full-width with the condition as every memory operation's
/// lane mask, and the `if` itself disappears. Pure arithmetic on disabled
/// lanes is harmless — it is never stored, and masked loads feed it zeros
/// instead of faulting.
struct PredicateIfs {
    error: Option<LowerError>,
    /// Enclosing statement-level lets and whether each binds a vector.
    lets: Vec<(String, bool)>,
}

impl IrMutator for PredicateIfs {
    fn mutate_stmt(&mut self, s: &Stmt) -> Stmt {
        if self.error.is_some() {
            return s.clone();
        }
        match s.node() {
            StmtNode::LetStmt { name, value, body } => {
                let is_vec = contains_vector(value, &self.lets);
                self.lets.push((name.clone(), is_vec));
                let nb = self.mutate_stmt(body);
                self.lets.pop();
                if nb == *body {
                    s.clone()
                } else {
                    Stmt::let_stmt(name.clone(), value.clone(), nb)
                }
            }
            StmtNode::IfThenElse {
                condition,
                then_case,
                else_case,
            } if contains_vector(condition, &self.lets) => {
                if else_case.is_some() {
                    self.error = Some(LowerError::new(format!(
                        "an if over the vectorized condition {condition} has an else branch, \
                         which cannot be predicated"
                    )));
                    return s.clone();
                }
                // Inner vector ifs first, so nested guards AND together.
                let t = self.mutate_stmt(then_case);
                Predicator {
                    cond: condition.clone(),
                }
                .mutate_stmt(&t)
            }
            _ => mutate_stmt_children(self, s),
        }
    }
}

/// Replaces vectorized and unrolled loops with vector expressions and
/// replicated bodies respectively, then lowers `if`s whose condition became
/// a vector (predicate-tail guards) into predicated loads and stores.
///
/// # Errors
///
/// Fails if a vectorized or unrolled loop has a non-constant or unreasonable
/// extent (the schedule should split by a constant factor first, picking a
/// tail strategy when the factor does not divide), or if a vector condition
/// guards an `if` with an else branch.
pub fn vectorize_and_unroll(stmt: &Stmt) -> Result<Stmt> {
    let mut pass = VectorizeUnroll {
        error: None,
        lets: LetResolver::new(256),
    };
    let out = pass.mutate_stmt(stmt);
    if let Some(e) = pass.error {
        return Err(e);
    }
    let mut pred = PredicateIfs {
        error: None,
        lets: Vec::new(),
    };
    let out = pred.mutate_stmt(&out);
    match pred.error {
        Some(e) => Err(e),
        None => Ok(simplify_stmt(&out)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use halide_ir::{ExprNode, Type};

    fn store_loop(kind: ForKind, extent: Expr) -> Stmt {
        Stmt::for_loop(
            "x",
            Expr::int(0),
            extent,
            kind,
            Stmt::store(
                "buf",
                Expr::load(Type::f32(), "src", Expr::var_i32("x")) * 2.0f32,
                Expr::var_i32("x"),
            ),
        )
    }

    #[test]
    fn vectorized_loop_becomes_ramp() {
        let s = store_loop(ForKind::Vectorized, Expr::int(8));
        let out = vectorize_and_unroll(&s).unwrap();
        let text = out.to_string();
        assert!(text.contains("ramp(0, 1, 8)"));
        assert!(!text.contains("for x"));
    }

    #[test]
    fn unrolled_loop_is_replicated() {
        let s = store_loop(ForKind::Unrolled, Expr::int(3));
        let out = vectorize_and_unroll(&s).unwrap();
        let text = out.to_string();
        assert!(text.contains("buf[0]"));
        assert!(text.contains("buf[1]"));
        assert!(text.contains("buf[2]"));
        assert!(!text.contains("for x"));
    }

    #[test]
    fn non_constant_extent_is_error() {
        let s = store_loop(ForKind::Vectorized, Expr::var_i32("n"));
        assert!(vectorize_and_unroll(&s).is_err());
        let s = store_loop(ForKind::Unrolled, Expr::var_i32("n"));
        assert!(vectorize_and_unroll(&s).is_err());
    }

    #[test]
    fn excessive_width_is_error() {
        let s = store_loop(ForKind::Vectorized, Expr::int(1024));
        assert!(vectorize_and_unroll(&s).is_err());
    }

    #[test]
    fn width_one_vector_is_scalarized() {
        let s = store_loop(ForKind::Vectorized, Expr::int(1));
        let out = vectorize_and_unroll(&s).unwrap();
        let text = out.to_string();
        assert!(!text.contains("ramp"));
        assert!(text.contains("buf[0]"));
    }

    #[test]
    fn serial_loops_are_untouched() {
        let s = store_loop(ForKind::Serial, Expr::var_i32("n"));
        let out = vectorize_and_unroll(&s).unwrap();
        assert!(matches!(
            out.node(),
            StmtNode::For {
                kind: ForKind::Serial,
                ..
            }
        ));
    }

    #[test]
    fn nested_vector_and_unroll() {
        let inner = Stmt::for_loop(
            "xi",
            Expr::int(0),
            Expr::int(4),
            ForKind::Vectorized,
            Stmt::store(
                "buf",
                Expr::var_i32("xi") + Expr::var_i32("yi"),
                Expr::var_i32("xi"),
            ),
        );
        let outer = Stmt::for_loop("yi", Expr::int(0), Expr::int(2), ForKind::Unrolled, inner);
        let out = vectorize_and_unroll(&outer).unwrap();
        let text = out.to_string();
        assert!(text.contains("ramp(0, 1, 4)"));
        assert!(!text.contains("for "));
        // ensure the unrolled copies reference distinct yi values
        assert!(text.contains("+ 1)") || text.contains("1 +"));
        let _ = ExprNode::Ramp {
            base: Expr::int(0),
            stride: Expr::int(1),
            lanes: 4,
        };
    }
}
