//! Sliding window optimization and storage folding (Sec. 4.3).
//!
//! When a function's storage lives at a coarser loop level than its
//! computation, with a serial loop in between, consecutive iterations of that
//! loop can reuse values computed by earlier iterations:
//!
//! * the **sliding window** pass shrinks the region computed per iteration to
//!   exclude everything already computed (trading parallelism of that loop
//!   for the elimination of redundant work);
//! * the **storage folding** pass shrinks the allocation itself when each
//!   iteration only touches a bounded, monotonically advancing window of it
//!   (e.g. keeping just 3 scanlines of `blurx` live instead of the whole
//!   image).
//!
//! Both optimizations pattern-match on how bounds *move* with the serial
//! loop variable. Since injection binds bounds to `<func>.<dim>.min` /
//! `<func>.<dim>.extent` names, a produce loop's min is usually just a
//! variable; the pass therefore carries an environment of the visible let
//! bindings and resolves loop bounds through it before testing
//! monotonicity. Only the loops it actually rewrites get concrete
//! expressions back — everything else keeps the compact name form.

use std::collections::BTreeMap;

use halide_ir::{
    simplify, substitute, CallType, Expr, ExprNode, ForKind, IrMutator, LetResolver, Range, Stmt,
    StmtNode,
};

use crate::bounds::region_required;
use crate::inject::FuncDef;
use crate::nest::loop_var;

/// The largest expression (in nodes) worth resolving through the let
/// bindings: resolution beyond this cannot expose the small
/// name-plus-offset patterns this pass matches on, and an uncapped
/// transitive resolution would blow up on deep pipelines.
const LET_RESOLVE_BUDGET: usize = 256;

/// Statistics describing what the pass did — used by tests and by the
/// ablation benchmarks.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SlidingReport {
    /// Functions whose computed region was shrunk by the sliding window pass.
    pub slid: Vec<String>,
    /// Functions whose storage was folded, with the fold factor per folded
    /// dimension index.
    pub folded: Vec<(String, usize, i64)>,
}

/// True if `stmt` directly contains (not nested under another `For`) the
/// produce marker of `func`.
fn directly_contains_produce(stmt: &Stmt, func: &str) -> bool {
    match stmt.node() {
        StmtNode::Producer {
            name,
            is_produce,
            body,
        } => (*is_produce && name == func) || directly_contains_produce(body, func),
        StmtNode::Block { stmts } => stmts.iter().any(|s| directly_contains_produce(s, func)),
        StmtNode::LetStmt { body, .. }
        | StmtNode::Realize { body, .. }
        | StmtNode::Allocate { body, .. } => directly_contains_produce(body, func),
        StmtNode::IfThenElse {
            then_case,
            else_case,
            ..
        } => {
            directly_contains_produce(then_case, func)
                || else_case
                    .as_ref()
                    .map(|e| directly_contains_produce(e, func))
                    .unwrap_or(false)
        }
        _ => false,
    }
}

/// `Some(delta)` if `expr(v) - expr(v-1)` simplifies to a non-negative
/// constant, i.e. the expression is monotonically non-decreasing in `v` with
/// a known step.
fn monotonic_step(expr: &Expr, v: &str) -> Option<i64> {
    let prev = substitute(expr, v, &(Expr::var_i32(v) - 1));
    let delta = simplify(&(expr.clone() - prev));
    match delta.as_const_int() {
        Some(d) if d >= 0 => Some(d),
        _ => None,
    }
}

struct ProduceLoopRewriter<'a> {
    func: &'a str,
    serial_var: &'a str,
    serial_min: Expr,
    /// Let bindings visible at the current walk position, seeded with the
    /// bindings enclosing the realization being optimized. Loop bounds are
    /// resolved through it so a min that is just `<func>.<dim>.min` still
    /// reveals its dependence on the serial loop variable.
    lets: LetResolver,
    inside_produce: bool,
    rewrote: bool,
}

impl IrMutator for ProduceLoopRewriter<'_> {
    fn mutate_stmt(&mut self, s: &Stmt) -> Stmt {
        match s.node() {
            StmtNode::LetStmt { name, value, body } => {
                let saved = self.lets.enter(name, value);
                let nb = self.mutate_stmt(body);
                self.lets.exit(name, saved);
                if nb == *body {
                    s.clone()
                } else {
                    Stmt::let_stmt(name.clone(), value.clone(), nb)
                }
            }
            StmtNode::Producer {
                name,
                is_produce,
                body,
            } if *is_produce && name == self.func => {
                let was = self.inside_produce;
                self.inside_produce = true;
                let nb = self.mutate_stmt(body);
                self.inside_produce = was;
                Stmt::produce(name.clone(), nb)
            }
            StmtNode::For {
                name,
                min,
                extent,
                kind,
                body,
            } if self.inside_produce
                && !self.rewrote
                && name.starts_with(&format!("{}.", self.func)) =>
            {
                let rmin = self.lets.resolve(min);
                let rmax = simplify(&(rmin.clone() + self.lets.resolve(extent) - 1));
                let depends = halide_ir::expr_uses_var(&rmin, self.serial_var);
                if depends {
                    if let (Some(_), Some(_)) = (
                        monotonic_step(&rmin, self.serial_var),
                        monotonic_step(&rmax, self.serial_var),
                    ) {
                        self.rewrote = true;
                        let prev_max = substitute(
                            &rmax,
                            self.serial_var,
                            &(Expr::var_i32(self.serial_var) - 1),
                        );
                        let is_first =
                            Expr::le(Expr::var_i32(self.serial_var), self.serial_min.clone());
                        let new_min = Expr::select(
                            is_first,
                            rmin.clone(),
                            Expr::max(rmin.clone(), prev_max + 1),
                        );
                        let new_extent = simplify(&(rmax - new_min.clone() + 1));
                        return Stmt::for_loop(
                            name.clone(),
                            simplify(&new_min),
                            new_extent,
                            *kind,
                            body.clone(),
                        );
                    }
                }
                halide_ir::mutate_stmt_children(self, s)
            }
            _ => halide_ir::mutate_stmt_children(self, s),
        }
    }
}

struct FoldIndexRewriter<'a> {
    func: &'a str,
    dim: usize,
    factor: i64,
}

impl IrMutator for FoldIndexRewriter<'_> {
    fn mutate_expr(&mut self, e: &Expr) -> Expr {
        let e = halide_ir::mutate_expr_children(self, e);
        if let ExprNode::Call {
            ty,
            name,
            call_type: CallType::Halide,
            args,
        } = e.node()
        {
            if name == self.func {
                let mut args = args.clone();
                args[self.dim] = args[self.dim].clone() % Expr::int(self.factor as i32);
                return Expr::call(*ty, name.clone(), CallType::Halide, args);
            }
        }
        e
    }

    fn mutate_stmt(&mut self, s: &Stmt) -> Stmt {
        let s = halide_ir::mutate_stmt_children(self, s);
        if let StmtNode::Provide { name, value, args } = s.node() {
            if name == self.func {
                let mut args = args.clone();
                args[self.dim] = args[self.dim].clone() % Expr::int(self.factor as i32);
                return Stmt::provide(name.clone(), value.clone(), args);
            }
        }
        s
    }
}

struct SlidingPass<'a> {
    env: &'a BTreeMap<String, FuncDef>,
    enable_sliding: bool,
    enable_folding: bool,
    /// Let bindings enclosing the current walk position — in particular the
    /// `<func>.<dim>.min/.extent` bindings wrapping each `Realize`.
    lets: LetResolver,
    report: SlidingReport,
}

impl SlidingPass<'_> {
    /// Applies sliding window + storage folding inside one realization whose
    /// produce sits inside an intervening serial loop.
    fn optimize_realize(
        &mut self,
        func: &FuncDef,
        ty: halide_ir::Type,
        bounds: &[Range],
        body: &Stmt,
    ) -> Stmt {
        // Find the serial loop directly containing the produce of this func.
        // Every loop *between* the storage level and that loop must itself be
        // serial: both optimizations assume the iterations covering the
        // shared allocation run in order, one at a time. A parallel loop in
        // between hands each thread the same (slid-into or folded) storage —
        // a data race — so the walk refuses to descend through any
        // non-serial loop.
        fn find_serial_loop(s: &Stmt, func: &str) -> Option<(String, Expr)> {
            match s.node() {
                StmtNode::For {
                    name,
                    min,
                    kind,
                    body,
                    ..
                } => {
                    if *kind != ForKind::Serial {
                        return None;
                    }
                    if directly_contains_produce(body, func) {
                        Some((name.clone(), min.clone()))
                    } else {
                        find_serial_loop(body, func)
                    }
                }
                StmtNode::Block { stmts } => stmts.iter().find_map(|s| find_serial_loop(s, func)),
                StmtNode::LetStmt { body, .. }
                | StmtNode::Producer { body, .. }
                | StmtNode::Realize { body, .. }
                | StmtNode::Allocate { body, .. } => find_serial_loop(body, func),
                StmtNode::IfThenElse {
                    then_case,
                    else_case,
                    ..
                } => find_serial_loop(then_case, func)
                    .or_else(|| else_case.as_ref().and_then(|e| find_serial_loop(e, func))),
                _ => None,
            }
        }

        let Some((serial_var, serial_min)) = find_serial_loop(body, &func.name) else {
            return Stmt::realize(func.name.clone(), ty, bounds.to_vec(), body.clone());
        };

        // The per-iteration footprint of the function along each dimension,
        // with the serial loop variable kept symbolic: the basis for both
        // folding and (implicitly) the legality of sliding.
        let loop_body = {
            // Extract the body of the serial loop for footprint analysis.
            fn body_of(s: &Stmt, target: &str) -> Option<Stmt> {
                match s.node() {
                    StmtNode::For { name, body, .. } if name == target => Some(body.clone()),
                    StmtNode::For { body, .. }
                    | StmtNode::LetStmt { body, .. }
                    | StmtNode::Producer { body, .. }
                    | StmtNode::Realize { body, .. }
                    | StmtNode::Allocate { body, .. } => body_of(body, target),
                    StmtNode::Block { stmts } => stmts.iter().find_map(|s| body_of(s, target)),
                    StmtNode::IfThenElse {
                        then_case,
                        else_case,
                        ..
                    } => body_of(then_case, target)
                        .or_else(|| else_case.as_ref().and_then(|e| body_of(e, target))),
                    _ => None,
                }
            }
            body_of(body, &serial_var)
        };

        let mut new_body = body.clone();

        if self.enable_sliding {
            let mut rewriter = ProduceLoopRewriter {
                func: &func.name,
                serial_var: &serial_var,
                serial_min: serial_min.clone(),
                lets: self.lets.clone(),
                inside_produce: false,
                rewrote: false,
            };
            new_body = rewriter.mutate_stmt(&new_body);
            if rewriter.rewrote {
                self.report.slid.push(func.name.clone());
            }
        }

        let mut new_bounds = bounds.to_vec();
        if self.enable_folding {
            if let Some(lb) = loop_body {
                let footprint = region_required(&lb, &func.name, func.args.len());
                for (d, interval) in footprint.dims.iter().enumerate() {
                    let per_iter_extent = interval.extent().and_then(|e| e.as_const_int());
                    // The realize extent is usually a `<func>.<dim>.extent`
                    // name; resolve it through the enclosing lets so the
                    // shrink check still sees constants.
                    let realize_extent = self.lets.resolve(&bounds[d].extent).as_const_int();
                    let Some(c) = per_iter_extent else { continue };
                    if c <= 0 {
                        continue;
                    }
                    // Only fold if it actually shrinks the allocation (or the
                    // allocation size is unknown, in which case folding bounds it).
                    if let Some(re) = realize_extent {
                        if re <= c {
                            continue;
                        }
                    }
                    // The window must march monotonically with the serial loop.
                    let Some(min_expr) = &interval.min else {
                        continue;
                    };
                    if monotonic_step(min_expr, &serial_var).is_none() {
                        continue;
                    }
                    new_body = FoldIndexRewriter {
                        func: &func.name,
                        dim: d,
                        factor: c,
                    }
                    .mutate_stmt(&new_body);
                    new_bounds[d] = Range::new(Expr::int(0), Expr::int(c as i32));
                    self.report.folded.push((func.name.clone(), d, c));
                }
            }
        }

        Stmt::realize(func.name.clone(), ty, new_bounds, new_body)
    }
}

impl IrMutator for SlidingPass<'_> {
    fn mutate_stmt(&mut self, s: &Stmt) -> Stmt {
        match s.node() {
            StmtNode::LetStmt { name, value, body } => {
                let saved = self.lets.enter(name, value);
                let nb = self.mutate_stmt(body);
                self.lets.exit(name, saved);
                if nb == *body {
                    s.clone()
                } else {
                    Stmt::let_stmt(name.clone(), value.clone(), nb)
                }
            }
            StmtNode::Realize {
                name,
                ty,
                bounds,
                body,
            } => {
                let body = self.mutate_stmt(body); // handle nested realizations first
                if let Some(def) = self.env.get(name) {
                    let store_differs = def.schedule.store_level != def.schedule.compute_level;
                    if store_differs {
                        return self.optimize_realize(def, *ty, bounds, &body);
                    }
                }
                Stmt::realize(name.clone(), *ty, bounds.clone(), body)
            }
            _ => halide_ir::mutate_stmt_children(self, s),
        }
    }
}

/// Runs sliding window and storage folding over a lowered (pre-flattening)
/// statement. Either optimization can be disabled for ablation studies.
pub fn sliding_and_folding(
    stmt: &Stmt,
    env: &BTreeMap<String, FuncDef>,
    enable_sliding: bool,
    enable_folding: bool,
) -> (Stmt, SlidingReport) {
    let mut pass = SlidingPass {
        env,
        enable_sliding,
        enable_folding,
        lets: LetResolver::new(LET_RESOLVE_BUDGET),
        report: SlidingReport::default(),
    };
    let out = pass.mutate_stmt(stmt);
    (out, pass.report)
}

/// Convenience: the loop-variable name the sliding pass uses for a consumer
/// dimension (same as the lowering pass).
pub fn consumer_loop_var(func: &str, dim: &str) -> String {
    loop_var(func, dim)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inject::{build_pipeline_stmt, snapshot_pipeline};
    use halide_ir::Type;
    use halide_lang::{Func, ImageParam, Pipeline, Var};

    fn sliding_blur(prefix: &str) -> (Pipeline, String, String) {
        let input = ImageParam::new(format!("{prefix}_in"), Type::f32(), 2);
        let (x, y) = (Var::new("x"), Var::new("y"));
        let blurx = Func::new(format!("{prefix}_blurx"));
        blurx.define(
            &[x.clone(), y.clone()],
            input.at_clamped(vec![x.expr() - 1, y.expr()])
                + input.at_clamped(vec![x.expr(), y.expr()])
                + input.at_clamped(vec![x.expr() + 1, y.expr()]),
        );
        let out = Func::new(format!("{prefix}_out"));
        out.define(
            &[x.clone(), y.clone()],
            blurx.at(vec![x.expr(), y.expr() - 1])
                + blurx.at(vec![x.expr(), y.expr()])
                + blurx.at(vec![x.expr(), y.expr() + 1]),
        );
        {
            let b = &blurx;
            b.compute_at(&out, "y");
            b.store_root();
        }
        let bn = blurx.name();
        let on = out.name();
        (Pipeline::new(&out), bn, on)
    }

    #[test]
    fn sliding_window_shrinks_computation() {
        let (p, blurx, out) = sliding_blur("slide_basic");
        let env = snapshot_pipeline(&p);
        let order = p.realization_order();
        let stmt = build_pipeline_stmt(&env, &order, &out).unwrap();
        let (optimized, report) = sliding_and_folding(&stmt, &env, true, false);
        assert_eq!(report.slid, vec![blurx.clone()]);
        let text = optimized.to_string();
        // The produce loop min now uses a select on the first iteration and a
        // max against the previous iteration's coverage.
        assert!(text.contains("select("));
        assert!(text.contains("max("));
    }

    #[test]
    fn storage_folding_shrinks_allocation() {
        let (p, blurx, out) = sliding_blur("slide_fold");
        let env = snapshot_pipeline(&p);
        let order = p.realization_order();
        let stmt = build_pipeline_stmt(&env, &order, &out).unwrap();
        let (optimized, report) = sliding_and_folding(&stmt, &env, true, true);
        // Folded along y by the 3-row stencil window.
        assert!(report
            .folded
            .iter()
            .any(|(f, d, c)| f == &blurx && *d == 1 && *c == 3));
        let text = optimized.to_string();
        assert!(text.contains("% 3"));
        let _ = out;
    }

    #[test]
    fn no_optimization_when_store_equals_compute() {
        let input = ImageParam::new("slide_none_in", Type::f32(), 2);
        let (x, y) = (Var::new("x"), Var::new("y"));
        let f = Func::new("slide_none_f");
        f.define(
            &[x.clone(), y.clone()],
            input.at_clamped(vec![x.expr(), y.expr()]),
        );
        let g = Func::new("slide_none_g");
        g.define(
            &[x.clone(), y.clone()],
            f.at(vec![x.expr(), y.expr() - 1]) + f.at(vec![x.expr(), y.expr() + 1]),
        );
        // default: f computed and stored at root — nothing to slide or fold
        let p = Pipeline::new(&g);
        let env = snapshot_pipeline(&p);
        let order = p.realization_order();
        let stmt = build_pipeline_stmt(&env, &order, &g.name()).unwrap();
        let (_, report) = sliding_and_folding(&stmt, &env, true, true);
        assert!(report.slid.is_empty());
        assert!(report.folded.is_empty());
    }

    #[test]
    fn no_optimization_across_a_parallel_loop() {
        // store_root + compute_at inside a *parallel* consumer loop: folding
        // the storage to one scanline (or sliding into it) would make every
        // thread share the same window — a data race the fuzzer caught
        // (seeds 918 and 1050). The pass must leave such realizations alone.
        let input = ImageParam::new("slide_par_in", Type::f32(), 2);
        let (x, y) = (Var::new("x"), Var::new("y"));
        let blurx = Func::new("slide_par_blurx");
        blurx.define(
            &[x.clone(), y.clone()],
            input.at_clamped(vec![x.expr(), y.expr() - 1])
                + input.at_clamped(vec![x.expr(), y.expr() + 1]),
        );
        let outf = Func::new("slide_par_out");
        outf.define(
            &[x.clone(), y.clone()],
            blurx.at(vec![x.expr(), y.expr() - 1]) + blurx.at(vec![x.expr(), y.expr() + 1]),
        );
        // Compute sits inside the serial x loop, one level *below* the
        // parallel y loop; storage is at root, so the parallel loop lies
        // between storage and compute.
        blurx.compute_at(&outf, "x");
        blurx.store_root();
        outf.parallelize("y");
        let out = outf.name();
        let p = Pipeline::new(&outf);
        let env = snapshot_pipeline(&p);
        let order = p.realization_order();
        let stmt = build_pipeline_stmt(&env, &order, &out).unwrap();
        let (optimized, report) = sliding_and_folding(&stmt, &env, true, true);
        assert!(report.slid.is_empty(), "slid across a parallel loop");
        assert!(report.folded.is_empty(), "folded across a parallel loop");
        assert_eq!(optimized.to_string(), stmt.to_string());
    }

    #[test]
    fn monotonic_step_detection() {
        let v = Expr::var_i32("v");
        assert_eq!(monotonic_step(&(v.clone() * 2 + 3), "v"), Some(2));
        assert_eq!(monotonic_step(&Expr::int(7), "v"), Some(0));
        assert_eq!(monotonic_step(&(Expr::int(10) - v.clone()), "v"), None);
        // non-linear dependence is rejected
        assert_eq!(monotonic_step(&(v.clone() * v), "v"), None);
    }

    #[test]
    fn sliding_disabled_is_a_no_op() {
        let (p, _blurx, out) = sliding_blur("slide_disabled");
        let env = snapshot_pipeline(&p);
        let order = p.realization_order();
        let stmt = build_pipeline_stmt(&env, &order, &out).unwrap();
        let (optimized, report) = sliding_and_folding(&stmt, &env, false, false);
        assert!(report.slid.is_empty());
        assert!(report.folded.is_empty());
        assert_eq!(optimized.to_string(), stmt.to_string());
    }
}
