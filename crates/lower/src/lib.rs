//! # halide-lower
//!
//! The optimizing compiler of the halide-rs reproduction (Sec. 4 of the
//! paper): it combines the functions describing a pipeline with a
//! fully-specified schedule for each function and synthesizes a single
//! imperative program implementing the whole pipeline.
//!
//! Pass order follows Fig. 5:
//!
//! 1. lowering & loop synthesis ([`nest`], [`inject`]),
//! 2. bounds inference by interval analysis ([`bounds`], integrated into
//!    injection; each realization's bounds are bound to
//!    `<func>.<dim>.min` / `<func>.<dim>.extent` `let`s that every loop
//!    nest and `Realize` references by name — see [`inject`] for why this
//!    keeps lowered size linear in pipeline depth),
//! 3. sliding window optimization and storage folding ([`sliding`];
//!    let-aware: bounds are resolved through the visible bindings before
//!    monotonicity is tested),
//! 4. flattening ([`flatten`]; buffer layout symbols are `let`s referencing
//!    the bounds names),
//! 5. vectorization and unrolling ([`vectorize`]; extents resolve through
//!    the visible bindings, so a let-bound constant extent still counts as
//!    constant),
//! 6. loop-invariant mask hoisting ([`licm`]; `select` conditions invariant
//!    in an enclosing loop become leading `let`s of its body, which the
//!    execution engines evaluate once per loop entry),
//! 7. simplification (throughout; the statement simplifier is
//!    scope-carrying, folding min/max terms over let-bound bounds names).
//!
//! Each pass assumes the previous ones ran: sliding/folding pattern-match
//! the `Realize`/`Producer` structure injection emits, flattening assumes
//! bounds are already named (its layout lets just alias them), and
//! vectorization assumes storage is flat (it rewrites `Load`/`Store`
//! indices, not `Call`/`Provide` coordinates).
//!
//! The result is a [`Module`]: a single statement plus metadata, ready for
//! the backend (`halide-exec`) to compile to closures and run. A pass-by-
//! pass walkthrough with the actual IR at each stage lives in
//! `docs/lowering.md` at the repository root.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod bounds;
pub mod error;
pub mod flatten;
pub mod inject;
pub mod licm;
pub mod nest;
pub mod sliding;
pub mod vectorize;

use std::collections::BTreeMap;

use halide_ir::{simplify_stmt, Stmt, Type};
use halide_lang::Pipeline;

pub use error::{LowerError, Result};
pub use inject::{snapshot_pipeline, FuncDef};
pub use sliding::SlidingReport;

/// Options controlling which optimizations run — primarily for the ablation
/// benchmarks (everything on is the paper's configuration).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LowerOptions {
    /// Enable the sliding window optimization (Sec. 4.3).
    pub sliding_window: bool,
    /// Enable storage folding (Sec. 4.3).
    pub storage_folding: bool,
    /// Enable vectorization/unrolling of loops so scheduled (Sec. 4.5).
    /// When disabled, vectorized/unrolled loops run as serial loops.
    pub vectorize: bool,
}

impl Default for LowerOptions {
    fn default() -> Self {
        LowerOptions {
            sliding_window: true,
            storage_folding: true,
            vectorize: true,
        }
    }
}

/// Description of the pipeline's output buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OutputMeta {
    /// Buffer name (the output function's name).
    pub name: String,
    /// Dimension (pure argument) names, in order.
    pub args: Vec<String>,
    /// Element type.
    pub ty: Type,
}

/// A compiled pipeline: the lowered statement plus the metadata the backend
/// needs to bind inputs and outputs.
#[derive(Debug, Clone)]
pub struct Module {
    /// Human-readable name (the output function's name).
    pub name: String,
    /// The fully lowered statement implementing the pipeline.
    pub stmt: Stmt,
    /// Output buffer description.
    pub output: OutputMeta,
    /// Names of the input images the statement loads from.
    pub inputs: Vec<String>,
    /// Per-function definitions as seen by the compiler (after inlining),
    /// useful for instrumentation and debugging.
    pub env: BTreeMap<String, FuncDef>,
    /// What the sliding-window/storage-folding pass did.
    pub sliding_report: SlidingReport,
    /// Every scalar symbol the statement references but does not bind itself
    /// (buffer layout symbols, the output's bounds names, scalar parameters),
    /// sorted. A backend must bind all of these before executing `stmt`.
    pub free_symbols: Vec<String>,
    /// Buffers the statement loads from or stores to without allocating them
    /// itself (the input images plus the output buffer), sorted. A backend
    /// must bind all of these before executing `stmt`.
    pub external_buffers: Vec<String>,
}

impl Module {
    /// Pretty-prints the lowered statement (the equivalent of Fig. 5's
    /// right-hand column).
    pub fn pretty(&self) -> String {
        self.stmt.to_string()
    }
}

/// Compiles a pipeline with all optimizations enabled.
///
/// # Errors
///
/// Fails when the schedule is invalid for this pipeline (unknown loop levels,
/// levels that do not enclose all uses, unbounded accesses, non-constant
/// vector extents, ...).
pub fn lower(pipeline: &Pipeline) -> Result<Module> {
    lower_with_options(pipeline, &LowerOptions::default())
}

/// Compiles a pipeline with explicit [`LowerOptions`].
///
/// # Errors
///
/// Same conditions as [`lower`].
pub fn lower_with_options(pipeline: &Pipeline, options: &LowerOptions) -> Result<Module> {
    pipeline.validate_schedules()?;

    let mut env = snapshot_pipeline(pipeline);
    let order = pipeline.realization_order();
    let output = pipeline.output().name();

    // 1. Inline total-fusion functions.
    {
        let _span = halide_trace::span("lower/inline", "compile");
        inject::inline_all(&mut env, &order, &output)?;
    }

    // 2. Loop synthesis + injection + bounds inference.
    let stmt = {
        let _span = halide_trace::span("lower/inject-bounds", "compile");
        inject::build_pipeline_stmt(&env, &order, &output)?
    };

    // 3. Sliding window + storage folding.
    let (stmt, sliding_report) = {
        let _span = halide_trace::span("lower/sliding", "compile");
        let (stmt, report) = sliding::sliding_and_folding(
            &stmt,
            &env,
            options.sliding_window,
            options.storage_folding,
        );
        (simplify_stmt(&stmt), report)
    };

    // 4. Flattening.
    let stmt = {
        let _span = halide_trace::span("lower/flatten", "compile");
        flatten::flatten(&stmt)
    };

    // 5. Vectorization and unrolling.
    let stmt = {
        let _span = halide_trace::span("lower/vectorize", "compile");
        if options.vectorize {
            vectorize::vectorize_and_unroll(&stmt)?
        } else {
            demote_vector_loops(&stmt)
        }
    };

    // 6. Loop-invariant mask hoisting: `select` conditions that do not
    //    depend on an enclosing loop's variable are bound to `let`s at the
    //    loop-body head, where both execution engines' invariant-let peeling
    //    evaluates them once per loop entry.
    let stmt = {
        let _span = halide_trace::span("lower/licm", "compile");
        licm::hoist_invariant_masks(&stmt)
    };

    // 7. Final cleanup.
    let stmt = {
        let _span = halide_trace::span("lower/simplify", "compile");
        simplify_stmt(&stmt)
    };

    let out_def = &env[&output];
    let (free_symbols, external_buffers) = stmt_interface(&stmt);
    Ok(Module {
        name: output.clone(),
        output: OutputMeta {
            name: output.clone(),
            args: out_def.args.clone(),
            ty: out_def.ty,
        },
        inputs: pipeline.input_images().into_iter().collect(),
        stmt,
        env,
        sliding_report,
        free_symbols,
        external_buffers,
    })
}

/// Computes the binding interface of a lowered statement: the scalar symbols
/// it references without binding (free variables) and the buffers it touches
/// without allocating. This is the contract a backend must satisfy before
/// running the statement — the compiled execution engine in `halide-exec`
/// resolves exactly these names to frame slots and buffer indices.
pub fn stmt_interface(stmt: &Stmt) -> (Vec<String>, Vec<String>) {
    use halide_ir::{ExprNode, StmtNode};
    use std::collections::BTreeSet;

    #[derive(Default)]
    struct Walk {
        bound: halide_ir::Scope<()>,
        allocated: halide_ir::Scope<()>,
        free: BTreeSet<String>,
        external: BTreeSet<String>,
    }

    impl Walk {
        fn touch_var(&mut self, name: &str) {
            if !self.bound.contains(name) {
                self.free.insert(name.to_string());
            }
        }
        fn touch_buffer(&mut self, name: &str) {
            if !self.allocated.contains(name) {
                self.external.insert(name.to_string());
            }
        }
        fn expr(&mut self, e: &halide_ir::Expr) {
            match e.node() {
                ExprNode::Var { name, .. } => self.touch_var(name),
                ExprNode::Let { name, value, body } => {
                    self.expr(value);
                    self.bound.push(name.clone(), ());
                    self.expr(body);
                    self.bound.pop(name);
                }
                ExprNode::Load {
                    name,
                    index,
                    predicate,
                    ..
                } => {
                    self.touch_buffer(name);
                    self.expr(index);
                    if let Some(p) = predicate {
                        self.expr(p);
                    }
                }
                _ => {
                    let mut children = Vec::new();
                    collect_expr_children(e, &mut children);
                    for c in children {
                        self.expr(&c);
                    }
                }
            }
        }
        fn stmt(&mut self, s: &Stmt) {
            match s.node() {
                StmtNode::LetStmt { name, value, body } => {
                    self.expr(value);
                    self.bound.push(name.clone(), ());
                    self.stmt(body);
                    self.bound.pop(name);
                }
                StmtNode::For {
                    name,
                    min,
                    extent,
                    body,
                    ..
                } => {
                    self.expr(min);
                    self.expr(extent);
                    self.bound.push(name.clone(), ());
                    self.stmt(body);
                    self.bound.pop(name);
                }
                StmtNode::Allocate {
                    name, size, body, ..
                } => {
                    self.expr(size);
                    self.allocated.push(name.clone(), ());
                    self.stmt(body);
                    self.allocated.pop(name);
                }
                StmtNode::Store {
                    name,
                    value,
                    index,
                    predicate,
                } => {
                    self.touch_buffer(name);
                    self.expr(value);
                    self.expr(index);
                    if let Some(p) = predicate {
                        self.expr(p);
                    }
                }
                StmtNode::Assert { condition, .. } => self.expr(condition),
                StmtNode::Producer { body, .. } => self.stmt(body),
                StmtNode::Block { stmts } => {
                    for s in stmts {
                        self.stmt(s);
                    }
                }
                StmtNode::IfThenElse {
                    condition,
                    then_case,
                    else_case,
                } => {
                    self.expr(condition);
                    self.stmt(then_case);
                    if let Some(e) = else_case {
                        self.stmt(e);
                    }
                }
                StmtNode::Evaluate { value } => self.expr(value),
                StmtNode::NoOp => {}
                StmtNode::Provide { name, args, value } => {
                    // Pre-flattening forms should not reach a backend, but
                    // report their interface faithfully anyway.
                    self.touch_buffer(name);
                    for a in args {
                        self.expr(a);
                    }
                    self.expr(value);
                }
                StmtNode::Realize {
                    name, bounds, body, ..
                } => {
                    for r in bounds {
                        self.expr(&r.min);
                        self.expr(&r.extent);
                    }
                    self.allocated.push(name.clone(), ());
                    self.stmt(body);
                    self.allocated.pop(name);
                }
            }
        }
    }

    fn collect_expr_children(e: &halide_ir::Expr, out: &mut Vec<halide_ir::Expr>) {
        struct C<'a> {
            out: &'a mut Vec<halide_ir::Expr>,
        }
        impl halide_ir::IrVisitor for C<'_> {
            fn visit_expr(&mut self, e: &halide_ir::Expr) {
                self.out.push(e.clone());
            }
        }
        halide_ir::visit_expr_children(&mut C { out }, e);
    }

    let mut w = Walk::default();
    w.stmt(stmt);
    (
        w.free.into_iter().collect(),
        w.external.into_iter().collect(),
    )
}

/// Replaces vectorized/unrolled loop kinds with serial loops (used when
/// vectorization is disabled for ablation).
fn demote_vector_loops(stmt: &Stmt) -> Stmt {
    use halide_ir::{ForKind, IrMutator, StmtNode};
    struct Demote;
    impl IrMutator for Demote {
        fn mutate_stmt(&mut self, s: &Stmt) -> Stmt {
            let s = halide_ir::mutate_stmt_children(self, s);
            if let StmtNode::For {
                name,
                min,
                extent,
                kind,
                body,
            } = s.node()
            {
                if matches!(kind, ForKind::Vectorized | ForKind::Unrolled) {
                    return Stmt::for_loop(
                        name.clone(),
                        min.clone(),
                        extent.clone(),
                        ForKind::Serial,
                        body.clone(),
                    );
                }
            }
            s
        }
    }
    Demote.mutate_stmt(stmt)
}

#[cfg(test)]
mod tests {
    use super::*;
    use halide_ir::{Expr, Type};
    use halide_lang::{Func, ImageParam, Var};

    fn blur(prefix: &str) -> (ImageParam, Func, Func) {
        let input = ImageParam::new(format!("{prefix}_in"), Type::f32(), 2);
        let (x, y) = (Var::new("x"), Var::new("y"));
        let blurx = Func::new(format!("{prefix}_blurx"));
        blurx.define(
            &[x.clone(), y.clone()],
            (input.at_clamped(vec![x.expr() - 1, y.expr()])
                + input.at_clamped(vec![x.expr(), y.expr()])
                + input.at_clamped(vec![x.expr() + 1, y.expr()]))
                / 3.0f32,
        );
        let out = Func::new(format!("{prefix}_out"));
        out.define(
            &[x.clone(), y.clone()],
            (blurx.at(vec![x.expr(), y.expr() - 1])
                + blurx.at(vec![x.expr(), y.expr()])
                + blurx.at(vec![x.expr(), y.expr() + 1]))
                / 3.0f32,
        );
        (input, blurx, out)
    }

    #[test]
    fn breadth_first_blur_lowers_end_to_end() {
        let (_in, blurx, out) = blur("lower_bf");
        let module = lower(&Pipeline::new(&out)).unwrap();
        let text = module.pretty();
        // after flattening there are no provides/calls left, only loads/stores
        assert!(text.contains(&format!("allocate {}", blurx.name())));
        assert!(text.contains(&format!("{}[", out.name())));
        assert!(!text.contains("realize "));
        assert_eq!(module.output.ty, Type::f32());
        assert_eq!(module.inputs, vec!["lower_bf_in".to_string()]);
        assert_eq!(module.output.args, vec!["x".to_string(), "y".to_string()]);
    }

    #[test]
    fn module_reports_its_binding_interface() {
        let (_in, blurx, out) = blur("lower_iface");
        out.tile_dims("x", "y", "xo", "yo", "xi", "yi", 32, 8)
            .parallelize("yo");
        blurx.compute_at(&out, "xo");
        let module = lower(&Pipeline::new(&out)).unwrap();
        // External buffers are exactly the input image and the output.
        assert_eq!(
            module.external_buffers,
            vec!["lower_iface_in".to_string(), "lower_iface_out".to_string()]
        );
        // Free symbols include the input's layout lets and the output bounds.
        assert!(module
            .free_symbols
            .iter()
            .any(|s| s.starts_with("lower_iface_in.")));
        assert!(module
            .free_symbols
            .contains(&"lower_iface_out.x.min".to_string()));
        assert!(module
            .free_symbols
            .contains(&"lower_iface_out.y.extent".to_string()));
        // Nothing bound inside the statement leaks out.
        assert!(!module.free_symbols.iter().any(|s| s == "xi" || s == "yo"));
        assert!(!module.external_buffers.contains(&blurx.name().to_string()));
    }

    #[test]
    fn tiled_vectorized_parallel_blur_lowers() {
        let (_in, blurx, out) = blur("lower_tiled");
        out.tile_dims("x", "y", "xo", "yo", "xi", "yi", 32, 8)
            .parallelize("yo")
            .split_dim("xi", "xio", "xii", 8)
            .vectorize_dim("xii");
        blurx.compute_at(&out, "xo");
        let module = lower(&Pipeline::new(&out)).unwrap();
        let text = module.pretty();
        assert!(text.contains("parallel for"));
        assert!(text.contains("ramp("));
        assert!(!module.sliding_report.slid.contains(&blurx.name()));
    }

    #[test]
    fn sliding_window_schedule_reports() {
        let (_in, blurx, out) = blur("lower_slide");
        blurx.compute_at(&out, "y");
        blurx.store_root();
        let module = lower(&Pipeline::new(&out)).unwrap();
        assert!(module.sliding_report.slid.contains(&blurx.name()));
        assert!(module
            .sliding_report
            .folded
            .iter()
            .any(|(f, _, c)| f == &blurx.name() && *c == 3));
    }

    #[test]
    fn options_disable_optimizations() {
        let (_in, blurx, out) = blur("lower_noopt");
        blurx.compute_at(&out, "y");
        blurx.store_root();
        let module = lower_with_options(
            &Pipeline::new(&out),
            &LowerOptions {
                sliding_window: false,
                storage_folding: false,
                vectorize: false,
            },
        )
        .unwrap();
        assert!(module.sliding_report.slid.is_empty());
        assert!(module.sliding_report.folded.is_empty());
    }

    #[test]
    fn unbounded_access_error_names_func_and_dimension() {
        // `g` is consumed at a data-dependent, unclamped y coordinate, so
        // bounds inference cannot bound dimension "y" of g. The error must
        // name both the function and the dimension — the diagnostic points
        // at the exact coordinate to clamp.
        let input = ImageParam::new("lower_errdim_in", Type::f32(), 2);
        let (x, y) = (Var::new("x"), Var::new("y"));
        let g = Func::new("lower_errdim_g");
        g.define(
            &[x.clone(), y.clone()],
            input.at_clamped(vec![x.expr(), y.expr()]),
        );
        let out = Func::new("lower_errdim_out");
        out.define(
            &[x.clone(), y.clone()],
            g.at(vec![
                x.expr(),
                input.at(vec![x.expr(), y.expr()]).cast(Type::i32()),
            ]),
        );
        let err = lower(&Pipeline::new(&out)).unwrap_err();
        assert_eq!(err.func(), Some("lower_errdim_g"));
        assert_eq!(err.dim(), Some("y"));
        let text = err.to_string();
        assert!(text.contains("lower_errdim_g"), "got: {text}");
        assert!(text.contains("\"y\""), "got: {text}");
    }

    #[test]
    fn invalid_schedule_is_an_error_not_a_panic() {
        let (_in, blurx, out) = blur("lower_invalid");
        // compute_at a loop dimension that does not exist in the consumer
        blurx.compute_at(&out, "zz");
        assert!(lower(&Pipeline::new(&out)).is_err());
    }

    #[test]
    fn inline_producer_disappears() {
        let (_in, blurx, out) = blur("lower_inline");
        blurx.compute_inline();
        let module = lower(&Pipeline::new(&out)).unwrap();
        let text = module.pretty();
        assert!(!text.contains(&format!("allocate {}", blurx.name())));
    }

    #[test]
    fn vectorizing_non_constant_extent_fails() {
        let (_in, _blurx, out) = blur("lower_vec_err");
        // vectorize the full x dimension, whose extent is only known at run time
        out.vectorize_dim("x");
        assert!(lower(&Pipeline::new(&out)).is_err());
    }

    #[test]
    fn gpu_schedule_lowers_with_gpu_loops() {
        let (_in, blurx, out) = blur("lower_gpu");
        out.gpu_tile("x", "y", 16, 16);
        blurx.compute_at(&out, "x.block");
        let module = lower(&Pipeline::new(&out)).unwrap();
        let text = module.pretty();
        assert!(text.contains("gpu_block for"));
        assert!(text.contains("gpu_thread for"));
    }

    #[test]
    fn reduction_pipeline_lowers() {
        let input = ImageParam::new("lower_hist_in", Type::u8(), 2);
        let i = Var::new("i");
        let (x, y) = (Var::new("x"), Var::new("y"));
        let hist = Func::new("lower_hist");
        hist.define(&[i.clone()], Expr::int(0));
        let r = halide_lang::RDom::new(
            "r",
            vec![
                (Expr::int(0), input.width()),
                (Expr::int(0), input.height()),
            ],
        );
        let bucket = input
            .at(vec![r.x().expr(), r.y().expr()])
            .cast(Type::i32())
            .clamp(Expr::int(0), Expr::int(255));
        hist.update(vec![bucket.clone()], hist.at(vec![bucket]) + 1, Some(r));
        let out = Func::new("lower_hist_out");
        out.define(
            &[x.clone(), y.clone()],
            hist.at(vec![input
                .at(vec![x.expr(), y.expr()])
                .cast(Type::i32())
                .clamp(Expr::int(0), Expr::int(255))]),
        );
        let module = lower(&Pipeline::new(&out)).unwrap();
        let text = module.pretty();
        assert!(text.contains(&format!("allocate {}", hist.name())));
        // the reduction loop over the input domain is present
        assert!(text.contains(".s1.r.x"));
        assert!(text.contains(".s1.r.y"));
    }
}
