//! Loop synthesis (Sec. 4.1): building the loop nest that produces one
//! function over a required region, according to its schedule's domain order.
//!
//! The region handed to [`build_produce_nest`] is normally *symbolic* — one
//! `<func>.<dim>.min` / `<func>.<dim>.extent` variable pair per dimension
//! (see [`crate::inject::symbolic_region`]) — so the synthesized loops stay
//! compact regardless of how large the inferred bounds expressions are; the
//! concrete values are bound by `LetStmt`s at the realization level. Checks
//! that need the concrete region (e.g. [`validate_splits`]) are therefore
//! separate entry points taking the inferred region directly.

use std::collections::HashMap;

use halide_ir::{Expr, ForKind, Range, Stmt};
use halide_schedule::TailStrategy;

use crate::error::{LowerError, Result};
use crate::inject::FuncDef;

/// The loop-variable name used in lowered code for dimension `dim` of
/// function `func`'s pure definition.
pub fn loop_var(func: &str, dim: &str) -> String {
    format!("{func}.{dim}")
}

/// The loop-variable name for dimension `dim` of update stage `stage`.
pub fn update_loop_var(func: &str, stage: usize, dim: &str) -> String {
    format!("{func}.s{stage}.{dim}")
}

/// Builds the statement that computes `func` over `region` (one `Range` per
/// pure argument, in argument order), honouring the schedule's splits, loop
/// order, and loop kinds. Update definitions are appended after the pure
/// initialization, looping over their reduction domains in lexicographic
/// order (first dimension innermost).
///
/// Split dimensions use the shift-inwards tail strategy: the last iteration
/// of the outer loop is shifted back so the traversed region never exceeds
/// the required region (at the cost of recomputing a few values), which keeps
/// stores inside the allocated/required box without per-point guards.
///
/// # Errors
///
/// Fails if the schedule references dimensions that do not exist or if the
/// region does not cover every pure argument.
pub fn build_produce_nest(func: &FuncDef, region: &[Range]) -> Result<Stmt> {
    if region.len() != func.args.len() {
        return Err(LowerError::new(format!(
            "function {} has {} dimensions but the inferred region has {}",
            func.name,
            func.args.len(),
            region.len()
        ))
        .in_func(&func.name));
    }

    // With a symbolic region this only checks split/dimension wiring; with
    // a concrete region it also rejects factors exceeding constant extents.
    validate_splits(func, region)?;

    let pure = build_pure_nest(func, region)?;
    let mut stages = vec![pure];
    for (i, update) in func.updates.iter().enumerate() {
        stages.push(build_update_nest(func, i, update, region)?);
    }
    Ok(Stmt::produce(func.name.clone(), Stmt::block_of(stages)))
}

/// Map from pure argument name to its (min, extent) over the required region.
fn region_map(func: &FuncDef, region: &[Range]) -> HashMap<String, (Expr, Expr)> {
    func.args
        .iter()
        .cloned()
        .zip(region.iter().map(|r| (r.min.clone(), r.extent.clone())))
        .collect()
}

/// Checks every split of `func`'s schedule against the *concrete* inferred
/// region: a split whose factor exceeds a known-constant extent would make
/// the shift-inwards tail strategy traverse more than the required region,
/// so it is rejected here (with the offending function and dimension named)
/// rather than silently over-computing.
///
/// The loop nest itself is built over symbolic bounds names, so this check
/// must run where the concrete region is still at hand — injection calls it
/// right after bounds inference.
///
/// # Errors
///
/// Fails if a split factor exceeds the constant extent of the dimension it
/// splits, or if a split references a dimension the function does not have.
pub fn validate_splits(func: &FuncDef, region: &[Range]) -> Result<()> {
    // Tracks the (constant, when known) extent of every dimension as splits
    // rewrite them, mirroring the bookkeeping in `build_pure_nest`.
    let mut extents: HashMap<String, Option<i64>> = func
        .args
        .iter()
        .cloned()
        .zip(region.iter().map(|r| r.extent.as_const_int()))
        .collect();
    // Dimensions produced by a tail-partitioned split: the loop pair is
    // duplicated into a main and a tail copy, so re-splitting either half
    // has no single loop to act on.
    let mut partitioned: Vec<String> = Vec::new();
    for split in &func.schedule.splits {
        if partitioned.contains(&split.old) {
            return Err(LowerError::new(format!(
                "cannot split {:?} in {}: it comes from a guard_with_if/predicate \
                 split, whose loops are partitioned into a main and a tail copy; \
                 apply the tail strategy to the last split of a dimension instead",
                split.old, func.name
            ))
            .in_func(&func.name)
            .in_dim(&split.old));
        }
        let old = extents.remove(&split.old).ok_or_else(|| {
            LowerError::new(format!(
                "split of unknown dimension {:?} in {}",
                split.old, func.name
            ))
            .in_func(&func.name)
            .in_dim(&split.old)
        })?;
        // Only shift-inwards requires the extent to cover one whole factor;
        // the other strategies are exactly what makes smaller or non-dividing
        // extents legal.
        if split.tail == TailStrategy::ShiftInwards {
            if let Some(e) = old {
                if e < split.factor {
                    return Err(LowerError::new(format!(
                        "split of {:?} in {} by {} exceeds its constant extent {e}; \
                         the traversed region would overrun the required region \
                         (use a tail strategy: guard_with_if, predicate, or round_up)",
                        split.old, func.name, split.factor
                    ))
                    .in_func(&func.name)
                    .in_dim(&split.old));
                }
            }
        }
        if matches!(
            split.tail,
            TailStrategy::GuardWithIf | TailStrategy::Predicate
        ) {
            partitioned.push(split.outer.clone());
            partitioned.push(split.inner.clone());
            // The tail copy covers the remainder by overriding the inner
            // loop's extent (guard_with_if) or guarding on the recombined
            // variable (predicate); both assume the inner loop is nested
            // inside the partitioned outer loop.
            let (o, i) = (
                func.schedule.dim_index(&split.outer),
                func.schedule.dim_index(&split.inner),
            );
            if !matches!((o, i), (Some(o), Some(i)) if o < i) {
                return Err(LowerError::new(format!(
                    "{} split of {:?} in {}: the inner loop {:?} must stay nested \
                     inside the outer loop {:?}; reordering it outside breaks the \
                     main/tail partition",
                    split.tail, split.old, func.name, split.inner, split.outer
                ))
                .in_func(&func.name)
                .in_dim(&split.old));
            }
            // A vectorized predicate tail masks every memory op under the
            // guard with a vector over the *inner* dim's lanes; a second
            // vectorized loop nested inside would give those ops a
            // different lane count than the mask.
            if split.tail == TailStrategy::Predicate {
                let i = i.expect("checked above");
                let dims = &func.schedule.dims;
                if dims[i].kind == ForKind::Vectorized {
                    if let Some(v) = dims[i + 1..].iter().find(|d| d.kind == ForKind::Vectorized) {
                        return Err(LowerError::new(format!(
                            "predicate split of {:?} in {}: its vectorized inner loop \
                             {:?} masks stores with {}-lane predicates, but the \
                             vectorized loop {:?} nested inside would give them a \
                             different lane count; vectorize one or the other",
                            split.old, func.name, split.inner, split.factor, v.name
                        ))
                        .in_func(&func.name)
                        .in_dim(&v.name));
                    }
                }
            }
        }
        let outer = old.map(|e| (e + split.factor - 1) / split.factor);
        extents.insert(split.outer.clone(), outer);
        extents.insert(split.inner.clone(), Some(split.factor));
    }
    Ok(())
}

/// A guard_with_if or predicate split: the loop over `outer_dim` is emitted
/// twice — a main copy over the full tiles and a tail copy over the
/// remainder — instead of shifting the last tile inwards.
struct Partition {
    /// Dimension (in the loop order) whose loop is partitioned.
    inner_dim: String,
    /// `<func>.<old>` — the let-bound name of the pre-split variable.
    old_loop_var: String,
    old_min: Expr,
    old_extent: Expr,
    factor: i64,
    strategy: TailStrategy,
    /// Position in `schedule.splits`, so this split's `old` definition can
    /// be ordered against the other splits' definitions at the leaf.
    split_idx: usize,
}

/// Everything that differs between the main and tail copies of a
/// partitioned loop: extra `old`-variable definitions, accumulated store
/// predicates, and bound/kind overrides for the tail's inner loop.
#[derive(Clone, Default)]
struct BranchCtx {
    /// Definitions of partitioned splits' `old` variables on this branch,
    /// tagged with the split's application index: an earlier split's
    /// definition may reference a later split's variable (e.g. `x` split
    /// into `x_o`/`x_i`, then `x_i` split with a tail strategy), so all
    /// definitions are merged and wrapped earliest-innermost at the leaf.
    defs: Vec<(usize, String, Expr)>,
    /// Predicate-tail guards; the provide is wrapped in one `if` over their
    /// conjunction, which vectorization turns into load/store masks.
    guards: Vec<Expr>,
    /// Tail-copy overrides of an inner dimension's (extent, kind): the
    /// guard_with_if epilogue runs the remainder serially.
    overrides: HashMap<String, (Expr, ForKind)>,
}

fn build_pure_nest(func: &FuncDef, region: &[Range]) -> Result<Stmt> {
    let schedule = &func.schedule;

    // Substitute bare argument names with prefixed loop variables in the
    // value and the provide coordinates.
    let mut subst: HashMap<String, Expr> = HashMap::new();
    for a in &func.args {
        subst.insert(a.clone(), Expr::var_i32(loop_var(&func.name, a)));
    }
    let value = halide_ir::substitute_map(&func.value, &subst);
    let coords: Vec<Expr> = func
        .args
        .iter()
        .map(|a| Expr::var_i32(loop_var(&func.name, a)))
        .collect();
    let provide = Stmt::provide(func.name.clone(), value, coords);

    // Compute loop bounds for every dimension, applying splits.
    // `bounds` maps dimension name -> (loop min, loop extent).
    let mut bounds: HashMap<String, (Expr, Expr)> = region_map(func, region);
    // Definitions of split-away variables, tagged with application order.
    let mut split_defs: Vec<(usize, String, Expr)> = Vec::new();
    // Tail-partitioned splits, keyed by their outer dimension (where the
    // main/tail loop pair is emitted).
    let mut partitions: HashMap<String, Partition> = HashMap::new();

    for (split_idx, split) in schedule.splits.iter().enumerate() {
        // Split existence, constant-extent legality and re-splits of
        // partitioned dimensions were already checked by `validate_splits`;
        // this lookup cannot fail after it passes.
        let (old_min, old_extent) = bounds.remove(&split.old).ok_or_else(|| {
            LowerError::new(format!(
                "split of unknown dimension {:?} in {}",
                split.old, func.name
            ))
            .in_func(&func.name)
            .in_dim(&split.old)
        })?;
        let factor = Expr::int(split.factor as i32);
        let outer_extent =
            halide_ir::simplify(&((old_extent.clone() + (factor.clone() - 1)) / factor.clone()));
        bounds.insert(split.outer.clone(), (Expr::int(0), outer_extent));
        bounds.insert(split.inner.clone(), (Expr::int(0), factor.clone()));
        let outer_var = Expr::var_i32(loop_var(&func.name, &split.outer));
        let inner_var = Expr::var_i32(loop_var(&func.name, &split.inner));
        match split.tail {
            TailStrategy::ShiftInwards => {
                // old = old_min + min(outer*factor, max(extent-factor, 0)) + inner
                let base = Expr::min(
                    outer_var * factor.clone(),
                    Expr::max(old_extent.clone() - factor, Expr::int(0)),
                );
                split_defs.push((
                    split_idx,
                    loop_var(&func.name, &split.old),
                    old_min + base + inner_var,
                ));
            }
            TailStrategy::RoundUp => {
                // old = old_min + outer*factor + inner; the last tile runs
                // past the required region, into the allocation padding.
                split_defs.push((
                    split_idx,
                    loop_var(&func.name, &split.old),
                    old_min + outer_var * factor + inner_var,
                ));
            }
            TailStrategy::GuardWithIf | TailStrategy::Predicate => {
                partitions.insert(
                    split.outer.clone(),
                    Partition {
                        inner_dim: split.inner.clone(),
                        old_loop_var: loop_var(&func.name, &split.old),
                        old_min,
                        old_extent,
                        factor: split.factor,
                        strategy: split.tail,
                        split_idx,
                    },
                );
            }
        }
    }

    wrap_dims(
        func,
        0,
        &bounds,
        &partitions,
        &split_defs,
        &provide,
        BranchCtx::default(),
    )
}

/// Wraps `provide` in the loops of `func.schedule.dims[idx..]`, innermost
/// copies built first via recursion. A dimension that is the outer half of a
/// tail-partitioned split is emitted as a main loop over the full tiles plus
/// a tail copy of everything inside it:
///
/// * `guard_with_if` — a copy with the split's inner loop replaced by a
///   *serial* loop over the remainder (the scalar epilogue),
/// * `predicate` — one more full-width iteration, entered only when the
///   extent does not divide, with the provide guarded by
///   `old < old_min + old_extent` (which vectorization lowers to store/load
///   masks).
fn wrap_dims(
    func: &FuncDef,
    idx: usize,
    bounds: &HashMap<String, (Expr, Expr)>,
    partitions: &HashMap<String, Partition>,
    split_defs: &[(usize, String, Expr)],
    provide: &Stmt,
    ctx: BranchCtx,
) -> Result<Stmt> {
    let dims = &func.schedule.dims;
    if idx == dims.len() {
        let mut body = provide.clone();
        if let Some(guard) = ctx
            .guards
            .iter()
            .cloned()
            .reduce(|a, b| halide_ir::Expr::and(a, b))
        {
            body = Stmt::if_then_else(guard, body, None);
        }
        // All `old`-variable definitions — shared and branch-local alike —
        // in application order, earliest innermost: an earlier split's
        // definition may reference a variable a *later* split defines
        // (splitting `x`, then re-splitting `x_i`), so the later definition
        // must be the outer let.
        let mut defs: Vec<&(usize, String, Expr)> =
            ctx.defs.iter().chain(split_defs.iter()).collect();
        defs.sort_by_key(|(idx, _, _)| *idx);
        for (_, name, def) in defs {
            body = Stmt::let_stmt(name.clone(), def.clone(), body);
        }
        return Ok(body);
    }
    let dim = &dims[idx];
    if let Some(p) = partitions.get(&dim.name) {
        let outer_var = Expr::var_i32(loop_var(&func.name, &dim.name));
        let inner_var = Expr::var_i32(loop_var(&func.name, &p.inner_dim));
        let factor = Expr::int(p.factor as i32);
        let full_tiles = halide_ir::simplify(&(p.old_extent.clone() / factor.clone()));
        let covered = halide_ir::simplify(&(full_tiles.clone() * factor.clone()));

        // Main copy: full tiles only, exact coordinates, no guard.
        let mut main_ctx = ctx.clone();
        main_ctx.defs.push((
            p.split_idx,
            p.old_loop_var.clone(),
            p.old_min.clone() + outer_var * factor + inner_var.clone(),
        ));
        let main_body = wrap_dims(
            func,
            idx + 1,
            bounds,
            partitions,
            split_defs,
            provide,
            main_ctx,
        )?;
        let main = Stmt::for_loop(
            loop_var(&func.name, &dim.name),
            Expr::int(0),
            full_tiles,
            dim.kind,
            main_body,
        );

        let tail_base = p.old_min.clone() + covered.clone();
        let tail = match p.strategy {
            TailStrategy::GuardWithIf => {
                // Scalar epilogue: the inner loop runs serially over the
                // remainder (extent zero when the factor divides).
                let mut t = ctx.clone();
                t.defs
                    .push((p.split_idx, p.old_loop_var.clone(), tail_base + inner_var));
                let remainder = halide_ir::simplify(&(p.old_extent.clone() - covered.clone()));
                t.overrides
                    .insert(p.inner_dim.clone(), (remainder, ForKind::Serial));
                wrap_dims(func, idx + 1, bounds, partitions, split_defs, provide, t)?
            }
            TailStrategy::Predicate => {
                // One more full-width iteration, with the provide guarded so
                // out-of-range lanes are masked off; entered only when the
                // factor does not divide the extent.
                let mut t = ctx.clone();
                t.defs
                    .push((p.split_idx, p.old_loop_var.clone(), tail_base + inner_var));
                t.guards.push(Expr::lt(
                    Expr::var_i32(p.old_loop_var.clone()),
                    p.old_min.clone() + p.old_extent.clone(),
                ));
                let tail_body =
                    wrap_dims(func, idx + 1, bounds, partitions, split_defs, provide, t)?;
                Stmt::if_then_else(Expr::lt(covered, p.old_extent.clone()), tail_body, None)
            }
            _ => unreachable!("only guard_with_if/predicate splits are partitioned"),
        };
        return Ok(Stmt::block(main, tail));
    }

    let (min, mut extent) = bounds.get(&dim.name).cloned().ok_or_else(|| {
        LowerError::new(format!(
            "schedule of {} has dimension {:?} with no bounds (was it split away?)",
            func.name, dim.name
        ))
        .in_func(&func.name)
        .in_dim(&dim.name)
    })?;
    let mut kind = dim.kind;
    if let Some((ext, k)) = ctx.overrides.get(&dim.name) {
        extent = ext.clone();
        kind = *k;
    }
    let body = wrap_dims(func, idx + 1, bounds, partitions, split_defs, provide, ctx)?;
    Ok(Stmt::for_loop(
        loop_var(&func.name, &dim.name),
        min,
        extent,
        kind,
        body,
    ))
}

fn build_update_nest(
    func: &FuncDef,
    stage: usize,
    update: &crate::inject::UpdateDefSnapshot,
    region: &[Range],
) -> Result<Stmt> {
    let stage_index = stage + 1;
    // Substitutions: pure args and reduction variables both get
    // stage-qualified loop variable names so no two loops in the lowered
    // program collide.
    let mut subst: HashMap<String, Expr> = HashMap::new();
    for a in &func.args {
        subst.insert(
            a.clone(),
            Expr::var_i32(update_loop_var(&func.name, stage_index, a)),
        );
    }
    if let Some(rdom) = &update.rdom {
        for rv in &rdom.dims {
            subst.insert(
                rv.name.clone(),
                Expr::var_i32(update_loop_var(&func.name, stage_index, &rv.name)),
            );
        }
    }

    let value = halide_ir::substitute_map(&update.value, &subst);
    let coords: Vec<Expr> = update
        .args
        .iter()
        .map(|a| halide_ir::substitute_map(a, &subst))
        .collect();
    let mut body = Stmt::provide(func.name.clone(), value, coords);

    // Reduction loops, first dimension innermost (lexicographic order).
    if let Some(rdom) = &update.rdom {
        for rv in &rdom.dims {
            body = Stmt::for_loop(
                update_loop_var(&func.name, stage_index, &rv.name),
                rv.min.clone(),
                rv.extent.clone(),
                ForKind::Serial,
                body,
            );
        }
    }

    // Pure variables that actually appear in the update's coordinates also
    // loop (over the full required region); ones that don't appear are not
    // looped (the update touches a lower-dimensional slice).
    let regions = region_map(func, region);
    for (a, coord) in func.args.iter().zip(update.args.iter()) {
        let uses_pure_var =
            halide_ir::expr_uses_var(coord, a) || coord.as_var().map(|v| v == a).unwrap_or(false);
        if uses_pure_var {
            let (min, extent) = regions[a].clone();
            body = Stmt::for_loop(
                update_loop_var(&func.name, stage_index, a),
                min,
                extent,
                ForKind::Serial,
                body,
            );
        }
    }

    Ok(body)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inject::snapshot_pipeline;
    use halide_ir::{CallType, StmtNode, Type};
    use halide_lang::{Func, ImageParam, Pipeline, RDom, Var};

    fn simple_func(name: &str) -> FuncDef {
        let input = ImageParam::new(format!("{name}_in"), Type::f32(), 2);
        let (x, y) = (Var::new("x"), Var::new("y"));
        let f = Func::new(name);
        f.define(
            &[x.clone(), y.clone()],
            input.at(vec![x.expr(), y.expr()]) * 2.0f32,
        );
        let p = Pipeline::new(&f);
        let env = snapshot_pipeline(&p);
        env[&f.name()].clone()
    }

    fn region_2d(w: i32, h: i32) -> Vec<Range> {
        vec![
            Range::new(Expr::int(0), Expr::int(w)),
            Range::new(Expr::int(0), Expr::int(h)),
        ]
    }

    fn count_loops(s: &Stmt) -> Vec<(String, ForKind)> {
        fn walk(s: &Stmt, out: &mut Vec<(String, ForKind)>) {
            match s.node() {
                StmtNode::For {
                    name, kind, body, ..
                } => {
                    out.push((name.clone(), *kind));
                    walk(body, out);
                }
                StmtNode::Block { stmts } => stmts.iter().for_each(|s| walk(s, out)),
                StmtNode::LetStmt { body, .. }
                | StmtNode::Producer { body, .. }
                | StmtNode::Realize { body, .. }
                | StmtNode::Allocate { body, .. } => walk(body, out),
                StmtNode::IfThenElse {
                    then_case,
                    else_case,
                    ..
                } => {
                    walk(then_case, out);
                    if let Some(e) = else_case {
                        walk(e, out);
                    }
                }
                _ => {}
            }
        }
        let mut v = Vec::new();
        walk(s, &mut v);
        v
    }

    #[test]
    fn default_schedule_builds_row_major_loops() {
        let f = simple_func("nest_simple");
        let s = build_produce_nest(&f, &region_2d(16, 8)).unwrap();
        let loops = count_loops(&s);
        assert_eq!(loops.len(), 2);
        assert_eq!(loops[0].0, format!("{}.y", f.name));
        assert_eq!(loops[1].0, format!("{}.x", f.name));
    }

    #[test]
    fn split_generates_outer_inner_and_let() {
        let mut f = simple_func("nest_split");
        f.schedule.split("x", "xo", "xi", 4).unwrap();
        f.schedule.vectorize("xi").unwrap();
        let s = build_produce_nest(&f, &region_2d(16, 8)).unwrap();
        let text = s.to_string();
        assert!(text.contains(&format!("{}.xo", f.name)));
        assert!(text.contains(&format!("vectorized for {}.xi", f.name)));
        assert!(text.contains(&format!("let {}.x =", f.name)));
        // shift-inwards: min(xo*4, extent-4)
        assert!(text.contains("min("));
        let loops = count_loops(&s);
        assert_eq!(loops.len(), 3);
    }

    #[test]
    fn region_mismatch_is_error() {
        let f = simple_func("nest_bad_region");
        assert!(build_produce_nest(&f, &[Range::new(Expr::int(0), Expr::int(4))]).is_err());
    }

    #[test]
    fn update_stage_loops_over_rdom() {
        let i = Var::new("i");
        let hist = Func::new("nest_hist");
        hist.define(&[i.clone()], Expr::int(0));
        let r = RDom::over("r", 0, 100);
        hist.update(
            vec![r.x().expr() % 16],
            hist.at(vec![r.x().expr() % 16]) + 1,
            Some(r),
        );
        let p = Pipeline::new(&hist);
        let env = snapshot_pipeline(&p);
        let def = env[&hist.name()].clone();
        let s = build_produce_nest(&def, &[Range::new(Expr::int(0), Expr::int(16))]).unwrap();
        let loops = count_loops(&s);
        // init loop over i plus the reduction loop
        assert_eq!(loops.len(), 2);
        assert!(loops[1].0.contains(".s1.r.x"));
        // the provide inside the update references the reduction loop var
        let text = s.to_string();
        assert!(text.contains(&format!("{}.s1.r.x", def.name)));
    }

    #[test]
    fn update_with_pure_vars_loops_over_them() {
        let (x, y) = (Var::new("x"), Var::new("y"));
        let f = Func::new("nest_pure_update");
        f.define(&[x.clone(), y.clone()], Expr::f32(0.0));
        // f(x, y) += 1 over a 1-D rdom in y only; x appears as a pure var.
        let r = RDom::over("ry", 0, 4);
        f.update(
            vec![x.expr(), r.x().expr()],
            f.at(vec![x.expr(), r.x().expr()]) + 1.0f32,
            Some(r),
        );
        let p = Pipeline::new(&f);
        let env = snapshot_pipeline(&p);
        let def = env[&f.name()].clone();
        let s = build_produce_nest(&def, &region_2d(8, 4)).unwrap();
        let loops = count_loops(&s);
        // 2 init loops + (1 pure x loop + 1 rdom loop) for the update
        assert_eq!(loops.len(), 4);
    }

    #[test]
    fn provide_value_uses_prefixed_vars() {
        let f = simple_func("nest_prefix");
        let s = build_produce_nest(&f, &region_2d(4, 4)).unwrap();
        fn find_provide(s: &Stmt) -> Option<(String, Vec<Expr>)> {
            match s.node() {
                StmtNode::Provide { name, args, .. } => Some((name.clone(), args.clone())),
                StmtNode::For { body, .. }
                | StmtNode::LetStmt { body, .. }
                | StmtNode::Producer { body, .. } => find_provide(body),
                StmtNode::Block { stmts } => stmts.iter().find_map(find_provide),
                _ => None,
            }
        }
        let (name, args) = find_provide(&s).unwrap();
        assert_eq!(name, f.name);
        assert_eq!(args[0].to_string(), format!("{}.x", f.name));
        assert_eq!(args[1].to_string(), format!("{}.y", f.name));
    }

    #[test]
    fn image_calls_remain_symbolic() {
        let f = simple_func("nest_image");
        let s = build_produce_nest(&f, &region_2d(4, 4)).unwrap();
        // the input image call should still be a Call node (flattening comes later)
        let text = s.to_string();
        assert!(text.contains("nest_image_in("));
        let _ = CallType::Image; // silence unused import in some cfgs
    }
}
