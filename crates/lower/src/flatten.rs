//! Storage flattening (Sec. 4.4): multi-dimensional realizations, provides,
//! and calls become one-dimensional allocations, stores, and loads.
//!
//! The flattening convention matches the paper: the stride of the innermost
//! dimension is 1 (scanline layout), each further stride is the previous
//! stride times the previous extent, and the flattened index is the dot
//! product of (coordinate - dimension minimum) with the strides.

use std::collections::HashMap;

use halide_ir::{CallType, Expr, ExprNode, IrMutator, Stmt, StmtNode, Type};

/// Name of the symbolic minimum of dimension `d` of buffer `name`.
pub fn buf_min(name: &str, d: usize) -> String {
    format!("{name}.min.{d}")
}

/// Name of the symbolic extent of dimension `d` of buffer `name`.
pub fn buf_extent(name: &str, d: usize) -> String {
    format!("{name}.extent.{d}")
}

/// Name of the symbolic stride of dimension `d` of buffer `name`.
pub fn buf_stride(name: &str, d: usize) -> String {
    format!("{name}.stride.{d}")
}

/// The flattened index expression for accessing buffer `name` at `coords`.
pub fn flat_index(name: &str, coords: &[Expr]) -> Expr {
    let mut index = Expr::int(0);
    for (d, c) in coords.iter().enumerate() {
        let adjusted = c.clone() - Expr::var_i32(buf_min(name, d));
        index = index + adjusted * Expr::var_i32(buf_stride(name, d));
    }
    halide_ir::simplify(&index)
}

struct Flatten {
    /// Element types of the buffers we know about (from Realize nodes and the
    /// pipeline's function signatures); used only for diagnostics.
    known: HashMap<String, Type>,
}

impl IrMutator for Flatten {
    fn mutate_expr(&mut self, e: &Expr) -> Expr {
        let e = halide_ir::mutate_expr_children(self, e);
        if let ExprNode::Call {
            ty,
            name,
            call_type,
            args,
        } = e.node()
        {
            if matches!(call_type, CallType::Halide | CallType::Image) {
                return Expr::load(*ty, name.clone(), flat_index(name, args));
            }
        }
        e
    }

    fn mutate_stmt(&mut self, s: &Stmt) -> Stmt {
        match s.node() {
            StmtNode::Provide { name, value, args } => {
                let value = self.mutate_expr(value);
                let args: Vec<Expr> = args.iter().map(|a| self.mutate_expr(a)).collect();
                Stmt::store(name.clone(), value, flat_index(name, &args))
            }
            StmtNode::Realize {
                name,
                ty,
                bounds,
                body,
            } => {
                self.known.insert(name.clone(), *ty);
                let body = self.mutate_stmt(body);
                // Allocation size: product of extents.
                let mut size = Expr::int(1);
                for r in bounds {
                    size = size * r.extent.clone();
                }
                // Define min/extent/stride symbols for the buffer, innermost
                // stride 1.
                let mut wrapped = body;
                // Lets are built innermost-out so that stride.d can reference
                // stride.(d-1) and extent.(d-1): emit them outermost-first by
                // wrapping in reverse.
                let mut lets: Vec<(String, Expr)> = Vec::new();
                for (d, r) in bounds.iter().enumerate() {
                    lets.push((buf_min(name, d), r.min.clone()));
                    lets.push((buf_extent(name, d), r.extent.clone()));
                    let stride = if d == 0 {
                        Expr::int(1)
                    } else {
                        Expr::var_i32(buf_stride(name, d - 1))
                            * Expr::var_i32(buf_extent(name, d - 1))
                    };
                    lets.push((buf_stride(name, d), stride));
                }
                for (n, v) in lets.into_iter().rev() {
                    wrapped = Stmt::let_stmt(n, v, wrapped);
                }
                Stmt::allocate(name.clone(), *ty, halide_ir::simplify(&size), wrapped)
            }
            _ => halide_ir::mutate_stmt_children(self, s),
        }
    }
}

/// Flattens all multi-dimensional storage in a statement.
pub fn flatten(stmt: &Stmt) -> Stmt {
    Flatten {
        known: HashMap::new(),
    }
    .mutate_stmt(stmt)
}

#[cfg(test)]
mod tests {
    use super::*;
    use halide_ir::{ForKind, Range};

    #[test]
    fn flat_index_uses_mins_and_strides() {
        let idx = flat_index("f", &[Expr::var_i32("x"), Expr::var_i32("y")]);
        let text = idx.to_string();
        assert!(text.contains("f.min.0"));
        assert!(text.contains("f.stride.1"));
    }

    #[test]
    fn realize_becomes_allocate_with_layout_lets() {
        let body = Stmt::provide(
            "f",
            Expr::f32(1.0),
            vec![Expr::var_i32("x"), Expr::var_i32("y")],
        );
        let realize = Stmt::realize(
            "f",
            Type::f32(),
            vec![
                Range::new(Expr::int(-1), Expr::int(10)),
                Range::new(Expr::int(0), Expr::int(4)),
            ],
            body,
        );
        let flat = flatten(&realize);
        let text = flat.to_string();
        assert!(text.contains("allocate f[float32 * 40]"));
        assert!(text.contains("let f.min.0 = -1"));
        assert!(text.contains("let f.stride.0 = 1"));
        assert!(text.contains("let f.stride.1 = (f.stride.0*f.extent.0)"));
        assert!(text.contains("f["));
    }

    #[test]
    fn calls_become_loads() {
        let call = Expr::call(
            Type::f32(),
            "g",
            CallType::Halide,
            vec![Expr::var_i32("x") + 1, Expr::var_i32("y")],
        );
        let s = Stmt::provide("out", call, vec![Expr::var_i32("x"), Expr::var_i32("y")]);
        let flat = flatten(&s);
        let text = flat.to_string();
        assert!(text.contains("g["));
        assert!(text.contains("out["));
        assert!(!text.contains("g(")); // no call syntax left
    }

    #[test]
    fn image_calls_also_flattened() {
        let call = Expr::call(
            Type::u8(),
            "input",
            CallType::Image,
            vec![Expr::var_i32("x")],
        );
        let s = Stmt::for_loop(
            "x",
            Expr::int(0),
            Expr::int(4),
            ForKind::Serial,
            Stmt::provide("out", call, vec![Expr::var_i32("x")]),
        );
        let text = flatten(&s).to_string();
        assert!(text.contains("input[((x - input.min.0)*input.stride.0)]"));
    }

    #[test]
    fn intrinsic_calls_are_untouched() {
        let call = Expr::intrinsic("sqrt", vec![Expr::f32(4.0)], Type::f32());
        let s = Stmt::evaluate(call);
        let text = flatten(&s).to_string();
        assert!(text.contains("sqrt(4.0f)"));
    }
}
