//! Image-pyramid building blocks shared by the multi-scale interpolation and
//! local Laplacian pipelines: the `DOWN` and `UP` stages of Fig. 1.

use halide_ir::Expr;
use halide_lang::{Func, Var};

/// Creates a function computing a 2× downsample of `input` using the
/// separable `[1 3 3 1]/8` kernel of Fig. 1. Extra dimensions (e.g. the
/// intensity-level dimension `k` of the local Laplacian pyramids) are passed
/// through untouched.
pub fn downsample(name: &str, input: &Func, extra_dims: &[Var]) -> Func {
    let (x, y) = (Var::new("x"), Var::new("y"));
    let extra_exprs: Vec<Expr> = extra_dims.iter().map(|v| v.expr()).collect();
    let call = |xx: Expr, yy: Expr| {
        let mut coords = vec![xx, yy];
        coords.extend(extra_exprs.iter().cloned());
        input.at(coords)
    };

    // Horizontal [1 3 3 1] at 2x, then vertical.
    let downx = Func::new(format!("{name}_downx"));
    {
        let mut args = vec![x.clone(), y.clone()];
        args.extend(extra_dims.iter().cloned());
        downx.define(
            &args,
            (call(x.expr() * 2 - 1, y.expr())
                + call(x.expr() * 2, y.expr()) * 3.0f32
                + call(x.expr() * 2 + 1, y.expr()) * 3.0f32
                + call(x.expr() * 2 + 2, y.expr()))
                / 8.0f32,
        );
    }
    let down = Func::new(name.to_string());
    {
        let callx = |xx: Expr, yy: Expr| {
            let mut coords = vec![xx, yy];
            coords.extend(extra_exprs.iter().cloned());
            downx.at(coords)
        };
        let mut args = vec![x.clone(), y.clone()];
        args.extend(extra_dims.iter().cloned());
        down.define(
            &args,
            (callx(x.expr(), y.expr() * 2 - 1)
                + callx(x.expr(), y.expr() * 2) * 3.0f32
                + callx(x.expr(), y.expr() * 2 + 1) * 3.0f32
                + callx(x.expr(), y.expr() * 2 + 2))
                / 8.0f32,
        );
    }
    down
}

/// Creates a function computing a 2× upsample of `input` using bilinear
/// interpolation (the linear-phase counterpart of `UP` in Fig. 1).
pub fn upsample(name: &str, input: &Func, extra_dims: &[Var]) -> Func {
    let (x, y) = (Var::new("x"), Var::new("y"));
    let extra_exprs: Vec<Expr> = extra_dims.iter().map(|v| v.expr()).collect();
    let call = |xx: Expr, yy: Expr| {
        let mut coords = vec![xx, yy];
        coords.extend(extra_exprs.iter().cloned());
        input.at(coords)
    };

    let upx = Func::new(format!("{name}_upx"));
    {
        let mut args = vec![x.clone(), y.clone()];
        args.extend(extra_dims.iter().cloned());
        // Sample between coarse pixels: weights 1/4, 3/4 alternating with parity.
        upx.define(
            &args,
            call((x.expr() / 2) - 1 + 2 * (x.expr() % 2), y.expr()) * 0.25f32
                + call(x.expr() / 2, y.expr()) * 0.75f32,
        );
    }
    let up = Func::new(name.to_string());
    {
        let callx = |xx: Expr, yy: Expr| {
            let mut coords = vec![xx, yy];
            coords.extend(extra_exprs.iter().cloned());
            upx.at(coords)
        };
        let mut args = vec![x.clone(), y.clone()];
        args.extend(extra_dims.iter().cloned());
        up.define(
            &args,
            callx(x.expr(), (y.expr() / 2) - 1 + 2 * (y.expr() % 2)) * 0.25f32
                + callx(x.expr(), y.expr() / 2) * 0.75f32,
        );
    }
    up
}

#[cfg(test)]
mod tests {
    use super::*;
    use halide_exec::Realizer;
    use halide_ir::{ScalarType, Type};
    use halide_lang::{ImageParam, Pipeline};
    use halide_lower::lower;
    use halide_runtime::Buffer;

    #[test]
    fn downsample_then_upsample_preserves_a_constant_image() {
        let input = ImageParam::new("pyr_test_in", Type::f32(), 2);
        let (x, y) = (Var::new("x"), Var::new("y"));
        let clamped = Func::new("pyr_test_clamped");
        clamped.define(
            &[x.clone(), y.clone()],
            input.at_clamped(vec![x.expr(), y.expr()]),
        );
        let down = downsample("pyr_test_down", &clamped, &[]);
        let up = upsample("pyr_test_up", &down, &[]);
        let module = lower(&Pipeline::new(&up)).unwrap();
        let buf = Buffer::from_fn_2d(ScalarType::Float(32), 32, 32, |_, _| 0.5);
        let result = Realizer::new(&module)
            .input("pyr_test_in", buf)
            .threads(1)
            .realize(&[32, 32])
            .unwrap();
        for v in result.output.to_f64_vec() {
            assert!((v - 0.5).abs() < 1e-5, "constant image not preserved: {v}");
        }
    }

    #[test]
    fn downsample_halves_resolution_content() {
        let input = ImageParam::new("pyr_test2_in", Type::f32(), 2);
        let (x, y) = (Var::new("x"), Var::new("y"));
        let clamped = Func::new("pyr_test2_clamped");
        clamped.define(
            &[x.clone(), y.clone()],
            input.at_clamped(vec![x.expr(), y.expr()]),
        );
        let down = downsample("pyr_test2_down", &clamped, &[]);
        let module = lower(&Pipeline::new(&down)).unwrap();
        // a horizontal ramp stays a ramp (with 2x slope) after downsampling
        let buf = Buffer::from_fn_2d(ScalarType::Float(32), 64, 64, |x, _| x as f64);
        let result = Realizer::new(&module)
            .input("pyr_test2_in", buf)
            .threads(1)
            .realize(&[32, 32])
            .unwrap();
        let a = result.output.at_f64(&[10, 16]);
        let b = result.output.at_f64(&[11, 16]);
        assert!((b - a - 2.0).abs() < 0.3, "expected slope 2, got {}", b - a);
    }
}
