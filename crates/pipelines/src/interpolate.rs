//! Multi-scale interpolation: uses an image pyramid to interpolate pixel data
//! for seamless compositing (Sec. 6, "Multi-scale interpolation").
//!
//! The input is an RGBA-style image where the alpha channel marks known
//! pixels; the pyramid pulls known colors across unknown regions so the
//! result is a smooth interpolation. Chains of `DOWN` stages propagate
//! information globally; chains of `UP` stages redistribute it.

use halide_exec::{Realization, Realizer, Result as ExecResult};
use halide_ir::{Expr, ScalarType, Type};
use halide_lang::{Func, ImageParam, Pipeline, TailStrategy, Var};
use halide_lower::{lower, Module, Result as LowerResult};
use halide_runtime::Buffer;

use crate::pyramid::{downsample, upsample};

/// The interpolation pipeline's frontend objects.
pub struct InterpolateApp {
    /// Input image: 3 channels (value·alpha premultiplied is computed
    /// internally): channel 0 = value, channel 1 = alpha.
    pub input: ImageParam,
    /// Per-level downsampled pyramid (premultiplied), coarsest last.
    pub downsampled: Vec<Func>,
    /// Per-level interpolated pyramid, finest first.
    pub interpolated: Vec<Func>,
    /// The normalized output.
    pub out: Func,
    /// Number of pyramid levels.
    pub levels: usize,
}

impl InterpolateApp {
    /// Builds the algorithm with the given number of pyramid levels
    /// (the paper's implementation uses ~10 for multi-megapixel inputs;
    /// tests use fewer).
    pub fn new(levels: usize) -> InterpolateApp {
        assert!(
            levels >= 2,
            "interpolation needs at least two pyramid levels"
        );
        let input = ImageParam::new("interp_input", Type::f32(), 3);
        let (x, y, c) = (Var::new("x"), Var::new("y"), Var::new("c"));

        // downsampled[0]: premultiplied (value * alpha, alpha).
        let base = Func::new("interp_premultiplied");
        let alpha = input.at_clamped(vec![x.expr(), y.expr(), Expr::int(1)]);
        let value = input.at_clamped(vec![x.expr(), y.expr(), Expr::int(0)]);
        base.define(
            &[x.clone(), y.clone(), c.clone()],
            Expr::select(
                Expr::eq(c.expr(), Expr::int(0)),
                value * alpha.clone(),
                alpha,
            ),
        );

        let mut downsampled = vec![base.clone()];
        for l in 1..levels {
            let d = downsample(
                &format!("interp_down_{l}"),
                &downsampled[l - 1],
                &[c.clone()],
            );
            downsampled.push(d);
        }

        // interpolated[levels-1] is the coarsest downsampled level; walking
        // back up, unknown (low-alpha) pixels take the upsampled coarse value.
        let mut interpolated: Vec<Option<Func>> = vec![None; levels];
        interpolated[levels - 1] = Some(downsampled[levels - 1].clone());
        for l in (0..levels - 1).rev() {
            let up = upsample(
                &format!("interp_up_{l}"),
                interpolated[l + 1]
                    .as_ref()
                    .expect("built in previous iteration"),
                &[c.clone()],
            );
            let f = Func::new(format!("interp_level_{l}"));
            let d = &downsampled[l];
            let d_alpha = d.at(vec![x.expr(), y.expr(), Expr::int(1)]);
            f.define(
                &[x.clone(), y.clone(), c.clone()],
                d.at(vec![x.expr(), y.expr(), c.expr()])
                    + (Expr::f32(1.0) - d_alpha) * up.at(vec![x.expr(), y.expr(), c.expr()]),
            );
            interpolated[l] = Some(f);
        }
        let interpolated: Vec<Func> = interpolated
            .into_iter()
            .map(|f| f.expect("filled"))
            .collect();

        let out = Func::new("interp_out");
        let num = interpolated[0].at(vec![x.expr(), y.expr(), Expr::int(0)]);
        let den = interpolated[0].at(vec![x.expr(), y.expr(), Expr::int(1)]);
        out.define(
            &[x.clone(), y.clone()],
            num / Expr::max(den, Expr::f32(1e-6)),
        );

        InterpolateApp {
            input,
            downsampled,
            interpolated,
            out,
            levels,
        }
    }

    /// The pipeline rooted at the normalized output.
    pub fn pipeline(&self) -> Pipeline {
        Pipeline::new(&self.out)
    }

    /// A good CPU schedule: every stage of every pyramid level — including
    /// the `*_downx`/`*_upx` resampling helpers `downsample`/`upsample`
    /// create — computed at root, parallelized over rows, and vectorized
    /// across columns. The level extents are symbolic (they halve per level
    /// and rarely divide the vector width), so the interior stages round
    /// their x loop up to full vectors — the allocations are padded by
    /// lowering, no tail is needed — while the caller-allocated output takes
    /// a scalar epilogue via `guard_with_if`.
    pub fn schedule_good(&self) {
        let pipeline = self.pipeline();
        for f in pipeline.funcs() {
            if f.name() == self.out.name() {
                continue;
            }
            f.compute_root()
                .parallelize("y")
                .split_dim_tail("x", "xo", "xi", 16, TailStrategy::RoundUp)
                .vectorize_dim("xi");
        }
        self.out
            .split_dim("y", "yo", "yi", 8)
            .parallelize("yo")
            .split_dim_tail("x", "xo", "xi", 16, TailStrategy::GuardWithIf)
            .vectorize_dim("xi");
    }

    /// A simulated-GPU schedule: each pyramid level becomes a kernel.
    pub fn schedule_gpu(&self) {
        for f in self.downsampled.iter().skip(1) {
            f.compute_root().gpu_tile("x", "y", 8, 8);
        }
        for f in self.interpolated.iter().take(self.levels - 1) {
            f.compute_root().gpu_tile("x", "y", 8, 8);
        }
        self.out.gpu_tile("x", "y", 16, 16);
    }

    /// Compiles with the current schedule.
    ///
    /// # Errors
    ///
    /// Propagates lowering errors.
    pub fn compile(&self) -> LowerResult<Module> {
        lower(&self.pipeline())
    }

    /// Runs a compiled module.
    ///
    /// # Errors
    ///
    /// Propagates execution errors.
    pub fn run(&self, module: &Module, input: &Buffer, threads: usize) -> ExecResult<Realization> {
        self.run_on(
            module,
            input,
            threads,
            true,
            halide_exec::Backend::default(),
        )
    }

    /// Runs on an explicit execution [`Backend`](halide_exec::Backend)
    /// (the benchmark harnesses compare engines through this). `instrument`
    /// toggles the per-operation counters; pass `false` when the wall time
    /// matters (see [`halide_exec::Realizer::instrument`]).
    ///
    /// # Errors
    ///
    /// Propagates execution errors.
    pub fn run_on(
        &self,
        module: &Module,
        input: &Buffer,
        threads: usize,
        instrument: bool,
        backend: halide_exec::Backend,
    ) -> ExecResult<Realization> {
        let (w, h) = (input.dims()[0].extent, input.dims()[1].extent);
        Realizer::new(module)
            .input(self.input.name(), input.clone())
            .threads(threads)
            .instrument(instrument)
            .backend(backend)
            .realize(&[w, h])
    }
}

/// A synthetic input: channel 0 holds values, channel 1 holds alpha. A sparse
/// grid of "known" pixels carries a smooth function; everything else is
/// unknown (alpha 0).
pub fn make_input(width: i64, height: i64) -> Buffer {
    let buf = Buffer::with_extents(ScalarType::Float(32), &[width, height, 2]);
    for y in 0..height {
        for x in 0..width {
            let known = x % 8 == 0 && y % 8 == 0;
            let value = 0.2 + 0.6 * ((x + y) as f64 / (width + height) as f64);
            buf.set_coords_f64(&[x, y, 0], if known { value } else { 0.0 });
            buf.set_coords_f64(&[x, y, 1], if known { 1.0 } else { 0.0 });
        }
    }
    buf
}

/// An input where every pixel is known (alpha = 1): interpolation must then
/// reproduce the input exactly.
pub fn make_opaque_input(width: i64, height: i64, f: impl Fn(i64, i64) -> f64) -> Buffer {
    let buf = Buffer::with_extents(ScalarType::Float(32), &[width, height, 2]);
    for y in 0..height {
        for x in 0..width {
            buf.set_coords_f64(&[x, y, 0], f(x, y));
            buf.set_coords_f64(&[x, y, 1], 1.0);
        }
    }
    buf
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fully_known_image_is_reproduced() {
        // With alpha = 1 everywhere, every level's alpha is 1, so the output
        // equals the input values exactly (the upsampled correction term is
        // multiplied by 1 - alpha = 0).
        let input = make_opaque_input(32, 32, |x, y| 0.25 + (x as f64) * 0.01 + (y as f64) * 0.005);
        let app = InterpolateApp::new(3);
        app.schedule_good();
        let module = app.compile().unwrap();
        let result = app.run(&module, &input, 2).unwrap();
        for y in 0..32 {
            for x in 0..32 {
                let expected = input.at_f64(&[x, y, 0]);
                let got = result.output.at_f64(&[x, y]);
                assert!(
                    (expected - got).abs() < 1e-4,
                    "({x},{y}): expected {expected}, got {got}"
                );
            }
        }
    }

    #[test]
    fn sparse_samples_are_interpolated_smoothly() {
        let input = make_input(48, 48);
        let app = InterpolateApp::new(4);
        app.schedule_good();
        let module = app.compile().unwrap();
        let result = app.run(&module, &input, 2).unwrap();
        // Every output pixel must lie within the range of the known samples
        // (no ringing beyond the data), and unknown pixels must be filled.
        for y in 0..48 {
            for x in 0..48 {
                let v = result.output.at_f64(&[x, y]);
                assert!(v.is_finite());
                assert!(
                    v > 0.05 && v < 1.0,
                    "({x},{y}) value {v} outside plausible range"
                );
            }
        }
    }

    #[test]
    fn gpu_lowering_stays_compact() {
        // Regression: GPU-tiled pyramid chains used to make bounds
        // expressions grow multiplicatively per level — first because the
        // `min(0, max(e - f, 0))` split guards never folded, then because
        // bounds inference substituted whole interval expressions through
        // consumer chains. With let-bound bounds variables
        // (`<func>.<dim>.min/.extent` emitted per realization level), the
        // lowered statement must grow *linearly* with pyramid depth: a
        // 5-level pyramid lowers to roughly a 3-level one plus two more
        // levels' worth of stages, not 16x the size.
        let lowered_len = |levels: usize| {
            let app = InterpolateApp::new(levels);
            app.schedule_gpu();
            app.compile().unwrap().pretty().len()
        };
        let len3 = lowered_len(3);
        let len4 = lowered_len(4);
        let len5 = lowered_len(5);
        assert!(len3 < 100_000, "3-level pyramid blew up to {len3} bytes");
        // Per-level increments must be roughly constant (linear growth).
        // Exponential growth makes the second increment ~4x the first.
        let grow4 = len4.saturating_sub(len3);
        let grow5 = len5.saturating_sub(len4);
        assert!(
            grow4 > 0 && grow5 > 0,
            "deeper pyramids must lower to larger statements ({len3}, {len4}, {len5})"
        );
        assert!(
            grow5 < 2 * grow4,
            "lowered-size growth is superlinear: 3->4 added {grow4} bytes, \
             4->5 added {grow5} bytes ({len3}, {len4}, {len5})"
        );
    }

    #[test]
    fn gpu_schedule_matches_cpu() {
        let input = make_input(32, 32);
        let cpu = InterpolateApp::new(3);
        cpu.schedule_good();
        let cpu_out = cpu.run(&cpu.compile().unwrap(), &input, 2).unwrap();
        let gpu = InterpolateApp::new(3);
        gpu.schedule_gpu();
        let gpu_out = gpu.run(&gpu.compile().unwrap(), &input, 2).unwrap();
        assert!(cpu_out.output.max_abs_diff(&gpu_out.output) < 1e-4);
        assert!(gpu_out.counters.kernel_launches >= 3);
    }
}
