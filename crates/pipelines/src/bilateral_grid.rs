//! The bilateral grid (Chen, Paris, Durand 2007) — the paper's example of a
//! pipeline mixing a scattering reduction (grid construction), three small
//! stencils (blurring the grid), and a data-dependent trilinear gather
//! (slicing).

use halide_exec::{Realization, Realizer, Result as ExecResult};
use halide_ir::{Expr, ScalarType, Type};
use halide_lang::{Func, ImageParam, Pipeline, RDom, Var};
use halide_lower::{lower, Module, Result as LowerResult};
use halide_runtime::Buffer;

/// Spatial sampling rate of the grid (pixels per grid cell).
pub const S_SIGMA: i32 = 8;
/// Range sampling rate of the grid (intensity units per grid cell).
pub const R_SIGMA: f32 = 0.1;
/// Number of intensity bins in the grid.
pub const GRID_Z: i32 = 11; // ceil(1.0 / R_SIGMA) + 1

/// The bilateral-grid pipeline's frontend objects.
pub struct BilateralGridApp {
    /// Input image (float, expected in `[0, 1]`).
    pub input: ImageParam,
    /// Grid construction (scatter reduction): value and weight channels.
    pub grid: Func,
    /// Blur along z.
    pub blurz: Func,
    /// Blur along x.
    pub blurx: Func,
    /// Blur along y.
    pub blury: Func,
    /// Output: trilinear slice through the blurred grid.
    pub out: Func,
}

impl BilateralGridApp {
    /// Builds the algorithm.
    pub fn new() -> BilateralGridApp {
        let input = ImageParam::new("bilateral_input", Type::f32(), 2);
        let (x, y, z, c) = (Var::new("x"), Var::new("y"), Var::new("z"), Var::new("c"));

        // Construct the grid: each S_SIGMA x S_SIGMA block of pixels scatters
        // (value, 1) into the intensity bin of each pixel.
        let grid = Func::new("bg_grid");
        grid.define(
            &[x.clone(), y.clone(), z.clone(), c.clone()],
            Expr::f32(0.0),
        );
        let r = RDom::new(
            "r",
            vec![
                (Expr::int(0), Expr::int(S_SIGMA)),
                (Expr::int(0), Expr::int(S_SIGMA)),
            ],
        );
        let sample = input.at_clamped(vec![
            x.expr() * S_SIGMA + r.x().expr() - S_SIGMA / 2,
            y.expr() * S_SIGMA + r.y().expr() - S_SIGMA / 2,
        ]);
        let zi = (sample.clone() * (1.0f32 / R_SIGMA) + 0.5f32)
            .cast(Type::i32())
            .clamp(Expr::int(0), Expr::int(GRID_Z - 1));
        grid.update(
            vec![x.expr(), y.expr(), zi, c.expr()],
            grid.at(vec![
                x.expr(),
                y.expr(),
                (sample.clone() * (1.0f32 / R_SIGMA) + 0.5f32)
                    .cast(Type::i32())
                    .clamp(Expr::int(0), Expr::int(GRID_Z - 1)),
                c.expr(),
            ]) + Expr::select(Expr::eq(c.expr(), Expr::int(0)), sample, Expr::f32(1.0)),
            Some(r),
        );

        // 5-point (1, 4, 6, 4, 1) blur along each grid axis.
        let five_point = |f: &Func, dim: usize| -> Box<dyn Fn(Expr, Expr, Expr, Expr) -> Expr> {
            let f = f.clone();
            Box::new(move |xx: Expr, yy: Expr, zz: Expr, cc: Expr| {
                let shift = |d: i32| {
                    let mut coords = vec![xx.clone(), yy.clone(), zz.clone(), cc.clone()];
                    coords[dim] = coords[dim].clone() + d;
                    f.at(coords)
                };
                (shift(-2) + shift(-1) * 4.0f32 + shift(0) * 6.0f32 + shift(1) * 4.0f32 + shift(2))
                    / 16.0f32
            })
        };

        let blurz = Func::new("bg_blurz");
        blurz.define(
            &[x.clone(), y.clone(), z.clone(), c.clone()],
            five_point(&grid, 2)(x.expr(), y.expr(), z.expr(), c.expr()),
        );
        let blurx = Func::new("bg_blurx");
        blurx.define(
            &[x.clone(), y.clone(), z.clone(), c.clone()],
            five_point(&blurz, 0)(x.expr(), y.expr(), z.expr(), c.expr()),
        );
        let blury = Func::new("bg_blury");
        blury.define(
            &[x.clone(), y.clone(), z.clone(), c.clone()],
            five_point(&blurx, 1)(x.expr(), y.expr(), z.expr(), c.expr()),
        );

        // Slice: trilinear interpolation at (x/S, y/S, value/R_SIGMA).
        let out = Func::new("bg_out");
        let val = input.at_clamped(vec![x.expr(), y.expr()]);
        let zv = val * (1.0f32 / R_SIGMA);
        let zint = zv
            .clone()
            .cast(Type::i32())
            .clamp(Expr::int(0), Expr::int(GRID_Z - 2));
        let zf = zv - zint.clone().cast(Type::f32());
        let xf = (x.expr() % S_SIGMA).cast(Type::f32()) / S_SIGMA as f32;
        let yf = (y.expr() % S_SIGMA).cast(Type::f32()) / S_SIGMA as f32;
        let xi = x.expr() / S_SIGMA;
        let yi = y.expr() / S_SIGMA;
        let lerp = |a: Expr, b: Expr, w: Expr| a.clone() + (b - a) * w;
        let sample_grid = |cc: i32| {
            let corner = |dx: i32, dy: i32, dz: i32| {
                blury.at(vec![
                    xi.clone() + dx,
                    yi.clone() + dy,
                    zint.clone() + dz,
                    Expr::int(cc),
                ])
            };
            lerp(
                lerp(
                    lerp(corner(0, 0, 0), corner(1, 0, 0), xf.clone()),
                    lerp(corner(0, 1, 0), corner(1, 1, 0), xf.clone()),
                    yf.clone(),
                ),
                lerp(
                    lerp(corner(0, 0, 1), corner(1, 0, 1), xf.clone()),
                    lerp(corner(0, 1, 1), corner(1, 1, 1), xf.clone()),
                    yf.clone(),
                ),
                zf.clone(),
            )
        };
        let value = sample_grid(0);
        let weight = sample_grid(1);
        out.define(
            &[x.clone(), y.clone()],
            value / Expr::max(weight, Expr::f32(1e-6)),
        );

        BilateralGridApp {
            input,
            grid,
            blurz,
            blurx,
            blury,
            out,
        }
    }

    /// The pipeline rooted at the output.
    pub fn pipeline(&self) -> Pipeline {
        Pipeline::new(&self.out)
    }

    /// A good CPU schedule in the spirit of the paper's result: the grid
    /// stages are computed at root and parallelized over their (small) y
    /// dimension; the slice stage is tiled, parallelized and computed per
    /// tile. The three grid blurs and the slice are vectorized 8 wide —
    /// the slice's trilinear reads become bulk gathers on the compiled
    /// engine (the grid construction itself stays scalar: its scatter
    /// reduction is latency-, not width-, bound at these grid sizes).
    pub fn schedule_good(&self) {
        self.grid.compute_root().parallelize("y");
        for f in [&self.blurz, &self.blurx, &self.blury] {
            f.compute_root()
                .parallelize("y")
                .split_dim("x", "xv", "xl", 8)
                .vectorize_dim("xl");
        }
        self.out
            .tile_dims("x", "y", "xo", "yo", "xi", "yi", 32, 32)
            .parallelize("yo")
            .split_dim("xi", "xio", "xii", 8)
            .vectorize_dim("xii");
    }

    /// A simulated-GPU schedule: every stage is mapped to GPU tiles (cf. the
    /// CUDA half of Fig. 7).
    pub fn schedule_gpu(&self) {
        self.grid.compute_root().gpu_tile("x", "y", 8, 8);
        self.blurz.compute_root().gpu_tile("x", "y", 8, 8);
        self.blurx.compute_root().gpu_tile("x", "y", 8, 8);
        self.blury.compute_root().gpu_tile("x", "y", 8, 8);
        self.out.gpu_tile("x", "y", 16, 16);
    }

    /// Compiles with the current schedule.
    ///
    /// # Errors
    ///
    /// Propagates lowering errors.
    pub fn compile(&self) -> LowerResult<Module> {
        lower(&self.pipeline())
    }

    /// Runs a compiled module.
    ///
    /// # Errors
    ///
    /// Propagates execution errors.
    pub fn run(&self, module: &Module, input: &Buffer, threads: usize) -> ExecResult<Realization> {
        self.run_on(
            module,
            input,
            threads,
            true,
            halide_exec::Backend::default(),
        )
    }

    /// Runs on an explicit execution [`Backend`](halide_exec::Backend)
    /// (the benchmark harnesses compare engines through this). `instrument`
    /// toggles the per-operation counters; pass `false` when the wall time
    /// matters (see [`halide_exec::Realizer::instrument`]).
    ///
    /// # Errors
    ///
    /// Propagates execution errors.
    pub fn run_on(
        &self,
        module: &Module,
        input: &Buffer,
        threads: usize,
        instrument: bool,
        backend: halide_exec::Backend,
    ) -> ExecResult<Realization> {
        let (w, h) = (input.dims()[0].extent, input.dims()[1].extent);
        Realizer::new(module)
            .input(self.input.name(), input.clone())
            .threads(threads)
            .instrument(instrument)
            .backend(backend)
            .realize(&[w, h])
    }
}

impl Default for BilateralGridApp {
    fn default() -> Self {
        BilateralGridApp::new()
    }
}

/// A synthetic input in `[0, 1]`: a soft edge plus texture, the kind of
/// content edge-preserving smoothing is interesting on.
pub fn make_input(width: i64, height: i64) -> Buffer {
    Buffer::from_fn_2d(ScalarType::Float(32), width, height, |x, y| {
        let edge = if x < width / 2 { 0.25 } else { 0.75 };
        let texture = ((x * 13 + y * 7) % 16) as f64 / 160.0;
        (edge + texture).clamp(0.0, 1.0)
    })
}

/// Hand-written reference implementation of the same algorithm.
pub fn reference(input: &Buffer) -> Buffer {
    let w = input.dims()[0].extent;
    let h = input.dims()[1].extent;
    let s = S_SIGMA as i64;
    // Grid extents mirror what bounds inference derives: the slice stage
    // reads cells [0, (w-1)/s + 1] x [0, (h-1)/s + 1], the blurs pad by 2 in
    // each blurred dimension, and grid construction pads z by 2 via blurz.
    let gw = (w - 1) / s + 2 + 4;
    let gh = (h - 1) / s + 2 + 4;
    let gz = GRID_Z as i64 + 4;
    let off = 2i64; // index offset so cell -2 maps to slot 0
    let idx = |x: i64, y: i64, z: i64, c: i64| -> usize {
        ((((y + off) * gw + (x + off)) * gz + (z + off)) * 2 + c) as usize
    };
    let clampi = |v: i64, lo: i64, hi: i64| v.max(lo).min(hi);

    let mut grid = vec![0f32; (gw * gh * gz * 2) as usize];
    for gy in -2..gh - 2 {
        for gx in -2..gw - 2 {
            for ry in 0..s {
                for rx in 0..s {
                    let px = clampi(gx * s + rx - s / 2, 0, w - 1);
                    let py = clampi(gy * s + ry - s / 2, 0, h - 1);
                    let val = input.at_f64(&[px, py]) as f32;
                    let zi = clampi((val * (1.0 / R_SIGMA) + 0.5) as i64, 0, (GRID_Z - 1) as i64);
                    grid[idx(gx, gy, zi, 0)] += val;
                    grid[idx(gx, gy, zi, 1)] += 1.0;
                }
            }
        }
    }

    let blur_axis = |src: &Vec<f32>, axis: usize| -> Vec<f32> {
        let mut dst = vec![0f32; src.len()];
        for gy in -2..gh - 2 {
            for gx in -2..gw - 2 {
                for gz_i in -2..gz - 2 {
                    for c in 0..2 {
                        let mut acc = 0f32;
                        for (k, wgt) in [(-2i64, 1f32), (-1, 4.0), (0, 6.0), (1, 4.0), (2, 1.0)] {
                            let (mut sx, mut sy, mut sz) = (gx, gy, gz_i);
                            match axis {
                                0 => sx += k,
                                1 => sy += k,
                                _ => sz += k,
                            }
                            if sx < -off
                                || sx >= gw - off
                                || sy < -off
                                || sy >= gh - off
                                || sz < -off
                                || sz >= gz - off
                            {
                                continue; // outside: grid value is zero
                            }
                            acc += wgt * src[idx(sx, sy, sz, c)];
                        }
                        dst[idx(gx, gy, gz_i, c)] = acc / 16.0;
                    }
                }
            }
        }
        dst
    };
    let blurz = blur_axis(&grid, 2);
    let blurx = blur_axis(&blurz, 0);
    let blury = blur_axis(&blurx, 1);

    let out = Buffer::with_extents(ScalarType::Float(32), &[w, h]);
    for y in 0..h {
        for x in 0..w {
            let val = input.at_f64(&[x, y]) as f32;
            let zv = val * (1.0 / R_SIGMA);
            let zint = clampi(zv as i64, 0, (GRID_Z - 2) as i64);
            let zf = zv - zint as f32;
            let xf = (x % s) as f32 / s as f32;
            let yf = (y % s) as f32 / s as f32;
            let xi = x / s;
            let yi = y / s;
            let lerp = |a: f32, b: f32, w: f32| a + (b - a) * w;
            let mut interp = [0f32; 2];
            for (c, slot) in interp.iter_mut().enumerate() {
                let g =
                    |dx: i64, dy: i64, dz: i64| blury[idx(xi + dx, yi + dy, zint + dz, c as i64)];
                *slot = lerp(
                    lerp(
                        lerp(g(0, 0, 0), g(1, 0, 0), xf),
                        lerp(g(0, 1, 0), g(1, 1, 0), xf),
                        yf,
                    ),
                    lerp(
                        lerp(g(0, 0, 1), g(1, 0, 1), xf),
                        lerp(g(0, 1, 1), g(1, 1, 1), xf),
                        yf,
                    ),
                    zf,
                );
            }
            out.set_coords_f64(&[x, y], (interp[0] / interp[1].max(1e-6)) as f64);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_reference() {
        let input = make_input(40, 32);
        let app = BilateralGridApp::new();
        app.schedule_good();
        let module = app.compile().unwrap();
        let result = app.run(&module, &input, 2).unwrap();
        let expected = reference(&input);
        let diff = result.output.max_abs_diff(&expected);
        assert!(
            diff < 1e-3,
            "bilateral grid diverges from reference by {diff}"
        );
    }

    #[test]
    fn smooths_texture_but_preserves_the_edge() {
        let input = make_input(48, 32);
        let app = BilateralGridApp::new();
        app.schedule_good();
        let module = app.compile().unwrap();
        let result = app.run(&module, &input, 2).unwrap();
        // texture variance within each half is reduced
        let spread = |buf: &Buffer, x0: i64, x1: i64| {
            let mut min = f64::MAX;
            let mut max = f64::MIN;
            for y in 4..20 {
                for x in x0..x1 {
                    let v = buf.at_f64(&[x, y]);
                    min = min.min(v);
                    max = max.max(v);
                }
            }
            max - min
        };
        assert!(spread(&result.output, 4, 20) < spread(&input, 4, 20) * 0.7);
        // but the edge magnitude survives
        let edge_in = input.at_f64(&[32, 12]) - input.at_f64(&[12, 12]);
        let edge_out = result.output.at_f64(&[32, 12]) - result.output.at_f64(&[12, 12]);
        assert!(edge_out > edge_in * 0.5);
    }

    #[test]
    fn gpu_schedule_matches_cpu_schedule() {
        let input = make_input(32, 32);
        let cpu = BilateralGridApp::new();
        cpu.schedule_good();
        let cpu_result = cpu.run(&cpu.compile().unwrap(), &input, 2).unwrap();

        let gpu = BilateralGridApp::new();
        gpu.schedule_gpu();
        let gpu_result = gpu.run(&gpu.compile().unwrap(), &input, 2).unwrap();
        assert!(cpu_result.output.max_abs_diff(&gpu_result.output) < 1e-4);
        assert!(gpu_result.counters.kernel_launches > 0);
    }
}
