//! The two-stage 3×3 box blur of Sec. 3.1 — the paper's running example —
//! together with the five schedules of Fig. 3 and hand-written reference
//! implementations.

use halide_exec::{Realization, Realizer, Result as ExecResult};
use halide_ir::{ScalarType, Type};
use halide_lang::{Func, ImageParam, Pipeline, Var};
use halide_lower::{lower, Module, Result as LowerResult};
use halide_runtime::Buffer;

/// The blur pipeline's frontend objects (kept so schedules can be applied).
pub struct BlurApp {
    /// The input image parameter.
    pub input: ImageParam,
    /// First stage: horizontal 3×1 blur.
    pub blurx: Func,
    /// Second stage (output): vertical 1×3 blur of `blurx`.
    pub out: Func,
}

impl BlurApp {
    /// Builds the two-stage blur algorithm (no schedule applied yet).
    ///
    /// ```text
    /// blurx(x, y) = (in(x-1, y) + in(x, y) + in(x+1, y)) / 3
    /// out(x, y)   = (blurx(x, y-1) + blurx(x, y) + blurx(x, y+1)) / 3
    /// ```
    pub fn new() -> BlurApp {
        let input = ImageParam::new("blur_input", Type::f32(), 2);
        let (x, y) = (Var::new("x"), Var::new("y"));
        let blurx = Func::new("blurx");
        blurx.define(
            &[x.clone(), y.clone()],
            (input.at_clamped(vec![x.expr() - 1, y.expr()])
                + input.at_clamped(vec![x.expr(), y.expr()])
                + input.at_clamped(vec![x.expr() + 1, y.expr()]))
                / 3.0f32,
        );
        let out = Func::new("blur_out");
        out.define(
            &[x.clone(), y.clone()],
            (blurx.at(vec![x.expr(), y.expr() - 1])
                + blurx.at(vec![x.expr(), y.expr()])
                + blurx.at(vec![x.expr(), y.expr() + 1]))
                / 3.0f32,
        );
        BlurApp { input, blurx, out }
    }

    /// The pipeline rooted at the output stage.
    pub fn pipeline(&self) -> Pipeline {
        Pipeline::new(&self.out)
    }

    /// Applies a schedule and compiles.
    ///
    /// # Errors
    ///
    /// Propagates lowering errors (none of the built-in schedules should
    /// produce any).
    pub fn compile(&self, schedule: BlurSchedule) -> LowerResult<Module> {
        schedule.apply(self);
        lower(&self.pipeline())
    }

    /// Runs a compiled blur module on `input`, producing an output of the
    /// same size.
    ///
    /// # Errors
    ///
    /// Propagates execution errors.
    pub fn run(
        &self,
        module: &Module,
        input: &Buffer,
        threads: usize,
        instrument: bool,
    ) -> ExecResult<Realization> {
        self.run_on(
            module,
            input,
            threads,
            instrument,
            halide_exec::Backend::default(),
        )
    }

    /// Runs on an explicit execution [`Backend`](halide_exec::Backend)
    /// (the benchmark harnesses compare engines through this).
    ///
    /// # Errors
    ///
    /// Propagates execution errors.
    pub fn run_on(
        &self,
        module: &Module,
        input: &Buffer,
        threads: usize,
        instrument: bool,
        backend: halide_exec::Backend,
    ) -> ExecResult<Realization> {
        let (w, h) = (input.dims()[0].extent, input.dims()[1].extent);
        Realizer::new(module)
            .input(self.input.name(), input.clone())
            .threads(threads)
            .instrument(instrument)
            .backend(backend)
            .realize(&[w, h])
    }
}

impl Default for BlurApp {
    fn default() -> Self {
        BlurApp::new()
    }
}

/// The five scheduling strategies of Fig. 3 plus the paper's fastest
/// CPU schedule (tiled + vectorized + parallel).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlurSchedule {
    /// Compute and store `blurx` entirely before `out` (root/root).
    BreadthFirst,
    /// Inline `blurx` into `out`: recompute it at every use.
    FullFusion,
    /// Store `blurx` for the whole image but compute it one scanline ahead of
    /// `out` (serial `y`, reuse across iterations).
    SlidingWindow,
    /// Compute `blurx` per 32×32 tile of `out` (overlapping tiles).
    Tiled,
    /// Split `out` into strips of 8 scanlines processed in parallel, sliding
    /// `blurx` within each strip.
    SlidingInTiles,
    /// The paper's fastest CPU strategy: parallel tiles with vectorized inner
    /// loops, `blurx` computed per tile.
    ParallelTiledVector,
}

impl BlurSchedule {
    /// All schedules, in the order of Fig. 3.
    pub const ALL: [BlurSchedule; 6] = [
        BlurSchedule::BreadthFirst,
        BlurSchedule::FullFusion,
        BlurSchedule::SlidingWindow,
        BlurSchedule::Tiled,
        BlurSchedule::SlidingInTiles,
        BlurSchedule::ParallelTiledVector,
    ];

    /// The label used in Fig. 3.
    pub fn label(&self) -> &'static str {
        match self {
            BlurSchedule::BreadthFirst => "Breadth-first",
            BlurSchedule::FullFusion => "Full fusion",
            BlurSchedule::SlidingWindow => "Sliding window",
            BlurSchedule::Tiled => "Tiled",
            BlurSchedule::SlidingInTiles => "Sliding in tiles",
            BlurSchedule::ParallelTiledVector => "Parallel tiled + vectorized",
        }
    }

    /// Applies this schedule to the blur app's functions.
    pub fn apply(&self, app: &BlurApp) {
        match self {
            BlurSchedule::BreadthFirst => {
                app.blurx.compute_root();
                app.out.parallelize("y");
            }
            BlurSchedule::FullFusion => {
                app.blurx.compute_inline();
                app.out.parallelize("y");
            }
            BlurSchedule::SlidingWindow => {
                // Serial y is required for reuse; parallelism is given up.
                app.blurx.compute_at(&app.out, "y");
                app.blurx.store_root();
            }
            BlurSchedule::Tiled => {
                app.out
                    .tile_dims("x", "y", "xo", "yo", "xi", "yi", 32, 32)
                    .parallelize("yo");
                app.blurx.compute_at(&app.out, "xo");
            }
            BlurSchedule::SlidingInTiles => {
                app.out.split_dim("y", "ty", "y", 8).parallelize("ty");
                app.blurx.compute_at(&app.out, "y");
                app.blurx.store_at(&app.out, "ty");
            }
            BlurSchedule::ParallelTiledVector => {
                app.out
                    .tile_dims("x", "y", "xo", "yo", "xi", "yi", 64, 32)
                    .parallelize("yo")
                    .split_dim("xi", "xio", "xii", 8)
                    .vectorize_dim("xii");
                app.blurx.compute_at(&app.out, "xo");
                app.blurx
                    .split_dim("x", "bxo", "bxi", 8)
                    .vectorize_dim("bxi");
            }
        }
    }
}

/// A synthetic input image: a smooth gradient plus a deterministic
/// high-frequency pattern (so blurring it is observable and reproducible).
pub fn make_input(width: i64, height: i64) -> Buffer {
    Buffer::from_fn_2d(ScalarType::Float(32), width, height, |x, y| {
        let smooth = (x as f64) * 0.25 + (y as f64) * 0.5;
        let texture = ((x * 7 + y * 13) % 32) as f64;
        smooth + texture
    })
}

fn clamp(v: i64, lo: i64, hi: i64) -> i64 {
    v.max(lo).min(hi)
}

/// The straightforward hand-written implementation (the "clean C" baseline):
/// two separate passes over full-image temporaries.
pub fn reference(input: &Buffer) -> Buffer {
    let w = input.dims()[0].extent;
    let h = input.dims()[1].extent;
    let blurx = Buffer::with_extents(ScalarType::Float(32), &[w, h]);
    for y in 0..h {
        for x in 0..w {
            let a = input.at_f64(&[clamp(x - 1, 0, w - 1), y]);
            let b = input.at_f64(&[x, y]);
            let c = input.at_f64(&[clamp(x + 1, 0, w - 1), y]);
            blurx.set_coords_f64(
                &[x, y],
                (a as f32 + b as f32 + c as f32) as f64 / 3.0f32 as f64,
            );
        }
    }
    let out = Buffer::with_extents(ScalarType::Float(32), &[w, h]);
    for y in 0..h {
        for x in 0..w {
            let a = blurx.at_f64(&[x, (y - 1).max(0)]);
            let b = blurx.at_f64(&[x, y]);
            let c = blurx.at_f64(&[x, (y + 1).min(h - 1)]);
            out.set_coords_f64(&[x, y], (a as f32 + b as f32 + c as f32) as f64 / 3.0);
        }
    }
    out
}

/// A hand-optimized implementation in the spirit of the paper's expert
/// baseline: fused passes over strips of scanlines, processed in parallel
/// with a rolling 3-scanline window (no full-image temporary).
pub fn reference_optimized(input: &Buffer, threads: usize) -> Buffer {
    let w = input.dims()[0].extent;
    let h = input.dims()[1].extent;
    let out = Buffer::with_extents(ScalarType::Float(32), &[w, h]);
    let strip = 16i64;
    let strips: Vec<i64> = (0..h).step_by(strip as usize).collect();

    let process_strip = |y0: i64| {
        let y1 = (y0 + strip).min(h);
        // rolling window of three blurred scanlines
        let mut rows = vec![vec![0f32; w as usize]; 3];
        let blur_row = |y: i64, row: &mut Vec<f32>| {
            let yc = clamp(y, 0, h - 1);
            for x in 0..w {
                let a = input.at_f64(&[clamp(x - 1, 0, w - 1), yc]) as f32;
                let b = input.at_f64(&[x, yc]) as f32;
                let c = input.at_f64(&[clamp(x + 1, 0, w - 1), yc]) as f32;
                row[x as usize] = (a + b + c) / 3.0;
            }
        };
        let mut r0 = vec![0f32; w as usize];
        let mut r1 = vec![0f32; w as usize];
        let mut r2 = vec![0f32; w as usize];
        blur_row(y0 - 1, &mut r0);
        blur_row(y0, &mut r1);
        for y in y0..y1 {
            blur_row(y + 1, &mut r2);
            for x in 0..w {
                let v = (r0[x as usize] + r1[x as usize] + r2[x as usize]) / 3.0;
                out.set_coords_f64(&[x, y], v as f64);
            }
            std::mem::swap(&mut r0, &mut r1);
            std::mem::swap(&mut r1, &mut r2);
        }
        let _ = &mut rows;
    };

    if threads <= 1 {
        for &y0 in &strips {
            process_strip(y0);
        }
    } else {
        std::thread::scope(|scope| {
            for chunk in strips.chunks(strips.len().div_ceil(threads)) {
                let process_strip = &process_strip;
                scope.spawn(move || {
                    for &y0 in chunk {
                        process_strip(y0);
                    }
                });
            }
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every schedule of Fig. 3 must compute exactly the same image as the
    /// hand-written reference: schedules change performance, never results.
    #[test]
    fn all_schedules_match_reference() {
        let input = make_input(67, 41);
        let expected = reference(&input);
        for schedule in BlurSchedule::ALL {
            let app = BlurApp::new();
            let module = app.compile(schedule).unwrap();
            let result = app.run(&module, &input, 2, true).unwrap();
            let diff = result.output.max_abs_diff(&expected);
            assert!(
                diff < 1e-4,
                "schedule {:?} diverges from reference by {diff}",
                schedule.label()
            );
        }
    }

    #[test]
    fn optimized_reference_matches_naive_reference() {
        let input = make_input(41, 29);
        let a = reference(&input);
        let b = reference_optimized(&input, 4);
        assert!(a.max_abs_diff(&b) < 1e-4);
    }

    #[test]
    fn full_fusion_does_more_work_than_breadth_first() {
        let input = make_input(64, 64);
        let app_bf = BlurApp::new();
        let m_bf = app_bf.compile(BlurSchedule::BreadthFirst).unwrap();
        let bf = app_bf.run(&m_bf, &input, 1, true).unwrap();

        let app_fused = BlurApp::new();
        let m_fused = app_fused.compile(BlurSchedule::FullFusion).unwrap();
        let fused = app_fused.run(&m_fused, &input, 1, true).unwrap();

        let amplification = fused.counters.work_amplification(&bf.counters);
        assert!(
            amplification > 1.5,
            "full fusion should roughly double arithmetic, got {amplification}"
        );
    }

    #[test]
    fn sliding_window_avoids_redundant_work() {
        let input = make_input(64, 64);
        let app_bf = BlurApp::new();
        let m_bf = app_bf.compile(BlurSchedule::BreadthFirst).unwrap();
        let bf = app_bf.run(&m_bf, &input, 1, true).unwrap();

        let app_sw = BlurApp::new();
        let m_sw = app_sw.compile(BlurSchedule::SlidingWindow).unwrap();
        let sw = app_sw.run(&m_sw, &input, 1, true).unwrap();

        let amplification = sw.counters.work_amplification(&bf.counters);
        assert!(
            amplification < 1.25,
            "sliding window should do (nearly) no redundant work, got {amplification}"
        );
        // and its peak live intermediate storage is much smaller
        assert!(sw.counters.peak_bytes_live < bf.counters.peak_bytes_live / 4);
    }

    #[test]
    fn tiled_schedule_recomputes_only_tile_edges() {
        let input = make_input(128, 128);
        let app_bf = BlurApp::new();
        let m_bf = app_bf.compile(BlurSchedule::BreadthFirst).unwrap();
        let bf = app_bf.run(&m_bf, &input, 1, true).unwrap();

        let app_t = BlurApp::new();
        let m_t = app_t.compile(BlurSchedule::Tiled).unwrap();
        let t = app_t.run(&m_t, &input, 1, true).unwrap();

        let amplification = t.counters.work_amplification(&bf.counters);
        assert!(
            amplification > 1.0 && amplification < 1.3,
            "tiling should add a small boundary overhead, got {amplification}"
        );
    }
}
