//! A camera raw-processing pipeline in the style of the Frankencamera
//! pipeline used in the paper's evaluation: hot-pixel suppression,
//! deinterleaving of the Bayer mosaic, demosaicking, color correction, and a
//! tone curve applied through a lookup table — a long chain of interleaved,
//! heterogeneous stencils over integer pixel types.
//!
//! The original is proprietary C++; this reimplements the same stage
//! structure (documented substitution in `DESIGN.md`), with a simplified
//! bilinear demosaic.

use halide_exec::{Realization, Realizer, Result as ExecResult};
use halide_ir::{Expr, ScalarType, Type};
use halide_lang::{Func, ImageParam, Pipeline, Var};
use halide_lower::{lower, Module, Result as LowerResult};
use halide_runtime::Buffer;

/// Raw sensor white level (10-bit sensor).
pub const WHITE_LEVEL: i32 = 1023;

/// The camera pipeline's frontend objects (the key scheduling handles).
pub struct CameraPipeApp {
    /// 16-bit Bayer-mosaic raw input (GRBG pattern).
    pub input: ImageParam,
    /// Hot-pixel-suppressed raw.
    pub denoised: Func,
    /// Demosaicked red plane.
    pub red: Func,
    /// Demosaicked green plane.
    pub green: Func,
    /// Demosaicked blue plane.
    pub blue: Func,
    /// Color-corrected luminance (the stage the tone curve reads).
    pub corrected: Func,
    /// The tone curve lookup table.
    pub curve: Func,
    /// Tone-mapped channels (read by the sharpening stencil in `out`).
    pub curved: Func,
    /// 8-bit output (x, y, c).
    pub out: Func,
}

impl CameraPipeApp {
    /// Builds the algorithm. `gamma` and `contrast` shape the tone curve.
    pub fn new(gamma: f32, contrast: f32) -> CameraPipeApp {
        let input = ImageParam::new("camera_raw", Type::u16(), 2);
        let (x, y, c, i) = (Var::new("x"), Var::new("y"), Var::new("c"), Var::new("i"));

        let raw = |xx: Expr, yy: Expr| input.at_clamped(vec![xx, yy]).cast(Type::i32());

        // Hot pixel suppression: clamp each sample to the max/min of its
        // 4-neighbourhood at the same Bayer phase (offset 2).
        let denoised = Func::new("camera_denoised");
        {
            let center = raw(x.expr(), y.expr());
            let n = raw(x.expr(), y.expr() - 2);
            let s = raw(x.expr(), y.expr() + 2);
            let w = raw(x.expr() - 2, y.expr());
            let e = raw(x.expr() + 2, y.expr());
            let hi = Expr::max(
                Expr::max(n.clone(), s.clone()),
                Expr::max(w.clone(), e.clone()),
            );
            let lo = Expr::min(Expr::min(n, s), Expr::min(w, e));
            denoised.define(&[x.clone(), y.clone()], center.clamp(lo, hi));
        }

        let d = |xx: Expr, yy: Expr| denoised.at(vec![xx, yy]);
        // GRBG mosaic:  (0,0)=G  (1,0)=R  (0,1)=B  (1,1)=G
        let is_green = Expr::eq((x.expr() + y.expr()) % 2, Expr::int(0));
        let is_red_col = Expr::eq(x.expr() % 2, Expr::int(1));
        let is_red_row = Expr::eq(y.expr() % 2, Expr::int(0));

        // Green at every pixel: the sample itself on green sites, average of
        // the 4 neighbours elsewhere.
        let green = Func::new("camera_green");
        green.define(
            &[x.clone(), y.clone()],
            Expr::select(
                is_green.clone(),
                d(x.expr(), y.expr()),
                (d(x.expr() - 1, y.expr())
                    + d(x.expr() + 1, y.expr())
                    + d(x.expr(), y.expr() - 1)
                    + d(x.expr(), y.expr() + 1))
                    / 4,
            ),
        );

        // Red: sample on red sites, horizontal/vertical/diagonal averages elsewhere.
        let red = Func::new("camera_red");
        {
            let on_red = Expr::and(is_red_row.clone(), is_red_col.clone());
            let on_blue = Expr::and(Expr::not(is_red_row.clone()), Expr::not(is_red_col.clone()));
            let horiz = (d(x.expr() - 1, y.expr()) + d(x.expr() + 1, y.expr())) / 2;
            let vert = (d(x.expr(), y.expr() - 1) + d(x.expr(), y.expr() + 1)) / 2;
            let diag = (d(x.expr() - 1, y.expr() - 1)
                + d(x.expr() + 1, y.expr() - 1)
                + d(x.expr() - 1, y.expr() + 1)
                + d(x.expr() + 1, y.expr() + 1))
                / 4;
            red.define(
                &[x.clone(), y.clone()],
                Expr::select(
                    on_red,
                    d(x.expr(), y.expr()),
                    Expr::select(on_blue, diag, Expr::select(is_red_row.clone(), horiz, vert)),
                ),
            );
        }

        // Blue is the mirror image of red.
        let blue = Func::new("camera_blue");
        {
            let on_blue = Expr::and(Expr::not(is_red_row.clone()), Expr::not(is_red_col.clone()));
            let on_red = Expr::and(is_red_row.clone(), is_red_col.clone());
            let horiz = (d(x.expr() - 1, y.expr()) + d(x.expr() + 1, y.expr())) / 2;
            let vert = (d(x.expr(), y.expr() - 1) + d(x.expr(), y.expr() + 1)) / 2;
            let diag = (d(x.expr() - 1, y.expr() - 1)
                + d(x.expr() + 1, y.expr() - 1)
                + d(x.expr() - 1, y.expr() + 1)
                + d(x.expr() + 1, y.expr() + 1))
                / 4;
            blue.define(
                &[x.clone(), y.clone()],
                Expr::select(
                    on_blue,
                    d(x.expr(), y.expr()),
                    Expr::select(on_red, diag, Expr::select(is_red_row, vert, horiz)),
                ),
            );
        }

        // Color correction: a fixed 3x3 matrix in 1/256 fixed point.
        let corrected = Func::new("camera_corrected");
        {
            let r = red.at(vec![x.expr(), y.expr()]);
            let g = green.at(vec![x.expr(), y.expr()]);
            let b = blue.at(vec![x.expr(), y.expr()]);
            let mat = [[400, -80, -60], [-50, 380, -70], [-40, -90, 390]];
            let channel = |row: [i32; 3]| {
                (r.clone() * row[0] + g.clone() * row[1] + b.clone() * row[2]) / 256
            };
            corrected.define(
                &[x.clone(), y.clone(), c.clone()],
                Expr::select(
                    Expr::eq(c.expr(), Expr::int(0)),
                    channel(mat[0]),
                    Expr::select(
                        Expr::eq(c.expr(), Expr::int(1)),
                        channel(mat[1]),
                        channel(mat[2]),
                    ),
                )
                .clamp(Expr::int(0), Expr::int(WHITE_LEVEL)),
            );
        }

        // Tone curve as a lookup table over [0, WHITE_LEVEL].
        let curve = Func::new("camera_curve");
        {
            let v = i.expr().cast(Type::f32()) / WHITE_LEVEL as f32;
            let g = v.pow(Expr::f32(1.0 / gamma));
            let s = g.clone() * contrast + g * (1.0 - contrast);
            curve.define(
                &[i.clone()],
                (s * 255.0f32 + 0.5f32)
                    .cast(Type::i32())
                    .clamp(Expr::int(0), Expr::int(255)),
            );
        }

        // Apply the curve per channel and sharpen the result slightly.
        let curved = Func::new("camera_curved");
        curved.define(
            &[x.clone(), y.clone(), c.clone()],
            curve.at(vec![corrected
                .at(vec![x.expr(), y.expr(), c.expr()])
                .clamp(Expr::int(0), Expr::int(WHITE_LEVEL))]),
        );

        let out = Func::new("camera_out");
        {
            let center = curved.at(vec![x.expr(), y.expr(), c.expr()]);
            let blur = (curved.at(vec![x.expr() - 1, y.expr(), c.expr()])
                + curved.at(vec![x.expr() + 1, y.expr(), c.expr()])
                + curved.at(vec![x.expr(), y.expr() - 1, c.expr()])
                + curved.at(vec![x.expr(), y.expr() + 1, c.expr()]))
                / 4;
            let sharpened = center.clone() * 2 - blur;
            out.define(
                &[x.clone(), y.clone(), c.clone()],
                sharpened
                    .clamp(Expr::int(0), Expr::int(255))
                    .cast(Type::u8()),
            );
        }

        CameraPipeApp {
            input,
            denoised,
            red,
            green,
            blue,
            corrected,
            curve,
            curved,
            out,
        }
    }

    /// The pipeline rooted at the 8-bit output.
    pub fn pipeline(&self) -> Pipeline {
        Pipeline::new(&self.out)
    }

    /// A schedule in the spirit of the paper's result: the whole chain is
    /// computed per strip of output scanlines (fusing long chains of stencils
    /// through overlapping strips), the LUT computed once at root, the
    /// channel loop moved inside the strip loop (so the shared Bayer stages
    /// are produced once per strip instead of once per channel), and every
    /// stage vectorized 8 wide along x — the demosaic selects run as masked
    /// blends and the LUT lookups as bulk gathers on the compiled engine.
    /// `docs/scheduling.md` walks this schedule up from naive one directive
    /// at a time.
    pub fn schedule_good(&self) {
        self.curve.compute_root();
        self.out
            .split_dim("y", "yo", "yi", 16)
            .parallelize("yo")
            .split_dim("x", "xo", "xi", 8)
            .vectorize_dim("xi")
            .reorder_dims(&["yo", "c", "yi", "xo", "xi"]);
        for f in [
            &self.denoised,
            &self.green,
            &self.red,
            &self.blue,
            &self.corrected,
            &self.curved,
        ] {
            f.compute_at(&self.out, "yo")
                .split_dim("x", "xo", "xi", 8)
                .vectorize_dim("xi");
        }
    }

    /// Compiles with the current schedule.
    ///
    /// # Errors
    ///
    /// Propagates lowering errors.
    pub fn compile(&self) -> LowerResult<Module> {
        lower(&self.pipeline())
    }

    /// Runs a compiled module; the output has 3 channels.
    ///
    /// # Errors
    ///
    /// Propagates execution errors.
    pub fn run(&self, module: &Module, raw: &Buffer, threads: usize) -> ExecResult<Realization> {
        self.run_on(module, raw, threads, true, halide_exec::Backend::default())
    }

    /// Runs on an explicit execution [`Backend`](halide_exec::Backend)
    /// (the benchmark harnesses compare engines through this). `instrument`
    /// toggles the per-operation counters; pass `false` when the wall time
    /// matters (see [`halide_exec::Realizer::instrument`]).
    ///
    /// # Errors
    ///
    /// Propagates execution errors.
    pub fn run_on(
        &self,
        module: &Module,
        raw: &Buffer,
        threads: usize,
        instrument: bool,
        backend: halide_exec::Backend,
    ) -> ExecResult<Realization> {
        let (w, h) = (raw.dims()[0].extent, raw.dims()[1].extent);
        Realizer::new(module)
            .input(self.input.name(), raw.clone())
            .threads(threads)
            .instrument(instrument)
            .backend(backend)
            .realize(&[w, h, 3])
    }
}

/// A synthetic 10-bit GRBG Bayer raw image of a colorful gradient scene.
pub fn make_raw_input(width: i64, height: i64) -> Buffer {
    Buffer::from_fn_2d(ScalarType::UInt(16), width, height, |x, y| {
        let r = 300.0 + 500.0 * (x as f64 / width as f64);
        let g = 400.0 + 300.0 * (y as f64 / height as f64);
        let b = 700.0 - 400.0 * (x as f64 / width as f64);
        let v = match (x % 2, y % 2) {
            (0, 0) | (1, 1) => g,
            (1, 0) => r,
            _ => b,
        };
        v.clamp(0.0, WHITE_LEVEL as f64).floor()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn produces_plausible_rgb_output() {
        let raw = make_raw_input(64, 48);
        let app = CameraPipeApp::new(2.2, 0.8);
        app.schedule_good();
        let module = app.compile().unwrap();
        let result = app.run(&module, &raw, 2).unwrap();
        assert_eq!(result.output.dims().len(), 3);
        // all values are valid u8 and the red channel increases left to right
        let left_r = result.output.at_f64(&[8, 24, 0]);
        let right_r = result.output.at_f64(&[56, 24, 0]);
        assert!(
            right_r > left_r + 10.0,
            "red should increase: {left_r} -> {right_r}"
        );
        for v in result.output.to_f64_vec() {
            assert!((0.0..=255.0).contains(&v));
        }
    }

    #[test]
    fn fused_schedule_matches_breadth_first() {
        let raw = make_raw_input(48, 48);
        let bf = CameraPipeApp::new(2.2, 0.8);
        let bf_out = bf.run(&bf.compile().unwrap(), &raw, 1).unwrap();

        let fused = CameraPipeApp::new(2.2, 0.8);
        fused.schedule_good();
        let fused_out = fused.run(&fused.compile().unwrap(), &raw, 2).unwrap();
        assert_eq!(bf_out.output.max_abs_diff(&fused_out.output), 0.0);
        // the fused schedule keeps far less intermediate data live
        assert!(fused_out.counters.peak_bytes_live < bf_out.counters.peak_bytes_live);
    }

    #[test]
    fn pipeline_has_many_heterogeneous_stages() {
        let app = CameraPipeApp::new(2.2, 0.8);
        let stats = halide_lang::analyze(&app.pipeline());
        assert!(stats.functions >= 8);
        assert!(stats.stencils >= 4);
        assert!(
            stats.data_dependent >= 1,
            "the LUT gather is data-dependent"
        );
    }
}
