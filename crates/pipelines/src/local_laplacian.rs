//! Local Laplacian filters (Paris, Hasinoff, Kautz / Aubry et al.) — the
//! paper's largest example (Fig. 1): Gaussian and Laplacian pyramids over a
//! family of remapped images, combined by a data-dependent resampling across
//! the intensity dimension, then collapsed back to an image.
//!
//! The number of stages grows with the pyramid depth `J` and the number of
//! intensity levels `K`; at the paper's parameters (J = 8, K = 8) the graph
//! has ~99 stages.

use halide_exec::{Realization, Realizer, Result as ExecResult};
use halide_ir::{Expr, ScalarType, Type};
use halide_lang::{Func, ImageParam, Pipeline, TailStrategy, Var};
use halide_lower::{lower, Module, Result as LowerResult};
use halide_runtime::Buffer;

use crate::pyramid::{downsample, upsample};

/// The local Laplacian pipeline's frontend objects.
pub struct LocalLaplacianApp {
    /// Grayscale float input in `[0, 1]`.
    pub input: ImageParam,
    /// Gaussian pyramid of the remapped image family (indexed by level).
    pub g_pyramid: Vec<Func>,
    /// Laplacian pyramid of the remapped image family.
    pub l_pyramid: Vec<Func>,
    /// Gaussian pyramid of the input.
    pub in_g_pyramid: Vec<Func>,
    /// Output Laplacian pyramid (after the data-dependent blend).
    pub out_l_pyramid: Vec<Func>,
    /// Collapsed output pyramid, finest level first.
    pub out_g_pyramid: Vec<Func>,
    /// The output stage.
    pub out: Func,
    /// Pyramid depth.
    pub levels: usize,
    /// Number of discrete intensity levels.
    pub k: usize,
}

impl LocalLaplacianApp {
    /// Builds the algorithm.
    ///
    /// `levels` is the pyramid depth (paper: 8), `k` the number of intensity
    /// levels (paper: 8), `alpha` controls detail enhancement and `beta`
    /// tone-mapping strength (`alpha = 0, beta = 1` is the identity filter).
    pub fn new(levels: usize, k: usize, alpha: f32, beta: f32) -> LocalLaplacianApp {
        assert!(levels >= 2 && k >= 2);
        let input = ImageParam::new("llf_input", Type::f32(), 2);
        let (x, y, kv) = (Var::new("x"), Var::new("y"), Var::new("k"));

        let gray = Func::new("llf_gray");
        gray.define(
            &[x.clone(), y.clone()],
            input.at_clamped(vec![x.expr(), y.expr()]),
        );

        // The remapped image family: one remapping per intensity level k,
        // expressed as a 3-D function (x, y, k). This is the LUT stage of
        // Fig. 1 fused with the level construction.
        let remapped = Func::new("llf_remapped");
        {
            let level = kv.expr().cast(Type::f32()) / (k as i32 - 1) as f32;
            let g = gray.at(vec![x.expr(), y.expr()]);
            let diff = g.clone() - level.clone();
            // smooth detail remapping: beta scales the base difference, alpha
            // adds a sigmoid-ish detail boost
            let detail = diff.clone()
                * (Expr::f32(1.0) - diff.clone() * diff.clone())
                    .clamp(Expr::f32(0.0), Expr::f32(1.0));
            remapped.define(
                &[x.clone(), y.clone(), kv.clone()],
                level + diff * beta + detail * alpha,
            );
        }

        // Gaussian pyramid of the remapped family (3-D: x, y, k).
        let mut g_pyramid = vec![remapped.clone()];
        for j in 1..levels {
            g_pyramid.push(downsample(
                &format!("llf_gpyr_{j}"),
                &g_pyramid[j - 1],
                &[kv.clone()],
            ));
        }
        // Laplacian pyramid: difference between a level and the upsampled
        // next-coarser level; the coarsest level is the Gaussian level itself.
        let mut l_pyramid = Vec::with_capacity(levels);
        for j in 0..levels - 1 {
            let up = upsample(
                &format!("llf_lpyr_up_{j}"),
                &g_pyramid[j + 1],
                &[kv.clone()],
            );
            let l = Func::new(format!("llf_lpyr_{j}"));
            l.define(
                &[x.clone(), y.clone(), kv.clone()],
                g_pyramid[j].at(vec![x.expr(), y.expr(), kv.expr()])
                    - up.at(vec![x.expr(), y.expr(), kv.expr()]),
            );
            l_pyramid.push(l);
        }
        l_pyramid.push(g_pyramid[levels - 1].clone());

        // Gaussian pyramid of the input itself.
        let mut in_g_pyramid = vec![gray.clone()];
        for j in 1..levels {
            in_g_pyramid.push(downsample(
                &format!("llf_inpyr_{j}"),
                &in_g_pyramid[j - 1],
                &[],
            ));
        }

        // Output Laplacian pyramid: at each level and pixel, blend the two
        // intensity levels bracketing the input pyramid's value — the
        // data-dependent access (DDA) of Fig. 1.
        let mut out_l_pyramid = Vec::with_capacity(levels);
        for j in 0..levels {
            let f = Func::new(format!("llf_outlpyr_{j}"));
            let level = in_g_pyramid[j]
                .at(vec![x.expr(), y.expr()])
                .clamp(Expr::f32(0.0), Expr::f32(1.0))
                * (k as i32 - 1) as f32;
            let li = level
                .clone()
                .cast(Type::i32())
                .clamp(Expr::int(0), Expr::int(k as i32 - 2));
            let lf = level - li.clone().cast(Type::f32());
            f.define(
                &[x.clone(), y.clone()],
                l_pyramid[j].at(vec![x.expr(), y.expr(), li.clone()])
                    * (Expr::f32(1.0) - lf.clone())
                    + l_pyramid[j].at(vec![x.expr(), y.expr(), li + 1]) * lf,
            );
            out_l_pyramid.push(f);
        }

        // Collapse: start from the coarsest output level and add detail back.
        let mut out_g_pyramid: Vec<Option<Func>> = vec![None; levels];
        out_g_pyramid[levels - 1] = Some(out_l_pyramid[levels - 1].clone());
        for j in (0..levels - 1).rev() {
            let up = upsample(
                &format!("llf_collapse_up_{j}"),
                out_g_pyramid[j + 1]
                    .as_ref()
                    .expect("built in previous iteration"),
                &[],
            );
            let f = Func::new(format!("llf_outgpyr_{j}"));
            f.define(
                &[x.clone(), y.clone()],
                up.at(vec![x.expr(), y.expr()]) + out_l_pyramid[j].at(vec![x.expr(), y.expr()]),
            );
            out_g_pyramid[j] = Some(f);
        }
        let out_g_pyramid: Vec<Func> = out_g_pyramid
            .into_iter()
            .map(|f| f.expect("filled"))
            .collect();

        let out = Func::new("llf_out");
        out.define(
            &[x.clone(), y.clone()],
            out_g_pyramid[0]
                .at(vec![x.expr(), y.expr()])
                .clamp(Expr::f32(0.0), Expr::f32(1.0)),
        );

        LocalLaplacianApp {
            input,
            g_pyramid,
            l_pyramid,
            in_g_pyramid,
            out_l_pyramid,
            out_g_pyramid,
            out,
            levels,
            k,
        }
    }

    /// The pipeline rooted at the output.
    pub fn pipeline(&self) -> Pipeline {
        Pipeline::new(&self.out)
    }

    /// Number of functions in the pipeline graph (the paper reports 99 at
    /// J = 8, K = 8 with its exact stage structure).
    pub fn stage_count(&self) -> usize {
        self.pipeline().len()
    }

    /// A good CPU schedule: every stage of every pyramid level — including
    /// the `*_downx`/`*_upx` resampling helpers `downsample`/`upsample`
    /// create — computed at root, parallelized over rows, and vectorized
    /// across columns. The level extents are symbolic and rarely divide the
    /// vector width, so interior stages round their x loop up to full
    /// vectors (lowering pads the allocations); the caller-allocated output
    /// takes a scalar epilogue via `guard_with_if`.
    pub fn schedule_good(&self) {
        let pipeline = self.pipeline();
        for f in pipeline.funcs() {
            if f.name() == self.out.name() {
                continue;
            }
            f.compute_root()
                .parallelize("y")
                .split_dim_tail("x", "xo", "xi", 16, TailStrategy::RoundUp)
                .vectorize_dim("xi");
        }
        self.out
            .split_dim("y", "yo", "yi", 8)
            .parallelize("yo")
            .split_dim_tail("x", "xo", "xi", 16, TailStrategy::GuardWithIf)
            .vectorize_dim("xi");
    }

    /// Compiles with the current schedule.
    ///
    /// # Errors
    ///
    /// Propagates lowering errors.
    pub fn compile(&self) -> LowerResult<Module> {
        lower(&self.pipeline())
    }

    /// Runs a compiled module.
    ///
    /// # Errors
    ///
    /// Propagates execution errors.
    pub fn run(&self, module: &Module, input: &Buffer, threads: usize) -> ExecResult<Realization> {
        self.run_on(
            module,
            input,
            threads,
            true,
            halide_exec::Backend::default(),
        )
    }

    /// Runs on an explicit execution [`Backend`](halide_exec::Backend)
    /// (the benchmark harnesses compare engines through this). `instrument`
    /// toggles the per-operation counters; pass `false` when the wall time
    /// matters (see [`halide_exec::Realizer::instrument`]).
    ///
    /// # Errors
    ///
    /// Propagates execution errors.
    pub fn run_on(
        &self,
        module: &Module,
        input: &Buffer,
        threads: usize,
        instrument: bool,
        backend: halide_exec::Backend,
    ) -> ExecResult<Realization> {
        let (w, h) = (input.dims()[0].extent, input.dims()[1].extent);
        Realizer::new(module)
            .input(self.input.name(), input.clone())
            .threads(threads)
            .instrument(instrument)
            .backend(backend)
            .realize(&[w, h])
    }
}

/// A synthetic HDR-ish grayscale input in `[0, 1]` with low-contrast detail
/// on top of a strong illumination gradient — the content local Laplacian
/// filtering is designed for.
pub fn make_input(width: i64, height: i64) -> Buffer {
    Buffer::from_fn_2d(ScalarType::Float(32), width, height, |x, y| {
        let illumination = 0.15 + 0.7 * (x as f64 / width as f64);
        let detail = 0.05 * (((x * 5 + y * 3) % 16) as f64 / 15.0 - 0.5);
        (illumination + detail).clamp(0.0, 1.0)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_parameters_reproduce_the_input() {
        // With alpha = 0 (no detail boost) and beta = 1 (no tone compression)
        // every remapped level equals the input, so the Laplacian blend and
        // collapse reconstruct the input (up to pyramid resampling error).
        let input = make_input(32, 32);
        let app = LocalLaplacianApp::new(3, 4, 0.0, 1.0);
        app.schedule_good();
        let module = app.compile().unwrap();
        let result = app.run(&module, &input, 2).unwrap();
        let diff = result.output.max_abs_diff(&input);
        assert!(
            diff < 0.02,
            "identity filter should reproduce the input, diff {diff}"
        );
    }

    #[test]
    fn enhancement_increases_local_contrast() {
        let input = make_input(32, 32);
        let identity = LocalLaplacianApp::new(3, 4, 0.0, 1.0);
        identity.schedule_good();
        let id_out = identity
            .run(&identity.compile().unwrap(), &input, 2)
            .unwrap();

        let boost = LocalLaplacianApp::new(3, 4, 2.0, 1.0);
        boost.schedule_good();
        let boost_out = boost.run(&boost.compile().unwrap(), &input, 2).unwrap();

        // local contrast proxy: mean absolute difference between neighbours
        let contrast = |b: &Buffer| {
            let mut acc = 0.0;
            let mut n = 0.0;
            for y in 1..31 {
                for x in 1..31 {
                    acc += (b.at_f64(&[x, y]) - b.at_f64(&[x - 1, y])).abs();
                    n += 1.0;
                }
            }
            acc / n
        };
        assert!(contrast(&boost_out.output) > contrast(&id_out.output) * 1.1);
    }

    #[test]
    fn stage_count_grows_to_paper_scale() {
        let small = LocalLaplacianApp::new(3, 4, 1.0, 0.5);
        let paper = LocalLaplacianApp::new(8, 8, 1.0, 0.5);
        assert!(small.stage_count() >= 20);
        assert!(
            paper.stage_count() >= 60,
            "paper-scale pipeline has {} stages",
            paper.stage_count()
        );
    }
}
