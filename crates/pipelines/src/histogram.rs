//! Histogram equalization — the reduction example of Sec. 2 of the paper:
//! a scattering reduction builds a histogram, a recursive scan integrates it
//! into a CDF, and a point-wise, data-dependent gather remaps the input.

use halide_exec::{Realization, Realizer, Result as ExecResult};
use halide_ir::{Expr, ScalarType, Type};
use halide_lang::{Func, ImageParam, Pipeline, RDom, Var};
use halide_lower::{lower, Module, Result as LowerResult};
use halide_runtime::Buffer;

/// Number of intensity bins (8-bit input).
pub const BINS: i32 = 256;

/// The histogram-equalization pipeline's frontend objects.
pub struct HistogramApp {
    /// 8-bit grayscale input.
    pub input: ImageParam,
    /// The scattering histogram reduction.
    pub histogram: Func,
    /// The recursive-scan CDF.
    pub cdf: Func,
    /// The output stage (data-dependent gather through the CDF).
    pub out: Func,
    /// Input width the algorithm was built for (the reduction domain spans
    /// it); schedules consult it for width-dependent choices.
    width: i32,
}

impl HistogramApp {
    /// Builds the algorithm for an input of known size (the histogram's
    /// reduction domain spans the whole input).
    pub fn new(width: i32, height: i32) -> HistogramApp {
        let input = ImageParam::new("histeq_input", Type::u8(), 2);
        let (x, y, i) = (Var::new("x"), Var::new("y"), Var::new("i"));

        let bucket_of = |e: Expr| e.cast(Type::i32()).clamp(Expr::int(0), Expr::int(BINS - 1));

        let histogram = Func::new("histeq_hist");
        histogram.define(&[i.clone()], Expr::int(0));
        let r = RDom::new(
            "r",
            vec![
                (Expr::int(0), Expr::int(width)),
                (Expr::int(0), Expr::int(height)),
            ],
        );
        let bucket = bucket_of(input.at(vec![r.x().expr(), r.y().expr()]));
        histogram.update(
            vec![bucket.clone()],
            histogram.at(vec![bucket]) + 1,
            Some(r),
        );

        let cdf = Func::new("histeq_cdf");
        cdf.define(&[i.clone()], Expr::int(0));
        // cdf(0) = histogram(0)
        cdf.update(vec![Expr::int(0)], histogram.at(vec![Expr::int(0)]), None);
        // cdf(ri) = cdf(ri - 1) + histogram(ri) for ri in [1, BINS)
        let ri = RDom::over("ri", 1, BINS - 1);
        cdf.update(
            vec![ri.x().expr()],
            cdf.at(vec![ri.x().expr() - 1]) + histogram.at(vec![ri.x().expr()]),
            Some(ri),
        );

        let out = Func::new("histeq_out");
        let total = Expr::int(width) * Expr::int(height);
        let remapped =
            cdf.at(vec![bucket_of(input.at(vec![x.expr(), y.expr()]))]) * (BINS - 1) / total;
        out.define(
            &[x.clone(), y.clone()],
            remapped
                .clamp(Expr::int(0), Expr::int(BINS - 1))
                .cast(Type::u8()),
        );

        HistogramApp {
            input,
            histogram,
            cdf,
            out,
            width,
        }
    }

    /// The pipeline rooted at the output.
    pub fn pipeline(&self) -> Pipeline {
        Pipeline::new(&self.out)
    }

    /// Applies a sensible parallel schedule: the histogram and CDF are small
    /// and computed at root; the output stage is parallelized over rows and
    /// vectorized across x. The remap `cdf(bucket(input(x, y)))` then runs as
    /// one dense vector load of the input row, a vector bucket computation,
    /// and one bulk clamped **gather** through the 256-entry CDF per 8
    /// pixels, instead of 8 scalar loads and table lookups (the reductions
    /// themselves are serial by data dependence and stay scalar). Images
    /// narrower than one vector keep the scalar inner loop — the split
    /// would otherwise reject them at realize time.
    pub fn schedule_good(&self) {
        self.histogram.compute_root();
        self.cdf.compute_root();
        self.out.parallelize("y");
        if self.width >= 8 {
            self.out.split_dim("x", "xo", "xi", 8).vectorize_dim("xi");
        }
    }

    /// Compiles the pipeline with the current schedule.
    ///
    /// # Errors
    ///
    /// Propagates lowering errors.
    pub fn compile(&self) -> LowerResult<Module> {
        lower(&self.pipeline())
    }

    /// Runs a compiled module on the given 8-bit input.
    ///
    /// # Errors
    ///
    /// Propagates execution errors.
    pub fn run(&self, module: &Module, input: &Buffer, threads: usize) -> ExecResult<Realization> {
        self.run_on(
            module,
            input,
            threads,
            true,
            halide_exec::Backend::default(),
        )
    }

    /// Runs on an explicit execution [`Backend`](halide_exec::Backend)
    /// (the benchmark harnesses compare engines through this). `instrument`
    /// toggles the per-operation counters; pass `false` when the wall time
    /// matters (see [`halide_exec::Realizer::instrument`]).
    ///
    /// # Errors
    ///
    /// Propagates execution errors.
    pub fn run_on(
        &self,
        module: &Module,
        input: &Buffer,
        threads: usize,
        instrument: bool,
        backend: halide_exec::Backend,
    ) -> ExecResult<Realization> {
        let (w, h) = (input.dims()[0].extent, input.dims()[1].extent);
        Realizer::new(module)
            .input(self.input.name(), input.clone())
            .threads(threads)
            .instrument(instrument)
            .backend(backend)
            .realize(&[w, h])
    }
}

/// A synthetic low-contrast 8-bit input (values clustered in the middle of
/// the range, so equalization visibly stretches them).
pub fn make_input(width: i64, height: i64) -> Buffer {
    Buffer::from_fn_2d(ScalarType::UInt(8), width, height, |x, y| {
        let v = 96.0 + 32.0 * (((x * 3 + y * 7) % 64) as f64 / 63.0);
        v.floor()
    })
}

/// Hand-written reference implementation.
pub fn reference(input: &Buffer) -> Buffer {
    let w = input.dims()[0].extent;
    let h = input.dims()[1].extent;
    let mut hist = vec![0i64; BINS as usize];
    for y in 0..h {
        for x in 0..w {
            hist[input.at_i64(&[x, y]).clamp(0, (BINS - 1) as i64) as usize] += 1;
        }
    }
    let mut cdf = vec![0i64; BINS as usize];
    cdf[0] = hist[0];
    for i in 1..BINS as usize {
        cdf[i] = cdf[i - 1] + hist[i];
    }
    let total = w * h;
    let out = Buffer::with_extents(ScalarType::UInt(8), &[w, h]);
    for y in 0..h {
        for x in 0..w {
            let b = input.at_i64(&[x, y]).clamp(0, (BINS - 1) as i64) as usize;
            let v = (cdf[b] * (BINS - 1) as i64).div_euclid(total);
            out.set_coords_i64(&[x, y], v.clamp(0, (BINS - 1) as i64));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_reference() {
        let input = make_input(48, 32);
        let app = HistogramApp::new(48, 32);
        app.schedule_good();
        let module = app.compile().unwrap();
        let result = app.run(&module, &input, 2).unwrap();
        let expected = reference(&input);
        assert_eq!(result.output.max_abs_diff(&expected), 0.0);
    }

    #[test]
    fn equalization_stretches_contrast() {
        let input = make_input(64, 64);
        let app = HistogramApp::new(64, 64);
        let module = app.compile().unwrap();
        let result = app.run(&module, &input, 1).unwrap();
        let values = result.output.to_f64_vec();
        let min = values.iter().cloned().fold(f64::MAX, f64::min);
        let max = values.iter().cloned().fold(f64::MIN, f64::max);
        // the input only spans ~[96, 128]; the equalized output must span
        // most of [0, 255]
        assert!(max - min > 180.0, "output range {min}..{max} too narrow");
    }

    /// The tuned schedule must keep serving images narrower than one
    /// vector (it falls back to the scalar inner loop instead of emitting
    /// a split the realizer would reject).
    #[test]
    fn tuned_schedule_handles_tiny_widths() {
        let input = make_input(4, 4);
        let app = HistogramApp::new(4, 4);
        app.schedule_good();
        let module = app.compile().unwrap();
        let result = app.run(&module, &input, 1).unwrap();
        assert_eq!(result.output.max_abs_diff(&reference(&input)), 0.0);
    }

    #[test]
    fn default_breadth_first_schedule_also_correct() {
        let input = make_input(33, 17);
        let app = HistogramApp::new(33, 17);
        let module = app.compile().unwrap();
        let result = app.run(&module, &input, 1).unwrap();
        assert_eq!(result.output.max_abs_diff(&reference(&input)), 0.0);
    }
}
