//! A uniform interface over the paper's benchmark applications, used by the
//! figure/table harnesses in `halide-bench` (Fig. 6, Fig. 7, Fig. 8).

use halide_exec::{Realization, Realizer, Result as ExecResult};
use halide_lang::{analyze, PipelineStats};
use halide_lower::{Module, Result as LowerResult};
use halide_runtime::Buffer;

use crate::{bilateral_grid, blur, camera_pipe, histogram, interpolate, local_laplacian};

/// Which schedule flavour to run an application with.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScheduleChoice {
    /// The default breadth-first schedule (every stage computed at root,
    /// serial loops) — the "composing library calls" baseline.
    Naive,
    /// A hand-crafted schedule in the spirit of the paper's tuned results.
    Tuned,
    /// A simulated-GPU schedule (only available for some apps).
    Gpu,
}

/// The applications of the paper's evaluation (Fig. 6 / Fig. 7).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AppKind {
    /// Two-stage 3×3 blur (Sec. 3.1).
    Blur,
    /// Histogram equalization (Sec. 2).
    Histogram,
    /// Bilateral grid.
    BilateralGrid,
    /// Camera raw pipeline.
    CameraPipe,
    /// Multi-scale interpolation.
    Interpolate,
    /// Local Laplacian filters.
    LocalLaplacian,
}

impl AppKind {
    /// The five applications of Fig. 6/7 (histogram equalization is the
    /// paper's Sec. 2 example and is reported separately where useful).
    pub const PAPER_APPS: [AppKind; 5] = [
        AppKind::Blur,
        AppKind::BilateralGrid,
        AppKind::CameraPipe,
        AppKind::Interpolate,
        AppKind::LocalLaplacian,
    ];

    /// All applications, including histogram equalization.
    pub const ALL: [AppKind; 6] = [
        AppKind::Blur,
        AppKind::Histogram,
        AppKind::BilateralGrid,
        AppKind::CameraPipe,
        AppKind::Interpolate,
        AppKind::LocalLaplacian,
    ];

    /// The app's display name (matching the paper's tables).
    pub fn name(&self) -> &'static str {
        match self {
            AppKind::Blur => "Blur",
            AppKind::Histogram => "Histogram equalize",
            AppKind::BilateralGrid => "Bilateral grid",
            AppKind::CameraPipe => "Camera pipe",
            AppKind::Interpolate => "Interpolate",
            AppKind::LocalLaplacian => "Local Laplacian",
        }
    }

    /// True if a GPU schedule is provided for this app (mirrors the CUDA
    /// half of Fig. 7).
    pub fn has_gpu_schedule(&self) -> bool {
        matches!(self, AppKind::BilateralGrid | AppKind::Interpolate)
    }

    /// A short, stable, URL/key-friendly identifier (`blur`, `camera-pipe`,
    /// …) — the name the serving registry addresses an app by. Round-trips
    /// through [`AppKind::from_slug`].
    pub fn slug(&self) -> &'static str {
        match self {
            AppKind::Blur => "blur",
            AppKind::Histogram => "histogram",
            AppKind::BilateralGrid => "bilateral-grid",
            AppKind::CameraPipe => "camera-pipe",
            AppKind::Interpolate => "interpolate",
            AppKind::LocalLaplacian => "local-laplacian",
        }
    }

    /// Parses a slug produced by [`AppKind::slug`].
    pub fn from_slug(slug: &str) -> Option<AppKind> {
        AppKind::ALL.into_iter().find(|a| a.slug() == slug)
    }

    /// Builds a synthetic input of the shape and element type this app
    /// expects at the given image size.
    pub fn make_input(&self, width: i64, height: i64) -> Buffer {
        match self {
            AppKind::Blur => blur::make_input(width, height),
            AppKind::Histogram => histogram::make_input(width, height),
            AppKind::BilateralGrid => bilateral_grid::make_input(width, height),
            AppKind::CameraPipe => camera_pipe::make_raw_input(width, height),
            AppKind::Interpolate => interpolate::make_input(width, height),
            AppKind::LocalLaplacian => local_laplacian::make_input(width, height),
        }
    }

    /// The output extents this app realizes for an input of the given size
    /// (the camera pipe emits three color channels; everything else is
    /// same-shaped).
    pub fn output_extents(&self, width: i64, height: i64) -> Vec<i64> {
        match self {
            AppKind::CameraPipe => vec![width, height, 3],
            _ => vec![width, height],
        }
    }

    /// Builds the app's pipeline with the chosen schedule applied and lowers
    /// it to a reusable [`Module`] — the compile half of compile-once /
    /// realize-many. Some apps bake the image size into the algorithm (the
    /// histogram's reduction domain, the pyramids' depth), so the module is
    /// specific to `width` × `height`; serving layers key their caches on
    /// the shape for exactly this reason.
    ///
    /// # Errors
    ///
    /// Propagates lowering errors.
    pub fn build(
        &self,
        width: i64,
        height: i64,
        schedule: ScheduleChoice,
    ) -> LowerResult<BuiltApp> {
        let (module, input_name, stats) = match self {
            AppKind::Blur => {
                let app = blur::BlurApp::new();
                let s = match schedule {
                    ScheduleChoice::Naive => blur::BlurSchedule::BreadthFirst,
                    _ => blur::BlurSchedule::ParallelTiledVector,
                };
                let module = app.compile(s)?;
                (
                    module,
                    app.input.name().to_string(),
                    analyze(&app.pipeline()),
                )
            }
            AppKind::Histogram => {
                let app = histogram::HistogramApp::new(width as i32, height as i32);
                if schedule != ScheduleChoice::Naive {
                    app.schedule_good();
                }
                let module = app.compile()?;
                (
                    module,
                    app.input.name().to_string(),
                    analyze(&app.pipeline()),
                )
            }
            AppKind::BilateralGrid => {
                let app = bilateral_grid::BilateralGridApp::new();
                match schedule {
                    ScheduleChoice::Naive => {}
                    ScheduleChoice::Tuned => app.schedule_good(),
                    ScheduleChoice::Gpu => app.schedule_gpu(),
                }
                let module = app.compile()?;
                (
                    module,
                    app.input.name().to_string(),
                    analyze(&app.pipeline()),
                )
            }
            AppKind::CameraPipe => {
                let app = camera_pipe::CameraPipeApp::new(2.2, 0.8);
                if schedule != ScheduleChoice::Naive {
                    app.schedule_good();
                }
                let module = app.compile()?;
                (
                    module,
                    app.input.name().to_string(),
                    analyze(&app.pipeline()),
                )
            }
            AppKind::Interpolate => {
                let levels = pyramid_levels(width, height);
                let app = interpolate::InterpolateApp::new(levels);
                match schedule {
                    ScheduleChoice::Naive => {}
                    ScheduleChoice::Tuned => app.schedule_good(),
                    ScheduleChoice::Gpu => app.schedule_gpu(),
                }
                let module = app.compile()?;
                (
                    module,
                    app.input.name().to_string(),
                    analyze(&app.pipeline()),
                )
            }
            AppKind::LocalLaplacian => {
                let levels = pyramid_levels(width, height).min(4);
                let app = local_laplacian::LocalLaplacianApp::new(levels, 8, 1.0, 0.7);
                if schedule != ScheduleChoice::Naive {
                    app.schedule_good();
                }
                let module = app.compile()?;
                (
                    module,
                    app.input.name().to_string(),
                    analyze(&app.pipeline()),
                )
            }
        };
        Ok(BuiltApp {
            module,
            input_name,
            stats,
        })
    }

    /// Builds the app's pipeline (with the chosen schedule applied), a
    /// synthetic input, and runs it at the given size, returning the
    /// realization and the pipeline statistics.
    ///
    /// # Errors
    ///
    /// Propagates lowering errors; execution errors are returned in the inner
    /// result.
    #[allow(clippy::type_complexity)]
    pub fn run(
        &self,
        width: i64,
        height: i64,
        schedule: ScheduleChoice,
        threads: usize,
    ) -> LowerResult<(ExecResult<Realization>, PipelineStats)> {
        self.run_with_backend(
            width,
            height,
            schedule,
            threads,
            halide_exec::Backend::default(),
        )
    }

    /// [`AppKind::run`] on an explicit execution backend — the benchmark
    /// harnesses route their `--backend` flag through this. Runs with the
    /// per-operation counters **off** (this is the wall-clock path; the
    /// structural counters — allocations, tasks, kernel launches, copies —
    /// are always collected). Use [`AppKind::run_instrumented`] when the
    /// per-op counts are the point.
    ///
    /// # Errors
    ///
    /// Propagates lowering errors; execution errors are returned in the inner
    /// result.
    #[allow(clippy::type_complexity)]
    pub fn run_with_backend(
        &self,
        width: i64,
        height: i64,
        schedule: ScheduleChoice,
        threads: usize,
        backend: halide_exec::Backend,
    ) -> LowerResult<(ExecResult<Realization>, PipelineStats)> {
        self.run_full(width, height, schedule, threads, false, backend)
    }

    /// [`AppKind::run_with_backend`] with the per-operation counters **on**:
    /// the realization's [`CounterSnapshot`](halide_runtime::CounterSnapshot)
    /// carries exact arithmetic/load/store counts plus the access-pattern
    /// breakdown (dense/strided/gather loads, dense/strided/scatter stores,
    /// masked selects). Wall times from this path include the counting
    /// overhead — don't benchmark with it.
    ///
    /// # Errors
    ///
    /// Propagates lowering errors; execution errors are returned in the inner
    /// result.
    #[allow(clippy::type_complexity)]
    pub fn run_instrumented(
        &self,
        width: i64,
        height: i64,
        schedule: ScheduleChoice,
        threads: usize,
        backend: halide_exec::Backend,
    ) -> LowerResult<(ExecResult<Realization>, PipelineStats)> {
        self.run_full(width, height, schedule, threads, true, backend)
    }

    #[allow(clippy::type_complexity)]
    fn run_full(
        &self,
        width: i64,
        height: i64,
        schedule: ScheduleChoice,
        threads: usize,
        instrument: bool,
        backend: halide_exec::Backend,
    ) -> LowerResult<(ExecResult<Realization>, PipelineStats)> {
        let built = self.build(width, height, schedule)?;
        let input = self.make_input(width, height);
        let result = Realizer::new(&built.module)
            .input(built.input_name.clone(), input)
            .threads(threads)
            .instrument(instrument)
            .backend(backend)
            .realize(&self.output_extents(width, height));
        Ok((result, built.stats))
    }

    /// Runs the hand-written reference ("expert") implementation where one is
    /// provided, returning its wall-clock time.
    pub fn reference_time(
        &self,
        width: i64,
        height: i64,
        threads: usize,
    ) -> Option<std::time::Duration> {
        let start = std::time::Instant::now();
        match self {
            AppKind::Blur => {
                let input = blur::make_input(width, height);
                let t = std::time::Instant::now();
                let _ = blur::reference_optimized(&input, threads);
                return Some(t.elapsed());
            }
            AppKind::Histogram => {
                let input = histogram::make_input(width, height);
                let t = std::time::Instant::now();
                let _ = histogram::reference(&input);
                return Some(t.elapsed());
            }
            AppKind::BilateralGrid => {
                let input = bilateral_grid::make_input(width, height);
                let t = std::time::Instant::now();
                let _ = bilateral_grid::reference(&input);
                return Some(t.elapsed());
            }
            _ => {}
        }
        let _ = start;
        None
    }
}

/// The result of [`AppKind::build`]: a lowered module plus the binding
/// metadata a caller needs to realize it repeatedly.
#[derive(Debug)]
pub struct BuiltApp {
    /// The lowered, reusable module.
    pub module: Module,
    /// Name the input image must be bound under.
    pub input_name: String,
    /// Structural statistics of the pipeline (Fig. 6).
    pub stats: PipelineStats,
}

/// Picks a pyramid depth appropriate for an image size (at least 2, at most 6).
pub fn pyramid_levels(width: i64, height: i64) -> usize {
    let mut levels = 2usize;
    let mut size = width.min(height);
    while size >= 32 && levels < 6 {
        size /= 2;
        levels += 1;
    }
    levels
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_app_runs_under_naive_and_tuned_schedules() {
        for app in AppKind::ALL {
            for schedule in [ScheduleChoice::Naive, ScheduleChoice::Tuned] {
                let (result, stats) = app
                    .run(64, 64, schedule, 2)
                    .unwrap_or_else(|e| panic!("{}: lowering failed: {e}", app.name()));
                let realization =
                    result.unwrap_or_else(|e| panic!("{}: execution failed: {e}", app.name()));
                assert!(stats.functions >= 2, "{} too small", app.name());
                assert!(!realization.output.is_empty());
            }
        }
    }

    #[test]
    fn gpu_apps_launch_kernels() {
        for app in AppKind::ALL.iter().filter(|a| a.has_gpu_schedule()) {
            let (result, _) = app.run(32, 32, ScheduleChoice::Gpu, 2).unwrap();
            let realization = result.unwrap();
            assert!(realization.counters.kernel_launches > 0, "{}", app.name());
        }
    }

    #[test]
    fn pyramid_levels_scale_with_size() {
        assert_eq!(pyramid_levels(16, 16), 2);
        assert!(pyramid_levels(64, 64) > pyramid_levels(32, 32));
        assert_eq!(pyramid_levels(100_000, 100_000), 6);
    }

    #[test]
    fn references_exist_for_key_apps() {
        assert!(AppKind::Blur.reference_time(64, 64, 2).is_some());
        assert!(AppKind::Histogram.reference_time(64, 64, 1).is_some());
        assert!(AppKind::LocalLaplacian.reference_time(64, 64, 1).is_none());
    }
}
