//! # halide-pipelines
//!
//! The image-processing applications from the paper's evaluation (Sec. 6),
//! written in the halide-rs DSL, together with synthetic input generators and
//! hand-written reference implementations used as baselines and correctness
//! oracles:
//!
//! * [`blur`] — the two-stage 3×3 blur of Sec. 3.1 with the five schedules of
//!   Fig. 3;
//! * [`histogram`] — histogram equalization (the reduction example of Sec. 2);
//! * [`bilateral_grid`] — scatter into a 3-D grid, blur it, slice it;
//! * [`camera_pipe`] — raw sensor data to RGB (demosaic, color, tone curve);
//! * [`interpolate`] — multi-scale pyramid interpolation;
//! * [`local_laplacian`] — the ~99-stage local Laplacian filter of Fig. 1;
//! * [`apps`] — a uniform driver over all of the above for the benchmark
//!   harnesses.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod apps;
pub mod bilateral_grid;
pub mod blur;
pub mod camera_pipe;
pub mod histogram;
pub mod interpolate;
pub mod local_laplacian;
pub mod pyramid;

pub use apps::{AppKind, ScheduleChoice};
