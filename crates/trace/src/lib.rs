//! Workspace-wide observability for the Halide reproduction.
//!
//! Three producers feed one sink:
//!
//! * the **sampling per-Func profiler** ([`Profiler`]) — a sampler thread
//!   reads an atomic "current func" token that the execution engines
//!   publish at produce-nest entry/exit, yielding per-Func wall-time %,
//!   peak allocation bytes, and invocation counts with near-zero mutator
//!   overhead;
//! * **compile telemetry** — lowering phases and pre-codegen optimizer
//!   passes record wall-time spans;
//! * **request-lifecycle tracing** — the pipeline server records a span
//!   tree per request (queued → admitted → compile → realize → respond)
//!   against its injectable clock.
//!
//! All spans land in one process-global ring-buffered [`TraceSink`],
//! exportable as chrome://tracing-compatible JSON via [`export_json`].
//! Tracing is **disabled by default**: when disabled, every record call
//! is a single relaxed atomic load and the span guards never touch the
//! clock, so the instrumentation costs ~0%.
//!
//! See `docs/observability.md` for the span taxonomy and the overhead
//! methodology.

mod profiler;
mod sink;

pub use profiler::{FuncProfile, ProfileReport, Profiler, NO_FUNC};
pub use sink::{current_tid, validate_json_syntax, TraceEvent, TraceSink, PID_COMPILE, PID_SERVE};

use std::sync::OnceLock;
use std::time::Instant;

/// Returns the process-global trace sink.
///
/// All instrumentation in the workspace records into this sink; call
/// [`set_enabled`]`(true)` to start collecting and [`export_json`] to
/// dump everything collected so far.
pub fn global() -> &'static TraceSink {
    static SINK: OnceLock<TraceSink> = OnceLock::new();
    SINK.get_or_init(TraceSink::new)
}

/// Enables or disables the process-global sink at runtime.
pub fn set_enabled(on: bool) {
    global().set_enabled(on);
}

/// Whether the process-global sink is currently collecting.
pub fn enabled() -> bool {
    global().enabled()
}

/// Exports everything in the global sink as chrome://tracing JSON
/// (load the string via `chrome://tracing` or <https://ui.perfetto.dev>).
pub fn export_json() -> String {
    global().export_json()
}

/// Nanoseconds since the process trace epoch (first use).
///
/// `Instant`-based span timestamps share this epoch so spans from
/// different crates line up on one timeline.
pub fn epoch_ns() -> u64 {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

/// An RAII wall-clock span: records a complete event into the global
/// sink when dropped. Construct with [`span`].
pub struct Span {
    inner: Option<SpanInner>,
}

struct SpanInner {
    name: String,
    cat: &'static str,
    start_ns: u64,
    args: Vec<(String, String)>,
}

impl Span {
    /// Attaches a key/value argument shown in the trace viewer.
    /// No-op when tracing is disabled.
    pub fn arg(mut self, key: &str, value: impl ToString) -> Self {
        if let Some(inner) = &mut self.inner {
            inner.args.push((key.to_string(), value.to_string()));
        }
        self
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(inner) = self.inner.take() {
            let end = epoch_ns();
            global().record(TraceEvent {
                name: inner.name,
                cat: inner.cat,
                ts_ns: inner.start_ns,
                dur_ns: end.saturating_sub(inner.start_ns),
                pid: PID_COMPILE,
                tid: current_tid(),
                args: inner.args,
            });
        }
    }
}

/// Opens a wall-clock span (category `cat`) that records itself into the
/// global sink when the returned guard drops.
///
/// When tracing is disabled this neither reads the clock nor allocates:
/// the cost is one relaxed atomic load.
pub fn span(name: impl Into<String>, cat: &'static str) -> Span {
    if !enabled() {
        return Span { inner: None };
    }
    Span {
        inner: Some(SpanInner {
            name: name.into(),
            cat,
            start_ns: epoch_ns(),
            args: Vec::new(),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_span_records_nothing() {
        // Uses a private sink (not the global one) to stay independent of
        // other tests that may enable global tracing concurrently.
        let sink = TraceSink::new();
        assert!(!sink.enabled());
        sink.record(TraceEvent::complete("x", "test", 0, 1));
        assert_eq!(sink.events().len(), 0);
    }

    #[test]
    fn span_guard_records_into_global_when_enabled() {
        set_enabled(true);
        {
            let _s = span("unit-test-span", "test").arg("k", "v");
        }
        let found = global()
            .events()
            .into_iter()
            .any(|e| e.name == "unit-test-span" && e.cat == "test");
        assert!(found, "span guard should have recorded an event");
    }
}
