//! Sampling per-Func profiler (Halide-profiler style).
//!
//! The execution engines publish an atomic "current func" token when they
//! enter and leave a produce nest; a sampler thread reads the token at a
//! fixed interval and charges the sample to whichever Func it names.
//! Attribution is therefore statistical — per-Func time is
//! `total run wall time x samples(f) / total samples` — but the mutator
//! cost is one atomic swap per produce-nest entry/exit, not per
//! operation (per-op atomics were measured to throttle the compiled
//! engine ~3x, which is exactly what this design avoids).
//!
//! Invocation counts and allocation high-water marks are exact: entries
//! are counted with one atomic add per produce entry, and allocation
//! sites charge their buffer's bytes to the Func the buffer stores.

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Token value meaning "not inside any produce nest".
pub const NO_FUNC: u32 = u32::MAX;

/// Default sampler period, matching Halide's profiler (1 ms). Faster
/// periods sharpen attribution on short runs but the wakeups preempt the
/// mutator — on a single-core host a 20us period was measured to cost
/// >50% wall time, while 1 ms stays under the 10% overhead gate with
/// plenty of samples once a few runs accumulate.
const DEFAULT_SAMPLE_INTERVAL: Duration = Duration::from_millis(1);

struct FuncSlot {
    samples: AtomicU64,
    invocations: AtomicU64,
    alloc_live: AtomicU64,
    alloc_peak: AtomicU64,
}

impl FuncSlot {
    fn new() -> Self {
        FuncSlot {
            samples: AtomicU64::new(0),
            invocations: AtomicU64::new(0),
            alloc_live: AtomicU64::new(0),
            alloc_peak: AtomicU64::new(0),
        }
    }
}

struct ProfilerInner {
    names: Vec<String>,
    index: HashMap<String, u32>,
    slots: Vec<FuncSlot>,
    /// Func currently executing (a produce nest is on the stack).
    current: AtomicU32,
    /// Number of realize calls currently inside the profiled region;
    /// the sampler only counts samples while this is non-zero.
    running: AtomicU32,
    /// Cleared on drop to stop the sampler thread.
    alive: AtomicBool,
    total_samples: AtomicU64,
    outside_samples: AtomicU64,
    run_ns: AtomicU64,
    runs: AtomicU64,
    interval: Duration,
}

/// A sampling per-Func profiler shared between a `Realizer` and its
/// execution contexts. Dropping the last handle stops and joins the
/// sampler thread.
pub struct Profiler {
    inner: Arc<ProfilerInner>,
    sampler: Mutex<Option<JoinHandle<()>>>,
}

impl Profiler {
    /// Creates a profiler for the given Func/buffer names and starts its
    /// sampler thread. Duplicate names collapse onto one slot.
    pub fn new(names: impl IntoIterator<Item = String>) -> Profiler {
        Self::with_interval(names, DEFAULT_SAMPLE_INTERVAL)
    }

    /// Like [`Profiler::new`] with an explicit sampler period.
    pub fn with_interval(names: impl IntoIterator<Item = String>, interval: Duration) -> Profiler {
        let mut uniq: Vec<String> = Vec::new();
        let mut index = HashMap::new();
        for name in names {
            if !index.contains_key(&name) {
                index.insert(name.clone(), uniq.len() as u32);
                uniq.push(name);
            }
        }
        let slots = uniq.iter().map(|_| FuncSlot::new()).collect();
        let inner = Arc::new(ProfilerInner {
            names: uniq,
            index,
            slots,
            current: AtomicU32::new(NO_FUNC),
            running: AtomicU32::new(0),
            alive: AtomicBool::new(true),
            total_samples: AtomicU64::new(0),
            outside_samples: AtomicU64::new(0),
            run_ns: AtomicU64::new(0),
            runs: AtomicU64::new(0),
            interval,
        });
        let sampler = {
            let inner = Arc::clone(&inner);
            std::thread::Builder::new()
                .name("halide-profiler".into())
                .spawn(move || sampler_loop(&inner))
                .ok()
        };
        Profiler {
            inner,
            sampler: Mutex::new(sampler),
        }
    }

    /// Resolves a Func name to its slot id.
    pub fn func_id(&self, name: &str) -> Option<u32> {
        self.inner.index.get(name).copied()
    }

    /// Slot names, in id order.
    pub fn names(&self) -> &[String] {
        &self.inner.names
    }

    /// Publishes `id` as the currently-producing Func and counts one
    /// invocation. Returns the previous token, to be passed to
    /// [`Profiler::exit`] when the produce nest is left.
    #[inline]
    pub fn enter(&self, id: u32) -> u32 {
        if let Some(slot) = self.inner.slots.get(id as usize) {
            slot.invocations.fetch_add(1, Ordering::Relaxed);
        }
        self.inner.current.swap(id, Ordering::Relaxed)
    }

    /// [`Profiler::enter`] by name (used by the tree-walking
    /// interpreter). Unknown names leave the token unchanged.
    #[inline]
    pub fn enter_named(&self, name: &str) -> u32 {
        match self.func_id(name) {
            Some(id) => self.enter(id),
            None => self.inner.current.load(Ordering::Relaxed),
        }
    }

    /// Restores the token saved by a matching [`Profiler::enter`].
    #[inline]
    pub fn exit(&self, prev: u32) {
        self.inner.current.store(prev, Ordering::Relaxed);
    }

    /// Charges `bytes` of freshly-allocated storage to `name` and
    /// updates that Func's allocation high-water mark.
    pub fn record_alloc(&self, name: &str, bytes: u64) {
        if let Some(id) = self.func_id(name) {
            let slot = &self.inner.slots[id as usize];
            let live = slot.alloc_live.fetch_add(bytes, Ordering::Relaxed) + bytes;
            slot.alloc_peak.fetch_max(live, Ordering::Relaxed);
        }
    }

    /// Releases `bytes` previously charged to `name`.
    pub fn record_free(&self, name: &str, bytes: u64) {
        if let Some(id) = self.func_id(name) {
            self.inner.slots[id as usize]
                .alloc_live
                .fetch_sub(bytes, Ordering::Relaxed);
        }
    }

    /// Marks the start of a profiled realization: the sampler counts
    /// samples only while at least one run is active.
    pub fn begin_run(&self) {
        self.inner.running.fetch_add(1, Ordering::Relaxed);
    }

    /// Marks the end of a profiled realization and accumulates its wall
    /// time into the attribution denominator.
    pub fn end_run(&self, wall: Duration) {
        self.inner.running.fetch_sub(1, Ordering::Relaxed);
        self.inner
            .run_ns
            .fetch_add(wall.as_nanos() as u64, Ordering::Relaxed);
        self.inner.runs.fetch_add(1, Ordering::Relaxed);
    }

    /// Total samples taken while runs were active.
    pub fn total_samples(&self) -> u64 {
        self.inner.total_samples.load(Ordering::Relaxed)
    }

    /// Builds the per-Func attribution report from everything sampled so
    /// far. Funcs with no samples, invocations, or allocations are
    /// omitted.
    pub fn report(&self) -> ProfileReport {
        let total = self.inner.total_samples.load(Ordering::Relaxed);
        let outside = self.inner.outside_samples.load(Ordering::Relaxed);
        let run_ns = self.inner.run_ns.load(Ordering::Relaxed);
        let mut funcs: Vec<FuncProfile> = Vec::new();
        for (i, slot) in self.inner.slots.iter().enumerate() {
            let samples = slot.samples.load(Ordering::Relaxed);
            let invocations = slot.invocations.load(Ordering::Relaxed);
            let peak = slot.alloc_peak.load(Ordering::Relaxed);
            if samples == 0 && invocations == 0 && peak == 0 {
                continue;
            }
            let frac = if total > 0 {
                samples as f64 / total as f64
            } else {
                0.0
            };
            funcs.push(FuncProfile {
                name: self.inner.names[i].clone(),
                samples,
                invocations,
                peak_alloc_bytes: peak,
                time_frac: frac,
                est_time: Duration::from_nanos((frac * run_ns as f64) as u64),
            });
        }
        funcs.sort_by(|a, b| b.samples.cmp(&a.samples).then(a.name.cmp(&b.name)));
        ProfileReport {
            total_wall: Duration::from_nanos(run_ns),
            runs: self.inner.runs.load(Ordering::Relaxed),
            total_samples: total,
            outside_samples: outside,
            funcs,
        }
    }
}

impl Drop for Profiler {
    fn drop(&mut self) {
        self.inner.alive.store(false, Ordering::Relaxed);
        if let Some(handle) = self.sampler.lock().unwrap().take() {
            let _ = handle.join();
        }
    }
}

fn sampler_loop(inner: &ProfilerInner) {
    while inner.alive.load(Ordering::Relaxed) {
        if inner.running.load(Ordering::Relaxed) > 0 {
            let cur = inner.current.load(Ordering::Relaxed);
            inner.total_samples.fetch_add(1, Ordering::Relaxed);
            match inner.slots.get(cur as usize) {
                Some(slot) => {
                    slot.samples.fetch_add(1, Ordering::Relaxed);
                }
                None => {
                    inner.outside_samples.fetch_add(1, Ordering::Relaxed);
                }
            }
            std::thread::sleep(inner.interval);
        } else {
            // Idle between runs: back off so a live-but-unused profiler
            // costs essentially nothing.
            std::thread::sleep(inner.interval * 8);
        }
    }
}

/// One row of a [`ProfileReport`].
#[derive(Debug, Clone)]
pub struct FuncProfile {
    /// Func (or buffer) name.
    pub name: String,
    /// Samples that landed while this Func's produce nest was current.
    pub samples: u64,
    /// Exact number of produce-nest entries.
    pub invocations: u64,
    /// High-water mark of live storage bytes charged to this Func.
    pub peak_alloc_bytes: u64,
    /// Fraction of in-run samples attributed to this Func.
    pub time_frac: f64,
    /// `time_frac` scaled by total profiled wall time.
    pub est_time: Duration,
}

/// Per-Func attribution summary; `Display` renders the compact text
/// table printed by `Realizer::profile_report()`.
#[derive(Debug, Clone)]
pub struct ProfileReport {
    /// Sum of wall time over all profiled realizations.
    pub total_wall: Duration,
    /// Number of profiled realizations.
    pub runs: u64,
    /// Samples taken while at least one run was active.
    pub total_samples: u64,
    /// In-run samples that landed outside any produce nest.
    pub outside_samples: u64,
    /// Per-Func rows, hottest first.
    pub funcs: Vec<FuncProfile>,
}

impl ProfileReport {
    /// Fraction of in-run samples attributed to a named Func (the
    /// acceptance gate requires >= 0.95 on the tuned camera pipe).
    pub fn attributed_frac(&self) -> f64 {
        if self.total_samples == 0 {
            return 0.0;
        }
        1.0 - self.outside_samples as f64 / self.total_samples as f64
    }

    /// The `n` hottest rows.
    pub fn top(&self, n: usize) -> &[FuncProfile] {
        &self.funcs[..self.funcs.len().min(n)]
    }
}

impl fmt::Display for ProfileReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "profile: {} run(s), {:.3} ms total, {} samples ({:.1}% attributed)",
            self.runs,
            self.total_wall.as_secs_f64() * 1e3,
            self.total_samples,
            100.0 * self.attributed_frac()
        )?;
        writeln!(
            f,
            "  {:<24} {:>7} {:>11} {:>9} {:>12}",
            "func", "time%", "est ms", "calls", "peak bytes"
        )?;
        for row in &self.funcs {
            writeln!(
                f,
                "  {:<24} {:>6.1}% {:>11.3} {:>9} {:>12}",
                row.name,
                100.0 * row.time_frac,
                row.est_time.as_secs_f64() * 1e3,
                row.invocations,
                row.peak_alloc_bytes
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enter_exit_counts_invocations_and_restores_token() {
        let p = Profiler::new(["a".to_string(), "b".to_string()]);
        let a = p.func_id("a").unwrap();
        let b = p.func_id("b").unwrap();
        let prev = p.enter(a);
        assert_eq!(prev, NO_FUNC);
        let prev2 = p.enter(b);
        assert_eq!(prev2, a);
        p.exit(prev2);
        p.exit(prev);
        let report = p.report();
        let get = |n: &str| report.funcs.iter().find(|r| r.name == n).unwrap();
        assert_eq!(get("a").invocations, 1);
        assert_eq!(get("b").invocations, 1);
    }

    #[test]
    fn sampler_attributes_time_to_current_func() {
        let p = Profiler::with_interval(
            ["hot".to_string(), "cold".to_string()],
            Duration::from_micros(20),
        );
        let hot = p.func_id("hot").unwrap();
        p.begin_run();
        let prev = p.enter(hot);
        std::thread::sleep(Duration::from_millis(30));
        p.exit(prev);
        p.end_run(Duration::from_millis(30));
        let report = p.report();
        assert!(report.total_samples > 0, "sampler should have fired");
        let hot_row = report.funcs.iter().find(|r| r.name == "hot").unwrap();
        assert!(
            hot_row.time_frac > 0.9,
            "hot func should dominate, got {}",
            hot_row.time_frac
        );
        assert!(report.attributed_frac() > 0.9);
    }

    #[test]
    fn alloc_tracking_keeps_high_water_mark() {
        let p = Profiler::new(["f".to_string()]);
        p.record_alloc("f", 100);
        p.record_alloc("f", 50);
        p.record_free("f", 100);
        p.record_alloc("f", 20);
        p.record_free("f", 70);
        let report = p.report();
        let row = report.funcs.iter().find(|r| r.name == "f").unwrap();
        assert_eq!(row.peak_alloc_bytes, 150);
        p.record_alloc("unknown-func", 1 << 40); // ignored, no slot
        assert_eq!(p.report().funcs.len(), 1);
    }

    #[test]
    fn sampler_is_idle_between_runs() {
        let p = Profiler::with_interval(["f".to_string()], Duration::from_micros(20));
        std::thread::sleep(Duration::from_millis(10));
        assert_eq!(p.total_samples(), 0, "no samples outside begin/end_run");
    }
}
