//! Ring-buffered trace sink with a chrome://tracing JSON exporter.
//!
//! Events are stored as *complete* events (`"ph":"X"`: a start timestamp
//! plus a duration) rather than begin/end pairs, so an exported trace can
//! never contain orphaned begin or end markers — the failure mode the CI
//! schema check guards against.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

/// `pid` used for compile-side spans (lowering, optimizer passes,
/// realize-side profiling) whose timestamps come from `Instant`.
pub const PID_COMPILE: u32 = 1;

/// `pid` used for serve request-lifecycle spans whose timestamps come
/// from the server's injectable `Clock` (a different timebase, so they
/// get their own process row in the viewer).
pub const PID_SERVE: u32 = 2;

/// Default ring capacity: oldest events are dropped beyond this.
pub const DEFAULT_CAPACITY: usize = 1 << 16;

/// One complete trace event (chrome://tracing `"ph":"X"`).
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Span name, e.g. `"lower/vectorize"` or `"request blur/tuned"`.
    pub name: String,
    /// Category, e.g. `"compile"`, `"serve"`, `"profile"`.
    pub cat: &'static str,
    /// Start timestamp in nanoseconds (timebase depends on `pid`).
    pub ts_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
    /// Process row in the viewer ([`PID_COMPILE`] or [`PID_SERVE`]).
    pub pid: u32,
    /// Thread / request row within the process row.
    pub tid: u64,
    /// Key/value arguments shown when the span is selected.
    pub args: Vec<(String, String)>,
}

impl TraceEvent {
    /// Builds a bare compile-side event with no args.
    pub fn complete(name: impl Into<String>, cat: &'static str, ts_ns: u64, dur_ns: u64) -> Self {
        TraceEvent {
            name: name.into(),
            cat,
            ts_ns,
            dur_ns,
            pid: PID_COMPILE,
            tid: current_tid(),
            args: Vec::new(),
        }
    }
}

/// A ring-buffered event sink, disabled by default.
///
/// When disabled, [`TraceSink::record`] is a single relaxed atomic load.
/// When enabled, events are pushed into a bounded ring under a mutex;
/// once full the oldest events are dropped (and counted).
pub struct TraceSink {
    enabled: AtomicBool,
    dropped: AtomicU64,
    ring: Mutex<VecDeque<TraceEvent>>,
    capacity: usize,
}

impl TraceSink {
    /// Creates a disabled sink with the default ring capacity.
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_CAPACITY)
    }

    /// Creates a disabled sink holding at most `capacity` events.
    pub fn with_capacity(capacity: usize) -> Self {
        TraceSink {
            enabled: AtomicBool::new(false),
            dropped: AtomicU64::new(0),
            ring: Mutex::new(VecDeque::new()),
            capacity: capacity.max(1),
        }
    }

    /// Turns collection on or off.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Whether the sink is currently collecting.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Records one event (dropped silently when the sink is disabled).
    pub fn record(&self, event: TraceEvent) {
        if !self.enabled() {
            return;
        }
        let mut ring = self.ring.lock().unwrap();
        if ring.len() >= self.capacity {
            ring.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        ring.push_back(event);
    }

    /// Number of events evicted from the ring since creation.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Snapshot of every event currently in the ring (oldest first).
    pub fn events(&self) -> Vec<TraceEvent> {
        self.ring.lock().unwrap().iter().cloned().collect()
    }

    /// Discards all collected events.
    pub fn clear(&self) {
        self.ring.lock().unwrap().clear();
    }

    /// Exports the ring as a chrome://tracing JSON object.
    ///
    /// Timestamps are emitted in microseconds (the chrome trace unit)
    /// with nanosecond precision preserved in the fraction. Two metadata
    /// events name the process rows. The output always passes
    /// [`validate_json_syntax`].
    pub fn export_json(&self) -> String {
        let events = self.events();
        let mut out = String::with_capacity(256 + events.len() * 160);
        out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
        out.push_str(&format!(
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{PID_COMPILE},\"tid\":0,\"args\":{{\"name\":\"compile+exec\"}}}}"
        ));
        out.push_str(&format!(
            ",{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{PID_SERVE},\"tid\":0,\"args\":{{\"name\":\"serve\"}}}}"
        ));
        for e in &events {
            out.push_str(",{\"name\":\"");
            escape_into(&e.name, &mut out);
            out.push_str("\",\"cat\":\"");
            escape_into(e.cat, &mut out);
            out.push_str(&format!(
                "\",\"ph\":\"X\",\"ts\":{:.3},\"dur\":{:.3},\"pid\":{},\"tid\":{}",
                e.ts_ns as f64 / 1000.0,
                e.dur_ns as f64 / 1000.0,
                e.pid,
                e.tid
            ));
            if !e.args.is_empty() {
                out.push_str(",\"args\":{");
                for (i, (k, v)) in e.args.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('"');
                    escape_into(k, &mut out);
                    out.push_str("\":\"");
                    escape_into(v, &mut out);
                    out.push('"');
                }
                out.push('}');
            }
            out.push('}');
        }
        out.push_str("]}");
        out
    }
}

impl Default for TraceSink {
    fn default() -> Self {
        Self::new()
    }
}

fn escape_into(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

/// Returns a small stable integer id for the current thread, used as the
/// chrome trace `tid`.
pub fn current_tid() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    thread_local! {
        static TID: u64 = NEXT.fetch_add(1, Ordering::Relaxed);
    }
    TID.with(|t| *t)
}

// ---------------------------------------------------------------------------
// Trace-file validation (used by the CI schema check).
// ---------------------------------------------------------------------------

/// Validates an exported trace against the chrome://tracing schema:
/// syntactically well-formed JSON, a top-level `traceEvents` array, and
/// every event an object with a `name`, a known phase, and (for complete
/// events) non-negative `ts`/`dur`. Since the exporter only emits
/// complete (`"X"`) and metadata (`"M"`) events, a passing trace cannot
/// contain orphaned begin/end markers.
///
/// Returns the number of events on success.
pub fn validate_json_syntax(json: &str) -> Result<usize, String> {
    let value = JsonParser::new(json).parse_document()?;
    let JsonValue::Object(top) = value else {
        return Err("top level is not an object".into());
    };
    let Some(JsonValue::Array(events)) =
        top.iter().find(|(k, _)| k == "traceEvents").map(|(_, v)| v)
    else {
        return Err("missing traceEvents array".into());
    };
    for (i, ev) in events.iter().enumerate() {
        let JsonValue::Object(fields) = ev else {
            return Err(format!("event {i} is not an object"));
        };
        let get = |k: &str| fields.iter().find(|(fk, _)| fk == k).map(|(_, v)| v);
        match get("name") {
            Some(JsonValue::String(n)) if !n.is_empty() => {}
            _ => return Err(format!("event {i} has no name")),
        }
        let ph = match get("ph") {
            Some(JsonValue::String(p)) => p.clone(),
            _ => return Err(format!("event {i} has no phase")),
        };
        match ph.as_str() {
            "M" => {}
            "X" => {
                for key in ["ts", "dur"] {
                    match get(key) {
                        Some(JsonValue::Number(n)) if *n >= 0.0 && n.is_finite() => {}
                        _ => return Err(format!("event {i} has invalid {key}")),
                    }
                }
            }
            // Begin/end/async phases would need pairing; the exporter
            // never emits them, so their presence is a schema violation.
            other => return Err(format!("event {i} has unsupported phase {other:?}")),
        }
    }
    Ok(events.len())
}

enum JsonValue {
    Null,
    Bool,
    Number(f64),
    String(String),
    Array(Vec<JsonValue>),
    Object(Vec<(String, JsonValue)>),
}

struct JsonParser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> JsonParser<'a> {
    fn new(s: &'a str) -> Self {
        JsonParser {
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    fn parse_document(mut self) -> Result<JsonValue, String> {
        let v = self.parse_value()?;
        self.skip_ws();
        if self.pos != self.bytes.len() {
            return Err(format!("trailing bytes at offset {}", self.pos));
        }
        Ok(v)
    }

    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at offset {}", b as char, self.pos))
        }
    }

    fn parse_value(&mut self) -> Result<JsonValue, String> {
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(JsonValue::String(self.parse_string()?)),
            Some(b't') => self.parse_lit("true", JsonValue::Bool),
            Some(b'f') => self.parse_lit("false", JsonValue::Bool),
            Some(b'n') => self.parse_lit("null", JsonValue::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            _ => Err(format!("unexpected byte at offset {}", self.pos)),
        }
    }

    fn parse_lit(&mut self, lit: &str, v: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(format!("bad literal at offset {}", self.pos))
        }
    }

    fn parse_number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        while self.pos < self.bytes.len()
            && matches!(
                self.bytes[self.pos],
                b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E'
            )
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(JsonValue::Number)
            .ok_or_else(|| format!("bad number at offset {start}"))
    }

    fn parse_string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(&b) = self.bytes.get(self.pos) else {
                return Err("unterminated string".into());
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(&esc) = self.bytes.get(self.pos) else {
                        return Err("unterminated escape".into());
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or("bad unicode escape")?;
                            self.pos += 4;
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err("bad escape".into()),
                    }
                }
                _ => {
                    // Re-assemble UTF-8 multibyte sequences byte-by-byte.
                    let len = match b {
                        0x00..=0x7f => 0,
                        0xc0..=0xdf => 1,
                        0xe0..=0xef => 2,
                        _ => 3,
                    };
                    let start = self.pos - 1;
                    self.pos += len;
                    let chunk = self
                        .bytes
                        .get(start..self.pos)
                        .and_then(|c| std::str::from_utf8(c).ok())
                        .ok_or("bad utf-8 in string")?;
                    out.push_str(chunk);
                }
            }
        }
    }

    fn parse_array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(format!("expected , or ] at offset {}", self.pos)),
            }
        }
    }

    fn parse_object(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.expect(b':')?;
            let value = self.parse_value()?;
            fields.push((key, value));
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(fields));
                }
                _ => return Err(format!("expected , or }} at offset {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_drops_oldest_when_full() {
        let sink = TraceSink::with_capacity(2);
        sink.set_enabled(true);
        for i in 0..5 {
            sink.record(TraceEvent::complete(format!("e{i}"), "t", i, 1));
        }
        let events = sink.events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].name, "e3");
        assert_eq!(events[1].name, "e4");
        assert_eq!(sink.dropped(), 3);
    }

    #[test]
    fn export_round_trips_through_validator() {
        let sink = TraceSink::new();
        sink.set_enabled(true);
        let mut e = TraceEvent::complete("needs \"escaping\"\n", "test", 1234, 5678);
        e.args = vec![("app".into(), "blur".into()), ("n".into(), "3".into())];
        sink.record(e);
        sink.record(TraceEvent::complete("plain", "test", 9999, 0));
        let json = sink.export_json();
        let n = validate_json_syntax(&json).expect("exported trace must validate");
        // 2 recorded events + 2 process_name metadata events.
        assert_eq!(n, 4);
    }

    #[test]
    fn validator_rejects_garbage() {
        assert!(validate_json_syntax("not json").is_err());
        assert!(validate_json_syntax("{}").is_err());
        assert!(validate_json_syntax("{\"traceEvents\":[{\"ph\":\"X\"}]}").is_err());
        assert!(
            validate_json_syntax("{\"traceEvents\":[{\"name\":\"a\",\"ph\":\"B\",\"ts\":1}]}")
                .is_err()
        );
        assert!(validate_json_syntax(
            "{\"traceEvents\":[{\"name\":\"a\",\"ph\":\"X\",\"ts\":1,\"dur\":-2}]}"
        )
        .is_err());
    }

    #[test]
    fn validator_accepts_minimal_complete_event() {
        let ok = "{\"traceEvents\":[{\"name\":\"a\",\"ph\":\"X\",\"ts\":0.5,\"dur\":2}]}";
        assert_eq!(validate_json_syntax(ok), Ok(1));
    }

    #[test]
    fn tids_are_stable_per_thread() {
        let a = current_tid();
        let b = current_tid();
        assert_eq!(a, b);
        let other = std::thread::spawn(current_tid).join().unwrap();
        assert_ne!(a, other);
    }
}
