//! # halide-autotune
//!
//! The stochastic schedule autotuner of Sec. 5 of the paper: a genetic
//! algorithm over whole-pipeline schedules, with elitism, tournament
//! selection, two-point crossover across functions, the paper's mutation
//! rules (randomize constants, replace, copy, add/remove/replace a domain
//! transformation, a loop-fusion rule, and template schedules), rejection of
//! invalid schedules, and verification of candidates against a reference
//! output.
//!
//! The caller supplies an *evaluator* that compiles and runs a scheduled
//! pipeline and reports its runtime (or `None` when the candidate is invalid
//! or produces wrong output); the tuner is agnostic to how pipelines are
//! executed, which keeps it reusable across the CPU and simulated-GPU
//! targets.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod space;

use std::time::Duration;

use halide_lang::Pipeline;
use halide_schedule::LoopLevel;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

pub use space::{
    apply_genome, breadth_first_genome, current_genome, random_genome, reasonable_genome,
    search_space_log10, Genome,
};

/// Configuration of the genetic search.
#[derive(Debug, Clone)]
pub struct TuneOptions {
    /// Individuals per generation (the paper uses 128).
    pub population: usize,
    /// Number of generations to run.
    pub generations: usize,
    /// How many of the best individuals survive unchanged.
    pub elitism: usize,
    /// Fraction of each new generation produced by crossover.
    pub crossover_fraction: f64,
    /// Fraction of each new generation produced by mutation.
    pub mutation_fraction: f64,
    /// Tune for the simulated GPU target (adds the GPU template).
    pub gpu: bool,
    /// RNG seed, for reproducible searches.
    pub seed: u64,
}

impl Default for TuneOptions {
    fn default() -> Self {
        TuneOptions {
            population: 32,
            generations: 10,
            elitism: 4,
            crossover_fraction: 0.4,
            mutation_fraction: 0.4,
            gpu: false,
            seed: 0x9e3779b9,
        }
    }
}

impl TuneOptions {
    /// The paper's configuration: population 128 (expect long runs).
    pub fn paper_scale() -> Self {
        TuneOptions {
            population: 128,
            generations: 100,
            ..Default::default()
        }
    }
}

/// One entry of the convergence history.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GenerationStat {
    /// Generation index (0 = initial population).
    pub generation: usize,
    /// Best runtime seen so far.
    pub best: Duration,
    /// Number of invalid/incorrect candidates rejected so far.
    pub rejected: usize,
    /// Number of candidates evaluated so far.
    pub evaluated: usize,
}

/// The outcome of a tuning run.
#[derive(Debug, Clone)]
pub struct TuneResult {
    /// The best schedule found.
    pub best: Genome,
    /// Its measured runtime.
    pub best_time: Duration,
    /// Convergence history, one entry per generation.
    pub history: Vec<GenerationStat>,
    /// Total candidates evaluated.
    pub evaluated: usize,
    /// Total candidates rejected (invalid schedule, failed run, or wrong output).
    pub rejected: usize,
}

/// The genetic-algorithm autotuner.
pub struct Autotuner {
    options: TuneOptions,
}

impl Autotuner {
    /// Creates a tuner with the given options.
    pub fn new(options: TuneOptions) -> Self {
        Autotuner { options }
    }

    /// Runs the search. `evaluate` is called with the pipeline after a
    /// candidate genome has been applied; it must compile, run, verify, and
    /// return the runtime, or `None` to reject the candidate.
    pub fn tune(
        &self,
        pipeline: &Pipeline,
        mut evaluate: impl FnMut(&Pipeline) -> Option<Duration>,
    ) -> TuneResult {
        let mut rng = StdRng::seed_from_u64(self.options.seed);
        let opts = &self.options;
        let mut evaluated = 0usize;
        let mut rejected = 0usize;

        let score = |genome: &Genome,
                     evaluated: &mut usize,
                     rejected: &mut usize,
                     evaluate: &mut dyn FnMut(&Pipeline) -> Option<Duration>|
         -> Option<Duration> {
            apply_genome(pipeline, genome);
            *evaluated += 1;
            match evaluate(pipeline) {
                Some(t) => Some(t),
                None => {
                    *rejected += 1;
                    None
                }
            }
        };

        // ---- initial population -------------------------------------------
        let mut population: Vec<(Genome, Duration)> = Vec::new();
        let breadth_first = breadth_first_genome(pipeline);
        if let Some(t) = score(&breadth_first, &mut evaluated, &mut rejected, &mut evaluate) {
            population.push((breadth_first, t));
        }
        let mut attempts = 0;
        while population.len() < opts.population && attempts < opts.population * 10 {
            attempts += 1;
            let genome = if rng.gen_bool(0.5) {
                reasonable_genome(pipeline, &mut rng)
            } else {
                random_genome(pipeline, opts.gpu, &mut rng)
            };
            if let Some(t) = score(&genome, &mut evaluated, &mut rejected, &mut evaluate) {
                population.push((genome, t));
            }
        }
        assert!(
            !population.is_empty(),
            "the autotuner could not find any valid schedule (is the evaluator rejecting everything?)"
        );
        population.sort_by_key(|(_, t)| *t);

        let mut history = vec![GenerationStat {
            generation: 0,
            best: population[0].1,
            rejected,
            evaluated,
        }];

        // ---- generations ---------------------------------------------------
        for generation in 1..=opts.generations {
            let mut next: Vec<(Genome, Duration)> = Vec::new();
            // Elitism.
            next.extend(population.iter().take(opts.elitism).cloned());

            let mut guard = 0usize;
            while next.len() < opts.population && guard < opts.population * 20 {
                guard += 1;
                let roll: f64 = rng.gen();
                let candidate = if roll < opts.crossover_fraction && population.len() >= 2 {
                    let a = tournament(&population, &mut rng);
                    let b = tournament(&population, &mut rng);
                    crossover(&population[a].0, &population[b].0, &mut rng)
                } else if roll < opts.crossover_fraction + opts.mutation_fraction {
                    let a = tournament(&population, &mut rng);
                    self.mutate(pipeline, &population[a].0, &mut rng)
                } else if rng.gen_bool(0.5) {
                    reasonable_genome(pipeline, &mut rng)
                } else {
                    random_genome(pipeline, opts.gpu, &mut rng)
                };
                if let Some(t) = score(&candidate, &mut evaluated, &mut rejected, &mut evaluate) {
                    next.push((candidate, t));
                }
            }
            if !next.is_empty() {
                population = next;
                population.sort_by_key(|(_, t)| *t);
            }
            history.push(GenerationStat {
                generation,
                best: population[0].1,
                rejected,
                evaluated,
            });
        }

        let (best, best_time) = population.swap_remove(0);
        apply_genome(pipeline, &best);
        TuneResult {
            best,
            best_time,
            history,
            evaluated,
            rejected,
        }
    }

    /// Applies one of the paper's mutation rules to a genome.
    fn mutate(&self, pipeline: &Pipeline, genome: &Genome, rng: &mut StdRng) -> Genome {
        let mut out = genome.clone();
        let names: Vec<String> = out.keys().cloned().collect();
        if names.is_empty() {
            return out;
        }
        let target = names[rng.gen_range(0..names.len())].clone();
        let output = pipeline.output().name();
        let is_output = target == output;
        let func = pipeline.func(&target).expect("genome matches pipeline");
        let args = func.args();

        match rng.gen_range(0..8) {
            // 1. randomize constants: re-roll every split factor
            0 => {
                if let Some(s) = out.get_mut(&target) {
                    let rebuilt = rebuild_with_new_factors(&args, s, rng);
                    *s = rebuilt;
                }
            }
            // 2. replace with a freshly random schedule
            1 => {
                let s = space::random_schedule(pipeline, &target, is_output, self.options.gpu, rng);
                out.insert(target, s);
            }
            // 3. copy another function's schedule
            2 => {
                let other = names[rng.gen_range(0..names.len())].clone();
                if other != target {
                    if let Some(s) = out.get(&other).cloned() {
                        // keep the call schedule legal for the output
                        let mut s = s;
                        if is_output {
                            s.compute_level = LoopLevel::Root;
                            s.store_level = LoopLevel::Root;
                        }
                        // only adopt it if the dimensions line up
                        let other_args =
                            pipeline.func(&other).map(|f| f.args()).unwrap_or_default();
                        if other_args == args {
                            out.insert(target, s);
                        }
                    }
                }
            }
            // 4.-6. add / remove / replace one domain transformation
            3 | 4 | 5 => {
                if let Some(s) = out.get_mut(&target) {
                    tweak_domain(&args, s, rng);
                }
            }
            // 7. the loop-fusion rule: fully tile this function and pull one
            //    of its producers to compute inside the tile
            6 => {
                let tiled = space::fully_parallel_tiled(&args, rng);
                out.insert(target.clone(), tiled);
                for callee in pipeline.callees(&target) {
                    if rng.gen_bool(0.5) {
                        if let Some(s) = out.get_mut(&callee) {
                            s.compute_level = LoopLevel::at(target.clone(), "xo");
                            s.store_level = LoopLevel::at(target.clone(), "xo");
                        }
                    }
                }
            }
            // 8. template schedules
            _ => {
                let s = match rng.gen_range(0..3) {
                    0 => space::parallel_y_vector_x(&args, rng),
                    1 => space::fully_parallel_tiled(&args, rng),
                    _ => {
                        if self.options.gpu {
                            space::gpu_tiled(&args, rng)
                        } else {
                            halide_schedule::FuncSchedule::default_for_args(&args)
                        }
                    }
                };
                let mut s = s;
                if !is_output && rng.gen_bool(0.2) && func.updates().is_empty() {
                    s.compute_level = LoopLevel::Inline;
                    s.store_level = LoopLevel::Inline;
                    s = halide_schedule::FuncSchedule {
                        compute_level: LoopLevel::Inline,
                        store_level: LoopLevel::Inline,
                        ..halide_schedule::FuncSchedule::default_for_args(&args)
                    };
                }
                out.insert(target, s);
            }
        }
        out
    }
}

fn tournament(population: &[(Genome, Duration)], rng: &mut StdRng) -> usize {
    let a = rng.gen_range(0..population.len());
    let b = rng.gen_range(0..population.len());
    if population[a].1 <= population[b].1 {
        a
    } else {
        b
    }
}

/// Two-point crossover over the (sorted) list of function names.
fn crossover(a: &Genome, b: &Genome, rng: &mut StdRng) -> Genome {
    let names: Vec<&String> = a.keys().collect();
    if names.len() < 2 {
        return a.clone();
    }
    let mut p1 = rng.gen_range(0..names.len());
    let mut p2 = rng.gen_range(0..names.len());
    if p1 > p2 {
        std::mem::swap(&mut p1, &mut p2);
    }
    let mut out = a.clone();
    for (i, name) in names.iter().enumerate() {
        if i >= p1 && i < p2 {
            if let Some(s) = b.get(*name) {
                out.insert((*name).clone(), s.clone());
            }
        }
    }
    out
}

/// Re-rolls the constants of a schedule by rebuilding it with fresh factors
/// (schedules are small, so rebuilding is simpler than editing in place).
fn rebuild_with_new_factors(
    args: &[String],
    old: &halide_schedule::FuncSchedule,
    rng: &mut StdRng,
) -> halide_schedule::FuncSchedule {
    let mut s = if old.splits.is_empty() {
        old.clone()
    } else {
        space::fully_parallel_tiled(args, rng)
    };
    s.compute_level = old.compute_level.clone();
    s.store_level = old.store_level.clone();
    s
}

/// Adds, removes, or replaces one domain transformation.
fn tweak_domain(args: &[String], s: &mut halide_schedule::FuncSchedule, rng: &mut StdRng) {
    match rng.gen_range(0..3) {
        // add a split+vectorize of the innermost dimension
        0 => {
            let inner = s.dims.last().map(|d| d.name.clone());
            if let Some(inner) = inner {
                let w = space::VECTOR_WIDTHS[rng.gen_range(0..space::VECTOR_WIDTHS.len())];
                let outer_name = format!("{inner}_o");
                let inner_name = format!("{inner}_i");
                if s.split(&inner, &outer_name, &inner_name, w).is_ok() {
                    let _ = s.vectorize(&inner_name);
                }
            }
        }
        // remove all transformations (back to the default domain order)
        1 => {
            let mut fresh = halide_schedule::FuncSchedule::default_for_args(args);
            fresh.compute_level = s.compute_level.clone();
            fresh.store_level = s.store_level.clone();
            *s = fresh;
        }
        // toggle parallelism of the outermost loop
        _ => {
            if let Some(d) = s.dims.first().cloned() {
                let _ = if d.kind == halide_schedule::ForKind::Parallel {
                    s.serial(&d.name)
                } else {
                    s.parallel(&d.name)
                };
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use halide_ir::Type;
    use halide_lang::{Func, ImageParam, Var};

    fn blur_pipeline() -> (Pipeline, String) {
        let input = ImageParam::new("tune_in", Type::f32(), 2);
        let (x, y) = (Var::new("x"), Var::new("y"));
        let bx = Func::new("tune_blurx");
        bx.define(
            &[x.clone(), y.clone()],
            (input.at_clamped(vec![x.expr() - 1, y.expr()])
                + input.at_clamped(vec![x.expr(), y.expr()])
                + input.at_clamped(vec![x.expr() + 1, y.expr()]))
                / 3.0f32,
        );
        let out = Func::new("tune_out");
        out.define(
            &[x.clone(), y.clone()],
            (bx.at(vec![x.expr(), y.expr() - 1])
                + bx.at(vec![x.expr(), y.expr()])
                + bx.at(vec![x.expr(), y.expr() + 1]))
                / 3.0f32,
        );
        (Pipeline::new(&out), "tune_in".to_string())
    }

    fn evaluator(input_name: String) -> impl FnMut(&Pipeline) -> Option<Duration> {
        use halide_exec::Realizer;
        use halide_runtime::Buffer;
        let input = Buffer::from_fn_2d(halide_ir::ScalarType::Float(32), 64, 64, |x, y| {
            (x * 3 + y) as f64 * 0.01
        });
        let reference = std::cell::RefCell::new(None::<Buffer>);
        move |p: &Pipeline| {
            let module = halide_lower::lower(p).ok()?;
            let result = Realizer::new(&module)
                .input(input_name.clone(), input.clone())
                .threads(2)
                .instrument(false)
                .realize(&[64, 64])
                .ok()?;
            let mut cached = reference.borrow_mut();
            match cached.as_ref() {
                None => *cached = Some(result.output),
                Some(r) => {
                    if r.max_abs_diff(&result.output) > 1e-4 {
                        return None; // wrong output: reject
                    }
                }
            }
            Some(result.wall_time)
        }
    }

    #[test]
    fn tuning_blur_returns_a_valid_improving_schedule() {
        let (pipeline, input_name) = blur_pipeline();
        let tuner = Autotuner::new(TuneOptions {
            population: 8,
            generations: 3,
            elitism: 2,
            seed: 42,
            ..Default::default()
        });
        let result = tuner.tune(&pipeline, evaluator(input_name));
        assert_eq!(result.best.len(), 2);
        assert!(result.evaluated >= 8);
        assert_eq!(result.history.len(), 4);
        // best time never gets worse across generations
        for w in result.history.windows(2) {
            assert!(w[1].best <= w[0].best);
        }
        // the winning genome must still lower successfully
        apply_genome(&pipeline, &result.best);
        assert!(halide_lower::lower(&pipeline).is_ok());
    }

    #[test]
    fn crossover_and_mutation_preserve_genome_shape() {
        let (pipeline, _) = blur_pipeline();
        let mut rng = StdRng::seed_from_u64(9);
        let a = random_genome(&pipeline, false, &mut rng);
        let b = random_genome(&pipeline, false, &mut rng);
        let c = crossover(&a, &b, &mut rng);
        assert_eq!(c.len(), a.len());
        let tuner = Autotuner::new(TuneOptions::default());
        let m = tuner.mutate(&pipeline, &a, &mut rng);
        assert_eq!(m.len(), a.len());
    }

    #[test]
    fn rejection_is_counted() {
        let (pipeline, _) = blur_pipeline();
        let tuner = Autotuner::new(TuneOptions {
            population: 4,
            generations: 1,
            elitism: 1,
            seed: 7,
            ..Default::default()
        });
        // Reject every other candidate.
        let mut flip = false;
        let result = tuner.tune(&pipeline, move |_p| {
            flip = !flip;
            if flip {
                Some(Duration::from_millis(10))
            } else {
                None
            }
        });
        assert!(result.rejected > 0);
        assert!(result.evaluated > result.rejected);
    }
}
