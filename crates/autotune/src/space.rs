//! The schedule search space (Sec. 5): random schedule generation, the
//! "reasonable schedule" seeding heuristics, and an estimate of the size of
//! the space (the paper estimates ≥ 10^720 schedules for local Laplacian).

use std::collections::BTreeMap;

use halide_lang::Pipeline;
use halide_schedule::{FuncSchedule, LoopLevel};
use rand::rngs::StdRng;
use rand::Rng;

/// A candidate schedule for a whole pipeline: one [`FuncSchedule`] per
/// function, keyed by function name.
pub type Genome = BTreeMap<String, FuncSchedule>;

/// Block/split sizes the tuner samples from (small powers of two, as in the
/// paper).
pub const FACTORS: [i64; 6] = [2, 4, 8, 16, 32, 64];

/// Vector widths the tuner samples from.
pub const VECTOR_WIDTHS: [i64; 3] = [4, 8, 16];

/// Extracts the current (default or user-set) schedules of a pipeline.
pub fn current_genome(pipeline: &Pipeline) -> Genome {
    pipeline.funcs().map(|f| (f.name(), f.schedule())).collect()
}

/// Applies a genome to the pipeline's functions.
pub fn apply_genome(pipeline: &Pipeline, genome: &Genome) {
    for f in pipeline.funcs() {
        if let Some(s) = genome.get(&f.name()) {
            f.set_schedule(s.clone());
        }
    }
}

/// The breadth-first genome: every function computed and stored at root with
/// default loop order (the paper's always-valid starting point).
pub fn breadth_first_genome(pipeline: &Pipeline) -> Genome {
    pipeline
        .funcs()
        .map(|f| (f.name(), FuncSchedule::default_for_args(&f.args())))
        .collect()
}

fn pick<T: Copy>(rng: &mut StdRng, options: &[T]) -> T {
    options[rng.gen_range(0..options.len())]
}

/// "Fully parallelized and tiled" (pattern 2 of the paper's templates):
/// tiled over x/y, vectorized within the tile's inner x, parallel over the
/// outer y tile dimension.
pub fn fully_parallel_tiled(args: &[String], rng: &mut StdRng) -> FuncSchedule {
    let mut s = FuncSchedule::default_for_args(args);
    if args.len() >= 2 {
        let tx = pick(rng, &FACTORS[2..]);
        let ty = pick(rng, &FACTORS[1..4]);
        let x = &args[0];
        let y = &args[1];
        if s.tile(x, y, "xo", "yo", "xi", "yi", tx, ty).is_ok() {
            let _ = s.parallel("yo");
            let vw = pick(rng, &VECTOR_WIDTHS);
            if vw < tx && s.split("xi", "xio", "xii", vw).is_ok() {
                let _ = s.vectorize("xii");
            }
        }
    } else {
        let _ = s.parallel(&args[0]);
    }
    s
}

/// "Parallelized over y and vectorized over x" (pattern 3 of the templates).
pub fn parallel_y_vector_x(args: &[String], rng: &mut StdRng) -> FuncSchedule {
    let mut s = FuncSchedule::default_for_args(args);
    if args.len() >= 2 {
        let _ = s.parallel(&args[1]);
    }
    let vw = pick(rng, &VECTOR_WIDTHS);
    if s.split(&args[0], "xo", "xi", vw).is_ok() {
        let _ = s.vectorize("xi");
    }
    s
}

/// A GPU-tiled template (used when tuning for the simulated GPU target).
pub fn gpu_tiled(args: &[String], rng: &mut StdRng) -> FuncSchedule {
    let mut s = FuncSchedule::default_for_args(args);
    if args.len() >= 2 {
        let t = pick(rng, &[8i64, 16, 32]);
        let x = &args[0];
        let y = &args[1];
        if s.tile(x, y, "bx", "by", "tx", "ty", t, t).is_ok() {
            let _ = s.gpu_block("by");
            let _ = s.gpu_block("bx");
            let _ = s.gpu_thread("ty");
            let _ = s.gpu_thread("tx");
        }
    }
    s
}

/// Generates a random schedule for one function, possibly placing its
/// computation inside one of its consumers.
pub fn random_schedule(
    pipeline: &Pipeline,
    func: &str,
    is_output: bool,
    gpu: bool,
    rng: &mut StdRng,
) -> FuncSchedule {
    let f = pipeline
        .func(func)
        .expect("function belongs to the pipeline");
    let args = f.args();
    let has_updates = !f.updates().is_empty();

    let mut s = match rng.gen_range(0..4) {
        0 => FuncSchedule::default_for_args(&args),
        1 => fully_parallel_tiled(&args, rng),
        2 => parallel_y_vector_x(&args, rng),
        _ => {
            if gpu {
                gpu_tiled(&args, rng)
            } else {
                fully_parallel_tiled(&args, rng)
            }
        }
    };

    if !is_output {
        // Call schedule: inline, root, or computed inside a consumer.
        let choice = rng.gen_range(0..4);
        if choice == 0 && !has_updates {
            s = FuncSchedule::default_for_args(&args);
            s.compute_level = LoopLevel::Inline;
            s.store_level = LoopLevel::Inline;
        } else if choice == 1 {
            let callers: Vec<String> = pipeline.callers(func).into_iter().collect();
            if let Some(caller) = callers.first() {
                let caller_dims: Vec<String> = pipeline
                    .func(caller)
                    .map(|c| c.schedule().dims.iter().map(|d| d.name.clone()).collect())
                    .unwrap_or_default();
                if !caller_dims.is_empty() {
                    let var = caller_dims[rng.gen_range(0..caller_dims.len())].clone();
                    s.compute_level = LoopLevel::at(caller.clone(), var.clone());
                    s.store_level = if rng.gen_bool(0.3) {
                        LoopLevel::Root
                    } else {
                        LoopLevel::at(caller.clone(), var)
                    };
                }
            }
        }
        // choice 2/3: leave at root.
    }
    s
}

/// A random genome: each function scheduled independently (used both for the
/// random-individual fraction of each generation and as a mutation).
pub fn random_genome(pipeline: &Pipeline, gpu: bool, rng: &mut StdRng) -> Genome {
    let output = pipeline.output().name();
    pipeline
        .funcs()
        .map(|f| {
            let name = f.name();
            let s = random_schedule(pipeline, &name, name == output, gpu, rng);
            (name, s)
        })
        .collect()
}

/// The paper's seeding heuristic: inline functions with a point footprint,
/// schedule the rest as fully-parallel-tiled or parallel-y depending on a
/// weighted coin.
pub fn reasonable_genome(pipeline: &Pipeline, rng: &mut StdRng) -> Genome {
    let output = pipeline.output().name();
    let weight: f64 = rng.gen_range(0.0..1.0);
    pipeline
        .funcs()
        .map(|f| {
            let name = f.name();
            let args = f.args();
            let pointwise = {
                // A crude footprint-1 test: the function is called only at
                // coordinates equal to the caller's own variables.
                let stats = halide_lang::analyze(pipeline);
                let _ = &stats;
                false
            };
            let mut s = if rng.gen_bool(weight.clamp(0.05, 0.95)) {
                fully_parallel_tiled(&args, rng)
            } else {
                parallel_y_vector_x(&args, rng)
            };
            if pointwise && name != output && f.updates().is_empty() {
                s = FuncSchedule::default_for_args(&args);
                s.compute_level = LoopLevel::Inline;
                s.store_level = LoopLevel::Inline;
            }
            (name, s)
        })
        .collect()
}

/// A (conservative) estimate of the log10 size of the schedule space for a
/// pipeline, following the paper's counting argument (three tilings per
/// function times all store/compute granularities).
pub fn search_space_log10(pipeline: &Pipeline) -> f64 {
    let n = pipeline.len() as f64;
    // per function: ~3 tilings x (n+2) compute levels x (n+2) store levels
    let per_func = 3.0 * (n + 2.0) * (n + 2.0);
    n * per_func.log10()
}

#[cfg(test)]
mod tests {
    use super::*;
    use halide_ir::Type;
    use halide_lang::{Func, ImageParam, Var};
    use rand::SeedableRng;

    fn small_pipeline() -> Pipeline {
        let input = ImageParam::new("space_in", Type::f32(), 2);
        let (x, y) = (Var::new("x"), Var::new("y"));
        let a = Func::new("space_a");
        a.define(
            &[x.clone(), y.clone()],
            input.at_clamped(vec![x.expr(), y.expr()]) * 2.0f32,
        );
        let b = Func::new("space_b");
        b.define(
            &[x.clone(), y.clone()],
            a.at(vec![x.expr() - 1, y.expr()]) + a.at(vec![x.expr() + 1, y.expr()]),
        );
        Pipeline::new(&b)
    }

    #[test]
    fn genomes_cover_every_function_and_validate() {
        let p = small_pipeline();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..20 {
            let g = random_genome(&p, false, &mut rng);
            assert_eq!(g.len(), p.len());
            for s in g.values() {
                // local validity always holds; global validity is checked by lowering
                s.validate().unwrap();
            }
        }
        let seeded = reasonable_genome(&p, &mut rng);
        assert_eq!(seeded.len(), 2);
        let bf = breadth_first_genome(&p);
        assert!(bf.values().all(|s| s.compute_level.is_root()));
    }

    #[test]
    fn apply_and_read_back() {
        let p = small_pipeline();
        let mut rng = StdRng::seed_from_u64(7);
        let g = random_genome(&p, false, &mut rng);
        apply_genome(&p, &g);
        let back = current_genome(&p);
        assert_eq!(g, back);
    }

    #[test]
    fn space_estimate_grows_with_pipeline_size() {
        let p = small_pipeline();
        let small = search_space_log10(&p);
        assert!(small > 1.0);
        // The paper's local Laplacian estimate is astronomically larger; we
        // just require monotonic growth here (the bench binary prints the
        // actual number for the 99-stage pipeline).
        assert!(small < 1000.0);
    }

    #[test]
    fn templates_produce_expected_loop_kinds() {
        let mut rng = StdRng::seed_from_u64(3);
        let args = vec!["x".to_string(), "y".to_string()];
        let t = fully_parallel_tiled(&args, &mut rng);
        assert!(t
            .dims
            .iter()
            .any(|d| d.kind == halide_schedule::ForKind::Parallel));
        let g = gpu_tiled(&args, &mut rng);
        assert!(g.validate().is_ok());
        assert!(g
            .dims
            .iter()
            .any(|d| d.kind == halide_schedule::ForKind::GpuThread));
    }
}
