//! Variable substitution over expressions and statements.
//!
//! Substitution respects lexical shadowing: a `Let` (or `LetStmt`) that
//! rebinds a substituted name protects its body, so replacing `x` in
//! `let x = y in x + 1` leaves the expression unchanged. This matters for
//! the let-dense statements produced by bounds inference, where a
//! `<func>.<dim>.min` bound at the storage level is deliberately shadowed
//! by a tighter per-iteration binding at the compute level.

use std::collections::HashMap;

use crate::expr::{Expr, ExprNode};
use crate::stmt::{Stmt, StmtNode};
use crate::visit::{mutate_expr_children, mutate_stmt_children, IrMutator};

struct Substituter<'a> {
    map: &'a HashMap<String, Expr>,
    /// Names currently shadowed by an enclosing let binding; substitution of
    /// these is suppressed until the binding goes out of scope.
    shadowed: Vec<String>,
}

impl Substituter<'_> {
    fn is_active(&self, name: &str) -> bool {
        self.map.contains_key(name) && !self.shadowed.iter().any(|s| s == name)
    }

    /// Runs `f` with `name` marked shadowed if the map would otherwise
    /// substitute it.
    fn with_shadow<R>(&mut self, name: &str, f: impl FnOnce(&mut Self) -> R) -> R {
        let pushed = self.map.contains_key(name);
        if pushed {
            self.shadowed.push(name.to_string());
        }
        let r = f(self);
        if pushed {
            self.shadowed.pop();
        }
        r
    }
}

impl IrMutator for Substituter<'_> {
    fn mutate_expr(&mut self, e: &Expr) -> Expr {
        match e.node() {
            ExprNode::Var { name, .. } => {
                if self.is_active(name) {
                    return self.map[name].clone();
                }
                e.clone()
            }
            ExprNode::Let { name, value, body } => {
                let nv = self.mutate_expr(value);
                let nb = self.with_shadow(name, |s| s.mutate_expr(body));
                if nv == *value && nb == *body {
                    e.clone()
                } else {
                    Expr::let_in(name.clone(), nv, nb)
                }
            }
            _ => mutate_expr_children(self, e),
        }
    }

    fn mutate_stmt(&mut self, s: &Stmt) -> Stmt {
        match s.node() {
            StmtNode::LetStmt { name, value, body } => {
                let nv = self.mutate_expr(value);
                let nb = self.with_shadow(name, |sub| sub.mutate_stmt(body));
                if nv == *value && nb == *body {
                    s.clone()
                } else {
                    Stmt::let_stmt(name.clone(), nv, nb)
                }
            }
            _ => mutate_stmt_children(self, s),
        }
    }
}

/// Replaces every free occurrence of the variable `name` in `e` with `value`.
///
/// Occurrences under a `Let` that rebinds `name` are left alone (they refer
/// to the inner binding, not the substituted one).
pub fn substitute(e: &Expr, name: &str, value: &Expr) -> Expr {
    let mut map = HashMap::new();
    map.insert(name.to_string(), value.clone());
    substitute_map(e, &map)
}

/// Replaces every free variable named in `map` with its mapped expression,
/// respecting shadowing by inner lets.
pub fn substitute_map(e: &Expr, map: &HashMap<String, Expr>) -> Expr {
    if map.is_empty() {
        return e.clone();
    }
    Substituter {
        map,
        shadowed: Vec::new(),
    }
    .mutate_expr(e)
}

/// Replaces every free occurrence of the variable `name` in statement `s`
/// with `value`, respecting shadowing by inner lets.
pub fn substitute_in_stmt(s: &Stmt, name: &str, value: &Expr) -> Stmt {
    let mut map = HashMap::new();
    map.insert(name.to_string(), value.clone());
    substitute_map_in_stmt(s, &map)
}

/// Replaces every free variable named in `map` within statement `s`,
/// respecting shadowing by inner lets.
pub fn substitute_map_in_stmt(s: &Stmt, map: &HashMap<String, Expr>) -> Stmt {
    if map.is_empty() {
        return s.clone();
    }
    Substituter {
        map,
        shadowed: Vec::new(),
    }
    .mutate_stmt(s)
}

/// A walker-maintained view of the `let` bindings enclosing the current
/// node, with each tracked value *fully resolved* against the bindings
/// enclosing it (so a single substitution pass resolves transitively) and
/// simplified.
///
/// Passes that need to see through the `<func>.<dim>.min` / `.extent`
/// names bounds inference emits — the scope-carrying simplifier, the
/// sliding-window pass, vectorization — all share this type, so the
/// shadowing and cost rules live in one place:
///
/// * [`enter`](LetResolver::enter) / [`exit`](LetResolver::exit) bracket a
///   binding; re-entering a name shadows the outer entry and `exit`
///   restores it.
/// * Resolution is budgeted: a value whose input or resolved form exceeds
///   the node budget is tracked as *opaque* — the name is masked (not left
///   pointing at an outer same-named binding, which would resolve the body
///   against the wrong value) and simply stays symbolic in
///   [`resolve`](LetResolver::resolve) results. That keeps every pass
///   linear on deep, let-dense pipelines: oversized bounds cannot satisfy
///   the small name-plus-offset patterns the passes match anyway.
#[derive(Debug, Clone)]
pub struct LetResolver {
    budget: usize,
    map: HashMap<String, Expr>,
}

impl LetResolver {
    /// Creates an empty resolver with the given node budget per tracked
    /// (resolved) value.
    pub fn new(budget: usize) -> Self {
        LetResolver {
            budget,
            map: HashMap::new(),
        }
    }

    /// True if no binding is currently tracked.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Resolves every tracked let-bound variable in `e` to its value and
    /// simplifies the result. Opaque (masked or never-entered) names stay
    /// symbolic — they are still in scope at every use, so the result is
    /// always a valid expression. Inputs larger than the budget are
    /// returned unchanged.
    pub fn resolve(&self, e: &Expr) -> Expr {
        if self.map.is_empty() || crate::visit::expr_node_count(e) > self.budget {
            return e.clone();
        }
        let r = substitute_map(e, &self.map);
        if r == *e {
            r
        } else {
            crate::simplify::simplify(&r)
        }
    }

    /// Enters the binding `name = value`, tracking its resolved form when
    /// it fits the budget and masking the name otherwise. Returns whatever
    /// entry this displaced; hand it back to [`exit`](LetResolver::exit).
    pub fn enter(&mut self, name: &str, value: &Expr) -> Option<Expr> {
        let resolved = if crate::visit::expr_node_count(value) <= self.budget {
            let r = self.resolve(value);
            (crate::visit::expr_node_count(&r) <= self.budget).then_some(r)
        } else {
            None
        };
        match resolved {
            Some(r) => self.map.insert(name.to_string(), r),
            None => self.map.remove(name),
        }
    }

    /// Leaves a binding, restoring whatever [`enter`](LetResolver::enter)
    /// displaced.
    pub fn exit(&mut self, name: &str, saved: Option<Expr>) {
        match saved {
            Some(old) => {
                self.map.insert(name.to_string(), old);
            }
            None => {
                self.map.remove(name);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stmt::ForKind;

    #[test]
    fn substitute_in_expr() {
        let e = Expr::var_i32("x") * 2 + Expr::var_i32("y");
        let out = substitute(&e, "x", &Expr::int(5));
        assert_eq!(out.to_string(), "((5*2) + y)");
    }

    #[test]
    fn substitute_many() {
        let e = Expr::var_i32("x") + Expr::var_i32("y");
        let mut map = HashMap::new();
        map.insert("x".to_string(), Expr::int(1));
        map.insert("y".to_string(), Expr::int(2));
        assert_eq!(substitute_map(&e, &map).to_string(), "(1 + 2)");
    }

    #[test]
    fn substitute_in_statement() {
        let s = Stmt::for_loop(
            "i",
            Expr::int(0),
            Expr::var_i32("n"),
            ForKind::Serial,
            Stmt::store("b", Expr::var_i32("n"), Expr::var_i32("i")),
        );
        let out = substitute_in_stmt(&s, "n", &Expr::int(16));
        let text = out.to_string();
        assert!(text.contains("0 + 16"));
        assert!(text.contains("b[i] = 16"));
    }

    #[test]
    fn empty_map_is_identity() {
        let e = Expr::var_i32("x");
        assert_eq!(substitute_map(&e, &HashMap::new()), e);
    }

    #[test]
    fn let_resolver_tracks_shadows_and_masks() {
        let mut r = LetResolver::new(64);
        assert!(r.is_empty());
        let saved_a = r.enter("a", &Expr::var_i32("x"));
        let saved_b = r.enter("b", &(Expr::var_i32("a") + 1));
        // Transitive: b resolved against a's entry.
        assert_eq!(r.resolve(&Expr::var_i32("b")).to_string(), "(x + 1)");
        // Shadowing: re-entering `a` supersedes, exit restores.
        let saved_a2 = r.enter("a", &Expr::int(9));
        assert_eq!(r.resolve(&Expr::var_i32("a")).as_const_int(), Some(9));
        // The earlier resolution of b is unaffected by the new a.
        assert_eq!(r.resolve(&Expr::var_i32("b")).to_string(), "(x + 1)");
        r.exit("a", saved_a2);
        assert_eq!(r.resolve(&Expr::var_i32("a")).to_string(), "x");
        r.exit("b", saved_b);
        r.exit("a", saved_a);
        assert!(r.is_empty());

        // An over-budget value masks the name instead of leaking an outer
        // same-named binding into the body.
        let mut r = LetResolver::new(4);
        let saved = r.enter("n", &Expr::int(1));
        let big = (0..10).fold(Expr::var_i32("q"), |e, i| {
            e + Expr::var_i32(format!("v{i}"))
        });
        let saved_inner = r.enter("n", &big);
        assert_eq!(r.resolve(&Expr::var_i32("n")).to_string(), "n");
        r.exit("n", saved_inner);
        assert_eq!(r.resolve(&Expr::var_i32("n")).as_const_int(), Some(1));
        r.exit("n", saved);
    }

    #[test]
    fn inner_let_shadows_substitution_in_expr() {
        // substitute m := 7 in `m + (let m = m * 2 in m + 1)`:
        // the let VALUE sees the outer m; the let BODY refers to the rebound m.
        let e = Expr::var_i32("m")
            + Expr::let_in(
                "m",
                Expr::var_i32("m") * 2,
                Expr::var_i32("m") + Expr::int(1),
            );
        let out = substitute(&e, "m", &Expr::int(7));
        assert_eq!(out.to_string(), "(7 + (let m = (7*2) in (m + 1)))");
    }

    #[test]
    fn inner_let_stmt_shadows_substitution() {
        // `f.x.min` is rebound by an inner LetStmt; only the outer use and the
        // inner let's value are substituted.
        let s = Stmt::block(
            Stmt::evaluate(Expr::var_i32("f.x.min")),
            Stmt::let_stmt(
                "f.x.min",
                Expr::var_i32("f.x.min") + 1,
                Stmt::evaluate(Expr::var_i32("f.x.min")),
            ),
        );
        let out = substitute_in_stmt(&s, "f.x.min", &Expr::int(3));
        let text = out.to_string();
        assert!(text.contains("let f.x.min = (3 + 1)"));
        // The body occurrence survives as a variable reference.
        assert!(text.lines().last().unwrap().contains("f.x.min"));
    }
}
