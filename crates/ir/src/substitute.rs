//! Variable substitution over expressions and statements.

use std::collections::HashMap;

use crate::expr::{Expr, ExprNode};
use crate::stmt::Stmt;
use crate::visit::{mutate_expr_children, IrMutator};

struct Substituter<'a> {
    map: &'a HashMap<String, Expr>,
}

impl IrMutator for Substituter<'_> {
    fn mutate_expr(&mut self, e: &Expr) -> Expr {
        if let ExprNode::Var { name, .. } = e.node() {
            if let Some(replacement) = self.map.get(name) {
                return replacement.clone();
            }
        }
        mutate_expr_children(self, e)
    }
}

/// Replaces every occurrence of the variable `name` in `e` with `value`.
///
/// Lowering generates globally unique variable names, so no shadowing-aware
/// capture analysis is needed (inner `Let`s never rebind a substituted name).
pub fn substitute(e: &Expr, name: &str, value: &Expr) -> Expr {
    let mut map = HashMap::new();
    map.insert(name.to_string(), value.clone());
    substitute_map(e, &map)
}

/// Replaces every variable named in `map` with its mapped expression.
pub fn substitute_map(e: &Expr, map: &HashMap<String, Expr>) -> Expr {
    if map.is_empty() {
        return e.clone();
    }
    Substituter { map }.mutate_expr(e)
}

/// Replaces every occurrence of the variable `name` in statement `s` with `value`.
pub fn substitute_in_stmt(s: &Stmt, name: &str, value: &Expr) -> Stmt {
    let mut map = HashMap::new();
    map.insert(name.to_string(), value.clone());
    substitute_map_in_stmt(s, &map)
}

/// Replaces every variable named in `map` within statement `s`.
pub fn substitute_map_in_stmt(s: &Stmt, map: &HashMap<String, Expr>) -> Stmt {
    if map.is_empty() {
        return s.clone();
    }
    Substituter { map }.mutate_stmt(s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stmt::ForKind;

    #[test]
    fn substitute_in_expr() {
        let e = Expr::var_i32("x") * 2 + Expr::var_i32("y");
        let out = substitute(&e, "x", &Expr::int(5));
        assert_eq!(out.to_string(), "((5*2) + y)");
    }

    #[test]
    fn substitute_many() {
        let e = Expr::var_i32("x") + Expr::var_i32("y");
        let mut map = HashMap::new();
        map.insert("x".to_string(), Expr::int(1));
        map.insert("y".to_string(), Expr::int(2));
        assert_eq!(substitute_map(&e, &map).to_string(), "(1 + 2)");
    }

    #[test]
    fn substitute_in_statement() {
        let s = Stmt::for_loop(
            "i",
            Expr::int(0),
            Expr::var_i32("n"),
            ForKind::Serial,
            Stmt::store("b", Expr::var_i32("n"), Expr::var_i32("i")),
        );
        let out = substitute_in_stmt(&s, "n", &Expr::int(16));
        let text = out.to_string();
        assert!(text.contains("0 + 16"));
        assert!(text.contains("b[i] = 16"));
    }

    #[test]
    fn empty_map_is_identity() {
        let e = Expr::var_i32("x");
        assert_eq!(substitute_map(&e, &HashMap::new()), e);
    }
}
