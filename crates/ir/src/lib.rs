//! # halide-ir
//!
//! The intermediate representation underlying the halide-rs reproduction of
//! *Halide: A Language and Compiler for Optimizing Parallelism, Locality, and
//! Recomputation in Image Processing Pipelines* (PLDI 2013).
//!
//! This crate provides the building blocks every other crate works with:
//!
//! * [`Type`] / [`ScalarType`] — the value types of the language;
//! * [`Expr`] — immutable expression trees (arithmetic, selects, calls,
//!   loads, ramps/broadcasts, lets);
//! * [`Stmt`] — the imperative statements the compiler synthesizes (loops,
//!   realizations/allocations, provides/stores, producer-consumer markers);
//! * [`IrVisitor`] / [`IrMutator`] — traversal traits used to write passes;
//! * [`Scope`] — lexical name bindings;
//! * [`simplify()`] — constant folding and algebraic simplification
//!   (scope-carrying for statements, see [`simplify_stmt`]);
//! * [`interval`] — the interval analysis that powers bounds inference.
//!
//! # Example
//!
//! ```
//! use halide_ir::{Expr, simplify, Scope, interval::{bounds_of_expr_in_scope, Interval}};
//!
//! // blurx(x) accesses in(x-1) .. in(x+1); what region of `in` does a tile
//! // of 32 pixels starting at `x0` need?
//! let x = Expr::var_i32("x");
//! let mut scope = Scope::new();
//! scope.push("x", Interval::new(Expr::var_i32("x0"), Expr::var_i32("x0") + 31));
//! let b = bounds_of_expr_in_scope(&(x + 1), &scope);
//! assert_eq!(simplify(&b.max.unwrap()).to_string(), "(x0 + 32)");
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod expr;
pub mod interval;
pub mod scope;
pub mod simplify;
pub mod stmt;
pub mod substitute;
pub mod types;
pub mod visit;

pub use expr::{BinOp, CallType, CmpOp, Expr, ExprNode};
pub use interval::Interval;
pub use scope::Scope;
pub use simplify::{const_int, simplify, simplify_stmt};
pub use stmt::{ForKind, Range, Stmt, StmtNode};
pub use substitute::{
    substitute, substitute_in_stmt, substitute_map, substitute_map_in_stmt, LetResolver,
};
pub use types::{promote, ScalarType, Type};
pub use visit::{
    expr_node_count, expr_uses_var, free_vars, mutate_expr_children, mutate_stmt_children,
    stmt_uses_var, visit_expr_children, visit_stmt_children, IrMutator, IrVisitor,
};
