//! A lexical scope: a stack of name → value bindings.
//!
//! Used by bounds inference (variable → interval), by the simplifier
//! (variable → known constant), and by the executor (variable → runtime
//! value). Pushing a binding shadows earlier bindings of the same name; a
//! matching pop restores them.

use std::collections::HashMap;

/// A stack-structured map from names to values of type `T`.
///
/// # Examples
///
/// ```
/// use halide_ir::Scope;
/// let mut s: Scope<i32> = Scope::new();
/// s.push("x", 1);
/// s.push("x", 2);
/// assert_eq!(s.get("x"), Some(&2));
/// s.pop("x");
/// assert_eq!(s.get("x"), Some(&1));
/// ```
#[derive(Debug, Clone)]
pub struct Scope<T> {
    table: HashMap<String, Vec<T>>,
}

impl<T> Default for Scope<T> {
    fn default() -> Self {
        Scope {
            table: HashMap::new(),
        }
    }
}

impl<T> Scope<T> {
    /// Creates an empty scope.
    pub fn new() -> Self {
        Self::default()
    }

    /// Pushes a binding for `name`, shadowing any existing binding.
    pub fn push(&mut self, name: impl Into<String>, value: T) {
        self.table.entry(name.into()).or_default().push(value);
    }

    /// Pops the most recent binding for `name`.
    ///
    /// # Panics
    ///
    /// Panics if `name` has no binding; unbalanced pushes/pops are compiler
    /// bugs and should fail loudly.
    pub fn pop(&mut self, name: &str) -> T {
        let stack = self
            .table
            .get_mut(name)
            .unwrap_or_else(|| panic!("popping unbound name {name:?} from scope"));
        let v = stack
            .pop()
            .unwrap_or_else(|| panic!("popping unbound name {name:?} from scope"));
        if stack.is_empty() {
            self.table.remove(name);
        }
        v
    }

    /// Looks up the innermost binding for `name`.
    pub fn get(&self, name: &str) -> Option<&T> {
        self.table.get(name).and_then(|s| s.last())
    }

    /// Mutable access to the innermost binding for `name`.
    pub fn get_mut(&mut self, name: &str) -> Option<&mut T> {
        self.table.get_mut(name).and_then(|s| s.last_mut())
    }

    /// True if `name` has at least one binding.
    pub fn contains(&self, name: &str) -> bool {
        self.table.contains_key(name)
    }

    /// True if the scope has no bindings at all.
    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }

    /// Iterates over the innermost binding of every name (arbitrary order).
    pub fn iter(&self) -> impl Iterator<Item = (&str, &T)> {
        self.table
            .iter()
            .filter_map(|(k, v)| v.last().map(|t| (k.as_str(), t)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_shadow_pop() {
        let mut s = Scope::new();
        assert!(s.is_empty());
        s.push("a", "one");
        s.push("a", "two");
        s.push("b", "three");
        assert_eq!(s.get("a"), Some(&"two"));
        assert_eq!(s.pop("a"), "two");
        assert_eq!(s.get("a"), Some(&"one"));
        assert_eq!(s.pop("a"), "one");
        assert!(!s.contains("a"));
        assert!(s.contains("b"));
    }

    #[test]
    #[should_panic(expected = "unbound name")]
    fn pop_unbound_panics() {
        let mut s: Scope<i32> = Scope::new();
        s.pop("missing");
    }

    #[test]
    fn iter_sees_innermost() {
        let mut s = Scope::new();
        s.push("a", 1);
        s.push("a", 2);
        s.push("b", 3);
        let mut seen: Vec<(String, i32)> = s.iter().map(|(k, v)| (k.to_string(), *v)).collect();
        seen.sort();
        assert_eq!(seen, vec![("a".to_string(), 2), ("b".to_string(), 3)]);
    }

    #[test]
    fn get_mut_updates() {
        let mut s = Scope::new();
        s.push("x", 1);
        *s.get_mut("x").unwrap() = 9;
        assert_eq!(s.get("x"), Some(&9));
    }
}
