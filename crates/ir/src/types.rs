//! Scalar and vector types for the Halide IR.
//!
//! Types mirror the paper's value model: fixed-width integers, unsigned
//! integers, IEEE floats and booleans, each of which may be widened to a
//! vector of `lanes` elements by the vectorization pass (Sec. 4.5).

use std::fmt;

/// The element kind of a [`Type`], without a lane count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ScalarType {
    /// Signed two's-complement integer with the given bit width (8/16/32/64).
    Int(u8),
    /// Unsigned integer with the given bit width (1 is used for booleans).
    UInt(u8),
    /// IEEE-754 binary floating point with the given bit width (32/64).
    Float(u8),
}

impl ScalarType {
    /// Number of bits in one element.
    pub fn bits(self) -> u8 {
        match self {
            ScalarType::Int(b) | ScalarType::UInt(b) | ScalarType::Float(b) => b,
        }
    }

    /// Number of bytes one element occupies in a buffer.
    pub fn bytes(self) -> usize {
        (self.bits() as usize).div_ceil(8)
    }

    /// True for both signed and unsigned integer kinds.
    pub fn is_int(self) -> bool {
        matches!(self, ScalarType::Int(_) | ScalarType::UInt(_))
    }

    /// True for floating-point kinds.
    pub fn is_float(self) -> bool {
        matches!(self, ScalarType::Float(_))
    }

    /// True for unsigned integer kinds (including the 1-bit boolean).
    pub fn is_uint(self) -> bool {
        matches!(self, ScalarType::UInt(_))
    }

    /// True for signed integer kinds.
    pub fn is_signed_int(self) -> bool {
        matches!(self, ScalarType::Int(_))
    }

    /// Largest representable value, as an `f64` (used by `clamp`-style
    /// saturation helpers and by the simplifier).
    pub fn max_value_f64(self) -> f64 {
        match self {
            ScalarType::Int(b) => ((1i128 << (b - 1)) - 1) as f64,
            ScalarType::UInt(1) => 1.0,
            ScalarType::UInt(b) => ((1i128 << b) - 1) as f64,
            ScalarType::Float(32) => f32::MAX as f64,
            ScalarType::Float(_) => f64::MAX,
        }
    }

    /// Smallest representable value, as an `f64`.
    pub fn min_value_f64(self) -> f64 {
        match self {
            ScalarType::Int(b) => -((1i128 << (b - 1)) as f64),
            ScalarType::UInt(_) => 0.0,
            ScalarType::Float(32) => f32::MIN as f64,
            ScalarType::Float(_) => f64::MIN,
        }
    }
}

impl fmt::Display for ScalarType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScalarType::Int(b) => write!(f, "int{b}"),
            ScalarType::UInt(1) => write!(f, "bool"),
            ScalarType::UInt(b) => write!(f, "uint{b}"),
            ScalarType::Float(b) => write!(f, "float{b}"),
        }
    }
}

/// A complete IR value type: a [`ScalarType`] plus a lane count.
///
/// `lanes == 1` is a scalar; `lanes > 1` is a SIMD-style vector produced by
/// the vectorization pass.
///
/// # Examples
///
/// ```
/// use halide_ir::Type;
/// let t = Type::f32();
/// assert!(t.is_scalar());
/// assert_eq!(t.with_lanes(8).lanes(), 8);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Type {
    scalar: ScalarType,
    lanes: u16,
}

impl Type {
    /// Creates a type from a scalar kind and lane count.
    ///
    /// # Panics
    ///
    /// Panics if `lanes` is zero.
    pub fn new(scalar: ScalarType, lanes: u16) -> Self {
        assert!(lanes > 0, "a type must have at least one lane");
        Type { scalar, lanes }
    }

    /// Signed 8-bit integer.
    pub fn i8() -> Self {
        Type::new(ScalarType::Int(8), 1)
    }
    /// Signed 16-bit integer.
    pub fn i16() -> Self {
        Type::new(ScalarType::Int(16), 1)
    }
    /// Signed 32-bit integer (the type of loop variables and coordinates).
    pub fn i32() -> Self {
        Type::new(ScalarType::Int(32), 1)
    }
    /// Signed 64-bit integer.
    pub fn i64() -> Self {
        Type::new(ScalarType::Int(64), 1)
    }
    /// Unsigned 8-bit integer (the typical pixel type).
    pub fn u8() -> Self {
        Type::new(ScalarType::UInt(8), 1)
    }
    /// Unsigned 16-bit integer.
    pub fn u16() -> Self {
        Type::new(ScalarType::UInt(16), 1)
    }
    /// Unsigned 32-bit integer.
    pub fn u32() -> Self {
        Type::new(ScalarType::UInt(32), 1)
    }
    /// Unsigned 64-bit integer.
    pub fn u64() -> Self {
        Type::new(ScalarType::UInt(64), 1)
    }
    /// 32-bit float.
    pub fn f32() -> Self {
        Type::new(ScalarType::Float(32), 1)
    }
    /// 64-bit float.
    pub fn f64() -> Self {
        Type::new(ScalarType::Float(64), 1)
    }
    /// Boolean, represented as a 1-bit unsigned integer.
    pub fn bool() -> Self {
        Type::new(ScalarType::UInt(1), 1)
    }

    /// The scalar element kind.
    pub fn scalar(self) -> ScalarType {
        self.scalar
    }

    /// The number of lanes.
    pub fn lanes(self) -> u16 {
        self.lanes
    }

    /// The same type with a different lane count.
    pub fn with_lanes(self, lanes: u16) -> Self {
        Type::new(self.scalar, lanes)
    }

    /// The scalar element type (lane count forced to 1).
    pub fn element_of(self) -> Self {
        self.with_lanes(1)
    }

    /// True when `lanes == 1`.
    pub fn is_scalar(self) -> bool {
        self.lanes == 1
    }

    /// True when `lanes > 1`.
    pub fn is_vector(self) -> bool {
        self.lanes > 1
    }

    /// True when the element is a float.
    pub fn is_float(self) -> bool {
        self.scalar.is_float()
    }

    /// True when the element is a signed or unsigned integer.
    pub fn is_int(self) -> bool {
        self.scalar.is_int()
    }

    /// True when the element is an unsigned integer.
    pub fn is_uint(self) -> bool {
        self.scalar.is_uint()
    }

    /// True when this is the 1-bit boolean type (any lane count).
    pub fn is_bool(self) -> bool {
        self.scalar == ScalarType::UInt(1)
    }

    /// Bits per element.
    pub fn bits(self) -> u8 {
        self.scalar.bits()
    }

    /// Bytes per element (vector types report a single element).
    pub fn bytes(self) -> usize {
        self.scalar.bytes()
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.lanes == 1 {
            write!(f, "{}", self.scalar)
        } else {
            write!(f, "{}x{}", self.scalar, self.lanes)
        }
    }
}

impl Default for Type {
    fn default() -> Self {
        Type::i32()
    }
}

/// Computes the type two operands are promoted to when combined by a binary
/// arithmetic operator.
///
/// Rules (a pragmatic subset of Halide's implicit promotion):
/// floats dominate integers, signed dominates unsigned of the same width,
/// wider dominates narrower, and the lane count is the maximum of the two
/// (one side must be scalar or the lane counts must match).
///
/// # Panics
///
/// Panics if both operands are vectors of different widths, which has no
/// meaningful promotion.
pub fn promote(a: Type, b: Type) -> Type {
    let lanes = match (a.lanes(), b.lanes()) {
        (1, l) | (l, 1) => l,
        (la, lb) if la == lb => la,
        (la, lb) => panic!("cannot promote vectors of different widths {la} and {lb}"),
    };
    let scalar = match (a.scalar(), b.scalar()) {
        (ScalarType::Float(x), ScalarType::Float(y)) => ScalarType::Float(x.max(y)),
        (ScalarType::Float(x), _) | (_, ScalarType::Float(x)) => ScalarType::Float(x),
        (ScalarType::Int(x), ScalarType::Int(y)) => ScalarType::Int(x.max(y)),
        (ScalarType::UInt(x), ScalarType::UInt(y)) => ScalarType::UInt(x.max(y)),
        (ScalarType::Int(x), ScalarType::UInt(y)) | (ScalarType::UInt(y), ScalarType::Int(x)) => {
            ScalarType::Int(x.max(y))
        }
    };
    Type::new(scalar, lanes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_bits_and_bytes() {
        assert_eq!(ScalarType::UInt(8).bits(), 8);
        assert_eq!(ScalarType::UInt(8).bytes(), 1);
        assert_eq!(ScalarType::Int(32).bytes(), 4);
        assert_eq!(ScalarType::Float(64).bytes(), 8);
        assert_eq!(ScalarType::UInt(1).bytes(), 1);
    }

    #[test]
    fn type_constructors() {
        assert!(Type::f32().is_float());
        assert!(Type::u8().is_uint());
        assert!(Type::i32().is_int());
        assert!(Type::bool().is_bool());
        assert!(!Type::f32().is_int());
        assert_eq!(Type::i32().bits(), 32);
    }

    #[test]
    fn lane_manipulation() {
        let v = Type::f32().with_lanes(8);
        assert!(v.is_vector());
        assert_eq!(v.lanes(), 8);
        assert_eq!(v.element_of(), Type::f32());
        assert!(Type::u16().is_scalar());
    }

    #[test]
    #[should_panic(expected = "at least one lane")]
    fn zero_lanes_rejected() {
        let _ = Type::new(ScalarType::Int(32), 0);
    }

    #[test]
    fn promotion_rules() {
        assert_eq!(promote(Type::i32(), Type::f32()), Type::f32());
        assert_eq!(promote(Type::u8(), Type::u16()), Type::u16());
        assert_eq!(promote(Type::u8(), Type::i32()), Type::i32());
        assert_eq!(promote(Type::f32(), Type::f64()), Type::f64());
        assert_eq!(
            promote(Type::i32().with_lanes(4), Type::i32()),
            Type::i32().with_lanes(4)
        );
    }

    #[test]
    #[should_panic(expected = "different widths")]
    fn promotion_rejects_mismatched_vectors() {
        let _ = promote(Type::i32().with_lanes(4), Type::i32().with_lanes(8));
    }

    #[test]
    fn display_forms() {
        assert_eq!(Type::i32().to_string(), "int32");
        assert_eq!(Type::u8().with_lanes(16).to_string(), "uint8x16");
        assert_eq!(Type::bool().to_string(), "bool");
        assert_eq!(Type::f64().to_string(), "float64");
    }

    #[test]
    fn min_max_values() {
        assert_eq!(ScalarType::UInt(8).max_value_f64(), 255.0);
        assert_eq!(ScalarType::Int(8).max_value_f64(), 127.0);
        assert_eq!(ScalarType::Int(8).min_value_f64(), -128.0);
        assert_eq!(ScalarType::UInt(16).min_value_f64(), 0.0);
    }
}
