//! Statements of the Halide IR.
//!
//! Statements describe the imperative program the compiler synthesizes from
//! an algorithm plus a schedule (Sec. 4). Before flattening, storage is
//! multi-dimensional (`Realize`/`Provide`); after flattening it is
//! one-dimensional (`Allocate`/`Store`).

use std::fmt;
use std::sync::Arc;

use crate::expr::Expr;
use crate::types::Type;

/// How a loop is executed. Chosen by the schedule's domain order (Sec. 3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ForKind {
    /// Ordinary sequential loop.
    Serial,
    /// Iterations are distributed over the thread pool.
    Parallel,
    /// The loop is replaced by vector expressions during vectorization; its
    /// extent must be a compile-time constant.
    Vectorized,
    /// The loop body is replicated `extent` times; the extent must be a
    /// compile-time constant.
    Unrolled,
    /// Maps to the grid (block) dimension of a simulated GPU kernel launch.
    GpuBlock,
    /// Maps to the thread dimension within a simulated GPU kernel launch.
    GpuThread,
}

impl ForKind {
    /// True for the two GPU loop kinds.
    pub fn is_gpu(self) -> bool {
        matches!(self, ForKind::GpuBlock | ForKind::GpuThread)
    }

    /// True if iterations may run concurrently (parallel, GPU).
    pub fn is_parallel(self) -> bool {
        matches!(
            self,
            ForKind::Parallel | ForKind::GpuBlock | ForKind::GpuThread
        )
    }
}

impl fmt::Display for ForKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ForKind::Serial => "for",
            ForKind::Parallel => "parallel for",
            ForKind::Vectorized => "vectorized for",
            ForKind::Unrolled => "unrolled for",
            ForKind::GpuBlock => "gpu_block for",
            ForKind::GpuThread => "gpu_thread for",
        };
        write!(f, "{s}")
    }
}

/// A half-open region along one dimension: `[min, min + extent)`.
#[derive(Debug, Clone, PartialEq)]
pub struct Range {
    /// First coordinate of the region.
    pub min: Expr,
    /// Number of coordinates covered.
    pub extent: Expr,
}

impl Range {
    /// Creates a range from its min and extent.
    pub fn new(min: Expr, extent: Expr) -> Self {
        Range { min, extent }
    }

    /// The last coordinate contained in the range (`min + extent - 1`).
    pub fn max(&self) -> Expr {
        self.min.clone() + self.extent.clone() - 1
    }
}

impl fmt::Display for Range {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}, {})",
            self.min,
            self.min.clone() + self.extent.clone()
        )
    }
}

/// One node of a statement tree. Use the constructors on [`Stmt`].
#[allow(missing_docs)] // variant fields are documented at the variant level
#[derive(Debug, Clone, PartialEq)]
pub enum StmtNode {
    /// `let name = value` scoped over `body`.
    LetStmt {
        name: String,
        value: Expr,
        body: Stmt,
    },
    /// Runtime check; the executor aborts the realization with an error when
    /// the condition is false.
    Assert { condition: Expr, message: String },
    /// Marks the production (or consumption) region of a func; used by later
    /// passes and by instrumentation to attribute work to stages.
    Producer {
        name: String,
        is_produce: bool,
        body: Stmt,
    },
    /// A loop over `[min, min+extent)` with the given execution kind.
    For {
        name: String,
        min: Expr,
        extent: Expr,
        kind: ForKind,
        body: Stmt,
    },
    /// Multi-dimensional store into func `name` at coordinates `args`
    /// (pre-flattening form).
    Provide {
        name: String,
        value: Expr,
        args: Vec<Expr>,
    },
    /// One-dimensional store into buffer `name` (post-flattening form).
    /// When `predicate` is present (a boolean of the same lane count as the
    /// index), lanes whose predicate is false are skipped entirely — not
    /// written and not bounds-checked. Produced by predicated tail
    /// vectorization.
    Store {
        name: String,
        value: Expr,
        index: Expr,
        predicate: Option<Expr>,
    },
    /// Allocates a multi-dimensional region for func `name` spanning `bounds`,
    /// live for the duration of `body` (pre-flattening form).
    Realize {
        name: String,
        ty: Type,
        bounds: Vec<Range>,
        body: Stmt,
    },
    /// Allocates a one-dimensional buffer of `size` elements (post-flattening).
    Allocate {
        name: String,
        ty: Type,
        size: Expr,
        body: Stmt,
    },
    /// Sequential composition.
    Block { stmts: Vec<Stmt> },
    /// Conditional statement.
    IfThenElse {
        condition: Expr,
        then_case: Stmt,
        else_case: Option<Stmt>,
    },
    /// Evaluates an expression for effect (used for extern calls).
    Evaluate { value: Expr },
    /// Does nothing. Useful as an identity during transformations.
    NoOp,
}

/// An immutable, reference-counted IR statement.
#[derive(Clone)]
pub struct Stmt(Arc<StmtNode>);

impl fmt::Debug for Stmt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Stmt(\n{self})")
    }
}

impl PartialEq for Stmt {
    fn eq(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.0, &other.0) || *self.0 == *other.0
    }
}

impl From<StmtNode> for Stmt {
    fn from(node: StmtNode) -> Self {
        Stmt(Arc::new(node))
    }
}

impl Stmt {
    /// Borrows the underlying node.
    pub fn node(&self) -> &StmtNode {
        &self.0
    }

    /// The no-op statement.
    pub fn no_op() -> Stmt {
        StmtNode::NoOp.into()
    }

    /// True if this is the no-op statement.
    pub fn is_no_op(&self) -> bool {
        matches!(self.node(), StmtNode::NoOp)
    }

    /// `let name = value in body`.
    pub fn let_stmt(name: impl Into<String>, value: Expr, body: Stmt) -> Stmt {
        StmtNode::LetStmt {
            name: name.into(),
            value,
            body,
        }
        .into()
    }

    /// A runtime assertion.
    pub fn assert_stmt(condition: Expr, message: impl Into<String>) -> Stmt {
        StmtNode::Assert {
            condition,
            message: message.into(),
        }
        .into()
    }

    /// A produce marker around the statements computing func `name`.
    pub fn produce(name: impl Into<String>, body: Stmt) -> Stmt {
        StmtNode::Producer {
            name: name.into(),
            is_produce: true,
            body,
        }
        .into()
    }

    /// A consume marker around the statements that read func `name`.
    pub fn consume(name: impl Into<String>, body: Stmt) -> Stmt {
        StmtNode::Producer {
            name: name.into(),
            is_produce: false,
            body,
        }
        .into()
    }

    /// A loop statement.
    pub fn for_loop(
        name: impl Into<String>,
        min: Expr,
        extent: Expr,
        kind: ForKind,
        body: Stmt,
    ) -> Stmt {
        StmtNode::For {
            name: name.into(),
            min,
            extent,
            kind,
            body,
        }
        .into()
    }

    /// Multi-dimensional store (pre-flattening).
    pub fn provide(name: impl Into<String>, value: Expr, args: Vec<Expr>) -> Stmt {
        StmtNode::Provide {
            name: name.into(),
            value,
            args,
        }
        .into()
    }

    /// One-dimensional store (post-flattening).
    pub fn store(name: impl Into<String>, value: Expr, index: Expr) -> Stmt {
        StmtNode::Store {
            name: name.into(),
            value,
            index,
            predicate: None,
        }
        .into()
    }

    /// A predicated (masked) store: lanes whose `predicate` is false are
    /// skipped — not written and not bounds-checked. Produced by predicated
    /// tail vectorization; see [`StmtNode::Store`].
    pub fn store_predicated(
        name: impl Into<String>,
        value: Expr,
        index: Expr,
        predicate: Expr,
    ) -> Stmt {
        StmtNode::Store {
            name: name.into(),
            value,
            index,
            predicate: Some(predicate),
        }
        .into()
    }

    /// Multi-dimensional allocation (pre-flattening).
    pub fn realize(name: impl Into<String>, ty: Type, bounds: Vec<Range>, body: Stmt) -> Stmt {
        StmtNode::Realize {
            name: name.into(),
            ty,
            bounds,
            body,
        }
        .into()
    }

    /// One-dimensional allocation (post-flattening).
    pub fn allocate(name: impl Into<String>, ty: Type, size: Expr, body: Stmt) -> Stmt {
        StmtNode::Allocate {
            name: name.into(),
            ty,
            size,
            body,
        }
        .into()
    }

    /// Sequential composition of two statements, dropping no-ops.
    pub fn block(first: Stmt, second: Stmt) -> Stmt {
        if first.is_no_op() {
            return second;
        }
        if second.is_no_op() {
            return first;
        }
        let mut stmts = Vec::new();
        let mut push = |s: Stmt| match s.node() {
            StmtNode::Block { stmts: inner } => stmts.extend(inner.iter().cloned()),
            _ => stmts.push(s),
        };
        push(first);
        push(second);
        StmtNode::Block { stmts }.into()
    }

    /// Sequential composition of many statements, dropping no-ops.
    pub fn block_of(stmts: impl IntoIterator<Item = Stmt>) -> Stmt {
        stmts.into_iter().fold(Stmt::no_op(), Stmt::block)
    }

    /// Conditional statement.
    pub fn if_then_else(condition: Expr, then_case: Stmt, else_case: Option<Stmt>) -> Stmt {
        StmtNode::IfThenElse {
            condition,
            then_case,
            else_case,
        }
        .into()
    }

    /// Evaluate an expression for its side effects.
    pub fn evaluate(value: Expr) -> Stmt {
        StmtNode::Evaluate { value }.into()
    }
}

// ---- pretty printing --------------------------------------------------------

fn indent(f: &mut fmt::Formatter<'_>, level: usize) -> fmt::Result {
    for _ in 0..level {
        write!(f, "  ")?;
    }
    Ok(())
}

fn fmt_stmt(s: &Stmt, f: &mut fmt::Formatter<'_>, level: usize) -> fmt::Result {
    match s.node() {
        StmtNode::LetStmt { name, value, body } => {
            indent(f, level)?;
            writeln!(f, "let {name} = {value}")?;
            fmt_stmt(body, f, level)
        }
        StmtNode::Assert { condition, message } => {
            indent(f, level)?;
            writeln!(f, "assert({condition}, \"{message}\")")
        }
        StmtNode::Producer {
            name,
            is_produce,
            body,
        } => {
            indent(f, level)?;
            writeln!(
                f,
                "{} {name} {{",
                if *is_produce { "produce" } else { "consume" }
            )?;
            fmt_stmt(body, f, level + 1)?;
            indent(f, level)?;
            writeln!(f, "}}")
        }
        StmtNode::For {
            name,
            min,
            extent,
            kind,
            body,
        } => {
            indent(f, level)?;
            writeln!(f, "{kind} {name} in [{min}, {min} + {extent}) {{")?;
            fmt_stmt(body, f, level + 1)?;
            indent(f, level)?;
            writeln!(f, "}}")
        }
        StmtNode::Provide { name, value, args } => {
            indent(f, level)?;
            write!(f, "{name}(")?;
            for (i, a) in args.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{a}")?;
            }
            writeln!(f, ") = {value}")
        }
        StmtNode::Store {
            name,
            value,
            index,
            predicate,
        } => {
            indent(f, level)?;
            match predicate {
                None => writeln!(f, "{name}[{index}] = {value}"),
                Some(p) => writeln!(f, "{name}[{index}] = {value} if {p}"),
            }
        }
        StmtNode::Realize {
            name,
            ty,
            bounds,
            body,
        } => {
            indent(f, level)?;
            write!(f, "realize {name} : {ty} over ")?;
            for (i, b) in bounds.iter().enumerate() {
                if i > 0 {
                    write!(f, " x ")?;
                }
                write!(f, "{b}")?;
            }
            writeln!(f, " {{")?;
            fmt_stmt(body, f, level + 1)?;
            indent(f, level)?;
            writeln!(f, "}}")
        }
        StmtNode::Allocate {
            name,
            ty,
            size,
            body,
        } => {
            indent(f, level)?;
            writeln!(f, "allocate {name}[{ty} * {size}] {{")?;
            fmt_stmt(body, f, level + 1)?;
            indent(f, level)?;
            writeln!(f, "}}")
        }
        StmtNode::Block { stmts } => {
            for s in stmts {
                fmt_stmt(s, f, level)?;
            }
            Ok(())
        }
        StmtNode::IfThenElse {
            condition,
            then_case,
            else_case,
        } => {
            indent(f, level)?;
            writeln!(f, "if ({condition}) {{")?;
            fmt_stmt(then_case, f, level + 1)?;
            if let Some(else_case) = else_case {
                indent(f, level)?;
                writeln!(f, "}} else {{")?;
                fmt_stmt(else_case, f, level + 1)?;
            }
            indent(f, level)?;
            writeln!(f, "}}")
        }
        StmtNode::Evaluate { value } => {
            indent(f, level)?;
            writeln!(f, "{value}")
        }
        StmtNode::NoOp => {
            indent(f, level)?;
            writeln!(f, "(no-op)")
        }
    }
}

impl fmt::Display for Stmt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_stmt(self, f, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blocks_flatten_and_drop_noops() {
        let a = Stmt::evaluate(Expr::int(1));
        let b = Stmt::evaluate(Expr::int(2));
        let c = Stmt::evaluate(Expr::int(3));
        let s = Stmt::block(
            Stmt::block(a.clone(), b.clone()),
            Stmt::block(Stmt::no_op(), c),
        );
        match s.node() {
            StmtNode::Block { stmts } => assert_eq!(stmts.len(), 3),
            other => panic!("expected Block, got {other:?}"),
        }
        assert_eq!(Stmt::block(Stmt::no_op(), a.clone()), a);
        assert!(Stmt::block_of(Vec::new()).is_no_op());
    }

    #[test]
    fn range_max() {
        let r = Range::new(Expr::int(2), Expr::int(5));
        assert_eq!(r.max().to_string(), "((2 + 5) - 1)");
    }

    #[test]
    fn for_loop_prints() {
        let body = Stmt::store("buf", Expr::int(0), Expr::var_i32("x"));
        let s = Stmt::for_loop("x", Expr::int(0), Expr::int(10), ForKind::Parallel, body);
        let text = s.to_string();
        assert!(text.contains("parallel for x"));
        assert!(text.contains("buf[x] = 0"));
    }

    #[test]
    fn kinds_classify() {
        assert!(ForKind::GpuBlock.is_gpu());
        assert!(ForKind::Parallel.is_parallel());
        assert!(!ForKind::Serial.is_parallel());
        assert!(!ForKind::Vectorized.is_gpu());
    }

    #[test]
    fn structural_equality() {
        let a = Stmt::store("b", Expr::int(1), Expr::int(0));
        let b = Stmt::store("b", Expr::int(1), Expr::int(0));
        assert_eq!(a, b);
    }
}
