//! Expressions of the Halide IR.
//!
//! Expressions are immutable reference-counted trees ([`Expr`] wraps an
//! `Arc<ExprNode>`), so sharing subexpressions across a lowered pipeline is
//! cheap. The node set mirrors the paper (Sec. 2 and Sec. 4): arithmetic and
//! logic, selects, loads, calls to other pipeline stages / input images /
//! intrinsics, lets, and the `Ramp`/`Broadcast` vector nodes introduced by
//! vectorization.

use std::fmt;
use std::sync::Arc;

use crate::types::{promote, ScalarType, Type};

/// Binary arithmetic operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division (Euclidean for integers, matching Halide's `div_round_to_negative_infinity`).
    Div,
    /// Remainder (Euclidean for integers: always non-negative for positive modulus).
    Mod,
    /// Minimum of the operands.
    Min,
    /// Maximum of the operands.
    Max,
}

impl BinOp {
    /// All binary operators (useful for property tests).
    pub const ALL: [BinOp; 7] = [
        BinOp::Add,
        BinOp::Sub,
        BinOp::Mul,
        BinOp::Div,
        BinOp::Mod,
        BinOp::Min,
        BinOp::Max,
    ];
}

/// Binary comparison operators producing booleans.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Less than.
    Lt,
    /// Less than or equal.
    Le,
    /// Greater than.
    Gt,
    /// Greater than or equal.
    Ge,
}

impl CmpOp {
    /// All comparison operators (useful for property tests).
    pub const ALL: [CmpOp; 6] = [
        CmpOp::Eq,
        CmpOp::Ne,
        CmpOp::Lt,
        CmpOp::Le,
        CmpOp::Gt,
        CmpOp::Ge,
    ];
}

/// How a [`ExprNode::Call`] is resolved.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CallType {
    /// A call to another Halide function in the pipeline (a producer stage).
    Halide,
    /// A load from an input image parameter.
    Image,
    /// A pure math intrinsic (`sqrt`, `exp`, `abs`, ...), identified by name.
    Intrinsic,
    /// An external function provided by the host program.
    Extern,
}

/// One node of an expression tree. Use the constructors on [`Expr`] rather
/// than building nodes directly; the constructors insert the implicit type
/// promotions the frontend relies on.
#[allow(missing_docs)] // variant fields are documented at the variant level
#[derive(Debug, Clone, PartialEq)]
pub enum ExprNode {
    /// Signed integer immediate.
    IntImm { ty: Type, value: i64 },
    /// Unsigned integer immediate (also booleans, with `ty = Type::bool()`).
    UIntImm { ty: Type, value: u64 },
    /// Floating point immediate.
    FloatImm { ty: Type, value: f64 },
    /// Reinterpret the value of `value` in a different type (numeric conversion).
    Cast { ty: Type, value: Expr },
    /// A named scalar variable: loop indices, bounds symbols, parameters.
    Var { ty: Type, name: String },
    /// Binary arithmetic.
    Bin { op: BinOp, a: Expr, b: Expr },
    /// Comparison; the result is boolean (with the operands' lane count).
    Cmp { op: CmpOp, a: Expr, b: Expr },
    /// Logical and.
    And { a: Expr, b: Expr },
    /// Logical or.
    Or { a: Expr, b: Expr },
    /// Logical not.
    Not { a: Expr },
    /// `if cond then t else f`, evaluated without divergent control flow.
    Select { cond: Expr, t: Expr, f: Expr },
    /// Dense affine vector `[base, base+stride, ..., base+(lanes-1)*stride]`.
    Ramp {
        base: Expr,
        stride: Expr,
        lanes: u16,
    },
    /// `lanes` copies of a scalar.
    Broadcast { value: Expr, lanes: u16 },
    /// Scoped binding: `let name = value in body`.
    Let {
        name: String,
        value: Expr,
        body: Expr,
    },
    /// Load `ty` from the flattened buffer `name` at `index` (post-flattening).
    /// When `predicate` is present (a boolean of the same lane count as the
    /// index), lanes whose predicate is false are not read and yield zero;
    /// only enabled lanes are bounds-checked. Produced by predicated tail
    /// vectorization.
    Load {
        ty: Type,
        name: String,
        index: Expr,
        predicate: Option<Expr>,
    },
    /// A call: to another Halide func (multi-dimensional, pre-flattening), to
    /// an input image, to an intrinsic, or to an extern function.
    Call {
        ty: Type,
        name: String,
        call_type: CallType,
        args: Vec<Expr>,
    },
}

/// An immutable, reference-counted IR expression.
///
/// # Examples
///
/// ```
/// use halide_ir::Expr;
/// let x = Expr::var_i32("x");
/// let e = (x.clone() + 1) * 2;
/// assert_eq!(e.to_string(), "((x + 1)*2)");
/// ```
#[derive(Clone)]
pub struct Expr(Arc<ExprNode>);

impl fmt::Debug for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Expr({self})")
    }
}

impl PartialEq for Expr {
    fn eq(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.0, &other.0) || *self.0 == *other.0
    }
}

impl From<ExprNode> for Expr {
    fn from(node: ExprNode) -> Self {
        Expr(Arc::new(node))
    }
}

impl Expr {
    /// Borrows the underlying node.
    pub fn node(&self) -> &ExprNode {
        &self.0
    }

    /// The static type of this expression.
    pub fn ty(&self) -> Type {
        match self.node() {
            ExprNode::IntImm { ty, .. }
            | ExprNode::UIntImm { ty, .. }
            | ExprNode::FloatImm { ty, .. }
            | ExprNode::Cast { ty, .. }
            | ExprNode::Var { ty, .. }
            | ExprNode::Load { ty, .. }
            | ExprNode::Call { ty, .. } => *ty,
            ExprNode::Bin { a, .. } => a.ty(),
            ExprNode::Cmp { a, .. } => Type::bool().with_lanes(a.ty().lanes()),
            ExprNode::And { a, .. } | ExprNode::Or { a, .. } | ExprNode::Not { a } => {
                Type::bool().with_lanes(a.ty().lanes())
            }
            ExprNode::Select { t, .. } => t.ty(),
            ExprNode::Ramp { base, lanes, .. } => base.ty().with_lanes(*lanes),
            ExprNode::Broadcast { value, lanes } => value.ty().with_lanes(*lanes),
            ExprNode::Let { body, .. } => body.ty(),
        }
    }

    // ---- immediates ------------------------------------------------------

    /// A 32-bit signed integer immediate.
    pub fn int(value: i32) -> Expr {
        ExprNode::IntImm {
            ty: Type::i32(),
            value: value as i64,
        }
        .into()
    }

    /// A signed integer immediate of the given type.
    ///
    /// # Panics
    ///
    /// Panics if `ty` is not a signed integer type.
    pub fn int_of(ty: Type, value: i64) -> Expr {
        assert!(
            matches!(ty.scalar(), ScalarType::Int(_)),
            "int_of requires a signed integer type, got {ty}"
        );
        ExprNode::IntImm { ty, value }.into()
    }

    /// An unsigned integer immediate of the given type.
    ///
    /// # Panics
    ///
    /// Panics if `ty` is not an unsigned integer type.
    pub fn uint_of(ty: Type, value: u64) -> Expr {
        assert!(
            ty.is_uint(),
            "uint_of requires an unsigned integer type, got {ty}"
        );
        ExprNode::UIntImm { ty, value }.into()
    }

    /// A 32-bit float immediate.
    pub fn f32(value: f32) -> Expr {
        ExprNode::FloatImm {
            ty: Type::f32(),
            value: value as f64,
        }
        .into()
    }

    /// A 64-bit float immediate.
    pub fn f64(value: f64) -> Expr {
        ExprNode::FloatImm {
            ty: Type::f64(),
            value,
        }
        .into()
    }

    /// A boolean immediate.
    pub fn bool(value: bool) -> Expr {
        ExprNode::UIntImm {
            ty: Type::bool(),
            value: value as u64,
        }
        .into()
    }

    /// An immediate of arbitrary type holding `value` (rounded/truncated to fit).
    pub fn imm_of(ty: Type, value: f64) -> Expr {
        match ty.scalar() {
            ScalarType::Float(_) => ExprNode::FloatImm { ty, value }.into(),
            ScalarType::Int(_) => ExprNode::IntImm {
                ty,
                value: value as i64,
            }
            .into(),
            ScalarType::UInt(_) => ExprNode::UIntImm {
                ty,
                value: value as u64,
            }
            .into(),
        }
    }

    /// The zero of a given type.
    pub fn zero(ty: Type) -> Expr {
        Expr::imm_of(ty, 0.0)
    }

    /// The one of a given type.
    pub fn one(ty: Type) -> Expr {
        Expr::imm_of(ty, 1.0)
    }

    // ---- variables -------------------------------------------------------

    /// A named variable of the given type.
    pub fn var(name: impl Into<String>, ty: Type) -> Expr {
        ExprNode::Var {
            ty,
            name: name.into(),
        }
        .into()
    }

    /// A named `int32` variable — the common case for loop indices and
    /// coordinates.
    pub fn var_i32(name: impl Into<String>) -> Expr {
        Expr::var(name, Type::i32())
    }

    // ---- structural constructors ------------------------------------------

    /// Numeric conversion to `ty`. A no-op if the type already matches.
    pub fn cast(&self, ty: Type) -> Expr {
        if self.ty() == ty {
            return self.clone();
        }
        ExprNode::Cast {
            ty: ty.with_lanes(self.ty().lanes()),
            value: self.clone(),
        }
        .into()
    }

    fn bin(op: BinOp, a: Expr, b: Expr) -> Expr {
        let ty = promote(a.ty(), b.ty());
        let a = a.cast(ty.element_of().with_lanes(a.ty().lanes()));
        let b = b.cast(ty.element_of().with_lanes(b.ty().lanes()));
        // Match lane counts by broadcasting the scalar side.
        let (a, b) = match (a.ty().lanes(), b.ty().lanes()) {
            (1, l) if l > 1 => (Expr::broadcast(a, l), b),
            (l, 1) if l > 1 => (a, Expr::broadcast(b, l)),
            _ => (a, b),
        };
        ExprNode::Bin { op, a, b }.into()
    }

    /// Element-wise minimum.
    pub fn min(a: Expr, b: Expr) -> Expr {
        Expr::bin(BinOp::Min, a, b)
    }

    /// Element-wise maximum.
    pub fn max(a: Expr, b: Expr) -> Expr {
        Expr::bin(BinOp::Max, a, b)
    }

    /// Clamps `self` into `[lo, hi]`. This is also the operator the paper uses
    /// to declare bounds that interval analysis cannot discover on its own.
    pub fn clamp(&self, lo: Expr, hi: Expr) -> Expr {
        Expr::max(Expr::min(self.clone(), hi), lo)
    }

    fn cmp(op: CmpOp, a: Expr, b: Expr) -> Expr {
        let ty = promote(a.ty(), b.ty());
        let a = a.cast(ty.element_of().with_lanes(a.ty().lanes()));
        let b = b.cast(ty.element_of().with_lanes(b.ty().lanes()));
        ExprNode::Cmp { op, a, b }.into()
    }

    /// `a == b`.
    pub fn eq(a: Expr, b: Expr) -> Expr {
        Expr::cmp(CmpOp::Eq, a, b)
    }
    /// `a != b`.
    pub fn ne(a: Expr, b: Expr) -> Expr {
        Expr::cmp(CmpOp::Ne, a, b)
    }
    /// `a < b`.
    pub fn lt(a: Expr, b: Expr) -> Expr {
        Expr::cmp(CmpOp::Lt, a, b)
    }
    /// `a <= b`.
    pub fn le(a: Expr, b: Expr) -> Expr {
        Expr::cmp(CmpOp::Le, a, b)
    }
    /// `a > b`.
    pub fn gt(a: Expr, b: Expr) -> Expr {
        Expr::cmp(CmpOp::Gt, a, b)
    }
    /// `a >= b`.
    pub fn ge(a: Expr, b: Expr) -> Expr {
        Expr::cmp(CmpOp::Ge, a, b)
    }

    /// Logical and.
    pub fn and(a: Expr, b: Expr) -> Expr {
        ExprNode::And { a, b }.into()
    }

    /// Logical or.
    pub fn or(a: Expr, b: Expr) -> Expr {
        ExprNode::Or { a, b }.into()
    }

    /// Logical negation.
    pub fn not(a: Expr) -> Expr {
        ExprNode::Not { a }.into()
    }

    /// `if cond then t else f`, element-wise. `t` and `f` are promoted to a
    /// common type.
    pub fn select(cond: Expr, t: Expr, f: Expr) -> Expr {
        let ty = promote(t.ty(), f.ty());
        let t = t.cast(ty.element_of().with_lanes(t.ty().lanes()));
        let f = f.cast(ty.element_of().with_lanes(f.ty().lanes()));
        ExprNode::Select { cond, t, f }.into()
    }

    /// The affine vector `[base, base+stride, ...]` with `lanes` lanes.
    pub fn ramp(base: Expr, stride: Expr, lanes: u16) -> Expr {
        ExprNode::Ramp {
            base,
            stride,
            lanes,
        }
        .into()
    }

    /// `lanes` copies of `value`.
    pub fn broadcast(value: Expr, lanes: u16) -> Expr {
        ExprNode::Broadcast { value, lanes }.into()
    }

    /// `let name = value in body`.
    pub fn let_in(name: impl Into<String>, value: Expr, body: Expr) -> Expr {
        ExprNode::Let {
            name: name.into(),
            value,
            body,
        }
        .into()
    }

    /// A flattened buffer load (produced by the flattening pass, Sec. 4.4).
    pub fn load(ty: Type, name: impl Into<String>, index: Expr) -> Expr {
        ExprNode::Load {
            ty,
            name: name.into(),
            index,
            predicate: None,
        }
        .into()
    }

    /// A predicated (masked) buffer load: lanes whose `predicate` is false
    /// are not read and yield zero. Produced by predicated tail
    /// vectorization; see [`ExprNode::Load`].
    pub fn load_predicated(
        ty: Type,
        name: impl Into<String>,
        index: Expr,
        predicate: Expr,
    ) -> Expr {
        ExprNode::Load {
            ty,
            name: name.into(),
            index,
            predicate: Some(predicate),
        }
        .into()
    }

    /// A call node. See [`CallType`] for the flavours.
    pub fn call(ty: Type, name: impl Into<String>, call_type: CallType, args: Vec<Expr>) -> Expr {
        ExprNode::Call {
            ty,
            name: name.into(),
            call_type,
            args,
        }
        .into()
    }

    /// A pure math intrinsic call, e.g. `Expr::intrinsic("sqrt", vec![x], Type::f32())`.
    pub fn intrinsic(name: impl Into<String>, args: Vec<Expr>, ty: Type) -> Expr {
        Expr::call(ty, name, CallType::Intrinsic, args)
    }

    /// Absolute value.
    pub fn abs(&self) -> Expr {
        Expr::intrinsic("abs", vec![self.clone()], self.ty())
    }

    /// Square root (computed in the expression's float type, promoting integers to f32).
    pub fn sqrt(&self) -> Expr {
        let t = if self.ty().is_float() {
            self.ty()
        } else {
            Type::f32()
        };
        Expr::intrinsic("sqrt", vec![self.cast(t)], t)
    }

    /// Natural exponential.
    pub fn exp(&self) -> Expr {
        let t = if self.ty().is_float() {
            self.ty()
        } else {
            Type::f32()
        };
        Expr::intrinsic("exp", vec![self.cast(t)], t)
    }

    /// Natural logarithm.
    pub fn log(&self) -> Expr {
        let t = if self.ty().is_float() {
            self.ty()
        } else {
            Type::f32()
        };
        Expr::intrinsic("log", vec![self.cast(t)], t)
    }

    /// `pow(self, e)`.
    pub fn pow(&self, e: Expr) -> Expr {
        let t = if self.ty().is_float() {
            self.ty()
        } else {
            Type::f32()
        };
        Expr::intrinsic("pow", vec![self.cast(t), e.cast(t)], t)
    }

    /// Hyperbolic tangent (computed in the expression's float type,
    /// promoting integers to f32).
    pub fn tanh(&self) -> Expr {
        let t = if self.ty().is_float() {
            self.ty()
        } else {
            Type::f32()
        };
        Expr::intrinsic("tanh", vec![self.cast(t)], t)
    }

    /// Four-quadrant arctangent `atan2(self, x)`.
    pub fn atan2(&self, x: Expr) -> Expr {
        let t = if self.ty().is_float() {
            self.ty()
        } else {
            Type::f32()
        };
        Expr::intrinsic("atan2", vec![self.cast(t), x.cast(t)], t)
    }

    /// Round toward negative infinity, returning a float of the same type.
    pub fn floor(&self) -> Expr {
        Expr::intrinsic("floor", vec![self.clone()], self.ty())
    }

    /// Round toward positive infinity, returning a float of the same type.
    pub fn ceil(&self) -> Expr {
        Expr::intrinsic("ceil", vec![self.clone()], self.ty())
    }

    // ---- queries ----------------------------------------------------------

    /// If this expression is an integer immediate (signed or unsigned),
    /// returns its value.
    pub fn as_const_int(&self) -> Option<i64> {
        match self.node() {
            ExprNode::IntImm { value, .. } => Some(*value),
            ExprNode::UIntImm { value, .. } => Some(*value as i64),
            ExprNode::Broadcast { value, .. } => value.as_const_int(),
            _ => None,
        }
    }

    /// If this expression is any numeric immediate, returns it as `f64`.
    pub fn as_const_f64(&self) -> Option<f64> {
        match self.node() {
            ExprNode::IntImm { value, .. } => Some(*value as f64),
            ExprNode::UIntImm { value, .. } => Some(*value as f64),
            ExprNode::FloatImm { value, .. } => Some(*value),
            ExprNode::Broadcast { value, .. } => value.as_const_f64(),
            _ => None,
        }
    }

    /// True if this is the integer constant `v`.
    pub fn is_const_int(&self, v: i64) -> bool {
        self.as_const_int() == Some(v) && !self.ty().is_float()
    }

    /// True if this is a constant equal to zero (of any numeric type).
    pub fn is_zero(&self) -> bool {
        self.as_const_f64() == Some(0.0)
    }

    /// True if this is a constant equal to one (of any numeric type).
    pub fn is_one(&self) -> bool {
        self.as_const_f64() == Some(1.0)
    }

    /// If this expression is a variable, returns its name.
    pub fn as_var(&self) -> Option<&str> {
        match self.node() {
            ExprNode::Var { name, .. } => Some(name),
            _ => None,
        }
    }
}

// ---- operator overloads ----------------------------------------------------

macro_rules! impl_binop {
    ($trait:ident, $method:ident, $op:expr) => {
        impl std::ops::$trait for Expr {
            type Output = Expr;
            fn $method(self, rhs: Expr) -> Expr {
                Expr::bin($op, self, rhs)
            }
        }
        impl std::ops::$trait<&Expr> for Expr {
            type Output = Expr;
            fn $method(self, rhs: &Expr) -> Expr {
                Expr::bin($op, self, rhs.clone())
            }
        }
        impl std::ops::$trait<Expr> for &Expr {
            type Output = Expr;
            fn $method(self, rhs: Expr) -> Expr {
                Expr::bin($op, self.clone(), rhs)
            }
        }
        impl std::ops::$trait<i32> for Expr {
            type Output = Expr;
            fn $method(self, rhs: i32) -> Expr {
                Expr::bin($op, self, Expr::int(rhs))
            }
        }
        impl std::ops::$trait<Expr> for i32 {
            type Output = Expr;
            fn $method(self, rhs: Expr) -> Expr {
                Expr::bin($op, Expr::int(self), rhs)
            }
        }
        impl std::ops::$trait<f32> for Expr {
            type Output = Expr;
            fn $method(self, rhs: f32) -> Expr {
                Expr::bin($op, self, Expr::f32(rhs))
            }
        }
        impl std::ops::$trait<Expr> for f32 {
            type Output = Expr;
            fn $method(self, rhs: Expr) -> Expr {
                Expr::bin($op, Expr::f32(self), rhs)
            }
        }
    };
}

impl_binop!(Add, add, BinOp::Add);
impl_binop!(Sub, sub, BinOp::Sub);
impl_binop!(Mul, mul, BinOp::Mul);
impl_binop!(Div, div, BinOp::Div);
impl_binop!(Rem, rem, BinOp::Mod);

impl std::ops::Neg for Expr {
    type Output = Expr;
    fn neg(self) -> Expr {
        Expr::zero(self.ty()) - self
    }
}

// ---- pretty printing --------------------------------------------------------

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.node() {
            ExprNode::IntImm { value, .. } => write!(f, "{value}"),
            ExprNode::UIntImm { ty, value } => {
                if ty.is_bool() {
                    write!(f, "{}", *value != 0)
                } else {
                    write!(f, "{value}u")
                }
            }
            ExprNode::FloatImm { value, .. } => write!(f, "{value:?}f"),
            ExprNode::Cast { ty, value } => write!(f, "{ty}({value})"),
            ExprNode::Var { name, .. } => write!(f, "{name}"),
            ExprNode::Bin { op, a, b } => match op {
                BinOp::Add => {
                    // Print addition of a negative constant as subtraction so
                    // simplified bounds expressions stay readable.
                    if let ExprNode::IntImm { value, .. } = b.node() {
                        if *value < 0 {
                            return write!(f, "({a} - {})", -value);
                        }
                    }
                    write!(f, "({a} + {b})")
                }
                BinOp::Sub => write!(f, "({a} - {b})"),
                BinOp::Mul => write!(f, "({a}*{b})"),
                BinOp::Div => write!(f, "({a}/{b})"),
                BinOp::Mod => write!(f, "({a} % {b})"),
                BinOp::Min => write!(f, "min({a}, {b})"),
                BinOp::Max => write!(f, "max({a}, {b})"),
            },
            ExprNode::Cmp { op, a, b } => {
                let s = match op {
                    CmpOp::Eq => "==",
                    CmpOp::Ne => "!=",
                    CmpOp::Lt => "<",
                    CmpOp::Le => "<=",
                    CmpOp::Gt => ">",
                    CmpOp::Ge => ">=",
                };
                write!(f, "({a} {s} {b})")
            }
            ExprNode::And { a, b } => write!(f, "({a} && {b})"),
            ExprNode::Or { a, b } => write!(f, "({a} || {b})"),
            ExprNode::Not { a } => write!(f, "!({a})"),
            ExprNode::Select { cond, t, f: fv } => write!(f, "select({cond}, {t}, {fv})"),
            ExprNode::Ramp {
                base,
                stride,
                lanes,
            } => {
                write!(f, "ramp({base}, {stride}, {lanes})")
            }
            ExprNode::Broadcast { value, lanes } => write!(f, "x{lanes}({value})"),
            ExprNode::Let { name, value, body } => {
                write!(f, "(let {name} = {value} in {body})")
            }
            ExprNode::Load {
                name,
                index,
                predicate,
                ..
            } => match predicate {
                None => write!(f, "{name}[{index}]"),
                Some(p) => write!(f, "{name}[{index}] if {p}"),
            },
            ExprNode::Call { name, args, .. } => {
                write!(f, "{name}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_builds_and_prints() {
        let x = Expr::var_i32("x");
        let y = Expr::var_i32("y");
        let e = (x.clone() + y.clone()) * 2 - 1;
        assert_eq!(e.to_string(), "(((x + y)*2) - 1)");
        assert_eq!(e.ty(), Type::i32());
    }

    #[test]
    fn type_promotion_on_binops() {
        let x = Expr::var_i32("x");
        let e = x + 1.5f32;
        assert_eq!(e.ty(), Type::f32());
    }

    #[test]
    fn comparisons_are_bool() {
        let x = Expr::var_i32("x");
        let c = Expr::lt(x, Expr::int(3));
        assert!(c.ty().is_bool());
    }

    #[test]
    fn cast_is_noop_on_same_type() {
        let x = Expr::var_i32("x");
        let c = x.cast(Type::i32());
        assert!(matches!(c.node(), ExprNode::Var { .. }));
        let c2 = c.cast(Type::f32());
        assert!(matches!(c2.node(), ExprNode::Cast { .. }));
    }

    #[test]
    fn vector_broadcast_promotion() {
        let v = Expr::ramp(Expr::int(0), Expr::int(1), 4);
        let e = v + 7;
        // scalar side must have been broadcast to 4 lanes
        assert_eq!(e.ty().lanes(), 4);
    }

    #[test]
    fn const_queries() {
        assert_eq!(Expr::int(5).as_const_int(), Some(5));
        assert!(Expr::int(0).is_zero());
        assert!(Expr::f32(1.0).is_one());
        assert!(!Expr::f32(1.0).is_const_int(1));
        assert_eq!(Expr::var_i32("x").as_var(), Some("x"));
    }

    #[test]
    fn clamp_builds_min_max() {
        let x = Expr::var_i32("x");
        let e = x.clamp(Expr::int(0), Expr::int(10));
        assert_eq!(e.to_string(), "max(min(x, 10), 0)");
    }

    #[test]
    fn select_promotes_branches() {
        let c = Expr::bool(true);
        let s = Expr::select(c, Expr::int(1), Expr::f32(2.0));
        assert_eq!(s.ty(), Type::f32());
    }

    #[test]
    fn negation() {
        let x = Expr::var_i32("x");
        assert_eq!((-x).to_string(), "(0 - x)");
    }

    #[test]
    fn equality_is_structural() {
        let a = Expr::var_i32("x") + 1;
        let b = Expr::var_i32("x") + 1;
        assert_eq!(a, b);
        let c = Expr::var_i32("y") + 1;
        assert_ne!(a, c);
    }
}
