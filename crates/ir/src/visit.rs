//! Visitor and mutator traits over the IR.
//!
//! Every compiler pass in `halide-lower` is written as an [`IrMutator`]: the
//! trait provides default recursion, and a pass overrides `mutate_expr` /
//! `mutate_stmt` for the node kinds it cares about, delegating back to
//! [`mutate_expr_children`] / [`mutate_stmt_children`] to recurse.

use crate::expr::{Expr, ExprNode};
use crate::stmt::{Range, Stmt, StmtNode};

/// Read-only traversal of expressions and statements.
pub trait IrVisitor {
    /// Visits an expression. The default implementation recurses into children.
    fn visit_expr(&mut self, e: &Expr) {
        visit_expr_children(self, e);
    }

    /// Visits a statement. The default implementation recurses into children.
    fn visit_stmt(&mut self, s: &Stmt) {
        visit_stmt_children(self, s);
    }
}

/// Recurses into the children of an expression, calling `visit_expr` /
/// `visit_stmt` on each.
pub fn visit_expr_children<V: IrVisitor + ?Sized>(v: &mut V, e: &Expr) {
    match e.node() {
        ExprNode::IntImm { .. }
        | ExprNode::UIntImm { .. }
        | ExprNode::FloatImm { .. }
        | ExprNode::Var { .. } => {}
        ExprNode::Cast { value, .. } => v.visit_expr(value),
        ExprNode::Bin { a, b, .. } | ExprNode::Cmp { a, b, .. } => {
            v.visit_expr(a);
            v.visit_expr(b);
        }
        ExprNode::And { a, b } | ExprNode::Or { a, b } => {
            v.visit_expr(a);
            v.visit_expr(b);
        }
        ExprNode::Not { a } => v.visit_expr(a),
        ExprNode::Select { cond, t, f } => {
            v.visit_expr(cond);
            v.visit_expr(t);
            v.visit_expr(f);
        }
        ExprNode::Ramp { base, stride, .. } => {
            v.visit_expr(base);
            v.visit_expr(stride);
        }
        ExprNode::Broadcast { value, .. } => v.visit_expr(value),
        ExprNode::Let { value, body, .. } => {
            v.visit_expr(value);
            v.visit_expr(body);
        }
        ExprNode::Load {
            index, predicate, ..
        } => {
            v.visit_expr(index);
            if let Some(p) = predicate {
                v.visit_expr(p);
            }
        }
        ExprNode::Call { args, .. } => {
            for a in args {
                v.visit_expr(a);
            }
        }
    }
}

/// Recurses into the children of a statement, calling `visit_expr` /
/// `visit_stmt` on each.
pub fn visit_stmt_children<V: IrVisitor + ?Sized>(v: &mut V, s: &Stmt) {
    match s.node() {
        StmtNode::LetStmt { value, body, .. } => {
            v.visit_expr(value);
            v.visit_stmt(body);
        }
        StmtNode::Assert { condition, .. } => v.visit_expr(condition),
        StmtNode::Producer { body, .. } => v.visit_stmt(body),
        StmtNode::For {
            min, extent, body, ..
        } => {
            v.visit_expr(min);
            v.visit_expr(extent);
            v.visit_stmt(body);
        }
        StmtNode::Provide { value, args, .. } => {
            v.visit_expr(value);
            for a in args {
                v.visit_expr(a);
            }
        }
        StmtNode::Store {
            value,
            index,
            predicate,
            ..
        } => {
            v.visit_expr(value);
            v.visit_expr(index);
            if let Some(p) = predicate {
                v.visit_expr(p);
            }
        }
        StmtNode::Realize { bounds, body, .. } => {
            for r in bounds {
                v.visit_expr(&r.min);
                v.visit_expr(&r.extent);
            }
            v.visit_stmt(body);
        }
        StmtNode::Allocate { size, body, .. } => {
            v.visit_expr(size);
            v.visit_stmt(body);
        }
        StmtNode::Block { stmts } => {
            for s in stmts {
                v.visit_stmt(s);
            }
        }
        StmtNode::IfThenElse {
            condition,
            then_case,
            else_case,
        } => {
            v.visit_expr(condition);
            v.visit_stmt(then_case);
            if let Some(e) = else_case {
                v.visit_stmt(e);
            }
        }
        StmtNode::Evaluate { value } => v.visit_expr(value),
        StmtNode::NoOp => {}
    }
}

/// Rebuilding traversal of expressions and statements.
pub trait IrMutator {
    /// Mutates an expression. The default implementation rebuilds children.
    fn mutate_expr(&mut self, e: &Expr) -> Expr {
        mutate_expr_children(self, e)
    }

    /// Mutates a statement. The default implementation rebuilds children.
    fn mutate_stmt(&mut self, s: &Stmt) -> Stmt {
        mutate_stmt_children(self, s)
    }
}

/// Rebuilds an expression by mutating each child. Nodes whose children did not
/// change are returned as-is (cheap `Arc` clone).
pub fn mutate_expr_children<M: IrMutator + ?Sized>(m: &mut M, e: &Expr) -> Expr {
    match e.node() {
        ExprNode::IntImm { .. }
        | ExprNode::UIntImm { .. }
        | ExprNode::FloatImm { .. }
        | ExprNode::Var { .. } => e.clone(),
        ExprNode::Cast { ty, value } => {
            let nv = m.mutate_expr(value);
            if nv == *value {
                e.clone()
            } else {
                ExprNode::Cast { ty: *ty, value: nv }.into()
            }
        }
        ExprNode::Bin { op, a, b } => {
            let (na, nb) = (m.mutate_expr(a), m.mutate_expr(b));
            if na == *a && nb == *b {
                e.clone()
            } else {
                ExprNode::Bin {
                    op: *op,
                    a: na,
                    b: nb,
                }
                .into()
            }
        }
        ExprNode::Cmp { op, a, b } => {
            let (na, nb) = (m.mutate_expr(a), m.mutate_expr(b));
            if na == *a && nb == *b {
                e.clone()
            } else {
                ExprNode::Cmp {
                    op: *op,
                    a: na,
                    b: nb,
                }
                .into()
            }
        }
        ExprNode::And { a, b } => {
            let (na, nb) = (m.mutate_expr(a), m.mutate_expr(b));
            if na == *a && nb == *b {
                e.clone()
            } else {
                ExprNode::And { a: na, b: nb }.into()
            }
        }
        ExprNode::Or { a, b } => {
            let (na, nb) = (m.mutate_expr(a), m.mutate_expr(b));
            if na == *a && nb == *b {
                e.clone()
            } else {
                ExprNode::Or { a: na, b: nb }.into()
            }
        }
        ExprNode::Not { a } => {
            let na = m.mutate_expr(a);
            if na == *a {
                e.clone()
            } else {
                ExprNode::Not { a: na }.into()
            }
        }
        ExprNode::Select { cond, t, f } => {
            let (nc, nt, nf) = (m.mutate_expr(cond), m.mutate_expr(t), m.mutate_expr(f));
            if nc == *cond && nt == *t && nf == *f {
                e.clone()
            } else {
                ExprNode::Select {
                    cond: nc,
                    t: nt,
                    f: nf,
                }
                .into()
            }
        }
        ExprNode::Ramp {
            base,
            stride,
            lanes,
        } => {
            let (nb, ns) = (m.mutate_expr(base), m.mutate_expr(stride));
            if nb == *base && ns == *stride {
                e.clone()
            } else {
                ExprNode::Ramp {
                    base: nb,
                    stride: ns,
                    lanes: *lanes,
                }
                .into()
            }
        }
        ExprNode::Broadcast { value, lanes } => {
            let nv = m.mutate_expr(value);
            if nv == *value {
                e.clone()
            } else {
                ExprNode::Broadcast {
                    value: nv,
                    lanes: *lanes,
                }
                .into()
            }
        }
        ExprNode::Let { name, value, body } => {
            let (nv, nb) = (m.mutate_expr(value), m.mutate_expr(body));
            if nv == *value && nb == *body {
                e.clone()
            } else {
                ExprNode::Let {
                    name: name.clone(),
                    value: nv,
                    body: nb,
                }
                .into()
            }
        }
        ExprNode::Load {
            ty,
            name,
            index,
            predicate,
        } => {
            let ni = m.mutate_expr(index);
            let np = predicate.as_ref().map(|p| m.mutate_expr(p));
            if ni == *index && np == *predicate {
                e.clone()
            } else {
                ExprNode::Load {
                    ty: *ty,
                    name: name.clone(),
                    index: ni,
                    predicate: np,
                }
                .into()
            }
        }
        ExprNode::Call {
            ty,
            name,
            call_type,
            args,
        } => {
            let nargs: Vec<Expr> = args.iter().map(|a| m.mutate_expr(a)).collect();
            if nargs == *args {
                e.clone()
            } else {
                ExprNode::Call {
                    ty: *ty,
                    name: name.clone(),
                    call_type: *call_type,
                    args: nargs,
                }
                .into()
            }
        }
    }
}

/// Rebuilds a statement by mutating each child.
pub fn mutate_stmt_children<M: IrMutator + ?Sized>(m: &mut M, s: &Stmt) -> Stmt {
    match s.node() {
        StmtNode::LetStmt { name, value, body } => {
            let (nv, nb) = (m.mutate_expr(value), m.mutate_stmt(body));
            if nv == *value && nb == *body {
                s.clone()
            } else {
                StmtNode::LetStmt {
                    name: name.clone(),
                    value: nv,
                    body: nb,
                }
                .into()
            }
        }
        StmtNode::Assert { condition, message } => {
            let nc = m.mutate_expr(condition);
            if nc == *condition {
                s.clone()
            } else {
                StmtNode::Assert {
                    condition: nc,
                    message: message.clone(),
                }
                .into()
            }
        }
        StmtNode::Producer {
            name,
            is_produce,
            body,
        } => {
            let nb = m.mutate_stmt(body);
            if nb == *body {
                s.clone()
            } else {
                StmtNode::Producer {
                    name: name.clone(),
                    is_produce: *is_produce,
                    body: nb,
                }
                .into()
            }
        }
        StmtNode::For {
            name,
            min,
            extent,
            kind,
            body,
        } => {
            let (nm, ne, nb) = (
                m.mutate_expr(min),
                m.mutate_expr(extent),
                m.mutate_stmt(body),
            );
            if nm == *min && ne == *extent && nb == *body {
                s.clone()
            } else {
                StmtNode::For {
                    name: name.clone(),
                    min: nm,
                    extent: ne,
                    kind: *kind,
                    body: nb,
                }
                .into()
            }
        }
        StmtNode::Provide { name, value, args } => {
            let nv = m.mutate_expr(value);
            let nargs: Vec<Expr> = args.iter().map(|a| m.mutate_expr(a)).collect();
            if nv == *value && nargs == *args {
                s.clone()
            } else {
                StmtNode::Provide {
                    name: name.clone(),
                    value: nv,
                    args: nargs,
                }
                .into()
            }
        }
        StmtNode::Store {
            name,
            value,
            index,
            predicate,
        } => {
            let (nv, ni) = (m.mutate_expr(value), m.mutate_expr(index));
            let np = predicate.as_ref().map(|p| m.mutate_expr(p));
            if nv == *value && ni == *index && np == *predicate {
                s.clone()
            } else {
                StmtNode::Store {
                    name: name.clone(),
                    value: nv,
                    index: ni,
                    predicate: np,
                }
                .into()
            }
        }
        StmtNode::Realize {
            name,
            ty,
            bounds,
            body,
        } => {
            let nbounds: Vec<Range> = bounds
                .iter()
                .map(|r| Range::new(m.mutate_expr(&r.min), m.mutate_expr(&r.extent)))
                .collect();
            let nb = m.mutate_stmt(body);
            if nbounds == *bounds && nb == *body {
                s.clone()
            } else {
                StmtNode::Realize {
                    name: name.clone(),
                    ty: *ty,
                    bounds: nbounds,
                    body: nb,
                }
                .into()
            }
        }
        StmtNode::Allocate {
            name,
            ty,
            size,
            body,
        } => {
            let (nsize, nb) = (m.mutate_expr(size), m.mutate_stmt(body));
            if nsize == *size && nb == *body {
                s.clone()
            } else {
                StmtNode::Allocate {
                    name: name.clone(),
                    ty: *ty,
                    size: nsize,
                    body: nb,
                }
                .into()
            }
        }
        StmtNode::Block { stmts } => {
            let nstmts: Vec<Stmt> = stmts.iter().map(|x| m.mutate_stmt(x)).collect();
            if nstmts == *stmts {
                s.clone()
            } else {
                Stmt::block_of(nstmts)
            }
        }
        StmtNode::IfThenElse {
            condition,
            then_case,
            else_case,
        } => {
            let nc = m.mutate_expr(condition);
            let nt = m.mutate_stmt(then_case);
            let ne = else_case.as_ref().map(|e| m.mutate_stmt(e));
            if nc == *condition && nt == *then_case && ne == *else_case {
                s.clone()
            } else {
                StmtNode::IfThenElse {
                    condition: nc,
                    then_case: nt,
                    else_case: ne,
                }
                .into()
            }
        }
        StmtNode::Evaluate { value } => {
            let nv = m.mutate_expr(value);
            if nv == *value {
                s.clone()
            } else {
                StmtNode::Evaluate { value: nv }.into()
            }
        }
        StmtNode::NoOp => s.clone(),
    }
}

/// Collects the names of all free variables referenced in an expression.
pub fn free_vars(e: &Expr) -> std::collections::HashSet<String> {
    struct Collector {
        bound: Vec<String>,
        found: std::collections::HashSet<String>,
    }
    impl IrVisitor for Collector {
        fn visit_expr(&mut self, e: &Expr) {
            match e.node() {
                ExprNode::Var { name, .. } => {
                    if !self.bound.iter().any(|b| b == name) {
                        self.found.insert(name.clone());
                    }
                }
                ExprNode::Let { name, value, body } => {
                    self.visit_expr(value);
                    self.bound.push(name.clone());
                    self.visit_expr(body);
                    self.bound.pop();
                }
                _ => visit_expr_children(self, e),
            }
        }
    }
    let mut c = Collector {
        bound: Vec::new(),
        found: std::collections::HashSet::new(),
    };
    c.visit_expr(e);
    c.found
}

/// Counts the nodes of an expression tree. Used by the scope-carrying
/// simplifier to bound the cost of resolving let-bound variables, and by
/// tests asserting that lowering keeps bounds expressions compact.
pub fn expr_node_count(e: &Expr) -> usize {
    struct Counter {
        n: usize,
    }
    impl IrVisitor for Counter {
        fn visit_expr(&mut self, e: &Expr) {
            self.n += 1;
            visit_expr_children(self, e);
        }
    }
    let mut c = Counter { n: 0 };
    c.visit_expr(e);
    c.n
}

/// True if the expression references the variable `name` (ignoring shadowing
/// by inner lets — adequate for the unique names the lowering pass generates).
pub fn expr_uses_var(e: &Expr, name: &str) -> bool {
    struct Uses<'a> {
        name: &'a str,
        found: bool,
    }
    impl IrVisitor for Uses<'_> {
        fn visit_expr(&mut self, e: &Expr) {
            if self.found {
                return;
            }
            if let ExprNode::Var { name, .. } = e.node() {
                if name == self.name {
                    self.found = true;
                    return;
                }
            }
            visit_expr_children(self, e);
        }
    }
    let mut v = Uses { name, found: false };
    v.visit_expr(e);
    v.found
}

/// True if the statement (or any nested expression) references variable `name`.
pub fn stmt_uses_var(s: &Stmt, name: &str) -> bool {
    struct Uses<'a> {
        name: &'a str,
        found: bool,
    }
    impl IrVisitor for Uses<'_> {
        fn visit_expr(&mut self, e: &Expr) {
            if self.found {
                return;
            }
            if let ExprNode::Var { name, .. } = e.node() {
                if name == self.name {
                    self.found = true;
                    return;
                }
            }
            visit_expr_children(self, e);
        }
        fn visit_stmt(&mut self, s: &Stmt) {
            if self.found {
                return;
            }
            visit_stmt_children(self, s);
        }
    }
    let mut v = Uses { name, found: false };
    v.visit_stmt(s);
    v.found
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Type;

    struct RenameX;
    impl IrMutator for RenameX {
        fn mutate_expr(&mut self, e: &Expr) -> Expr {
            if let ExprNode::Var { name, ty } = e.node() {
                if name == "x" {
                    return Expr::var("z", *ty);
                }
            }
            mutate_expr_children(self, e)
        }
    }

    #[test]
    fn mutator_rewrites_vars() {
        let e = Expr::var_i32("x") + Expr::var_i32("y");
        let out = RenameX.mutate_expr(&e);
        assert_eq!(out.to_string(), "(z + y)");
    }

    #[test]
    fn mutator_preserves_unchanged_nodes() {
        let e = Expr::var_i32("a") + Expr::var_i32("b");
        let out = RenameX.mutate_expr(&e);
        assert_eq!(out, e);
    }

    #[test]
    fn mutator_descends_into_stmts() {
        let s = Stmt::for_loop(
            "i",
            Expr::int(0),
            Expr::var_i32("x"),
            crate::stmt::ForKind::Serial,
            Stmt::store("buf", Expr::var_i32("x"), Expr::var_i32("i")),
        );
        let out = RenameX.mutate_stmt(&s);
        let text = out.to_string();
        assert!(text.contains("buf[i] = z"));
        assert!(text.contains("0 + z"));
    }

    #[test]
    fn free_vars_respects_let_binding() {
        let e = Expr::let_in(
            "t",
            Expr::var_i32("x"),
            Expr::var_i32("t") + Expr::var_i32("y"),
        );
        let fv = free_vars(&e);
        assert!(fv.contains("x"));
        assert!(fv.contains("y"));
        assert!(!fv.contains("t"));
    }

    #[test]
    fn uses_var_queries() {
        let e = Expr::var("q", Type::f32()) * 2.0f32;
        assert!(expr_uses_var(&e, "q"));
        assert!(!expr_uses_var(&e, "r"));
        let s = Stmt::evaluate(e);
        assert!(stmt_uses_var(&s, "q"));
        assert!(!stmt_uses_var(&s, "r"));
    }
}
