//! Symbolic simplification: constant folding, algebraic identities, and dead
//! code removal.
//!
//! The lowering passes lean on the simplifier heavily (Sec. 4.6 mentions the
//! standard constant-folding pass that also cleans up the patterns produced by
//! bounds inference). The rules below are deliberately conservative: every
//! rewrite preserves the value of the expression for all variable assignments.
//!
//! # Scope-carrying simplification
//!
//! Statement simplification carries a lexical scope of enclosing `let`
//! bindings. Since bounds inference names every realization's bounds
//! (`f.x.min`, `f.x.extent`) instead of substituting interval expressions
//! through consumer chains, min/max terms routinely compare *different*
//! let-bound names whose values are constant offsets of one another —
//! `min(f.x.min + 4, g.x.min)` where `g.x.min = f.x.min - 1`. The
//! scope-carrying pass resolves both operands through the visible lets,
//! decides the winner, and keeps the compact *name* form in the output.
//! Resolution respects shadowing: an inner rebinding of `f.x.min`
//! supersedes (and, when its value is too large to track, suppresses) the
//! outer binding for the extent of its body.

use crate::expr::{BinOp, CmpOp, Expr, ExprNode};
use crate::stmt::{Stmt, StmtNode};
use crate::substitute::{substitute_in_stmt, LetResolver};
use crate::visit::{
    mutate_expr_children, mutate_stmt_children, stmt_uses_var, IrMutator, IrVisitor,
};

/// Integer division rounding toward negative infinity, matching Halide's
/// semantics (so that `(x / 2) * 2 <= x` holds for negative `x` too).
pub fn div_floor(a: i64, b: i64) -> i64 {
    if b == 0 {
        return 0; // division by zero is defined as zero, like Halide's runtime
    }
    let q = a / b;
    if (a % b != 0) && ((a < 0) != (b < 0)) {
        q - 1
    } else {
        q
    }
}

/// Integer modulo with the sign of the divisor (non-negative for positive
/// divisors), consistent with [`div_floor`].
pub fn mod_floor(a: i64, b: i64) -> i64 {
    if b == 0 {
        return 0;
    }
    let r = a % b;
    if r != 0 && ((r < 0) != (b < 0)) {
        r + b
    } else {
        r
    }
}

fn fold_int(op: BinOp, a: i64, b: i64) -> i64 {
    match op {
        BinOp::Add => a.wrapping_add(b),
        BinOp::Sub => a.wrapping_sub(b),
        BinOp::Mul => a.wrapping_mul(b),
        BinOp::Div => div_floor(a, b),
        BinOp::Mod => mod_floor(a, b),
        BinOp::Min => a.min(b),
        BinOp::Max => a.max(b),
    }
}

fn fold_f64(op: BinOp, a: f64, b: f64) -> f64 {
    match op {
        BinOp::Add => a + b,
        BinOp::Sub => a - b,
        BinOp::Mul => a * b,
        BinOp::Div => a / b,
        BinOp::Mod => a - b * (a / b).floor(),
        BinOp::Min => a.min(b),
        BinOp::Max => a.max(b),
    }
}

fn fold_cmp_int(op: CmpOp, a: i64, b: i64) -> bool {
    match op {
        CmpOp::Eq => a == b,
        CmpOp::Ne => a != b,
        CmpOp::Lt => a < b,
        CmpOp::Le => a <= b,
        CmpOp::Gt => a > b,
        CmpOp::Ge => a >= b,
    }
}

fn fold_cmp_f64(op: CmpOp, a: f64, b: f64) -> bool {
    match op {
        CmpOp::Eq => a == b,
        CmpOp::Ne => a != b,
        CmpOp::Lt => a < b,
        CmpOp::Le => a <= b,
        CmpOp::Gt => a > b,
        CmpOp::Ge => a >= b,
    }
}

/// The largest expression (in nodes) the scope-carrying simplifier will
/// resolve through let bindings. Larger terms are left alone: resolving them
/// would cost more than the fold could save, and the blowup the resolution
/// guards against only produces small name-plus-offset terms anyway.
const LET_RESOLVE_BUDGET: usize = 64;

struct Simplifier {
    /// The `let` bindings enclosing the current node (shadowing- and
    /// budget-aware; see [`LetResolver`]).
    lets: LetResolver,
}

impl Default for Simplifier {
    fn default() -> Self {
        Simplifier {
            lets: LetResolver::new(LET_RESOLVE_BUDGET),
        }
    }
}

/// Splits `e` into `(base, c)` such that `e == base + c`, without building
/// new nodes. Matches `Add`-of-constant (the canonical signed form) and, for
/// signed types only, `Sub`-of-constant; unsigned subtraction is left alone
/// because `x - c` may wrap at 0, so `x - c < x + c` does not hold there.
fn split_add_const(e: &Expr) -> (&Expr, i64) {
    if let ExprNode::Bin { op, a, b } = e.node() {
        match op {
            BinOp::Add => {
                if let Some(c) = b.as_const_int() {
                    return (a, c);
                }
                if let Some(c) = a.as_const_int() {
                    return (b, c);
                }
            }
            BinOp::Sub if matches!(e.ty().scalar(), crate::types::ScalarType::Int(_)) => {
                if let Some(c) = b.as_const_int() {
                    return (a, -c);
                }
            }
            _ => {}
        }
    }
    (e, 0)
}

/// Cheap structural constant difference: `Some(a - b)` when both operands are
/// (constant offsets of) the same base expression. Unlike simplifying the
/// tree `a - b`, this never recurses into the full simplifier, so it is safe
/// to call at every min/max node without superlinear blowup.
fn const_diff(a: &Expr, b: &Expr) -> Option<i64> {
    if let (Some(ca), Some(cb)) = (a.as_const_int(), b.as_const_int()) {
        return Some(ca - cb);
    }
    let (base_a, ca) = split_add_const(a);
    let (base_b, cb) = split_add_const(b);
    if base_a == base_b {
        Some(ca - cb)
    } else {
        None
    }
}

impl Simplifier {
    /// Runs `f` with `name` bound to (already simplified) `value` in the let
    /// scope, restoring the previous binding state afterwards.
    fn with_let<R>(&mut self, name: &str, value: &Expr, f: impl FnOnce(&mut Self) -> R) -> R {
        let saved = self.lets.enter(name, value);
        let out = f(self);
        self.lets.exit(name, saved);
        out
    }

    /// `Some(a - b)` when resolving both operands through the visible let
    /// bindings exposes a constant difference that the purely structural
    /// [`const_diff`] could not see.
    fn let_resolved_const_diff(&self, a: &Expr, b: &Expr) -> Option<i64> {
        if self.lets.is_empty() {
            return None;
        }
        let ra = self.lets.resolve(a);
        let rb = self.lets.resolve(b);
        if ra == *a && rb == *b {
            return None; // neither side referenced a tracked let
        }
        const_diff(&ra, &rb)
    }

    fn simplify_bin(&mut self, op: BinOp, a: Expr, b: Expr, original: &Expr) -> Expr {
        let ty = original.ty();
        // Constant folding.
        if let (Some(ca), Some(cb)) = (a.as_const_f64(), b.as_const_f64()) {
            if ty.is_float() {
                return Expr::imm_of(ty, fold_f64(op, ca, cb));
            } else if let (Some(ia), Some(ib)) = (a.as_const_int(), b.as_const_int()) {
                return Expr::imm_of(ty, fold_int(op, ia, ib) as f64);
            }
        }

        // Algebraic identities (all valid for ints and floats used here).
        match op {
            BinOp::Add => {
                if a.is_zero() {
                    return b;
                }
                if b.is_zero() {
                    return a;
                }
                // (x + c1) + c2 -> x + (c1 + c2); helps bounds expressions collapse.
                if let (
                    ExprNode::Bin {
                        op: BinOp::Add,
                        a: x,
                        b: c1,
                    },
                    Some(c2),
                ) = (a.node(), b.as_const_int())
                {
                    if let Some(c1v) = c1.as_const_int() {
                        if !ty.is_float() {
                            return self
                                .mutate_expr(&(x.clone() + Expr::imm_of(ty, (c1v + c2) as f64)));
                        }
                    }
                }
                // (x - c1) + c2 -> x + (c2 - c1)
                if let (
                    ExprNode::Bin {
                        op: BinOp::Sub,
                        a: x,
                        b: c1,
                    },
                    Some(c2),
                ) = (a.node(), b.as_const_int())
                {
                    if let Some(c1v) = c1.as_const_int() {
                        if !ty.is_float() {
                            return self
                                .mutate_expr(&(x.clone() + Expr::imm_of(ty, (c2 - c1v) as f64)));
                        }
                    }
                }
                // c + x -> x + c  (canonical order: constant on the right)
                if a.as_const_f64().is_some() && b.as_const_f64().is_none() {
                    return self.simplify_bin(BinOp::Add, b, a, original);
                }
            }
            BinOp::Sub => {
                if b.is_zero() {
                    return a;
                }
                if a == b {
                    return Expr::zero(ty);
                }
                // (x + c1) - c2 -> x + (c1 - c2)
                if let (
                    ExprNode::Bin {
                        op: BinOp::Add,
                        a: x,
                        b: c1,
                    },
                    Some(c2),
                ) = (a.node(), b.as_const_int())
                {
                    if let Some(c1v) = c1.as_const_int() {
                        if !ty.is_float() {
                            return self
                                .mutate_expr(&(x.clone() + Expr::imm_of(ty, (c1v - c2) as f64)));
                        }
                    }
                }
                // (x + y) - x -> y  and  (x + y) - y -> x
                if let ExprNode::Bin {
                    op: BinOp::Add,
                    a: x,
                    b: y,
                } = a.node()
                {
                    if *x == b {
                        return y.clone();
                    }
                    if *y == b {
                        return x.clone();
                    }
                }
                // Canonicalize subtraction of a signed-integer constant into
                // addition of its negation, so offsets combine across nested
                // expressions (important for the monotonicity checks in the
                // sliding-window pass).
                if matches!(ty.scalar(), crate::types::ScalarType::Int(_)) {
                    if let Some(c) = b.as_const_int() {
                        if b.node() != a.node() {
                            return self.mutate_expr(&(a + Expr::imm_of(ty, -c as f64)));
                        }
                    }
                    // (x + c1) - (y + c2) -> (x - y) + (c1 - c2)
                    if let (
                        ExprNode::Bin {
                            op: BinOp::Add,
                            a: x,
                            b: c1,
                        },
                        ExprNode::Bin {
                            op: BinOp::Add,
                            a: y,
                            b: c2,
                        },
                    ) = (a.node(), b.node())
                    {
                        if let (Some(c1v), Some(c2v)) = (c1.as_const_int(), c2.as_const_int()) {
                            return self.mutate_expr(
                                &((x.clone() - y.clone()) + Expr::imm_of(ty, (c1v - c2v) as f64)),
                            );
                        }
                    }
                    // x - (y + c) -> (x - y) - c
                    if let ExprNode::Bin {
                        op: BinOp::Add,
                        a: y,
                        b: c,
                    } = b.node()
                    {
                        if let Some(cv) = c.as_const_int() {
                            return self.mutate_expr(
                                &((a.clone() - y.clone()) + Expr::imm_of(ty, -cv as f64)),
                            );
                        }
                    }
                    // (x + c) - y -> (x - y) + c
                    if let ExprNode::Bin {
                        op: BinOp::Add,
                        a: x,
                        b: c,
                    } = a.node()
                    {
                        if let Some(cv) = c.as_const_int() {
                            return self.mutate_expr(
                                &((x.clone() - b.clone()) + Expr::imm_of(ty, cv as f64)),
                            );
                        }
                    }
                    // (x*c) - (y*c) -> (x - y)*c
                    if let (
                        ExprNode::Bin {
                            op: BinOp::Mul,
                            a: x,
                            b: c1,
                        },
                        ExprNode::Bin {
                            op: BinOp::Mul,
                            a: y,
                            b: c2,
                        },
                    ) = (a.node(), b.node())
                    {
                        if c1.as_const_int().is_some() && c1.as_const_int() == c2.as_const_int() {
                            return self.mutate_expr(&((x.clone() - y.clone()) * c1.clone()));
                        }
                    }
                }
            }
            BinOp::Mul => {
                if a.is_zero() || b.is_zero() {
                    return Expr::zero(ty);
                }
                if a.is_one() {
                    return b;
                }
                if b.is_one() {
                    return a;
                }
                if a.as_const_f64().is_some() && b.as_const_f64().is_none() {
                    return self.simplify_bin(BinOp::Mul, b, a, original);
                }
            }
            BinOp::Div => {
                if b.is_one() {
                    return a;
                }
                if a.is_zero() {
                    return Expr::zero(ty);
                }
                if a == b {
                    return Expr::one(ty);
                }
            }
            BinOp::Mod => {
                if b.is_one() && !ty.is_float() {
                    return Expr::zero(ty);
                }
            }
            BinOp::Min | BinOp::Max => {
                if a == b {
                    return a;
                }
                // Absorption: min(min(x, y), y) -> min(x, y), same for max.
                // Bounds-inference unions routinely produce these duplicates.
                if let ExprNode::Bin {
                    op: inner,
                    a: x,
                    b: y,
                } = a.node()
                {
                    if *inner == op && (*x == b || *y == b) {
                        return a;
                    }
                }
                if let ExprNode::Bin {
                    op: inner,
                    a: x,
                    b: y,
                } = b.node()
                {
                    if *inner == op && (*x == a || *y == a) {
                        return b;
                    }
                }
                // If the difference of the operands is a known constant the
                // winner is known statically: min(v-1, v+1) -> v-1, etc.
                // This is what collapses the unions produced by bounds
                // inference over stencil footprints. The check is a cheap
                // structural comparison (same base ± constant), deliberately
                // not a recursive re-simplification of `a - b`, which made
                // lowering superlinear on large bounds expressions.
                if !ty.is_float() {
                    if let Some(d) = const_diff(&a, &b) {
                        let a_wins = (op == BinOp::Min) == (d <= 0);
                        return if a_wins { a } else { b };
                    }
                    // Same check through the let scope: `min(f.x.min + 4,
                    // g.x.min)` folds when the visible lets reveal the two
                    // names are constant offsets of one base. The *name* form
                    // is returned, keeping the statement compact.
                    if let Some(d) = self.let_resolved_const_diff(&a, &b) {
                        let a_wins = (op == BinOp::Min) == (d <= 0);
                        return if a_wins { a } else { b };
                    }
                }
                // min(c1, max(x, c2)) -> c1 when c1 <= c2 (max(x, c2) >= c2),
                // and dually max(c1, min(x, c2)) -> c1 when c1 >= c2. This is
                // what collapses the `min(0, max(extent - factor, 0))` guards
                // produced by the shift-inwards split strategy; without it,
                // bounds expressions grow multiplicatively through chains of
                // split stages (e.g. GPU-tiled pyramids).
                if !ty.is_float() {
                    let dual = if op == BinOp::Min {
                        BinOp::Max
                    } else {
                        BinOp::Min
                    };
                    let dominated = |c1: Option<i64>, other: &Expr| -> bool {
                        let (
                            Some(c1),
                            ExprNode::Bin {
                                op: inner,
                                a: ia,
                                b: ib,
                            },
                        ) = (c1, other.node())
                        else {
                            return false;
                        };
                        if *inner != dual {
                            return false;
                        }
                        let inner_const = ia.as_const_int().or_else(|| ib.as_const_int());
                        matches!(inner_const, Some(c2) if (op == BinOp::Min && c1 <= c2)
                            || (op == BinOp::Max && c1 >= c2))
                    };
                    if dominated(a.as_const_int(), &b) {
                        return a;
                    }
                    if dominated(b.as_const_int(), &a) {
                        return b;
                    }
                }
                // min(min(x, c1), c2) -> min(x, min(c1, c2)); same for max.
                if let (
                    ExprNode::Bin {
                        op: inner_op,
                        a: x,
                        b: c1,
                    },
                    Some(c2),
                ) = (a.node(), b.as_const_int())
                {
                    if *inner_op == op && !ty.is_float() {
                        if let Some(c1v) = c1.as_const_int() {
                            let folded = if op == BinOp::Min {
                                c1v.min(c2)
                            } else {
                                c1v.max(c2)
                            };
                            return ExprNode::Bin {
                                op,
                                a: x.clone(),
                                b: Expr::imm_of(ty, folded as f64),
                            }
                            .into();
                        }
                    }
                }
            }
        }

        ExprNode::Bin { op, a, b }.into()
    }
}

/// Finds let (statement- or expression-level) rebindings of one name;
/// inlining a variable-valued let whose variable is later rebound would
/// capture the wrong binding, so the inline rules check this first.
struct RebindFinder<'a> {
    name: &'a str,
    found: bool,
}

impl IrVisitor for RebindFinder<'_> {
    fn visit_expr(&mut self, e: &Expr) {
        if self.found {
            return;
        }
        if let ExprNode::Let { name, .. } = e.node() {
            if name == self.name {
                self.found = true;
                return;
            }
        }
        crate::visit::visit_expr_children(self, e);
    }
    fn visit_stmt(&mut self, s: &Stmt) {
        if self.found {
            return;
        }
        if let StmtNode::LetStmt { name, .. } = s.node() {
            if name == self.name {
                self.found = true;
                return;
            }
        }
        crate::visit::visit_stmt_children(self, s);
    }
}

fn stmt_rebinds(s: &Stmt, name: &str) -> bool {
    let mut f = RebindFinder { name, found: false };
    f.visit_stmt(s);
    f.found
}

fn expr_rebinds(e: &Expr, name: &str) -> bool {
    let mut f = RebindFinder { name, found: false };
    f.visit_expr(e);
    f.found
}

impl IrMutator for Simplifier {
    fn mutate_expr(&mut self, e: &Expr) -> Expr {
        // Lets are handled before generic recursion so the binding is in
        // scope while the body is simplified.
        if let ExprNode::Let { name, value, body } = e.node() {
            let nv = self.mutate_expr(value);
            let nb = self.with_let(name, &nv, |s| s.mutate_expr(body));
            // Inline lets whose value is an immediate or a variable; they
            // cost nothing and unlock further folding. A variable value must
            // not be rebound inside the body (capture).
            let inlinable = match nv.node() {
                ExprNode::IntImm { .. } | ExprNode::UIntImm { .. } | ExprNode::FloatImm { .. } => {
                    true
                }
                ExprNode::Var { name: v, .. } => !expr_rebinds(&nb, v),
                _ => false,
            };
            if inlinable {
                let inlined = crate::substitute::substitute(&nb, name, &nv);
                return self.mutate_expr(&inlined);
            }
            return Expr::let_in(name.clone(), nv, nb);
        }
        let e = mutate_expr_children(self, e);
        match e.node() {
            ExprNode::Bin { op, a, b } => self.simplify_bin(*op, a.clone(), b.clone(), &e),
            ExprNode::Cmp { op, a, b } => {
                if a.ty().is_float() || b.ty().is_float() {
                    if let (Some(ca), Some(cb)) = (a.as_const_f64(), b.as_const_f64()) {
                        return Expr::bool(fold_cmp_f64(*op, ca, cb));
                    }
                } else if let (Some(ca), Some(cb)) = (a.as_const_int(), b.as_const_int()) {
                    return Expr::bool(fold_cmp_int(*op, ca, cb));
                }
                if a == b {
                    return Expr::bool(matches!(op, CmpOp::Eq | CmpOp::Le | CmpOp::Ge));
                }
                e
            }
            ExprNode::And { a, b } => match (a.as_const_int(), b.as_const_int()) {
                (Some(0), _) | (_, Some(0)) => Expr::bool(false),
                (Some(_), Some(_)) => Expr::bool(true),
                (Some(_), None) => b.clone(),
                (None, Some(_)) => a.clone(),
                _ => e,
            },
            ExprNode::Or { a, b } => match (a.as_const_int(), b.as_const_int()) {
                (Some(x), _) if x != 0 => Expr::bool(true),
                (_, Some(x)) if x != 0 => Expr::bool(true),
                (Some(_), Some(_)) => Expr::bool(false),
                (Some(0), None) => b.clone(),
                (None, Some(0)) => a.clone(),
                _ => e,
            },
            ExprNode::Not { a } => match a.as_const_int() {
                Some(v) => Expr::bool(v == 0),
                None => e,
            },
            ExprNode::Select { cond, t, f } => match cond.as_const_int() {
                Some(0) => f.clone(),
                Some(_) => t.clone(),
                None => {
                    if t == f {
                        t.clone()
                    } else {
                        e
                    }
                }
            },
            ExprNode::Cast { ty, value } => {
                if *ty == value.ty() {
                    return value.clone();
                }
                if let Some(c) = value.as_const_f64() {
                    if ty.is_scalar() {
                        // Clamp-free conversion: truncate toward zero for ints,
                        // matching the executor's cast semantics.
                        return match ty.scalar() {
                            crate::types::ScalarType::Float(_) => Expr::imm_of(*ty, c),
                            crate::types::ScalarType::Int(_) => Expr::imm_of(*ty, c.trunc()),
                            crate::types::ScalarType::UInt(_) => {
                                Expr::imm_of(*ty, c.trunc().max(0.0))
                            }
                        };
                    }
                }
                e
            }
            _ => e,
        }
    }

    fn mutate_stmt(&mut self, s: &Stmt) -> Stmt {
        // Lets are handled before generic recursion so the binding is in
        // scope while the body is simplified.
        if let StmtNode::LetStmt { name, value, body } = s.node() {
            let nv = self.mutate_expr(value);
            let nb = self.with_let(name, &nv, |sim| sim.mutate_stmt(body));
            // Drop dead lets; inline trivial ones (immediates always,
            // variables unless the body rebinds the variable).
            if !stmt_uses_var(&nb, name) {
                return nb;
            }
            let inlinable = match nv.node() {
                ExprNode::IntImm { .. } | ExprNode::UIntImm { .. } | ExprNode::FloatImm { .. } => {
                    true
                }
                ExprNode::Var { name: v, .. } => !stmt_rebinds(&nb, v),
                _ => false,
            };
            if inlinable {
                let inlined = substitute_in_stmt(&nb, name, &nv);
                return self.mutate_stmt(&inlined);
            }
            return Stmt::let_stmt(name.clone(), nv, nb);
        }
        let s = mutate_stmt_children(self, s);
        match s.node() {
            StmtNode::IfThenElse {
                condition,
                then_case,
                else_case,
            } => match condition.as_const_int() {
                Some(0) => else_case.clone().unwrap_or_else(Stmt::no_op),
                Some(_) => then_case.clone(),
                None => s.clone(),
            },
            StmtNode::For { extent, body, .. } => {
                if extent.as_const_int() == Some(0) || body.is_no_op() {
                    Stmt::no_op()
                } else {
                    s.clone()
                }
            }
            StmtNode::Assert { condition, .. } => {
                if condition.as_const_int().map(|v| v != 0).unwrap_or(false) {
                    Stmt::no_op()
                } else {
                    s.clone()
                }
            }
            _ => s.clone(),
        }
    }
}

/// Simplifies an expression.
///
/// # Examples
///
/// ```
/// use halide_ir::{simplify, Expr};
/// let x = Expr::var_i32("x");
/// let e = (x.clone() + 0) * 1 + (Expr::int(2) + 3);
/// assert_eq!(simplify(&e).to_string(), "(x + 5)");
/// ```
pub fn simplify(e: &Expr) -> Expr {
    Simplifier::default().mutate_expr(e)
}

/// Simplifies a statement (also folds expressions nested inside it).
///
/// Statement simplification is *scope-carrying*: while simplifying the body
/// of a `let`, the binding's (resolved) value is visible, so min/max terms
/// over let-bound bounds names — `min(f.x.min + 4, g.x.min)` — fold to the
/// winning name whenever the bindings reveal a constant difference. Dead
/// lets are dropped and immediate- or variable-valued lets are inlined.
pub fn simplify_stmt(s: &Stmt) -> Stmt {
    Simplifier::default().mutate_stmt(s)
}

/// Convenience: simplify, then require a constant integer result.
pub fn const_int(e: &Expr) -> Option<i64> {
    simplify(e).as_const_int()
}

/// A boolean expression that simplifies to `true`.
pub fn is_provably_true(e: &Expr) -> bool {
    simplify(e).as_const_int() == Some(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stmt::ForKind;
    use crate::types::Type;

    #[test]
    fn floor_division_semantics() {
        assert_eq!(div_floor(7, 2), 3);
        assert_eq!(div_floor(-7, 2), -4);
        assert_eq!(div_floor(-8, 2), -4);
        assert_eq!(mod_floor(-7, 3), 2);
        assert_eq!(mod_floor(7, 3), 1);
        assert_eq!(div_floor(5, 0), 0);
        assert_eq!(mod_floor(5, 0), 0);
    }

    #[test]
    fn constant_folding() {
        assert_eq!(simplify(&(Expr::int(2) + 3)).as_const_int(), Some(5));
        assert_eq!(simplify(&(Expr::int(10) / 4)).as_const_int(), Some(2));
        assert_eq!(simplify(&(Expr::f32(1.5) * 2.0)).as_const_f64(), Some(3.0));
        assert_eq!(
            simplify(&Expr::min(Expr::int(3), Expr::int(7))).as_const_int(),
            Some(3)
        );
    }

    #[test]
    fn identities() {
        let x = Expr::var_i32("x");
        assert_eq!(simplify(&(x.clone() + 0)).to_string(), "x");
        assert_eq!(simplify(&(x.clone() * 1)).to_string(), "x");
        assert_eq!(simplify(&(x.clone() * 0)).as_const_int(), Some(0));
        assert_eq!(simplify(&(x.clone() - x.clone())).as_const_int(), Some(0));
        assert_eq!(simplify(&(x.clone() / 1)).to_string(), "x");
        assert_eq!(simplify(&(x.clone() % 1)).as_const_int(), Some(0));
        assert_eq!(simplify(&Expr::min(x.clone(), x.clone())).to_string(), "x");
    }

    #[test]
    fn nested_constant_addition_collapses() {
        let x = Expr::var_i32("x");
        let e = ((x.clone() + 1) + 2) + 3;
        assert_eq!(simplify(&e).to_string(), "(x + 6)");
        let e2 = (x.clone() - 1) + 4;
        assert_eq!(simplify(&e2).to_string(), "(x + 3)");
        let e3 = (x + 5) - 2;
        assert_eq!(simplify(&e3).to_string(), "(x + 3)");
    }

    #[test]
    fn select_and_bool_folding() {
        let x = Expr::var_i32("x");
        let s = Expr::select(Expr::bool(true), x.clone(), Expr::int(0));
        assert_eq!(simplify(&s).to_string(), "x");
        let c = Expr::and(Expr::bool(false), Expr::lt(x.clone(), Expr::int(3)));
        assert_eq!(simplify(&c).as_const_int(), Some(0));
        let c2 = Expr::or(Expr::bool(true), Expr::lt(x, Expr::int(3)));
        assert_eq!(simplify(&c2).as_const_int(), Some(1));
        assert_eq!(
            simplify(&Expr::not(Expr::bool(false))).as_const_int(),
            Some(1)
        );
    }

    #[test]
    fn cmp_folding() {
        assert_eq!(
            simplify(&Expr::lt(Expr::int(1), Expr::int(2))).as_const_int(),
            Some(1)
        );
        assert_eq!(
            simplify(&Expr::ge(Expr::int(1), Expr::int(2))).as_const_int(),
            Some(0)
        );
        let x = Expr::var_i32("x");
        assert_eq!(simplify(&Expr::le(x.clone(), x)).as_const_int(), Some(1));
    }

    #[test]
    fn cast_folding() {
        let e = Expr::f32(3.7).cast(Type::i32());
        assert_eq!(simplify(&e).as_const_int(), Some(3));
        let e = Expr::int(-2).cast(Type::u8());
        assert_eq!(simplify(&e).as_const_int(), Some(0));
    }

    #[test]
    fn let_inlining() {
        let e = Expr::let_in("t", Expr::int(3), Expr::var_i32("t") + 4);
        assert_eq!(simplify(&e).as_const_int(), Some(7));
    }

    #[test]
    fn stmt_simplification() {
        let dead = Stmt::let_stmt(
            "unused",
            Expr::var_i32("q") + 1,
            Stmt::evaluate(Expr::int(0)),
        );
        assert!(matches!(
            simplify_stmt(&dead).node(),
            StmtNode::Evaluate { .. }
        ));

        let zero_loop = Stmt::for_loop(
            "i",
            Expr::int(0),
            Expr::int(0),
            ForKind::Serial,
            Stmt::store("b", Expr::int(1), Expr::int(0)),
        );
        assert!(simplify_stmt(&zero_loop).is_no_op());

        let branch = Stmt::if_then_else(
            Expr::lt(Expr::int(1), Expr::int(2)),
            Stmt::evaluate(Expr::int(1)),
            Some(Stmt::evaluate(Expr::int(2))),
        );
        assert!(matches!(
            simplify_stmt(&branch).node(),
            StmtNode::Evaluate { value } if value.as_const_int() == Some(1)
        ));
    }

    #[test]
    fn min_of_const_and_dominating_max_folds() {
        // Regression: `min(0, max(e - f, 0))` is the guard the shift-inwards
        // split strategy emits; it must fold to 0 or bounds expressions grow
        // multiplicatively through chains of split stages.
        let e = Expr::var_i32("e");
        let guard = Expr::min(Expr::int(0), Expr::max(e.clone() - 16, Expr::int(0)));
        assert_eq!(simplify(&guard).as_const_int(), Some(0));
        // Operand order must not matter.
        let guard = Expr::min(Expr::max(e.clone() - 16, Expr::int(0)), Expr::int(0));
        assert_eq!(simplify(&guard).as_const_int(), Some(0));
        // The dual: max(c1, min(x, c2)) -> c1 when c1 >= c2.
        let dual = Expr::max(Expr::int(3), Expr::min(e.clone(), Expr::int(2)));
        assert_eq!(simplify(&dual).as_const_int(), Some(3));
        // Not dominated: stays symbolic.
        let keep = Expr::min(Expr::int(5), Expr::max(e, Expr::int(2)));
        assert!(simplify(&keep).as_const_int().is_none());
    }

    #[test]
    fn min_of_const_offsets_folds_for_signed_not_unsigned() {
        // Signed: min(x - 1, x + 1) -> x - 1 (non-wrapping arithmetic).
        let x = Expr::var_i32("x");
        let e = Expr::min(x.clone() - 1, x.clone() + 1);
        assert_eq!(simplify(&e).to_string(), "(x - 1)");
        // Unsigned: x - 1 wraps at 0, so the fold must NOT fire.
        let u = Expr::var("u", Type::u32());
        let one = Expr::imm_of(Type::u32(), 1.0);
        let e = Expr::min(u.clone() - one.clone(), u + one);
        assert!(simplify(&e).to_string().starts_with("min("));
    }

    #[test]
    fn min_max_absorption() {
        // Regression: bounds-inference unions produce `min(min(x, y), y)`
        // shapes whose duplicates must be absorbed.
        let x = Expr::var_i32("x");
        let y = Expr::var_i32("y") * 2;
        let nested = Expr::min(Expr::min(x.clone(), y.clone()), y.clone());
        assert_eq!(simplify(&nested).to_string(), "min(x, (y*2))");
        let nested = Expr::max(y.clone(), Expr::max(x.clone(), y.clone()));
        assert_eq!(simplify(&nested).to_string(), "max(x, (y*2))");
    }

    #[test]
    fn let_scoped_min_max_folds_across_bound_names() {
        // `g.x.min` is let-bound to `f.x.min - 1`, so
        // `min(f.x.min + 4, g.x.min)` must fold to `g.x.min` (difference 5)
        // while keeping the compact name form in the output.
        let fmin = Expr::var_i32("f.x.min");
        let gmin = Expr::var_i32("g.x.min");
        let s = Stmt::let_stmt(
            "g.x.min",
            fmin.clone() - 1,
            Stmt::store(
                "buf",
                Expr::int(0),
                Expr::min(fmin.clone() + 4, gmin.clone()),
            ),
        );
        let out = simplify_stmt(&s).to_string();
        assert!(out.contains("buf[g.x.min] = 0"), "got:\n{out}");
        // The dual max picks the larger side.
        let s = Stmt::let_stmt(
            "g.x.min",
            fmin.clone() - 1,
            Stmt::store("buf", Expr::int(0), Expr::max(fmin.clone() + 4, gmin)),
        );
        let out = simplify_stmt(&s).to_string();
        assert!(out.contains("buf[(f.x.min + 4)] = 0"), "got:\n{out}");
    }

    #[test]
    fn let_scoped_fold_resolves_through_chained_lets() {
        // h.x.min = g.x.min + 2 = (f.x.min - 1) + 2: resolution is transitive
        // because each value is resolved against the bindings enclosing it.
        let fmin = Expr::var_i32("f.x.min");
        let s = Stmt::let_stmt(
            "g.x.min",
            fmin.clone() - 1,
            Stmt::let_stmt(
                "h.x.min",
                Expr::var_i32("g.x.min") + 2,
                Stmt::store(
                    "buf",
                    Expr::int(0),
                    Expr::min(Expr::var_i32("h.x.min"), fmin.clone() + 9),
                ),
            ),
        );
        let out = simplify_stmt(&s).to_string();
        assert!(out.contains("buf[h.x.min] = 0"), "got:\n{out}");
    }

    #[test]
    fn let_scoped_fold_respects_shadowing() {
        // The inner rebinding of g.x.min moves it far ABOVE f.x.min + 4; a
        // simplifier that kept using the outer binding would fold the min the
        // wrong way.
        let fmin = Expr::var_i32("f.x.min");
        let gmin = Expr::var_i32("g.x.min");
        let s = Stmt::let_stmt(
            "g.x.min",
            fmin.clone() - 1,
            Stmt::let_stmt(
                "g.x.min",
                fmin.clone() + 100,
                Stmt::store(
                    "buf",
                    Expr::int(0),
                    Expr::min(fmin.clone() + 4, gmin.clone()),
                ),
            ),
        );
        let out = simplify_stmt(&s).to_string();
        assert!(out.contains("buf[(f.x.min + 4)] = 0"), "got:\n{out}");
    }

    #[test]
    fn unresolvable_let_min_stays_symbolic() {
        // The two names have no constant difference (different bases).
        let s = Stmt::let_stmt(
            "g.x.min",
            Expr::var_i32("other") * 2,
            Stmt::store(
                "buf",
                Expr::int(0),
                Expr::min(Expr::var_i32("f.x.min"), Expr::var_i32("g.x.min")),
            ),
        );
        let out = simplify_stmt(&s).to_string();
        assert!(out.contains("min(f.x.min, g.x.min)"), "got:\n{out}");
    }

    #[test]
    fn variable_valued_stmt_lets_are_inlined() {
        let s = Stmt::let_stmt(
            "alias",
            Expr::var_i32("src"),
            Stmt::store("buf", Expr::int(1), Expr::var_i32("alias")),
        );
        let out = simplify_stmt(&s).to_string();
        assert!(out.contains("buf[src] = 1"), "got:\n{out}");
    }

    #[test]
    fn min_max_const_chains() {
        let x = Expr::var_i32("x");
        let e = Expr::min(Expr::min(x.clone(), Expr::int(5)), Expr::int(3));
        assert_eq!(simplify(&e).to_string(), "min(x, 3)");
        let e = Expr::max(Expr::max(x, Expr::int(5)), Expr::int(3));
        assert_eq!(simplify(&e).to_string(), "max(x, 5)");
    }
}
