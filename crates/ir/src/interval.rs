//! Interval analysis.
//!
//! The paper's bounds inference (Sec. 4.2) uses simple interval arithmetic
//! rather than a polyhedral model: for every expression we compute symbolic
//! `[min, max]` bounds given intervals for the free variables in scope. The
//! result is less expressive (axis-aligned boxes only) but can analyze every
//! construct in the language, which is what makes schedule-driven loop
//! synthesis possible.

use crate::expr::{BinOp, Expr, ExprNode};
use crate::scope::Scope;
use crate::simplify::simplify;
use crate::types::Type;

/// A symbolic closed interval `[min, max]`. `None` means unbounded in that
/// direction.
#[derive(Debug, Clone, PartialEq)]
pub struct Interval {
    /// Lower bound (inclusive), or `None` for negative infinity.
    pub min: Option<Expr>,
    /// Upper bound (inclusive), or `None` for positive infinity.
    pub max: Option<Expr>,
}

impl Interval {
    /// The interval `[min, max]`.
    pub fn new(min: Expr, max: Expr) -> Self {
        Interval {
            min: Some(min),
            max: Some(max),
        }
    }

    /// The degenerate interval containing only `e`.
    pub fn single_point(e: Expr) -> Self {
        Interval {
            min: Some(e.clone()),
            max: Some(e),
        }
    }

    /// The unbounded interval.
    pub fn everything() -> Self {
        Interval {
            min: None,
            max: None,
        }
    }

    /// True when both ends are present.
    pub fn is_bounded(&self) -> bool {
        self.min.is_some() && self.max.is_some()
    }

    /// The extent `max - min + 1`, if both ends are bounded.
    pub fn extent(&self) -> Option<Expr> {
        match (&self.min, &self.max) {
            (Some(lo), Some(hi)) => Some(simplify(&(hi.clone() - lo.clone() + 1))),
            _ => None,
        }
    }

    /// The smallest interval containing both `self` and `other`
    /// (a bound survives only if present on both sides).
    pub fn union(&self, other: &Interval) -> Interval {
        let min = match (&self.min, &other.min) {
            (Some(a), Some(b)) => Some(simplify(&Expr::min(a.clone(), b.clone()))),
            _ => None,
        };
        let max = match (&self.max, &other.max) {
            (Some(a), Some(b)) => Some(simplify(&Expr::max(a.clone(), b.clone()))),
            _ => None,
        };
        Interval { min, max }
    }

    /// Applies `f` to both bounds where present.
    fn map(&self, f: impl Fn(&Expr) -> Expr) -> Interval {
        Interval {
            min: self.min.as_ref().map(&f),
            max: self.max.as_ref().map(&f),
        }
    }

    /// Simplifies both bounds.
    pub fn simplified(&self) -> Interval {
        self.map(simplify)
    }
}

fn add(a: &Interval, b: &Interval) -> Interval {
    Interval {
        min: match (&a.min, &b.min) {
            (Some(x), Some(y)) => Some(x.clone() + y.clone()),
            _ => None,
        },
        max: match (&a.max, &b.max) {
            (Some(x), Some(y)) => Some(x.clone() + y.clone()),
            _ => None,
        },
    }
}

fn sub(a: &Interval, b: &Interval) -> Interval {
    Interval {
        min: match (&a.min, &b.max) {
            (Some(x), Some(y)) => Some(x.clone() - y.clone()),
            _ => None,
        },
        max: match (&a.max, &b.min) {
            (Some(x), Some(y)) => Some(x.clone() - y.clone()),
            _ => None,
        },
    }
}

fn scale(a: &Interval, factor: &Expr) -> Interval {
    match factor.as_const_f64() {
        Some(c) if c >= 0.0 => Interval {
            min: a.min.as_ref().map(|m| m.clone() * factor.clone()),
            max: a.max.as_ref().map(|m| m.clone() * factor.clone()),
        },
        Some(_) => Interval {
            min: a.max.as_ref().map(|m| m.clone() * factor.clone()),
            max: a.min.as_ref().map(|m| m.clone() * factor.clone()),
        },
        // Symbolic scale factor: only safe if we conservatively assume it is
        // non-negative, which holds for split factors and strides produced by
        // the compiler. Interval analysis in the paper makes the same
        // assumption for symbolic tile sizes.
        None => Interval {
            min: a.min.as_ref().map(|m| m.clone() * factor.clone()),
            max: a.max.as_ref().map(|m| m.clone() * factor.clone()),
        },
    }
}

fn divide(a: &Interval, divisor: &Expr) -> Interval {
    match divisor.as_const_f64() {
        Some(c) if c > 0.0 => Interval {
            min: a.min.as_ref().map(|m| m.clone() / divisor.clone()),
            max: a.max.as_ref().map(|m| m.clone() / divisor.clone()),
        },
        Some(c) if c < 0.0 => Interval {
            min: a.max.as_ref().map(|m| m.clone() / divisor.clone()),
            max: a.min.as_ref().map(|m| m.clone() / divisor.clone()),
        },
        _ => Interval::everything(),
    }
}

fn minmax(op: BinOp, a: &Interval, b: &Interval) -> Interval {
    let pick = |x: &Option<Expr>, y: &Option<Expr>, lower: bool| -> Option<Expr> {
        match (x, y) {
            (Some(x), Some(y)) => Some(if op == BinOp::Min {
                Expr::min(x.clone(), y.clone())
            } else {
                Expr::max(x.clone(), y.clone())
            }),
            // For min: the result is <= either argument, so an upper bound from
            // one side alone still holds; a lower bound needs both. Dually for max.
            (Some(x), None) | (None, Some(x)) => {
                let keep = (op == BinOp::Min && !lower) || (op == BinOp::Max && lower);
                if keep {
                    Some(x.clone())
                } else {
                    None
                }
            }
            (None, None) => None,
        }
    };
    Interval {
        min: pick(&a.min, &b.min, true),
        max: pick(&a.max, &b.max, false),
    }
}

/// Computes symbolic bounds of `e` given intervals for variables in `scope`.
/// Variables not in scope are treated as unknown-but-fixed symbols (their
/// interval is the single point `[v, v]`), which is exactly what bounds
/// inference wants for outer loop variables that remain symbolic.
pub fn bounds_of_expr_in_scope(e: &Expr, scope: &Scope<Interval>) -> Interval {
    let result = match e.node() {
        ExprNode::IntImm { .. } | ExprNode::UIntImm { .. } | ExprNode::FloatImm { .. } => {
            Interval::single_point(e.clone())
        }
        ExprNode::Var { name, .. } => match scope.get(name) {
            Some(i) => i.clone(),
            None => Interval::single_point(e.clone()),
        },
        ExprNode::Cast { ty, value } => bounds_of_expr_in_scope(value, scope).map(|b| b.cast(*ty)),
        ExprNode::Bin { op, a, b } => {
            let ia = bounds_of_expr_in_scope(a, scope);
            let ib = bounds_of_expr_in_scope(b, scope);
            match op {
                BinOp::Add => add(&ia, &ib),
                BinOp::Sub => sub(&ia, &ib),
                BinOp::Mul => {
                    if let Some(_) = b.as_const_f64() {
                        scale(&ia, b)
                    } else if let Some(_) = a.as_const_f64() {
                        scale(&ib, a)
                    } else if ib.min.as_ref() == ib.max.as_ref() && ib.min.is_some() {
                        scale(&ia, ib.min.as_ref().expect("checked above"))
                    } else if ia.min.as_ref() == ia.max.as_ref() && ia.min.is_some() {
                        scale(&ib, ia.min.as_ref().expect("checked above"))
                    } else {
                        Interval::everything()
                    }
                }
                BinOp::Div => {
                    if b.as_const_f64().is_some() {
                        divide(&ia, b)
                    } else if ib.min.as_ref() == ib.max.as_ref() && ib.min.is_some() {
                        divide(&ia, ib.min.as_ref().expect("checked above"))
                    } else {
                        Interval::everything()
                    }
                }
                BinOp::Mod => match b.as_const_int() {
                    Some(m) if m > 0 => {
                        Interval::new(Expr::zero(e.ty()), Expr::imm_of(e.ty(), (m - 1) as f64))
                    }
                    _ => Interval::everything(),
                },
                BinOp::Min => minmax(BinOp::Min, &ia, &ib),
                BinOp::Max => minmax(BinOp::Max, &ia, &ib),
            }
        }
        ExprNode::Cmp { .. }
        | ExprNode::And { .. }
        | ExprNode::Or { .. }
        | ExprNode::Not { .. } => Interval::new(Expr::bool(false), Expr::bool(true)),
        ExprNode::Select { t, f, .. } => {
            bounds_of_expr_in_scope(t, scope).union(&bounds_of_expr_in_scope(f, scope))
        }
        ExprNode::Ramp {
            base,
            stride,
            lanes,
        } => {
            let ib = bounds_of_expr_in_scope(base, scope);
            let spread = stride.clone() * Expr::int(*lanes as i32 - 1);
            let shifted = add(&ib, &bounds_of_expr_in_scope(&spread, scope));
            ib.union(&shifted)
        }
        ExprNode::Broadcast { value, .. } => bounds_of_expr_in_scope(value, scope),
        ExprNode::Let { name, value, body } => {
            let iv = bounds_of_expr_in_scope(value, scope);
            let mut inner = scope.clone();
            inner.push(name.clone(), iv);
            bounds_of_expr_in_scope(body, &inner)
        }
        ExprNode::Load { .. } => Interval::everything(),
        ExprNode::Call { name, args, ty, .. } => match name.as_str() {
            "abs" => {
                let ia = bounds_of_expr_in_scope(&args[0], scope);
                Interval {
                    min: Some(Expr::zero(*ty)),
                    max: match (&ia.min, &ia.max) {
                        (Some(lo), Some(hi)) => Some(Expr::max(lo.abs(), hi.abs())),
                        _ => None,
                    },
                }
            }
            "floor" | "ceil" | "round" => bounds_of_expr_in_scope(&args[0], scope),
            _ => Interval::everything(),
        },
    };
    result.simplified()
}

/// Bounds of an expression with no scope: useful for constant-extent queries.
pub fn bounds_of_expr(e: &Expr) -> Interval {
    bounds_of_expr_in_scope(e, &Scope::new())
}

/// Constructs the interval `[min, min + extent - 1]` describing a loop
/// variable's range.
pub fn loop_interval(min: &Expr, extent: &Expr) -> Interval {
    Interval::new(min.clone(), simplify(&(min.clone() + extent.clone() - 1)))
}

/// A degenerate use: checks whether `e` provably lies within `[lo, hi]` given
/// the scope, by simplifying the comparison of the symbolic bounds.
pub fn provably_within(e: &Expr, lo: i64, hi: i64, scope: &Scope<Interval>) -> bool {
    let b = bounds_of_expr_in_scope(e, scope);
    let ok_lo = b
        .min
        .as_ref()
        .and_then(|m| simplify(&Expr::ge(m.clone(), Expr::int(lo as i32))).as_const_int())
        == Some(1);
    let ok_hi = b
        .max
        .as_ref()
        .and_then(|m| simplify(&Expr::le(m.clone(), Expr::int(hi as i32))).as_const_int())
        == Some(1);
    ok_lo && ok_hi
}

/// Helper used by bound expressions: the type-preserving `max(x, 0)` pattern
/// produced when clamping extents to be non-negative.
pub fn non_negative(e: Expr) -> Expr {
    let ty: Type = e.ty();
    simplify(&Expr::max(e, Expr::zero(ty)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scope_with(name: &str, lo: i32, hi: i32) -> Scope<Interval> {
        let mut s = Scope::new();
        s.push(name, Interval::new(Expr::int(lo), Expr::int(hi)));
        s
    }

    #[test]
    fn bounds_of_linear_expression() {
        let s = scope_with("x", 0, 9);
        let e = Expr::var_i32("x") * 2 + 5;
        let b = bounds_of_expr_in_scope(&e, &s);
        assert_eq!(b.min.unwrap().as_const_int(), Some(5));
        assert_eq!(b.max.unwrap().as_const_int(), Some(23));
    }

    #[test]
    fn bounds_of_subtraction_flips() {
        let s = scope_with("x", 0, 9);
        let e = Expr::int(100) - Expr::var_i32("x");
        let b = bounds_of_expr_in_scope(&e, &s);
        assert_eq!(b.min.unwrap().as_const_int(), Some(91));
        assert_eq!(b.max.unwrap().as_const_int(), Some(100));
    }

    #[test]
    fn bounds_of_negative_scale() {
        let s = scope_with("x", 1, 4);
        let e = Expr::var_i32("x") * -3;
        let b = bounds_of_expr_in_scope(&e, &s);
        assert_eq!(b.min.unwrap().as_const_int(), Some(-12));
        assert_eq!(b.max.unwrap().as_const_int(), Some(-3));
    }

    #[test]
    fn free_variables_stay_symbolic() {
        let s = scope_with("x", 0, 3);
        let e = Expr::var_i32("x") + Expr::var_i32("w");
        let b = bounds_of_expr_in_scope(&e, &s);
        assert_eq!(b.min.unwrap().to_string(), "w");
        assert_eq!(b.max.unwrap().to_string(), "(w + 3)");
    }

    #[test]
    fn min_max_and_clamp() {
        let s = scope_with("x", -5, 5);
        let clamped = Expr::var_i32("x").clamp(Expr::int(0), Expr::int(3));
        let b = bounds_of_expr_in_scope(&clamped, &s);
        assert_eq!(b.min.unwrap().as_const_int(), Some(0));
        assert_eq!(b.max.unwrap().as_const_int(), Some(3));
    }

    #[test]
    fn clamp_bounds_an_unbounded_value() {
        // Bounds of a value loaded from memory are unknown, but clamping it
        // introduces bounds — the paper's prescribed idiom.
        let loaded = Expr::load(Type::i32(), "buf", Expr::var_i32("i"));
        let clamped = loaded.clamp(Expr::int(0), Expr::int(255));
        let b = bounds_of_expr_in_scope(&clamped, &Scope::new());
        assert_eq!(b.min.unwrap().as_const_int(), Some(0));
        assert_eq!(b.max.unwrap().as_const_int(), Some(255));
    }

    #[test]
    fn division_and_mod() {
        let s = scope_with("x", 0, 99);
        let b = bounds_of_expr_in_scope(&(Expr::var_i32("x") / 10), &s);
        assert_eq!(b.min.unwrap().as_const_int(), Some(0));
        assert_eq!(b.max.unwrap().as_const_int(), Some(9));
        let b = bounds_of_expr_in_scope(&(Expr::var_i32("x") % 8), &s);
        assert_eq!(b.min.unwrap().as_const_int(), Some(0));
        assert_eq!(b.max.unwrap().as_const_int(), Some(7));
    }

    #[test]
    fn select_unions_branches() {
        let s = scope_with("x", 0, 9);
        let e = Expr::select(
            Expr::lt(Expr::var_i32("x"), Expr::int(5)),
            Expr::var_i32("x"),
            Expr::var_i32("x") + 100,
        );
        let b = bounds_of_expr_in_scope(&e, &s);
        assert_eq!(b.min.unwrap().as_const_int(), Some(0));
        assert_eq!(b.max.unwrap().as_const_int(), Some(109));
    }

    #[test]
    fn ramp_bounds() {
        let s = Scope::new();
        let e = Expr::ramp(Expr::int(10), Expr::int(2), 4);
        let b = bounds_of_expr_in_scope(&e, &s);
        assert_eq!(b.min.unwrap().as_const_int(), Some(10));
        assert_eq!(b.max.unwrap().as_const_int(), Some(16));
    }

    #[test]
    fn interval_union_and_extent() {
        let a = Interval::new(Expr::int(0), Expr::int(4));
        let b = Interval::new(Expr::int(3), Expr::int(9));
        let u = a.union(&b);
        assert_eq!(u.min.as_ref().unwrap().as_const_int(), Some(0));
        assert_eq!(u.max.as_ref().unwrap().as_const_int(), Some(9));
        assert_eq!(u.extent().unwrap().as_const_int(), Some(10));
    }

    #[test]
    fn unbounded_propagation() {
        let e = Expr::load(Type::i32(), "buf", Expr::int(0)) + 1;
        let b = bounds_of_expr(&e);
        assert!(b.min.is_none());
        assert!(b.max.is_none());
        assert!(!b.is_bounded());
        assert!(b.extent().is_none());
    }

    #[test]
    fn provably_within_works() {
        let s = scope_with("x", 2, 7);
        assert!(provably_within(&Expr::var_i32("x"), 0, 10, &s));
        assert!(!provably_within(&Expr::var_i32("x"), 3, 10, &s));
    }

    #[test]
    fn loop_interval_shape() {
        let i = loop_interval(&Expr::int(4), &Expr::int(8));
        assert_eq!(i.min.unwrap().as_const_int(), Some(4));
        assert_eq!(i.max.unwrap().as_const_int(), Some(11));
    }
}
