//! Replays every checked-in corpus case (`tests/corpus/*.case` at the
//! workspace root) through the full differential matrix on every
//! `cargo test`. Each file is either a minimized reproduction of a bug the
//! fuzzer once found (now fixed — this is its permanent regression test) or
//! a pinned generated case guarding the replay path itself.

use std::path::PathBuf;

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/corpus")
}

#[test]
fn every_corpus_case_passes_the_differential_matrix() {
    let dir = corpus_dir();
    let mut files: Vec<PathBuf> = std::fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("corpus dir {} missing: {e}", dir.display()))
        .filter_map(|e| Some(e.ok()?.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "case"))
        .collect();
    files.sort();
    assert!(
        !files.is_empty(),
        "corpus at {} holds no .case files; the replay harness would be vacuous",
        dir.display()
    );
    for path in files {
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        let text =
            std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{name}: unreadable: {e}"));
        let case = halide_fuzz::corpus::from_text(&text)
            .unwrap_or_else(|e| panic!("{name}: parse error: {e}"));
        halide_fuzz::build::validate_case(&case)
            .unwrap_or_else(|e| panic!("{name}: case is no longer legal: {e}"));
        halide_fuzz::run::run_case(&case)
            .unwrap_or_else(|e| panic!("{name}: differential failure:\n{e}"));
    }
}

/// The corpus format itself stays parseable: serializing any parsed case
/// reproduces an equal case (guards against format drift breaking old
/// files silently).
#[test]
fn corpus_files_round_trip_through_the_writer() {
    let dir = corpus_dir();
    for entry in std::fs::read_dir(&dir).into_iter().flatten().flatten() {
        let path = entry.path();
        if path.extension().is_none_or(|x| x != "case") {
            continue;
        }
        let text = std::fs::read_to_string(&path).unwrap();
        let case = halide_fuzz::corpus::from_text(&text).unwrap();
        let again = halide_fuzz::corpus::from_text(&halide_fuzz::corpus::to_text(&case)).unwrap();
        assert_eq!(
            case,
            again,
            "{} drifted through a round-trip",
            path.display()
        );
    }
}
