//! Corpus serialization: a `FuzzCase` as a small line-based text file,
//! dependency-free in both directions (`to_text` / `from_text`), so
//! minimized reproductions can be checked into `tests/corpus/` and
//! replayed forever by `cargo test` (see `crates/fuzz/tests/corpus_replay.rs`).
//!
//! The format is deliberately boring:
//!
//! ```text
//! # halide-fuzz case v1
//! seed 42
//! size 7 5
//! threads 2
//! stage stencil input 4 -1:0:1,0:0:2,1:0:1
//! stage point 0 threshold 1
//! sched 1 split x 4
//! sched 1 vectorize x_i
//! sched 0 compute_at 1 y
//! ```
//!
//! `stage` lines appear in index order; `sched` lines append one directive
//! to the named stage (in file order). Sources are `input` or a stage
//! index. All numbers are integers, so round-trips are exact.

use std::fmt::Write as _;

use halide_schedule::TailStrategy;

use crate::grammar::{CombineOp, Directive, FuzzCase, PointOp, Source, Stage, StageOp};

/// Header line identifying the format (and its version).
pub const HEADER: &str = "# halide-fuzz case v1";

fn src_str(s: Source) -> String {
    match s {
        Source::Input => "input".to_string(),
        Source::Stage(j) => j.to_string(),
    }
}

/// Serializes a case. The output parses back to an equal case via
/// [`from_text`].
pub fn to_text(case: &FuzzCase) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{HEADER}");
    let _ = writeln!(out, "seed {}", case.seed);
    let _ = writeln!(out, "size {} {}", case.width, case.height);
    let _ = writeln!(out, "threads {}", case.threads);
    for stage in &case.stages {
        match &stage.op {
            StageOp::Point { src, op } => {
                let (name, k) = match op {
                    PointOp::AddC(k) => ("addc", *k),
                    PointOp::MulC(k) => ("mulc", *k),
                    PointOp::Threshold(k) => ("threshold", *k),
                    PointOp::ClampC(k) => ("clampc", *k),
                    PointOp::AbsDiff(k) => ("absdiff", *k),
                };
                let _ = writeln!(out, "stage point {} {name} {k}", src_str(*src));
            }
            StageOp::Stencil { src, taps, div } => {
                let taps: Vec<String> = taps
                    .iter()
                    .map(|(dx, dy, w)| format!("{dx}:{dy}:{w}"))
                    .collect();
                let _ = writeln!(
                    out,
                    "stage stencil {} {div} {}",
                    src_str(*src),
                    taps.join(",")
                );
            }
            StageOp::Combine { a, b, op } => {
                let name = match op {
                    CombineOp::Add => "add",
                    CombineOp::Sub => "sub",
                    CombineOp::Mul => "mul",
                    CombineOp::Min => "min",
                    CombineOp::Max => "max",
                };
                let _ = writeln!(out, "stage combine {} {} {name}", src_str(*a), src_str(*b));
            }
            StageOp::Reduce { src, rx, ry } => {
                let _ = writeln!(out, "stage reduce {} {rx} {ry}", src_str(*src));
            }
            StageOp::Scan { src, extent } => {
                let _ = writeln!(out, "stage scan {} {extent}", src_str(*src));
            }
        }
    }
    for (i, stage) in case.stages.iter().enumerate() {
        for d in &stage.directives {
            let line = match d {
                Directive::Split { dim, factor, tail } => {
                    if *tail == TailStrategy::default() {
                        format!("split {dim} {factor}")
                    } else {
                        format!("split {dim} {factor} {tail}")
                    }
                }
                Directive::Reorder(dims) => format!("reorder {}", dims.join(" ")),
                Directive::Parallel(dim) => format!("parallel {dim}"),
                Directive::Vectorize(dim) => format!("vectorize {dim}"),
                Directive::Unroll(dim) => format!("unroll {dim}"),
                Directive::ComputeAt { consumer, dim } => format!("compute_at {consumer} {dim}"),
                Directive::ComputeInline => "compute_inline".to_string(),
                Directive::StoreRoot => "store_root".to_string(),
            };
            let _ = writeln!(out, "sched {i} {line}");
        }
    }
    out
}

fn parse_src(tok: &str) -> Result<Source, String> {
    if tok == "input" {
        Ok(Source::Input)
    } else {
        tok.parse::<usize>()
            .map(Source::Stage)
            .map_err(|_| format!("bad source {tok:?}"))
    }
}

fn parse_num<T: std::str::FromStr>(tok: &str, what: &str) -> Result<T, String> {
    tok.parse::<T>().map_err(|_| format!("bad {what}: {tok:?}"))
}

/// Parses a case serialized by [`to_text`].
///
/// # Errors
///
/// Fails with a line-numbered message on any malformed line. Parsing does
/// not validate the case semantically — replay harnesses call
/// [`crate::build::validate_case`] (or just run it) after parsing.
pub fn from_text(text: &str) -> Result<FuzzCase, String> {
    let mut case = FuzzCase {
        seed: 0,
        width: 0,
        height: 0,
        threads: 1,
        stages: Vec::new(),
    };
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        let err = |msg: String| Err(format!("line {}: {msg}", lineno + 1));
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let toks: Vec<&str> = line.split_whitespace().collect();
        match toks[0] {
            "seed" if toks.len() == 2 => case.seed = parse_num(toks[1], "seed")?,
            "size" if toks.len() == 3 => {
                case.width = parse_num(toks[1], "width")?;
                case.height = parse_num(toks[2], "height")?;
            }
            "threads" if toks.len() == 2 => case.threads = parse_num(toks[1], "threads")?,
            "stage" if toks.len() >= 2 => {
                let op = match (toks[1], toks.len()) {
                    ("point", 5) => {
                        let k: i32 = parse_num(toks[4], "point constant")?;
                        let op = match toks[3] {
                            "addc" => PointOp::AddC(k),
                            "mulc" => PointOp::MulC(k),
                            "threshold" => PointOp::Threshold(k),
                            "clampc" => PointOp::ClampC(k),
                            "absdiff" => PointOp::AbsDiff(k),
                            other => return err(format!("unknown point op {other:?}")),
                        };
                        StageOp::Point {
                            src: parse_src(toks[2])?,
                            op,
                        }
                    }
                    ("stencil", 5) => {
                        let mut taps = Vec::new();
                        for t in toks[4].split(',') {
                            let p: Vec<&str> = t.split(':').collect();
                            if p.len() != 3 {
                                return err(format!("bad tap {t:?}"));
                            }
                            taps.push((
                                parse_num(p[0], "tap dx")?,
                                parse_num(p[1], "tap dy")?,
                                parse_num(p[2], "tap weight")?,
                            ));
                        }
                        StageOp::Stencil {
                            src: parse_src(toks[2])?,
                            div: parse_num(toks[3], "divisor")?,
                            taps,
                        }
                    }
                    ("combine", 5) => StageOp::Combine {
                        a: parse_src(toks[2])?,
                        b: parse_src(toks[3])?,
                        op: match toks[4] {
                            "add" => CombineOp::Add,
                            "sub" => CombineOp::Sub,
                            "mul" => CombineOp::Mul,
                            "min" => CombineOp::Min,
                            "max" => CombineOp::Max,
                            other => return err(format!("unknown combine op {other:?}")),
                        },
                    },
                    ("reduce", 5) => StageOp::Reduce {
                        src: parse_src(toks[2])?,
                        rx: parse_num(toks[3], "window width")?,
                        ry: parse_num(toks[4], "window height")?,
                    },
                    ("scan", 4) => StageOp::Scan {
                        src: parse_src(toks[2])?,
                        extent: parse_num(toks[3], "scan extent")?,
                    },
                    (other, _) => return err(format!("unknown or malformed stage {other:?}")),
                };
                case.stages.push(Stage {
                    op,
                    directives: Vec::new(),
                });
            }
            "sched" if toks.len() >= 3 => {
                let idx: usize = parse_num(toks[1], "stage index")?;
                if idx >= case.stages.len() {
                    return err(format!("sched references undeclared stage {idx}"));
                }
                let d = match (toks[2], toks.len()) {
                    ("split", 5) => Directive::Split {
                        dim: toks[3].to_string(),
                        factor: parse_num(toks[4], "split factor")?,
                        tail: TailStrategy::default(),
                    },
                    ("split", 6) => Directive::Split {
                        dim: toks[3].to_string(),
                        factor: parse_num(toks[4], "split factor")?,
                        tail: match toks[5] {
                            "shift_inwards" => TailStrategy::ShiftInwards,
                            "guard_with_if" => TailStrategy::GuardWithIf,
                            "predicate" => TailStrategy::Predicate,
                            "round_up" => TailStrategy::RoundUp,
                            other => return err(format!("unknown tail strategy {other:?}")),
                        },
                    },
                    ("reorder", n) if n >= 4 => {
                        Directive::Reorder(toks[3..].iter().map(|s| s.to_string()).collect())
                    }
                    ("parallel", 4) => Directive::Parallel(toks[3].to_string()),
                    ("vectorize", 4) => Directive::Vectorize(toks[3].to_string()),
                    ("unroll", 4) => Directive::Unroll(toks[3].to_string()),
                    ("compute_at", 5) => Directive::ComputeAt {
                        consumer: parse_num(toks[3], "consumer index")?,
                        dim: toks[4].to_string(),
                    },
                    ("compute_inline", 3) => Directive::ComputeInline,
                    ("store_root", 3) => Directive::StoreRoot,
                    (other, _) => return err(format!("unknown or malformed directive {other:?}")),
                };
                case.stages[idx].directives.push(d);
            }
            other => return err(format!("unknown or malformed line starting {other:?}")),
        }
    }
    if case.stages.is_empty() {
        return Err("case declares no stages".to_string());
    }
    if case.width < 1 || case.height < 1 {
        return Err("case declares no size".to_string());
    }
    Ok(case)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grammar;

    #[test]
    fn generated_cases_round_trip() {
        for seed in 0..150u64 {
            let case = grammar::generate(seed);
            let text = to_text(&case);
            let back = from_text(&text)
                .unwrap_or_else(|e| panic!("seed {seed}: reparse failed: {e}\n{text}"));
            assert_eq!(case, back, "seed {seed} did not round-trip:\n{text}");
        }
    }

    #[test]
    fn malformed_lines_are_rejected_with_line_numbers() {
        assert!(from_text("").is_err());
        assert!(from_text("stage point input addc 1").is_err()); // no size
        let err = from_text("size 4 4\nstage bogus input\n").unwrap_err();
        assert!(err.contains("line 2"), "{err}");
        let err =
            from_text("size 4 4\nstage point input addc 1\nsched 3 parallel y\n").unwrap_err();
        assert!(err.contains("undeclared stage"), "{err}");
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let case = grammar::generate(7);
        let mut text = String::from("# a comment\n\n");
        text.push_str(&to_text(&case));
        assert_eq!(from_text(&text).unwrap(), case);
    }
}
