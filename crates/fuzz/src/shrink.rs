//! Shrinking a failing case to a minimal reproduction.
//!
//! Greedy delta-debugging to a fixpoint: repeatedly propose a structurally
//! smaller candidate (drop a stage, strip a directive, simplify an op,
//! halve the extents, drop threads) and keep it if it is still a *legal*
//! case that still *fails*. Any failure counts — shrinking may walk from
//! one symptom of a bug to another, and the minimal case is what gets
//! checked into the corpus either way.

use crate::build;
use crate::grammar::{Directive, FuzzCase, PointOp, Source, StageOp};
use crate::run;

/// Does `case` still reproduce *a* failure (and remain legal)?
fn still_fails(case: &FuzzCase) -> bool {
    build::validate_case(case).is_ok() && run::run_case(case).is_err()
}

fn remap_source(s: &mut Source, dropped: usize, replacement: Source) {
    if let Source::Stage(j) = s {
        if *j == dropped {
            *s = replacement;
        } else if *j > dropped {
            *s = Source::Stage(*j - 1);
        }
    }
}

/// Removes stage `k`, rewiring its consumers to its own first source and
/// shifting later indices down. `ComputeAt` directives pointing at the
/// dropped stage are removed; those pointing past it are remapped.
fn drop_stage(case: &FuzzCase, k: usize) -> FuzzCase {
    let replacement = case.stages[k].op.sources()[0];
    let mut out = case.clone();
    out.stages.remove(k);
    for stage in &mut out.stages {
        match &mut stage.op {
            StageOp::Point { src, .. }
            | StageOp::Stencil { src, .. }
            | StageOp::Reduce { src, .. }
            | StageOp::Scan { src, .. } => remap_source(src, k, replacement),
            StageOp::Combine { a, b, .. } => {
                remap_source(a, k, replacement);
                remap_source(b, k, replacement);
            }
        }
        stage.directives.retain_mut(|d| {
            if let Directive::ComputeAt { consumer, .. } = d {
                if *consumer == k {
                    return false;
                }
                if *consumer > k {
                    *consumer -= 1;
                }
            }
            true
        });
    }
    out
}

/// Structurally smaller candidates, most aggressive first. Illegal
/// candidates are filtered by the caller via [`still_fails`].
fn candidates(case: &FuzzCase) -> Vec<FuzzCase> {
    let mut out = Vec::new();
    let n = case.stages.len();

    // Drop interior stages (the output stays the output).
    for k in 0..n.saturating_sub(1) {
        out.push(drop_stage(case, k));
    }
    // Truncate the output: promote its predecessor, pruning what dies. The
    // promoted output may carry a now-forbidden call schedule; reset it.
    if n >= 2 {
        let mut c = case.clone();
        c.stages.pop();
        if let Some(last) = c.stages.last_mut() {
            last.directives.retain(|d| {
                !matches!(
                    d,
                    Directive::ComputeAt { .. } | Directive::ComputeInline | Directive::StoreRoot
                )
            });
        }
        crate::grammar::prune_unreachable(&mut c);
        out.push(c);
    }

    // Strip directives: whole lists first, then one at a time.
    for (i, stage) in case.stages.iter().enumerate() {
        if stage.directives.is_empty() {
            continue;
        }
        let mut c = case.clone();
        c.stages[i].directives.clear();
        out.push(c);
        for d in 0..stage.directives.len() {
            let mut c = case.clone();
            c.stages[i].directives.remove(d);
            out.push(c);
        }
    }

    // Simplify tail strategies back to the default: a failure that survives
    // this did not need the partitioned/predicated lowering path.
    for (i, stage) in case.stages.iter().enumerate() {
        for (d, dir) in stage.directives.iter().enumerate() {
            if let Directive::Split { tail, .. } = dir {
                if *tail != Default::default() {
                    let mut c = case.clone();
                    if let Directive::Split { tail, .. } = &mut c.stages[i].directives[d] {
                        *tail = Default::default();
                    }
                    out.push(c);
                }
            }
        }
    }

    // Simplify ops: stencil taps one at a time, then whole ops to the
    // identity point op over their first source.
    for (i, stage) in case.stages.iter().enumerate() {
        if let StageOp::Stencil { taps, .. } = &stage.op {
            if taps.len() > 1 {
                for t in 0..taps.len() {
                    let mut c = case.clone();
                    if let StageOp::Stencil { taps, .. } = &mut c.stages[i].op {
                        taps.remove(t);
                    }
                    out.push(c);
                }
            }
        }
        let identity = StageOp::Point {
            src: stage.op.sources()[0],
            op: PointOp::AddC(0),
        };
        if stage.op != identity {
            let mut c = case.clone();
            c.stages[i].op = identity;
            out.push(c);
        }
    }

    // Halve extents and drop threads.
    if case.width > 1 {
        let mut c = case.clone();
        c.width = (case.width + 1) / 2;
        out.push(c);
    }
    if case.height > 1 {
        let mut c = case.clone();
        c.height = (case.height + 1) / 2;
        out.push(c);
    }
    if case.threads > 1 {
        let mut c = case.clone();
        c.threads = 1;
        out.push(c);
    }
    out
}

/// Shrinks a failing case greedily to a fixpoint (bounded by `max_steps`
/// accepted shrinks as a runaway guard). The input must fail; the result
/// still fails and no candidate of it does.
pub fn shrink(case: &FuzzCase) -> FuzzCase {
    debug_assert!(still_fails(case), "shrink called on a passing case");
    let mut cur = case.clone();
    let max_steps = 200;
    for _ in 0..max_steps {
        let Some(next) = candidates(&cur).into_iter().find(still_fails) else {
            break;
        };
        cur = next;
    }
    cur
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grammar::Stage;

    fn point(src: Source, k: i32) -> Stage {
        Stage {
            op: StageOp::Point {
                src,
                op: PointOp::AddC(k),
            },
            directives: vec![],
        }
    }

    #[test]
    fn drop_stage_rewires_and_remaps() {
        let case = FuzzCase {
            seed: 0,
            width: 8,
            height: 8,
            threads: 1,
            stages: vec![
                point(Source::Input, 1),
                point(Source::Stage(0), 2),
                Stage {
                    op: StageOp::Combine {
                        a: Source::Stage(0),
                        b: Source::Stage(1),
                        op: crate::grammar::CombineOp::Add,
                    },
                    directives: vec![],
                },
            ],
        };
        let dropped = drop_stage(&case, 1);
        assert_eq!(dropped.stages.len(), 2);
        // Stage 1's consumers now read its source, stage 0.
        assert_eq!(
            dropped.stages[1].op,
            StageOp::Combine {
                a: Source::Stage(0),
                b: Source::Stage(0),
                op: crate::grammar::CombineOp::Add,
            }
        );
        assert!(build::validate_case(&dropped).is_ok());
    }

    #[test]
    fn candidates_are_mostly_legal() {
        // Shrink steps should usually remain in the legal space — a smoke
        // check that candidate construction is not generating garbage.
        for seed in 0..30u64 {
            let case = crate::grammar::generate(seed);
            let cands = candidates(&case);
            assert!(!cands.is_empty() || case.stages.len() == 1);
            let legal = cands
                .iter()
                .filter(|c| build::validate_case(c).is_ok())
                .count();
            assert!(
                legal * 2 >= cands.len(),
                "seed {seed}: only {legal}/{} candidates legal",
                cands.len()
            );
        }
    }
}
