//! Driving one case through the full differential contract.
//!
//! Every case is lowered once and realized four ways with identical
//! bindings:
//!
//! 1. `Backend::Interp` — the reference semantics;
//! 2. `Backend::Compiled` at `OptLevel::None` (raw linearize → emit);
//! 3. `Backend::Compiled` at `OptLevel::Default` (full pass pipeline);
//! 4. like 3, but realized *into* a recycled buffer from a [`BufferPool`].
//!
//! All four must produce **bit-identical** outputs, and 2–4 must match the
//! interpreter's counters exactly (`peak_bytes_live` excluded — it depends
//! on parallel timing; the pooled run additionally excludes the pool
//! hit/miss counters its acquisition path touches).
//!
//! A legality-validated case that fails to lower or realize is also a
//! failure: the predicate is supposed to be sound, so any rejection
//! downstream is a bug in one layer or the other.

use std::sync::Arc;

use halide_exec::{Backend, OptLevel, Realizer};
use halide_ir::ScalarType;
use halide_lower::Module;
use halide_runtime::{Buffer, BufferPool, CounterSnapshot};

use crate::build;
use crate::grammar::FuzzCase;

/// The deterministic input image for a case: small mixed-sign values,
/// exactly representable in f32, independent of the seed so corpus cases
/// are self-contained.
pub fn make_input(width: i64, height: i64) -> Buffer {
    Buffer::from_fn_2d(ScalarType::Float(32), width, height, |x, y| {
        ((x * 31 + y * 17) % 13) as f64 - 6.0
    })
}

fn counters_for_compare(mut c: CounterSnapshot, pooled: bool) -> CounterSnapshot {
    c.peak_bytes_live = 0;
    if pooled {
        c.pool_hits = 0;
        c.pool_misses = 0;
    }
    c
}

fn compare_outputs(label: &str, got: &Buffer, want: &[f64]) -> Result<(), String> {
    let a = got.to_f64_vec();
    if a.len() != want.len() {
        return Err(format!(
            "{label}: output has {} elements, interpreter produced {}",
            a.len(),
            want.len()
        ));
    }
    for (i, (x, y)) in a.iter().zip(want.iter()).enumerate() {
        if x.to_bits() != y.to_bits() {
            return Err(format!(
                "{label}: outputs diverge at flat index {i}: got {x}, interpreter says {y}"
            ));
        }
    }
    Ok(())
}

fn compare_counters(
    label: &str,
    got: CounterSnapshot,
    want: &CounterSnapshot,
    pooled: bool,
) -> Result<(), String> {
    let got = counters_for_compare(got, pooled);
    if &got != want {
        return Err(format!(
            "{label}: counters diverge from the interpreter:\n  got:  {got:?}\n  want: {want:?}"
        ));
    }
    Ok(())
}

/// Lowers `case` and runs the full differential matrix.
///
/// # Errors
///
/// Returns a description of the first divergence (or lowering/realization
/// error) found. Any `Err` from a case that passed
/// [`build::validate_case`] is a bug somewhere in the stack.
pub fn run_case(case: &FuzzCase) -> Result<(), String> {
    let module = lower_case(case)?;
    run_case_lowered(case, &module)
}

/// Builds and lowers a case (shared with the stats harness, which wants
/// per-phase timing).
///
/// # Errors
///
/// Propagates build/lowering failures as strings.
pub fn lower_case(case: &FuzzCase) -> Result<Module, String> {
    let built = build::build_pipeline(case).map_err(|e| format!("build: {e}"))?;
    halide_lower::lower(&built.pipeline).map_err(|e| format!("lower: {e}"))
}

/// The realize-and-compare half of [`run_case`], on an already-lowered
/// module.
///
/// # Errors
///
/// Same contract as [`run_case`].
pub fn run_case_lowered(case: &FuzzCase, module: &Module) -> Result<(), String> {
    let input = make_input(case.width, case.height);
    let extents = [case.width, case.height];
    let run = |backend: Backend, opt: OptLevel| {
        Realizer::new(module)
            .input(build::INPUT_NAME, input.clone())
            .threads(case.threads)
            .backend(backend)
            .opt_level(opt)
            .realize(&extents)
    };

    let interp = run(Backend::Interp, OptLevel::Default)
        .map_err(|e| format!("interp: realization failed: {e}"))?;
    let want = interp.output.to_f64_vec();
    let want_counters = counters_for_compare(interp.counters, false);
    let want_counters_pooled = counters_for_compare(want_counters.clone(), true);

    for (label, opt) in [
        ("compiled opt=none", OptLevel::None),
        ("compiled opt=default", OptLevel::Default),
    ] {
        let got =
            run(Backend::Compiled, opt).map_err(|e| format!("{label}: realization failed: {e}"))?;
        compare_outputs(label, &got.output, &want)?;
        compare_counters(label, got.counters, &want_counters, false)?;
    }

    // Pooled output: dirty a pooled buffer, recycle it, and realize into it.
    // Zero-fill-on-acquire makes this indistinguishable from a fresh buffer;
    // if it is not, either the pool or an engine is lying.
    let label = "compiled opt=default pooled-output";
    let pool = Arc::new(BufferPool::default());
    let dirty = pool.acquire(ScalarType::Float(32), &extents);
    dirty.set_coords_f64(&[0, 0], 999.0);
    drop(dirty);
    let out = pool.acquire(ScalarType::Float(32), &extents).detach();
    let pooled = Realizer::new(module)
        .input(build::INPUT_NAME, input.clone())
        .threads(case.threads)
        .backend(Backend::Compiled)
        .opt_level(OptLevel::Default)
        .realize_into(out)
        .map_err(|e| format!("{label}: realization failed: {e}"))?;
    compare_outputs(label, &pooled.output, &want)?;
    compare_counters(label, pooled.counters, &want_counters_pooled, true)?;

    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grammar::{self, Directive, PointOp, Source, Stage, StageOp};

    #[test]
    fn a_simple_case_passes_the_matrix() {
        let case = FuzzCase {
            seed: 0,
            width: 7,
            height: 5,
            threads: 2,
            stages: vec![
                Stage {
                    op: StageOp::Stencil {
                        src: Source::Input,
                        taps: vec![(-1, 0, 1), (0, 0, 2), (1, 0, 1)],
                        div: 4,
                    },
                    directives: vec![Directive::ComputeAt {
                        consumer: 1,
                        dim: "y".to_string(),
                    }],
                },
                Stage {
                    op: StageOp::Point {
                        src: Source::Stage(0),
                        op: PointOp::Threshold(1),
                    },
                    directives: vec![
                        Directive::Split {
                            dim: "x".to_string(),
                            factor: 4,
                            tail: Default::default(),
                        },
                        Directive::Vectorize("x_i".to_string()),
                    ],
                },
            ],
        };
        run_case(&case).unwrap();
    }

    #[test]
    fn generated_cases_pass_the_matrix() {
        // A quick smoke sweep; the binary and CI run far more.
        for seed in 0..25u64 {
            let case = grammar::generate(seed);
            run_case(&case).unwrap_or_else(|e| panic!("seed {seed}: {e}\ncase: {case:#?}"));
        }
    }
}
