//! The fuzz campaign driver.
//!
//! ```text
//! cargo run -p halide-fuzz -- --cases 500 --seed 0
//! ```
//!
//! Generates `--cases` consecutive seeds starting at `--seed`, runs each
//! through the differential matrix, and on failure shrinks to a minimal
//! case written into `--corpus-dir` (default `tests/corpus/`) as
//! `fuzz_seed_<seed>.case` — the file a `cargo test` replay then guards
//! forever. Exits nonzero if any case failed. `--stats-out` additionally
//! writes a small JSON stats report (used by the bench harness's
//! `fuzz_stats` bin).

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

use halide_fuzz::{corpus, grammar, run, shrink};

struct Args {
    cases: u64,
    seed: u64,
    corpus_dir: PathBuf,
    stats_out: Option<PathBuf>,
    quiet: bool,
    replay: Option<PathBuf>,
    pin: Vec<u64>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        cases: 200,
        seed: 0,
        corpus_dir: PathBuf::from("tests/corpus"),
        stats_out: None,
        quiet: false,
        replay: None,
        pin: Vec::new(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |what: &str| {
            it.next()
                .ok_or_else(|| format!("{flag} requires a {what} argument"))
        };
        match flag.as_str() {
            "--cases" => {
                args.cases = value("count")?
                    .parse()
                    .map_err(|e| format!("--cases: {e}"))?
            }
            "--seed" => args.seed = value("seed")?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--corpus-dir" => args.corpus_dir = PathBuf::from(value("path")?),
            "--stats-out" => args.stats_out = Some(PathBuf::from(value("path")?)),
            "--replay" => args.replay = Some(PathBuf::from(value("path")?)),
            "--pin" => {
                for s in value("seed list")?.split(',') {
                    args.pin
                        .push(s.trim().parse().map_err(|e| format!("--pin: {e}"))?);
                }
            }
            "--quiet" => args.quiet = true,
            "--help" | "-h" => {
                return Err(
                    "usage: halide-fuzz [--cases N] [--seed S] [--corpus-dir DIR] \
                            [--stats-out FILE] [--replay FILE.case] [--pin S1,S2,...] [--quiet]"
                        .to_string(),
                )
            }
            other => return Err(format!("unknown flag {other:?} (try --help)")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };

    // Replay mode: run one corpus file through the matrix and report.
    if let Some(path) = &args.replay {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("cannot read {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        };
        let case = match corpus::from_text(&text) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("{}: parse error: {e}", path.display());
                return ExitCode::FAILURE;
            }
        };
        if let Err(e) = halide_fuzz::build::validate_case(&case) {
            eprintln!("{}: illegal case: {e}", path.display());
            return ExitCode::FAILURE;
        }
        return match run::run_case(&case) {
            Ok(()) => {
                println!("{}: PASS", path.display());
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("{}: FAIL: {e}", path.display());
                ExitCode::FAILURE
            }
        };
    }

    // Pin mode: write the generated case for each listed seed into the
    // corpus (after checking it passes), so `cargo test` replays it forever.
    if !args.pin.is_empty() {
        if let Err(e) = std::fs::create_dir_all(&args.corpus_dir) {
            eprintln!("cannot create corpus dir: {e}");
            return ExitCode::FAILURE;
        }
        for &seed in &args.pin {
            let case = grammar::generate(seed);
            if let Err(e) = run::run_case(&case) {
                eprintln!("seed {seed} does not pass the matrix, not pinning: {e}");
                return ExitCode::FAILURE;
            }
            let path = args.corpus_dir.join(format!("pinned_seed_{seed}.case"));
            if let Err(e) = std::fs::write(&path, corpus::to_text(&case)) {
                eprintln!("cannot write {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
            println!("pinned seed {seed} -> {}", path.display());
        }
        return ExitCode::SUCCESS;
    }

    let start = Instant::now();
    let mut failures: Vec<(u64, String)> = Vec::new();
    let mut stage_count = 0usize;
    let mut op_hist: BTreeMap<&'static str, usize> = BTreeMap::new();
    let mut dir_hist: BTreeMap<&'static str, usize> = BTreeMap::new();

    for i in 0..args.cases {
        let seed = args.seed + i;
        let case = grammar::generate(seed);
        stage_count += case.stages.len();
        for s in &case.stages {
            *op_hist.entry(s.op.tag()).or_default() += 1;
            for d in &s.directives {
                *dir_hist.entry(d.tag()).or_default() += 1;
            }
        }
        match run::run_case(&case) {
            Ok(()) => {
                if !args.quiet && (i + 1) % 100 == 0 {
                    eprintln!("[halide-fuzz] {}/{} cases ok", i + 1, args.cases);
                }
            }
            Err(msg) => {
                eprintln!("[halide-fuzz] seed {seed} FAILED: {msg}");
                eprintln!("[halide-fuzz] shrinking...");
                let minimal = shrink::shrink(&case);
                let min_msg = run::run_case(&minimal).err().unwrap_or_else(|| msg.clone());
                let text = corpus::to_text(&minimal);
                if let Err(e) = std::fs::create_dir_all(&args.corpus_dir) {
                    eprintln!("[halide-fuzz] cannot create corpus dir: {e}");
                }
                let path = args.corpus_dir.join(format!("fuzz_seed_{seed}.case"));
                match std::fs::write(&path, &text) {
                    Ok(()) => eprintln!(
                        "[halide-fuzz] minimized repro written to {}",
                        path.display()
                    ),
                    Err(e) => eprintln!("[halide-fuzz] cannot write {}: {e}", path.display()),
                }
                eprintln!("[halide-fuzz] minimized failure: {min_msg}\n{text}");
                failures.push((seed, min_msg));
            }
        }
    }

    let elapsed = start.elapsed();
    let per_sec = args.cases as f64 / elapsed.as_secs_f64().max(1e-9);
    println!(
        "halide-fuzz: {} cases ({} stages) in {:.2?} — {:.1} cases/s, {} failure(s)",
        args.cases,
        stage_count,
        elapsed,
        per_sec,
        failures.len()
    );
    if !args.quiet {
        let fmt = |h: &BTreeMap<&str, usize>| {
            h.iter()
                .map(|(k, v)| format!("{k}={v}"))
                .collect::<Vec<_>>()
                .join(" ")
        };
        println!("  ops:        {}", fmt(&op_hist));
        println!("  directives: {}", fmt(&dir_hist));
    }

    if let Some(path) = &args.stats_out {
        let hist_json = |h: &BTreeMap<&str, usize>| {
            h.iter()
                .map(|(k, v)| format!("\"{k}\": {v}"))
                .collect::<Vec<_>>()
                .join(", ")
        };
        let json = format!(
            "{{\n  \"cases\": {},\n  \"stages\": {},\n  \"failures\": {},\n  \
             \"elapsed_ms\": {:.3},\n  \"cases_per_sec\": {:.2},\n  \
             \"ops\": {{{}}},\n  \"directives\": {{{}}}\n}}\n",
            args.cases,
            stage_count,
            failures.len(),
            elapsed.as_secs_f64() * 1e3,
            per_sec,
            hist_json(&op_hist),
            hist_json(&dir_hist),
        );
        if let Err(e) = std::fs::write(path, json) {
            eprintln!(
                "[halide-fuzz] cannot write stats to {}: {e}",
                path.display()
            );
            return ExitCode::FAILURE;
        }
    }

    if failures.is_empty() {
        ExitCode::SUCCESS
    } else {
        for (seed, msg) in &failures {
            eprintln!("seed {seed}: {}", msg.lines().next().unwrap_or(""));
        }
        ExitCode::FAILURE
    }
}
