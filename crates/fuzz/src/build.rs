//! Turning a plain-data [`FuzzCase`] into things that run: its schedules
//! (for the legality predicate) and a live `halide_lang::Pipeline`.
//!
//! Everything here is deterministic in the case, and the schedules the
//! built pipeline carries are *exactly* the schedules the predicate
//! validated (applied by the same code, differing only in the
//! registry-uniquified function names).

use std::collections::BTreeMap;

use halide_ir::{Expr, Type};
use halide_lang::{Func, ImageParam, Pipeline, RDom, Var};
use halide_schedule::legality::{ConsumerEdge, FuncInfo, PipelineInfo};
use halide_schedule::{FuncSchedule, LoopLevel, Result, ScheduleError};

use crate::grammar::{CombineOp, Directive, FuzzCase, PointOp, Source, StageOp};

/// The canonical (pre-uniquification) name of stage `i`.
pub fn stage_name(i: usize) -> String {
    format!("fz{i}")
}

/// Name of the input image bound at realization time.
pub const INPUT_NAME: &str = "fuzz_in";

/// Applies a stage's directive list to a schedule, mapping `ComputeAt`
/// stage indices to function names via `consumer_name`. This is the single
/// implementation used both for legality validation and for the real
/// pipeline, so the two can never drift.
///
/// # Errors
///
/// Fails if a directive is inapplicable (unknown dim, bad reorder, ...).
pub fn apply_directives(
    schedule: &mut FuncSchedule,
    directives: &[Directive],
    consumer_name: impl Fn(usize) -> String,
) -> Result<()> {
    for d in directives {
        match d {
            Directive::Split { dim, factor, tail } => {
                schedule.split_with_tail(
                    dim,
                    format!("{dim}_o"),
                    format!("{dim}_i"),
                    *factor,
                    *tail,
                )?;
            }
            Directive::Reorder(dims) => {
                let refs: Vec<&str> = dims.iter().map(String::as_str).collect();
                schedule.reorder(&refs)?;
            }
            Directive::Parallel(dim) => schedule.parallel(dim)?,
            Directive::Vectorize(dim) => schedule.vectorize(dim)?,
            Directive::Unroll(dim) => schedule.unroll(dim)?,
            Directive::ComputeAt { consumer, dim } => {
                let level = LoopLevel::at(consumer_name(*consumer), dim.clone());
                schedule.compute_level = level.clone();
                // Mirror `Func::compute_at`: storage follows unless a coarser
                // level was already requested.
                if schedule.store_level.is_root() || schedule.store_level.is_inline() {
                    schedule.store_level = level;
                }
            }
            Directive::ComputeInline => {
                schedule.compute_level = LoopLevel::Inline;
                schedule.store_level = LoopLevel::Inline;
            }
            Directive::StoreRoot => schedule.store_level = LoopLevel::Root,
        }
    }
    Ok(())
}

fn xy_args() -> Vec<String> {
    vec!["x".to_string(), "y".to_string()]
}

/// The schedule of every stage after applying its directives (canonical
/// stage names).
///
/// # Errors
///
/// Fails on the first inapplicable directive.
pub fn stage_schedules(case: &FuzzCase) -> Result<Vec<FuncSchedule>> {
    case.stages
        .iter()
        .enumerate()
        .map(|(i, stage)| {
            let mut s = FuncSchedule::default_for_args(&xy_args());
            apply_directives(&mut s, &stage.directives, stage_name)
                .map_err(|e| ScheduleError::new(format!("stage {i}: {e}")))?;
            Ok(s)
        })
        .collect()
}

/// Structural sanity of a case, independent of scheduling: extents and
/// thread counts positive, sources acyclic (index < stage), op parameters
/// in range, and update-stage ops only at the output (their fixed-coordinate
/// writes are only guaranteed in bounds there — producer regions are sized
/// by consumer *reads*).
fn validate_structure(case: &FuzzCase) -> Result<()> {
    let fail = |msg: String| Err(ScheduleError::new(msg));
    if case.stages.is_empty() {
        return fail("case has no stages".into());
    }
    if case.width < 1 || case.height < 1 {
        return fail(format!(
            "extents {}x{} must be >= 1",
            case.width, case.height
        ));
    }
    if case.threads < 1 {
        return fail("threads must be >= 1".into());
    }
    let n = case.stages.len();
    for (i, stage) in case.stages.iter().enumerate() {
        let fail = |msg: String| Err(ScheduleError::new(format!("stage {i}: {msg}")));
        for src in stage.op.sources() {
            if let Source::Stage(j) = src {
                if j >= i {
                    return fail(format!("source stage {j} is not earlier than {i}"));
                }
            }
        }
        if stage.op.has_updates() && i + 1 != n {
            return fail("reduce/scan stages are only allowed as the output".into());
        }
        match &stage.op {
            StageOp::Stencil { taps, div, .. } => {
                if taps.is_empty() {
                    return fail("stencil has no taps".into());
                }
                if *div < 1 {
                    return fail(format!("stencil divisor {div} must be >= 1"));
                }
            }
            StageOp::Reduce { rx, ry, .. } => {
                if *rx < 1 || *ry < 1 {
                    return fail(format!("reduce window {rx}x{ry} must be >= 1"));
                }
            }
            StageOp::Scan { extent, .. } => {
                if *extent < 1 || *extent >= case.width {
                    return fail(format!(
                        "scan extent {extent} must be in [1, width) = [1, {})",
                        case.width
                    ));
                }
            }
            _ => {}
        }
    }
    Ok(())
}

/// The case as a [`PipelineInfo`] for the shared legality predicate.
///
/// # Errors
///
/// Fails on structural problems or inapplicable directives.
pub fn case_info(case: &FuzzCase) -> Result<PipelineInfo> {
    validate_structure(case)?;
    let schedules = stage_schedules(case)?;
    let n = case.stages.len();
    let mut funcs = BTreeMap::new();
    for (i, (stage, schedule)) in case.stages.iter().zip(schedules).enumerate() {
        let known_extents = if i + 1 == n {
            vec![Some(case.width), Some(case.height)]
        } else {
            vec![None, None]
        };
        // Consumers of stage i: every later stage whose op reads Stage(i).
        let consumers = case
            .stages
            .iter()
            .enumerate()
            .skip(i + 1)
            .filter(|(_, s)| s.op.sources().contains(&Source::Stage(i)))
            .map(|(j, s)| ConsumerEdge {
                consumer: stage_name(j),
                pure_only: s.op.reads_pure_only(Source::Stage(i)),
            })
            .collect();
        funcs.insert(
            stage_name(i),
            FuncInfo {
                name: stage_name(i),
                args: xy_args(),
                known_extents,
                schedule,
                has_updates: stage.op.has_updates(),
                consumers,
            },
        );
    }
    Ok(PipelineInfo {
        output: stage_name(n - 1),
        funcs,
    })
}

/// The full validity predicate over a case: structure, directives, and the
/// shared schedule-legality rules. Everything this accepts must lower and
/// run on every engine.
///
/// # Errors
///
/// Returns the first violation found.
pub fn validate_case(case: &FuzzCase) -> Result<()> {
    case_info(case)?.validate()
}

/// A case built into a live pipeline, ready to lower.
pub struct BuiltCase {
    /// The pipeline rooted at the case's output stage.
    pub pipeline: Pipeline,
    /// Name to bind the input image under.
    pub input_name: String,
    /// Output extents (`[width, height]`).
    pub extents: Vec<i64>,
}

fn point_expr(s: Expr, op: PointOp) -> Expr {
    match op {
        PointOp::AddC(k) => s + k as f32,
        PointOp::MulC(k) => s * k as f32,
        PointOp::Threshold(k) => Expr::select(
            Expr::gt(s.clone(), Expr::f32(k as f32)),
            s.clone() * 2.0f32,
            s + 1.0f32,
        ),
        PointOp::ClampC(k) => Expr::min(Expr::max(s, Expr::f32(-(k as f32))), Expr::f32(k as f32)),
        PointOp::AbsDiff(k) => (s - k as f32).abs(),
    }
}

/// Builds the case into real `Func`s with the validated schedules applied.
///
/// # Errors
///
/// Fails if the case is invalid ([`validate_case`]).
pub fn build_pipeline(case: &FuzzCase) -> Result<BuiltCase> {
    validate_case(case)?;
    let input = ImageParam::new(INPUT_NAME, Type::f32(), 2);
    let (x, y) = (Var::new("x"), Var::new("y"));
    let funcs: Vec<Func> = (0..case.stages.len())
        .map(|i| Func::new(stage_name(i)))
        .collect();
    let read = |src: Source, cx: Expr, cy: Expr| -> Expr {
        match src {
            Source::Input => input.at_clamped(vec![cx, cy]),
            Source::Stage(j) => funcs[j].at(vec![cx, cy]),
        }
    };
    for (i, stage) in case.stages.iter().enumerate() {
        let f = &funcs[i];
        let args = [x.clone(), y.clone()];
        match &stage.op {
            StageOp::Point { src, op } => {
                f.define(&args, point_expr(read(*src, x.expr(), y.expr()), *op));
            }
            StageOp::Stencil { src, taps, div } => {
                let mut sum: Option<Expr> = None;
                for (dx, dy, w) in taps {
                    let term = read(
                        *src,
                        x.expr() + Expr::int(*dx as i32),
                        y.expr() + Expr::int(*dy as i32),
                    ) * (*w as f32);
                    sum = Some(match sum {
                        None => term,
                        Some(acc) => acc + term,
                    });
                }
                f.define(
                    &args,
                    sum.expect("validated: taps non-empty") / (*div as f32),
                );
            }
            StageOp::Combine { a, b, op } => {
                let ea = read(*a, x.expr(), y.expr());
                let eb = read(*b, x.expr(), y.expr());
                let v = match op {
                    CombineOp::Add => ea + eb,
                    CombineOp::Sub => ea - eb,
                    CombineOp::Mul => ea * eb,
                    CombineOp::Min => Expr::min(ea, eb),
                    CombineOp::Max => Expr::max(ea, eb),
                };
                f.define(&args, v);
            }
            StageOp::Reduce { src, rx, ry } => {
                f.define(&args, Expr::f32(0.0));
                let r = RDom::new(
                    format!("r{i}"),
                    vec![
                        (Expr::int(0), Expr::int(*rx as i32)),
                        (Expr::int(0), Expr::int(*ry as i32)),
                    ],
                );
                f.update(
                    vec![x.expr(), y.expr()],
                    f.at(vec![x.expr(), y.expr()])
                        + read(*src, x.expr() + r.x().expr(), y.expr() + r.y().expr()),
                    Some(r),
                );
            }
            StageOp::Scan { src, extent } => {
                f.define(&args, read(*src, x.expr(), y.expr()));
                let r = RDom::over(format!("r{i}"), 0, *extent as i32);
                f.update(
                    vec![r.x().expr() + 1, y.expr()],
                    f.at(vec![r.x().expr() + 1, y.expr()]) + f.at(vec![r.x().expr(), y.expr()]),
                    Some(r),
                );
            }
        }
    }
    for (i, stage) in case.stages.iter().enumerate() {
        let mut s = funcs[i].schedule();
        apply_directives(&mut s, &stage.directives, |j| funcs[j].name())
            .map_err(|e| ScheduleError::new(format!("stage {i}: {e}")))?;
        funcs[i].set_schedule(s);
    }
    Ok(BuiltCase {
        pipeline: Pipeline::new(funcs.last().expect("validated: non-empty")),
        input_name: INPUT_NAME.to_string(),
        extents: vec![case.width, case.height],
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grammar::Stage;

    fn point_case() -> FuzzCase {
        FuzzCase {
            seed: 0,
            width: 8,
            height: 6,
            threads: 1,
            stages: vec![
                Stage {
                    op: StageOp::Point {
                        src: Source::Input,
                        op: PointOp::MulC(2),
                    },
                    directives: vec![],
                },
                Stage {
                    op: StageOp::Point {
                        src: Source::Stage(0),
                        op: PointOp::AddC(1),
                    },
                    directives: vec![Directive::Split {
                        dim: "x".to_string(),
                        factor: 4,
                        tail: Default::default(),
                    }],
                },
            ],
        }
    }

    #[test]
    fn valid_case_builds_and_lowers() {
        let case = point_case();
        assert!(validate_case(&case).is_ok());
        let built = build_pipeline(&case).unwrap();
        assert_eq!(built.pipeline.len(), 2);
        halide_lower::lower(&built.pipeline).expect("validated case must lower");
    }

    #[test]
    fn structural_violations_are_rejected() {
        let mut c = point_case();
        c.width = 0;
        assert!(validate_case(&c).is_err());

        let mut c = point_case();
        c.stages[0].op = StageOp::Point {
            src: Source::Stage(0),
            op: PointOp::AddC(1),
        };
        assert!(validate_case(&c).is_err());

        // interior reduce
        let mut c = point_case();
        c.stages[0].op = StageOp::Reduce {
            src: Source::Input,
            rx: 2,
            ry: 2,
        };
        assert!(validate_case(&c).is_err());

        // scan writes past the output width
        let mut c = point_case();
        c.stages[1].op = StageOp::Scan {
            src: Source::Stage(0),
            extent: 8,
        };
        assert!(validate_case(&c).is_err());
    }

    #[test]
    fn illegal_schedules_are_rejected_by_the_shared_predicate() {
        // Vectorize of a symbolic-extent dim.
        let mut c = point_case();
        c.stages[0]
            .directives
            .push(Directive::Vectorize("x".to_string()));
        assert!(validate_case(&c).is_err());

        // Split wider than the output extent.
        let mut c = point_case();
        c.stages[1].directives = vec![Directive::Split {
            dim: "x".to_string(),
            factor: 16,
            tail: Default::default(),
        }];
        assert!(validate_case(&c).is_err());

        // compute_at into a reduce's window (update-stage call site).
        let mut c = point_case();
        c.stages[1].op = StageOp::Reduce {
            src: Source::Stage(0),
            rx: 2,
            ry: 2,
        };
        c.stages[1].directives.clear();
        c.stages[0].directives = vec![Directive::ComputeAt {
            consumer: 1,
            dim: "y".to_string(),
        }];
        assert!(validate_case(&c).is_err());
        c.stages[0].directives.clear();
        assert!(validate_case(&c).is_ok());
    }

    #[test]
    fn built_schedules_match_validated_schedules() {
        let mut case = point_case();
        // Split/vectorize live on the (root-computed) output; the producer
        // carries the compute_at, whose consumer index must map to the
        // uniquified Func name. (Splits on an At-computed producer are
        // illegal — its realized footprint can be constant and tiny.)
        case.stages[0].directives = vec![Directive::ComputeAt {
            consumer: 1,
            dim: "y".to_string(),
        }];
        case.stages[1].directives = vec![
            Directive::Split {
                dim: "x".to_string(),
                factor: 4,
                tail: Default::default(),
            },
            Directive::Vectorize("x_i".to_string()),
        ];
        assert!(validate_case(&case).is_ok());
        let canonical = stage_schedules(&case).unwrap();
        let built = build_pipeline(&case).unwrap();
        let order = built.pipeline.realization_order();
        // Producer: compute level maps to the uniquified consumer name.
        let producer = built.pipeline.func(&order[0]).unwrap().schedule();
        assert_eq!(producer.dims, canonical[0].dims);
        match (&producer.compute_level, &canonical[0].compute_level) {
            (LoopLevel::At { var: a, .. }, LoopLevel::At { var: b, .. }) => assert_eq!(a, b),
            (a, b) => panic!("compute levels diverge: {a} vs {b}"),
        }
        // Output: identical dims and splits.
        let output = built.pipeline.func(&order[1]).unwrap().schedule();
        assert_eq!(output.dims, canonical[1].dims);
        assert_eq!(output.splits, canonical[1].splits);
    }
}
