//! The fuzzer's grammar: a [`FuzzCase`] is a plain-data description of a
//! multi-stage image pipeline (the algorithm) plus a list of scheduling
//! directives per stage (the schedule). Cases are pure data — no IR, no
//! `Func` handles — so they can be serialized into the regression corpus,
//! shrunk structurally, and rebuilt into live pipelines on demand
//! (see [`crate::build`]).
//!
//! Generation is seeded and deterministic: the same seed always yields the
//! same case. Schedules are **valid by construction**: every candidate
//! directive is committed only if the whole case still passes the shared
//! legality predicate (`halide_schedule::legality`), the same rules the
//! compiler enforces while lowering.

use halide_schedule::TailStrategy;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::build;

/// Where a stage reads its data from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Source {
    /// The pipeline's input image (reads are clamped to its bounds).
    Input,
    /// An earlier stage, by index.
    Stage(usize),
}

/// A point-wise operation applied to one source value. Constants are kept
/// as small integers so corpus files round-trip exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PointOp {
    /// `src + k`
    AddC(i32),
    /// `src * k`
    MulC(i32),
    /// `select(src > k, src * 2, src + 1)` — exercises compare + select.
    Threshold(i32),
    /// `min(max(src, -k), k)` — exercises min/max chains.
    ClampC(i32),
    /// `abs(src - k)`
    AbsDiff(i32),
}

/// How a two-source stage combines its operands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CombineOp {
    /// `a + b`
    Add,
    /// `a - b`
    Sub,
    /// `a * b`
    Mul,
    /// `min(a, b)`
    Min,
    /// `max(a, b)`
    Max,
}

/// One stage's algorithm. Every stage is a 2-D `f32` function over `(x, y)`.
#[derive(Debug, Clone, PartialEq)]
pub enum StageOp {
    /// A point-wise map over one source.
    Point {
        /// The value read at `(x, y)`.
        src: Source,
        /// The operation applied to it.
        op: PointOp,
    },
    /// A small stencil: `sum(w * src(x+dx, y+dy)) / div`.
    Stencil {
        /// The source the taps read from.
        src: Source,
        /// `(dx, dy, weight)` taps.
        taps: Vec<(i64, i64, i32)>,
        /// Integer divisor applied to the weighted sum (>= 1).
        div: i32,
    },
    /// A point-wise combination of two sources.
    Combine {
        /// Left operand source.
        a: Source,
        /// Right operand source.
        b: Source,
        /// The combining operation.
        op: CombineOp,
    },
    /// A windowed box reduction over an `rx × ry` RDom:
    /// `f(x,y) = 0; f(x,y) += src(x + r.x, y + r.y)`.
    /// The source is read from the update stage, so it can never be
    /// `compute_at` this stage (the legality predicate knows).
    Reduce {
        /// The source the window reads.
        src: Source,
        /// Window width (>= 1).
        rx: i64,
        /// Window height (>= 1).
        ry: i64,
    },
    /// A cumulative scan along x over `extent` steps:
    /// `f(x,y) = src(x,y); f(r+1,y) += f(r,y)`. Self-referential update;
    /// the source is read only from the pure definition.
    Scan {
        /// The source of the initial values.
        src: Source,
        /// Number of scan steps (the RDom extent, >= 1).
        extent: i64,
    },
}

impl StageOp {
    /// The sources this op reads (deduplicated order preserved).
    pub fn sources(&self) -> Vec<Source> {
        match self {
            StageOp::Point { src, .. }
            | StageOp::Stencil { src, .. }
            | StageOp::Reduce { src, .. }
            | StageOp::Scan { src, .. } => vec![*src],
            StageOp::Combine { a, b, .. } => {
                if a == b {
                    vec![*a]
                } else {
                    vec![*a, *b]
                }
            }
        }
    }

    /// True for ops defined with an update stage (reductions/scans).
    pub fn has_updates(&self) -> bool {
        matches!(self, StageOp::Reduce { .. } | StageOp::Scan { .. })
    }

    /// True when `src` is read only from this op's *pure* definition —
    /// the bit that decides whether `src` may be computed inside this
    /// stage's pure loop nest.
    pub fn reads_pure_only(&self, src: Source) -> bool {
        // Reduce reads its source inside the update stage's window body;
        // every other op (including Scan, whose update references only
        // itself) reads sources from the pure definition.
        self.sources().contains(&src) && !matches!(self, StageOp::Reduce { .. })
    }

    /// A short tag for stats histograms.
    pub fn tag(&self) -> &'static str {
        match self {
            StageOp::Point { .. } => "point",
            StageOp::Stencil { .. } => "stencil",
            StageOp::Combine { .. } => "combine",
            StageOp::Reduce { .. } => "reduce",
            StageOp::Scan { .. } => "scan",
        }
    }
}

/// One scheduling directive, applied in order to a stage's schedule.
/// Split names are derived (`{dim}_o` / `{dim}_i`), so a directive list is
/// self-contained.
#[derive(Debug, Clone, PartialEq)]
pub enum Directive {
    /// Split `dim` into `{dim}_o` (outer) and `{dim}_i` (inner).
    Split {
        /// The dimension to split (must exist at this point in the list).
        dim: String,
        /// The split factor.
        factor: i64,
        /// How the split covers an extent the factor does not divide.
        tail: TailStrategy,
    },
    /// Reorder (a subset of) the dims, outermost first.
    Reorder(Vec<String>),
    /// Mark a dim parallel.
    Parallel(String),
    /// Mark a dim vectorized.
    Vectorize(String),
    /// Mark a dim unrolled.
    Unroll(String),
    /// Compute this stage at loop `dim` of `consumer` (a stage index).
    ComputeAt {
        /// The consumer stage's index.
        consumer: usize,
        /// The loop dimension of the consumer to compute at.
        dim: String,
    },
    /// Inline this stage into its consumers.
    ComputeInline,
    /// Hoist storage to root while keeping the compute level (sliding
    /// window). Only meaningful after a `ComputeAt`.
    StoreRoot,
}

impl Directive {
    /// A short tag for stats histograms.
    pub fn tag(&self) -> &'static str {
        match self {
            Directive::Split { .. } => "split",
            Directive::Reorder(_) => "reorder",
            Directive::Parallel(_) => "parallel",
            Directive::Vectorize(_) => "vectorize",
            Directive::Unroll(_) => "unroll",
            Directive::ComputeAt { .. } => "compute_at",
            Directive::ComputeInline => "compute_inline",
            Directive::StoreRoot => "store_root",
        }
    }
}

/// One pipeline stage: its algorithm and its schedule directives.
#[derive(Debug, Clone, PartialEq)]
pub struct Stage {
    /// What the stage computes.
    pub op: StageOp,
    /// How it is scheduled (applied in order).
    pub directives: Vec<Directive>,
}

/// A complete, self-contained fuzz case. The last stage is the output.
#[derive(Debug, Clone, PartialEq)]
pub struct FuzzCase {
    /// The seed that generated this case (0 for hand-written/shrunk cases).
    pub seed: u64,
    /// Output width (innermost extent).
    pub width: i64,
    /// Output height.
    pub height: i64,
    /// Worker threads to realize with.
    pub threads: usize,
    /// The stages, producers-first; `stages.last()` is the output.
    pub stages: Vec<Stage>,
}

/// Extents the fuzzer draws output sizes from: deliberately heavy on odd,
/// prime, and sub-vector sizes so split/vectorize tail paths are the common
/// case, not the exception.
pub const EXTENT_CHOICES: [i64; 14] = [1, 2, 3, 4, 5, 7, 8, 9, 13, 16, 17, 24, 31, 33];

/// Split factors the generator proposes (legality filters per-case).
const FACTOR_CHOICES: [i64; 6] = [2, 3, 4, 5, 8, 16];

fn pick<T: Copy>(rng: &mut StdRng, xs: &[T]) -> T {
    xs[rng.gen_range(0..xs.len())]
}

fn gen_source(rng: &mut StdRng, stage: usize) -> Source {
    if stage == 0 || rng.gen_bool(0.3) {
        Source::Input
    } else {
        Source::Stage(rng.gen_range(0..stage))
    }
}

fn gen_point_op(rng: &mut StdRng) -> PointOp {
    let k = rng.gen_range(-4i32..5);
    match rng.gen_range(0u8..5) {
        0 => PointOp::AddC(k),
        1 => PointOp::MulC(k),
        2 => PointOp::Threshold(k),
        3 => PointOp::ClampC(k.abs() + 1),
        _ => PointOp::AbsDiff(k),
    }
}

fn gen_stage_op(rng: &mut StdRng, stage: usize, is_output: bool, width: i64) -> StageOp {
    // Update-stage ops only at the output: a producer's realized region is
    // inferred from its consumers' *reads*, so update writes at fixed
    // coordinates can only be guaranteed in bounds for the output, whose
    // region is exactly the requested extents ([`crate::build`] enforces
    // this invariant too).
    let roll = if is_output {
        rng.gen_range(0u8..10)
    } else {
        rng.gen_range(0u8..9)
    };
    match roll {
        0..=3 => StageOp::Point {
            src: gen_source(rng, stage),
            op: gen_point_op(rng),
        },
        4..=6 => {
            let n = rng.gen_range(2usize..5);
            let taps = (0..n)
                .map(|_| {
                    (
                        rng.gen_range(-2i64..3),
                        rng.gen_range(-2i64..3),
                        rng.gen_range(-3i32..4),
                    )
                })
                .collect();
            StageOp::Stencil {
                src: gen_source(rng, stage),
                taps,
                div: rng.gen_range(1i32..5),
            }
        }
        7..=8 => StageOp::Combine {
            a: gen_source(rng, stage),
            b: gen_source(rng, stage),
            op: match rng.gen_range(0u8..5) {
                0 => CombineOp::Add,
                1 => CombineOp::Sub,
                2 => CombineOp::Mul,
                3 => CombineOp::Min,
                _ => CombineOp::Max,
            },
        },
        _ => {
            if width >= 2 && rng.gen_bool(0.4) {
                StageOp::Scan {
                    src: gen_source(rng, stage),
                    extent: rng.gen_range(1i64..width.min(9)),
                }
            } else {
                StageOp::Reduce {
                    src: gen_source(rng, stage),
                    rx: rng.gen_range(1i64..4),
                    ry: rng.gen_range(1i64..4),
                }
            }
        }
    }
}

/// Drops stages unreachable from the output and remaps stage indices in
/// sources and `ComputeAt` directives. Directives referencing a dropped
/// consumer are removed.
pub fn prune_unreachable(case: &mut FuzzCase) {
    let n = case.stages.len();
    if n == 0 {
        return;
    }
    let mut reachable = vec![false; n];
    let mut stack = vec![n - 1];
    while let Some(i) = stack.pop() {
        if std::mem::replace(&mut reachable[i], true) {
            continue;
        }
        for s in case.stages[i].op.sources() {
            if let Source::Stage(j) = s {
                stack.push(j);
            }
        }
    }
    if reachable.iter().all(|r| *r) {
        return;
    }
    let mut remap = vec![usize::MAX; n];
    let mut next = 0usize;
    for (i, r) in reachable.iter().enumerate() {
        if *r {
            remap[i] = next;
            next += 1;
        }
    }
    let remap_src = |s: &mut Source| {
        if let Source::Stage(j) = s {
            *j = remap[*j];
        }
    };
    let mut stages = Vec::with_capacity(next);
    for (i, mut stage) in std::mem::take(&mut case.stages).into_iter().enumerate() {
        if !reachable[i] {
            continue;
        }
        match &mut stage.op {
            StageOp::Point { src, .. }
            | StageOp::Stencil { src, .. }
            | StageOp::Reduce { src, .. }
            | StageOp::Scan { src, .. } => remap_src(src),
            StageOp::Combine { a, b, .. } => {
                remap_src(a);
                remap_src(b);
            }
        }
        stage.directives.retain_mut(|d| {
            if let Directive::ComputeAt { consumer, .. } = d {
                if !reachable[*consumer] {
                    return false;
                }
                *consumer = remap[*consumer];
            }
            true
        });
        stages.push(stage);
    }
    case.stages = stages;
}

/// Tentatively appends `directive` to stage `stage`, keeping it only if the
/// whole case still passes the legality predicate. Returns whether it was
/// kept.
fn try_directive(case: &mut FuzzCase, stage: usize, directive: Directive) -> bool {
    case.stages[stage].directives.push(directive);
    if build::validate_case(case).is_ok() {
        true
    } else {
        case.stages[stage].directives.pop();
        false
    }
}

/// Current loop dims of a stage under its directives so far (for picking
/// directive targets). Falls back to the default dims if the directive list
/// is somehow inapplicable (legality filtering makes that unreachable).
fn current_dims(case: &FuzzCase, stage: usize) -> Vec<String> {
    build::stage_schedules(case)
        .ok()
        .and_then(|s| s.into_iter().nth(stage))
        .map(|s| s.dims.iter().map(|d| d.name.clone()).collect())
        .unwrap_or_else(|| vec!["y".to_string(), "x".to_string()])
}

fn gen_directives(rng: &mut StdRng, case: &mut FuzzCase, stage: usize) {
    // Domain-order directives.
    let n_domain = rng.gen_range(0usize..4);
    for _ in 0..n_domain {
        let dims = current_dims(case, stage);
        let dim = dims[rng.gen_range(0..dims.len())].clone();
        let d = match rng.gen_range(0u8..6) {
            0..=1 => {
                let inner = format!("{dim}_i");
                // Extents are odd-biased, so most splits do not divide; half
                // of them draw an explicit tail strategy and exercise the
                // partitioned/predicated lowering paths (legality filters
                // round_up off the output and re-splits of partitioned dims).
                let tail = match rng.gen_range(0u8..6) {
                    0..=2 => TailStrategy::ShiftInwards,
                    3 => TailStrategy::GuardWithIf,
                    4 => TailStrategy::Predicate,
                    _ => TailStrategy::RoundUp,
                };
                let split = Directive::Split {
                    dim,
                    factor: pick(rng, &FACTOR_CHOICES),
                    tail,
                };
                // Only split-inner dims have lowering-constant extents, so a
                // fresh split is the one reliable chance to vectorize or
                // unroll — take it often, while it is the innermost loop.
                if try_directive(case, stage, split) && rng.gen_bool(0.5) {
                    let d = if rng.gen_bool(0.7) {
                        Directive::Vectorize(inner)
                    } else {
                        Directive::Unroll(inner)
                    };
                    try_directive(case, stage, d);
                }
                continue;
            }
            2 => {
                if dims.len() < 2 {
                    continue;
                }
                let mut order = dims.clone();
                let i = rng.gen_range(0..order.len());
                let j = rng.gen_range(0..order.len());
                order.swap(i, j);
                Directive::Reorder(order)
            }
            3 => Directive::Parallel(dim),
            4 => Directive::Vectorize(dim),
            _ => Directive::Unroll(dim),
        };
        try_directive(case, stage, d);
    }
    // Call-schedule directive (non-output stages only; the output must stay
    // at root).
    let is_output = stage + 1 == case.stages.len();
    if !is_output {
        let roll: f64 = rng.gen_range(0.0..1.0);
        if roll < 0.2 {
            try_directive(case, stage, Directive::ComputeInline);
        } else if roll < 0.55 {
            // Pick a random later stage and one of its current dims.
            let consumer = rng.gen_range(stage + 1..case.stages.len());
            let dims = current_dims(case, consumer);
            let dim = dims[rng.gen_range(0..dims.len())].clone();
            if try_directive(case, stage, Directive::ComputeAt { consumer, dim })
                && rng.gen_bool(0.3)
            {
                try_directive(case, stage, Directive::StoreRoot);
            }
        }
    }
}

/// Generates the case for `seed`: a random DAG of 1–5 stages over odd-biased
/// extents, then (consumers first, so `ComputeAt` targets see final loop
/// nests) a random legal directive list per stage. The result always passes
/// [`build::validate_case`].
pub fn generate(seed: u64) -> FuzzCase {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x9e3779b97f4a7c15);
    let width = pick(&mut rng, &EXTENT_CHOICES);
    let height = pick(&mut rng, &EXTENT_CHOICES);
    let n_stages = rng.gen_range(1usize..6);
    let mut case = FuzzCase {
        seed,
        width,
        height,
        threads: rng.gen_range(1usize..4),
        stages: (0..n_stages)
            .map(|i| Stage {
                op: gen_stage_op(&mut rng, i, i + 1 == n_stages, width),
                directives: Vec::new(),
            })
            .collect(),
    };
    prune_unreachable(&mut case);
    for stage in (0..case.stages.len()).rev() {
        gen_directives(&mut rng, &mut case, stage);
    }
    debug_assert!(build::validate_case(&case).is_ok());
    case
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        for seed in [0u64, 1, 42, 1234] {
            assert_eq!(generate(seed), generate(seed));
        }
    }

    #[test]
    fn generated_cases_are_valid_by_construction() {
        for seed in 0..200u64 {
            let case = generate(seed);
            assert!(!case.stages.is_empty());
            build::validate_case(&case)
                .unwrap_or_else(|e| panic!("seed {seed} generated an illegal case: {e}"));
        }
    }

    #[test]
    fn generation_covers_the_grammar() {
        use std::collections::BTreeSet;
        let mut ops = BTreeSet::new();
        let mut dirs = BTreeSet::new();
        for seed in 0..300u64 {
            let case = generate(seed);
            for s in &case.stages {
                ops.insert(s.op.tag());
                for d in &s.directives {
                    dirs.insert(d.tag());
                }
            }
        }
        for op in ["point", "stencil", "combine", "reduce", "scan"] {
            assert!(ops.contains(op), "no generated case used op {op:?}");
        }
        for d in [
            "split",
            "reorder",
            "parallel",
            "vectorize",
            "unroll",
            "compute_at",
            "compute_inline",
        ] {
            assert!(dirs.contains(d), "no generated case used directive {d:?}");
        }
    }

    #[test]
    fn prune_drops_dead_stages_and_remaps() {
        let mut case = FuzzCase {
            seed: 0,
            width: 8,
            height: 8,
            threads: 1,
            stages: vec![
                Stage {
                    op: StageOp::Point {
                        src: Source::Input,
                        op: PointOp::AddC(1),
                    },
                    directives: vec![],
                },
                // dead
                Stage {
                    op: StageOp::Point {
                        src: Source::Stage(0),
                        op: PointOp::MulC(2),
                    },
                    directives: vec![],
                },
                Stage {
                    op: StageOp::Point {
                        src: Source::Stage(0),
                        op: PointOp::AddC(3),
                    },
                    directives: vec![Directive::ComputeAt {
                        consumer: 1,
                        dim: "y".to_string(),
                    }],
                },
            ],
        };
        prune_unreachable(&mut case);
        assert_eq!(case.stages.len(), 2);
        assert_eq!(
            case.stages[1].op,
            StageOp::Point {
                src: Source::Stage(0),
                op: PointOp::AddC(3),
            }
        );
        // The ComputeAt referenced the dropped stage and is gone.
        assert!(case.stages[1].directives.is_empty());
    }
}
