//! # halide-fuzz
//!
//! Grammar-driven differential fuzzing for the whole compiler stack.
//!
//! The repo's strongest correctness asset is its differential matrix — the
//! interpreter, the compiled engine at `OptLevel::None`, and the compiled
//! engine at `OptLevel::Default` must produce bit-identical outputs *and*
//! identical work counters on every pipeline. This crate generates the
//! pipelines: seeded, random-but-valid func DAGs (point ops, stencils,
//! reductions, scans, multi-stage chains over odd and sub-vector extents)
//! with random *legal* schedules (valid by construction against
//! `halide_schedule::legality`, the same predicate lowering enforces), runs
//! each through the matrix plus a pooled-output check, and on failure
//! shrinks to a minimal plain-text reproduction for `tests/corpus/`.
//!
//! Pieces:
//!
//! * [`grammar`] — the [`grammar::FuzzCase`] data model and the seeded
//!   generator;
//! * [`build`] — case → live `Pipeline`, and the case-level validity
//!   predicate shared by generation, shrinking, and replay;
//! * [`run`] — the differential runner (one case, four realizations);
//! * [`mod@shrink`] — greedy minimization of failing cases;
//! * [`corpus`] — the text format regression cases are stored in.
//!
//! The `halide-fuzz` binary drives campaigns
//! (`cargo run -p halide-fuzz -- --cases 500 --seed 0`); the
//! `corpus_replay` integration test replays every checked-in case on every
//! `cargo test`.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod build;
pub mod corpus;
pub mod grammar;
pub mod run;
pub mod shrink;

pub use build::{build_pipeline, validate_case};
pub use corpus::{from_text, to_text};
pub use grammar::{generate, FuzzCase};
pub use run::run_case;
pub use shrink::shrink;
