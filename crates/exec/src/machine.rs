//! The register machine: executes a compiled [`Program`].
//!
//! A `Machine` is the per-thread execution state: a flat register file of
//! `CValue`s (unboxed scalars, boxed vectors) indexed by the slots the
//! compile pass assigned, plus a buffer table of `Arc<Buffer>`s indexed the
//! same way. Parallel loops clone the machine **once per chunk of
//! iterations** (not once per iteration): every binder writes its slot
//! before the slot is read, so a machine can be reused serially across
//! iterations — only concurrent use needs a copy.
//!
//! Every operation is defined to match the interpreter in
//! [`crate::eval`] bit-for-bit — same value promotion, same short-circuit
//! and taken-branch evaluation, same instrumentation counters — so the two
//! backends are interchangeable and differential-testable. The wall-clock
//! difference comes purely from resolution work moved to compile time,
//! unboxed scalar arithmetic, and the dense vector load/store paths that
//! skip index-vector materialization.

use std::sync::Arc;

use halide_ir::ForKind;
use halide_runtime::{
    binary_op, binary_op_owned, cast_owned, compare_op_owned, not_op_owned, scalar_binary_op,
    scalar_compare_op, select_op_owned, AccessPattern, Buffer, Scalar, Value,
};

use crate::compile::{CExpr, CIntrinsic, CStmt, Program};
use crate::error::{ExecError, Result};
use crate::eval::Context;

/// A register value: an unboxed scalar on the hot path, a boxed vector only
/// inside vectorized regions. Boxing the vector variant keeps the enum small,
/// so moving scalars through evaluation never touches the heap.
///
/// The `R` variant is a **symbolic integer ramp** `[base, base + stride, …)`:
/// the affine index vectors vectorization emits stay unmaterialized through
/// `let` bindings and through `+`/`-`/`*`-by-scalar arithmetic (exact in the
/// mod-2⁶⁴ integer ring, so the eventual lanes are bit-identical to the
/// interpreter's), and a unit-stride ramp index turns a vector load/store
/// into one dense, bounds-checked-once memory operation.
#[derive(Debug, Clone)]
pub(crate) enum CValue {
    /// One unboxed lane.
    S(Scalar),
    /// A symbolic integer affine vector (never materialized until needed).
    R { base: i64, stride: i64, lanes: u16 },
    /// Multiple lanes (or a one-lane vector produced by vector ops).
    V(Box<Value>),
}

/// Wraps a vector result.
#[inline]
fn vv(v: Value) -> CValue {
    CValue::V(Box::new(v))
}

impl CValue {
    #[inline]
    fn lanes(&self) -> usize {
        match self {
            CValue::S(_) => 1,
            CValue::R { lanes, .. } => *lanes as usize,
            CValue::V(v) => v.lanes(),
        }
    }

    /// Converts to the interpreter's boxed representation, consuming self
    /// (no clone for the vector variant; ramps materialize with the same
    /// `base + stride * i` lane formula as the interpreter).
    #[inline]
    fn into_value(self) -> Value {
        match self {
            CValue::S(s) => s.to_value(),
            CValue::R {
                base,
                stride,
                lanes,
            } => Value::Int((0..lanes as i64).map(|i| base + stride * i).collect()),
            CValue::V(v) => *v,
        }
    }

    /// The value as a boolean, matching `Value::as_bool` (panics there, an
    /// error here).
    #[inline]
    fn as_bool(&self) -> Result<bool> {
        match self {
            CValue::S(s) => Ok(s.as_bool()),
            CValue::R { base, lanes: 1, .. } => Ok(*base != 0),
            CValue::V(v) if v.lanes() == 1 => Ok(v.lane_f64(0) != 0.0),
            other => Err(ExecError::new(format!(
                "expected a scalar condition, got a {}-lane vector",
                other.lanes()
            ))),
        }
    }

    /// The value as a loop bound / size, matching `Value::as_int`.
    #[inline]
    fn as_int(&self) -> Result<i64> {
        match self {
            CValue::S(Scalar::Int(v)) => Ok(*v),
            CValue::R { base, lanes: 1, .. } => Ok(*base),
            CValue::V(v) => match v.as_ref() {
                Value::Int(v) if v.len() == 1 => Ok(v[0]),
                other => Err(ExecError::new(format!(
                    "expected a scalar integer, got {other:?}"
                ))),
            },
            other => Err(ExecError::new(format!(
                "expected a scalar integer, got {other:?}"
            ))),
        }
    }

    /// True for the float kind (either representation).
    #[inline]
    fn is_float_kind(&self) -> bool {
        match self {
            CValue::S(s) => s.is_float(),
            CValue::R { .. } => false,
            CValue::V(v) => matches!(v.as_ref(), Value::Float(_)),
        }
    }
}

/// Symbolic ramp arithmetic: `ramp op scalar` (or scalar op ramp, or
/// ramp op ramp) without materializing lanes, for the operations where the
/// result is again an affine ramp with **bit-identical** lanes (integer
/// `+`/`-`/`*` distribute over the lane formula in the mod-2⁶⁴ ring).
#[inline]
fn ramp_bin(op: halide_ir::BinOp, a: &CValue, b: &CValue) -> Option<CValue> {
    use halide_ir::BinOp;
    if !matches!(op, BinOp::Add | BinOp::Sub | BinOp::Mul) {
        return None;
    }
    match (a, b) {
        (
            CValue::R {
                base,
                stride,
                lanes,
            },
            CValue::S(Scalar::Int(c)),
        ) => Some(match op {
            BinOp::Add => CValue::R {
                base: base.wrapping_add(*c),
                stride: *stride,
                lanes: *lanes,
            },
            BinOp::Sub => CValue::R {
                base: base.wrapping_sub(*c),
                stride: *stride,
                lanes: *lanes,
            },
            BinOp::Mul => CValue::R {
                base: base.wrapping_mul(*c),
                stride: stride.wrapping_mul(*c),
                lanes: *lanes,
            },
            _ => unreachable!(),
        }),
        (
            CValue::S(Scalar::Int(c)),
            CValue::R {
                base,
                stride,
                lanes,
            },
        ) => Some(match op {
            BinOp::Add => CValue::R {
                base: c.wrapping_add(*base),
                stride: *stride,
                lanes: *lanes,
            },
            BinOp::Sub => CValue::R {
                base: c.wrapping_sub(*base),
                stride: stride.wrapping_neg(),
                lanes: *lanes,
            },
            BinOp::Mul => CValue::R {
                base: c.wrapping_mul(*base),
                stride: c.wrapping_mul(*stride),
                lanes: *lanes,
            },
            _ => unreachable!(),
        }),
        (
            CValue::R {
                base: b1,
                stride: s1,
                lanes: l1,
            },
            CValue::R {
                base: b2,
                stride: s2,
                lanes: l2,
            },
        ) if l1 == l2 && matches!(op, BinOp::Add | BinOp::Sub) => Some(match op {
            BinOp::Add => CValue::R {
                base: b1.wrapping_add(*b2),
                stride: s1.wrapping_add(*s2),
                lanes: *l1,
            },
            BinOp::Sub => CValue::R {
                base: b1.wrapping_sub(*b2),
                stride: s1.wrapping_sub(*s2),
                lanes: *l1,
            },
            _ => unreachable!(),
        }),
        _ => None,
    }
}

/// The access pattern of a load through `idx`, by the classification rule
/// shared with the interpreter ([`halide_runtime::classify_flat_indices`]).
/// Symbolic ramps classify without materializing — by construction a ramp's
/// lanes have the constant lane-to-lane delta `stride`, so the result is the
/// same one the interpreter computes from the materialized lanes.
fn classify_load_index(idx: &CValue) -> AccessPattern {
    match idx {
        CValue::S(_) => AccessPattern::Scalar,
        CValue::R { stride, lanes, .. } => {
            if *lanes <= 1 {
                AccessPattern::Scalar
            } else if *stride == 1 {
                AccessPattern::Dense
            } else {
                AccessPattern::Strided
            }
        }
        CValue::V(v) => halide_runtime::classify_flat_indices(&v.to_int_lanes()),
    }
}

/// The access pattern of a store through `idx`, widened to `lanes` the way
/// the interpreter widens it (`idx.broadcast(lanes)` before the lane loop):
/// an index narrower than the store repeats its first lane, which makes the
/// deltas zero — a stride-0 strided store, never a dense one.
fn classify_store_index(idx: &CValue, lanes: usize) -> AccessPattern {
    if lanes <= 1 {
        return AccessPattern::Scalar;
    }
    if idx.lanes() != lanes {
        return AccessPattern::Strided; // broadcast of the first lane
    }
    classify_load_index(idx)
}

/// Per-thread execution state for a compiled program.
#[derive(Clone)]
pub(crate) struct Machine {
    pub(crate) regs: Vec<CValue>,
    pub(crate) bufs: Vec<Option<Arc<Buffer>>>,
    /// Set inside a simulated GPU kernel so nested block loops of the same
    /// kernel do not count as fresh launches.
    in_gpu_kernel: bool,
}

impl Machine {
    /// A machine with all registers zeroed and no buffers bound.
    pub(crate) fn new(prog: &Program) -> Machine {
        Machine {
            regs: vec![CValue::S(Scalar::Int(0)); prog.n_slots],
            bufs: vec![None; prog.n_bufs],
            in_gpu_kernel: false,
        }
    }

    /// Writes a register (used by the realizer to bind free symbols).
    pub(crate) fn set_reg(&mut self, slot: u32, v: Scalar) {
        self.regs[slot as usize] = CValue::S(v);
    }

    /// Binds a buffer index (used by the realizer to bind free buffers).
    pub(crate) fn set_buf(&mut self, idx: u32, buf: Arc<Buffer>) {
        self.bufs[idx as usize] = Some(buf);
    }

    #[inline]
    fn buffer(&self, prog: &Program, idx: u32) -> Result<&Arc<Buffer>> {
        self.bufs[idx as usize].as_ref().ok_or_else(|| {
            ExecError::new(format!(
                "no buffer named {:?} is in scope",
                prog.buf_names[idx as usize]
            ))
        })
    }
}

/// Evaluates a compiled expression.
pub(crate) fn eval(prog: &Program, e: &CExpr, m: &mut Machine, ctx: &Context) -> Result<CValue> {
    match e {
        CExpr::ConstI(v) => Ok(CValue::S(Scalar::Int(*v))),
        CExpr::ConstF(v) => Ok(CValue::S(Scalar::Float(*v))),
        CExpr::Slot(slot) => Ok(m.regs[*slot as usize].clone()),
        CExpr::Cast { ty, value } => Ok(match eval(prog, value, m, ctx)? {
            CValue::S(s) => CValue::S(s.cast_to(*ty)),
            other => vv(cast_owned(other.into_value(), *ty)),
        }),
        CExpr::Bin { op, a, b } => {
            let va = eval(prog, a, m, ctx)?;
            let vb = eval(prog, b, m, ctx)?;
            if ctx.instrument {
                ctx.counters.add_arith(1);
            }
            Ok(match (va, vb) {
                (CValue::S(x), CValue::S(y)) => CValue::S(scalar_binary_op(*op, x, y)),
                (va, vb) => match ramp_bin(*op, &va, &vb) {
                    Some(r) => r,
                    None => vv(binary_op_owned(*op, va.into_value(), vb.into_value())),
                },
            })
        }
        CExpr::Cmp { op, a, b } => {
            let va = eval(prog, a, m, ctx)?;
            let vb = eval(prog, b, m, ctx)?;
            if ctx.instrument {
                ctx.counters.add_arith(1);
            }
            Ok(match (va, vb) {
                (CValue::S(x), CValue::S(y)) => CValue::S(scalar_compare_op(*op, x, y)),
                (va, vb) => vv(compare_op_owned(*op, va.into_value(), vb.into_value())),
            })
        }
        CExpr::And { a, b } => {
            let va = eval(prog, a, m, ctx)?;
            if va.lanes() == 1 && !va.as_bool()? {
                return Ok(CValue::S(Scalar::Int(0)));
            }
            let vb = eval(prog, b, m, ctx)?;
            if va.lanes() == 1 {
                // select(true-scalar, b, false) is exactly b.
                return Ok(vb);
            }
            let c = va.into_value();
            Ok(vv(select_op_owned(&c, vb.into_value(), Value::bool(false))))
        }
        CExpr::Or { a, b } => {
            let va = eval(prog, a, m, ctx)?;
            if va.lanes() == 1 && va.as_bool()? {
                return Ok(CValue::S(Scalar::Int(1)));
            }
            let vb = eval(prog, b, m, ctx)?;
            if va.lanes() == 1 {
                // select(false-scalar, true, b) is exactly b.
                return Ok(vb);
            }
            let c = va.into_value();
            Ok(vv(select_op_owned(&c, Value::bool(true), vb.into_value())))
        }
        CExpr::Not { a } => Ok(match eval(prog, a, m, ctx)? {
            CValue::S(s) => CValue::S(Scalar::Int((s.as_i64() == 0) as i64)),
            other => vv(not_op_owned(other.into_value())),
        }),
        CExpr::Select { cond, t, f } => {
            // A condition held in a register (the common shape for masks the
            // lowering pass hoisted into `let`s) is blended without cloning:
            // the arms cannot write the condition's slot, because every
            // binder gets a unique slot at compile time.
            if let CExpr::Slot(slot) = cond.as_ref() {
                if m.regs[*slot as usize].lanes() == 1 {
                    return if m.regs[*slot as usize].as_bool()? {
                        eval(prog, t, m, ctx)
                    } else {
                        eval(prog, f, m, ctx)
                    };
                }
                return masked_select_from_slot(prog, *slot, t, f, m, ctx);
            }
            let c = eval(prog, cond, m, ctx)?;
            // Scalar condition: evaluate only the taken branch.
            if c.lanes() == 1 {
                return if c.as_bool()? {
                    eval(prog, t, m, ctx)
                } else {
                    eval(prog, f, m, ctx)
                };
            }
            masked_select(prog, c, t, f, m, ctx)
        }
        CExpr::Ramp {
            base,
            stride,
            lanes,
        } => {
            let b = eval(prog, base, m, ctx)?;
            let s = eval(prog, stride, m, ctx)?;
            if b.is_float_kind() || s.is_float_kind() {
                let (b, s) = (f64_scalar(&b)?, f64_scalar(&s)?);
                Ok(vv(Value::Float(
                    (0..*lanes as i64).map(|i| b + s * i as f64).collect(),
                )))
            } else {
                Ok(CValue::R {
                    base: b.as_int()?,
                    stride: s.as_int()?,
                    lanes: *lanes,
                })
            }
        }
        CExpr::Broadcast { value, lanes } => {
            let v = eval(prog, value, m, ctx)?;
            Ok(vv(v.into_value().broadcast(*lanes as usize)))
        }
        CExpr::Let { slot, value, body } => {
            let v = eval(prog, value, m, ctx)?;
            m.regs[*slot as usize] = v;
            eval(prog, body, m, ctx)
        }
        CExpr::Shl { a, bits } => {
            let va = eval(prog, a, m, ctx)?;
            if ctx.instrument {
                ctx.counters.add_arith(1);
            }
            // A symbolic ramp shifts affinely: (base + stride·i) << k is
            // (base << k) + (stride << k)·i in the mod-2⁶⁴ ring.
            if let CValue::R {
                base,
                stride,
                lanes,
            } = va
            {
                return Ok(CValue::R {
                    base: base.wrapping_shl(*bits),
                    stride: stride.wrapping_shl(*bits),
                    lanes,
                });
            }
            int_map(va, |x| x.wrapping_shl(*bits), "strength-reduced shift")
        }
        CExpr::Shr { a, bits } => {
            let va = eval(prog, a, m, ctx)?;
            if ctx.instrument {
                ctx.counters.add_arith(1);
            }
            int_map(va, |x| x >> *bits, "strength-reduced shift")
        }
        CExpr::AndMask { a, mask } => {
            let va = eval(prog, a, m, ctx)?;
            if ctx.instrument {
                ctx.counters.add_arith(1);
            }
            int_map(va, |x| x & *mask, "strength-reduced mask")
        }
        CExpr::Count { arith, inner } => {
            if ctx.instrument {
                ctx.counters.add_arith(*arith as u64);
            }
            eval(prog, inner, m, ctx)
        }
        CExpr::Load { buf, index } => {
            let idx = eval(prog, index, m, ctx)?;
            let buffer = m.buffer(prog, *buf)?;
            if ctx.gpu_in_use() {
                ctx.gpu
                    .ensure_on_host(&prog.buf_names[*buf as usize], &ctx.counters);
            }
            let lanes = idx.lanes();
            if ctx.instrument {
                count_load(ctx, &idx, lanes);
            }
            let len = buffer.len();
            // Scalar fast path: one bounds check, one typed read, no Vec.
            if let CValue::S(s) = &idx {
                let i = s.as_i64();
                if i < 0 || i as usize >= len {
                    return Err(oob(prog, *buf, "load from", i, len));
                }
                return Ok(CValue::S(buffer.get_flat_scalar(i as usize)));
            }
            // A symbolic ramp: one bulk memory operation — dense (one bounds
            // check, one contiguous read) for unit stride, a bulk strided
            // read otherwise. Either way the index lanes never materialize.
            if let CValue::R {
                base: base_v,
                stride,
                ..
            } = idx
            {
                if stride == 1 {
                    return dense_load(prog, *buf, buffer, base_v, lanes);
                }
                return strided_load(prog, *buf, buffer, base_v, stride, lanes);
            }
            let idx = idx.into_value();
            Ok(vv(gather(prog, *buf, buffer, &idx, lanes)?))
        }
        CExpr::LoadDense { buf, base, lanes } => {
            let lanes = *lanes as usize;
            let base_v = eval(prog, base, m, ctx)?.as_int()?;
            let buffer = m.buffer(prog, *buf)?;
            if ctx.gpu_in_use() {
                ctx.gpu
                    .ensure_on_host(&prog.buf_names[*buf as usize], &ctx.counters);
            }
            if ctx.instrument {
                ctx.counters.add_load(lanes as u64);
                if lanes > 1 {
                    ctx.counters.add_load_pattern(AccessPattern::Dense);
                }
            }
            dense_load(prog, *buf, buffer, base_v, lanes)
        }
        CExpr::LoadClamped { buf, index, lo, hi } => {
            let idx = eval(prog, index, m, ctx)?;
            let lo_v = eval(prog, lo, m, ctx)?.as_int()?;
            let hi_v = eval(prog, hi, m, ctx)?.as_int()?;
            clamped_load(prog, *buf, idx, lo_v, hi_v, m, ctx)
        }
        CExpr::LoadMasked { buf, index, mask } => {
            let idx = eval(prog, index, m, ctx)?;
            let mv = eval(prog, mask, m, ctx)?;
            let buffer = m.buffer(prog, *buf)?;
            if ctx.gpu_in_use() {
                ctx.gpu
                    .ensure_on_host(&prog.buf_names[*buf as usize], &ctx.counters);
            }
            let lanes = idx.lanes();
            if ctx.instrument {
                count_load(ctx, &idx, lanes);
                ctx.counters.add_masked_load();
            }
            masked_load(prog, *buf, buffer, idx, mv, lanes)
        }
        CExpr::Intrinsic { f, args } => {
            let mut vals = Vec::with_capacity(args.len());
            for a in args {
                vals.push(eval(prog, a, m, ctx)?);
            }
            if ctx.instrument {
                ctx.counters.add_arith(1);
            }
            Ok(apply_intrinsic(*f, vals))
        }
    }
}

/// Vector load through an arbitrary index vector (the gather case).
fn gather(prog: &Program, buf: u32, buffer: &Buffer, idx: &Value, lanes: usize) -> Result<Value> {
    let is_float = buffer.ty().is_float();
    // Integer index vector of exactly `lanes` lanes: one storage dispatch.
    if let Value::Int(iv) = idx {
        if iv.len() == lanes {
            return if is_float {
                buffer
                    .gather_flat_f64(iv)
                    .map(Value::Float)
                    .map_err(|i| oob(prog, buf, "load from", i, buffer.len()))
            } else {
                buffer
                    .gather_flat_i64(iv)
                    .map(Value::Int)
                    .map_err(|i| oob(prog, buf, "load from", i, buffer.len()))
            };
        }
    }
    let len = buffer.len();
    let mut out_i: Vec<i64> = Vec::with_capacity(if is_float { 0 } else { lanes });
    let mut out_f: Vec<f64> = Vec::with_capacity(if is_float { lanes } else { 0 });
    for lane in 0..lanes {
        let i = idx.lane_int(lane);
        if i < 0 || i as usize >= len {
            return Err(oob(prog, buf, "load from", i, len));
        }
        if is_float {
            out_f.push(buffer.get_flat_f64(i as usize));
        } else {
            out_i.push(buffer.get_flat_i64(i as usize));
        }
    }
    Ok(if is_float {
        Value::Float(out_f)
    } else {
        Value::Int(out_i)
    })
}

/// Loads `lanes` contiguous elements starting at `base_v` as one bulk typed
/// read; the compiled form of a load through a unit-stride ramp.
fn dense_load(
    prog: &Program,
    buf: u32,
    buffer: &Buffer,
    base_v: i64,
    lanes: usize,
) -> Result<CValue> {
    let len = buffer.len();
    if base_v < 0 || base_v as usize + lanes > len {
        let first_bad = if base_v < 0 {
            base_v
        } else {
            base_v.max(len as i64)
        };
        return Err(oob(prog, buf, "load from", first_bad, len));
    }
    let start = base_v as usize;
    Ok(vv(if buffer.ty().is_float() {
        Value::Float(buffer.read_flat_f64s(start, lanes))
    } else {
        Value::Int(buffer.read_flat_i64s(start, lanes))
    }))
}

/// Loads `lanes` elements at `base, base + stride, …` as one bulk strided
/// read; the compiled form of a load through a non-unit-stride symbolic ramp
/// (the index lanes never materialize).
fn strided_load(
    prog: &Program,
    buf: u32,
    buffer: &Buffer,
    base: i64,
    stride: i64,
    lanes: usize,
) -> Result<CValue> {
    Ok(vv(if buffer.ty().is_float() {
        buffer
            .read_flat_strided_f64s(base, stride, lanes)
            .map(Value::Float)
            .map_err(|i| oob(prog, buf, "load from", i, buffer.len()))?
    } else {
        buffer
            .read_flat_strided_i64s(base, stride, lanes)
            .map(Value::Int)
            .map_err(|i| oob(prog, buf, "load from", i, buffer.len()))?
    }))
}

/// Reads lane `lane` of a vector predicate. A mask narrower than the
/// operation is uniform across every lane — the broadcast the interpreter
/// materializes before its lane loop.
fn mask_lane(mask: &CValue, lane: usize) -> bool {
    match mask {
        CValue::S(s) => s.as_i64() != 0,
        CValue::R {
            base,
            stride,
            lanes,
        } => {
            let l = if (*lanes as usize) <= 1 {
                0
            } else {
                lane as i64
            };
            base + stride * l != 0
        }
        CValue::V(v) => {
            let l = if v.lanes() <= 1 { 0 } else { lane };
            v.lane_int(l) != 0
        }
    }
}

fn mask_all_true(mask: &CValue, lanes: usize) -> bool {
    (0..lanes).all(|l| mask_lane(mask, l))
}

/// A load with a lane predicate: a disabled lane is neither read nor
/// bounds-checked and yields zero; enabled lanes behave exactly like the
/// unmasked forms (an enabled out-of-bounds lane is still an error). An
/// all-true mask falls through to the bulk dispatches, so a predicated
/// tail whose guard happens to pass everywhere costs one bulk read.
#[inline(never)]
fn masked_load(
    prog: &Program,
    buf: u32,
    buffer: &Buffer,
    idx: CValue,
    mask: CValue,
    lanes: usize,
) -> Result<CValue> {
    if mask_all_true(&mask, lanes) {
        if let CValue::S(s) = &idx {
            let i = s.as_i64();
            let len = buffer.len();
            if i < 0 || i as usize >= len {
                return Err(oob(prog, buf, "load from", i, len));
            }
            return Ok(CValue::S(buffer.get_flat_scalar(i as usize)));
        }
        if let CValue::R {
            base: base_v,
            stride,
            ..
        } = idx
        {
            if stride == 1 {
                return dense_load(prog, buf, buffer, base_v, lanes);
            }
            return strided_load(prog, buf, buffer, base_v, stride, lanes);
        }
        let idx = idx.into_value();
        return Ok(vv(gather(prog, buf, buffer, &idx, lanes)?));
    }
    // A mixed mask: the reference per-lane loop, skipping disabled lanes
    // before their bounds checks.
    let len = buffer.len();
    let is_float = buffer.ty().is_float();
    let idx = idx.into_value().broadcast(lanes);
    let mut out_i: Vec<i64> = Vec::with_capacity(if is_float { 0 } else { lanes });
    let mut out_f: Vec<f64> = Vec::with_capacity(if is_float { lanes } else { 0 });
    for lane in 0..lanes {
        if !mask_lane(&mask, lane) {
            if is_float {
                out_f.push(0.0);
            } else {
                out_i.push(0);
            }
            continue;
        }
        let i = idx.lane_int(lane);
        if i < 0 || i as usize >= len {
            return Err(oob(prog, buf, "load from", i, len));
        }
        if is_float {
            out_f.push(buffer.get_flat_f64(i as usize));
        } else {
            out_i.push(buffer.get_flat_i64(i as usize));
        }
    }
    Ok(vv(if is_float {
        Value::Float(out_f)
    } else {
        Value::Int(out_i)
    }))
}

/// A store with a lane predicate: a disabled lane is neither written nor
/// bounds-checked. An all-true mask falls through to the unmasked bulk
/// dispatches.
#[inline(never)]
fn masked_store(
    prog: &Program,
    buf: u32,
    buffer: &Buffer,
    idx: CValue,
    val: CValue,
    mask: CValue,
    lanes: usize,
) -> Result<()> {
    let len = buffer.len();
    if mask_all_true(&mask, lanes) {
        if let (CValue::S(i), CValue::S(v)) = (&idx, &val) {
            let i = i.as_i64();
            if i < 0 || i as usize >= len {
                return Err(oob(prog, buf, "store to", i, len));
            }
            buffer.set_flat_scalar(i as usize, *v);
            return Ok(());
        }
        return vector_store(prog, buf, buffer, idx, val, lanes);
    }
    let idx = idx.into_value().broadcast(lanes);
    let val = val.into_value();
    for lane in 0..lanes {
        if !mask_lane(&mask, lane) {
            continue;
        }
        let i = idx.lane_int(lane);
        if i < 0 || i as usize >= len {
            return Err(oob(prog, buf, "store to", i, len));
        }
        buffer.set_flat_lane(i as usize, &val, lane);
    }
    Ok(())
}

/// Stores `val` through a non-unit-stride ramp as one bulk strided write.
/// Returns `None` when the value's shape has no bulk form (the caller falls
/// back to the per-lane loop, which reproduces the interpreter exactly).
fn strided_store(
    prog: &Program,
    buf: u32,
    buffer: &Buffer,
    base: i64,
    stride: i64,
    lanes: usize,
    val: &CValue,
) -> Option<Result<()>> {
    let len = buffer.len();
    match val {
        // A scalar value: every lane writes the same converted element.
        CValue::S(s) => {
            for k in 0..lanes {
                let i = base + stride * k as i64;
                if i < 0 || i as usize >= len {
                    return Some(Err(oob(prog, buf, "store to", i, len)));
                }
                buffer.set_flat_scalar(i as usize, *s);
            }
            Some(Ok(()))
        }
        CValue::V(v) => match v.as_ref() {
            Value::Float(fv) if fv.len() == lanes => Some(
                buffer
                    .write_flat_strided_f64s(base, stride, fv)
                    .map_err(|i| oob(prog, buf, "store to", i, len)),
            ),
            Value::Int(iv) if iv.len() == lanes => Some(
                buffer
                    .write_flat_strided_i64s(base, stride, iv)
                    .map_err(|i| oob(prog, buf, "store to", i, len)),
            ),
            _ => None,
        },
        CValue::R { .. } => None,
    }
}

/// The instrument-on bookkeeping of a `Load`, kept out of the hot arm
/// (counter atomics plus the access-pattern classification).
#[cold]
fn count_load(ctx: &Context, idx: &CValue, lanes: usize) {
    ctx.counters.add_load(lanes as u64);
    ctx.counters.add_load_pattern(classify_load_index(idx));
}

/// The instrument-on bookkeeping of a `Store`.
#[cold]
fn count_store(ctx: &Context, idx: &CValue, lanes: usize) {
    ctx.counters.add_store(lanes as u64);
    ctx.counters
        .add_store_pattern(classify_store_index(idx, lanes));
}

/// A store whose index or value is a vector, dispatched to the bulk forms:
/// dense or strided for symbolic ramps, a single scatter for index vectors
/// with a lane-matched value, the reference per-lane loop otherwise.
/// Outlined so the scalar store path in [`exec`]'s hot match stays small.
#[inline(never)]
fn vector_store(
    prog: &Program,
    buf: u32,
    buffer: &Buffer,
    idx: CValue,
    val: CValue,
    lanes: usize,
) -> Result<()> {
    let len = buffer.len();
    // A symbolic ramp covering the whole store: one bulk write — contiguous
    // for unit stride, strided otherwise.
    if let CValue::R {
        base: base_v,
        stride,
        lanes: rl,
    } = idx
    {
        if stride == 1 {
            return dense_store(prog, buf, buffer, base_v, rl as usize, lanes, val, len);
        }
        if rl as usize == lanes {
            if let Some(r) = strided_store(prog, buf, buffer, base_v, stride, lanes, &val) {
                return r;
            }
        }
        // Reproduce the per-lane semantics for the odd shapes (value wider
        // than the ramp, multi-lane-but-narrower value).
        return per_lane_store(prog, buf, buffer, idx, val, lanes);
    }
    // An arbitrary index vector with a matching value vector: one bulk
    // scatter, one storage dispatch.
    if let CValue::V(iv) = &idx {
        if let (Value::Int(ints), true) = (iv.as_ref(), idx.lanes() == lanes) {
            let scattered = match &val {
                CValue::V(v) => match v.as_ref() {
                    Value::Float(fv) if fv.len() == lanes => Some(
                        buffer
                            .scatter_flat_f64s(ints, fv)
                            .map_err(|i| oob(prog, buf, "store to", i, len)),
                    ),
                    Value::Int(vv) if vv.len() == lanes => Some(
                        buffer
                            .scatter_flat_i64s(ints, vv)
                            .map_err(|i| oob(prog, buf, "store to", i, len)),
                    ),
                    _ => None,
                },
                _ => None,
            };
            if let Some(r) = scattered {
                return r;
            }
        }
    }
    per_lane_store(prog, buf, buffer, idx, val, lanes)
}

/// A `select` with a register-held vector mask: blend without cloning the
/// mask (the arms cannot write the condition's slot — slots are unique per
/// binder). Outlined to keep [`eval`]'s hot match small.
#[inline(never)]
fn masked_select_from_slot(
    prog: &Program,
    slot: u32,
    t: &CExpr,
    f: &CExpr,
    m: &mut Machine,
    ctx: &Context,
) -> Result<CValue> {
    if ctx.instrument {
        ctx.counters.add_masked_select();
    }
    let tv = eval(prog, t, m, ctx)?.into_value();
    let fv = eval(prog, f, m, ctx)?.into_value();
    Ok(vv(match &m.regs[slot as usize] {
        CValue::V(c) => select_op_owned(c, tv, fv),
        other => select_op_owned(&other.clone().into_value(), tv, fv),
    }))
}

/// A `select` with an already-evaluated vector mask: evaluate both
/// (side-effect-free) arms, then mask-and-blend over whole registers.
#[inline(never)]
fn masked_select(
    prog: &Program,
    cond: CValue,
    t: &CExpr,
    f: &CExpr,
    m: &mut Machine,
    ctx: &Context,
) -> Result<CValue> {
    if ctx.instrument {
        ctx.counters.add_masked_select();
    }
    let tv = eval(prog, t, m, ctx)?;
    let fv = eval(prog, f, m, ctx)?;
    let c = cond.into_value();
    Ok(vv(select_op_owned(&c, tv.into_value(), fv.into_value())))
}

/// A load through `max(min(index, hi), lo)`: clamp while gathering, one
/// storage dispatch, no min/max intermediate vectors (which still count as
/// the two arithmetic operations the interpreter executes for them).
/// Outlined to keep [`eval`]'s hot match small.
#[inline(never)]
fn clamped_load(
    prog: &Program,
    buf: u32,
    idx: CValue,
    lo_v: i64,
    hi_v: i64,
    m: &mut Machine,
    ctx: &Context,
) -> Result<CValue> {
    let buffer = m.buffer(prog, buf)?;
    if ctx.gpu_in_use() {
        ctx.gpu
            .ensure_on_host(&prog.buf_names[buf as usize], &ctx.counters);
    }
    let lanes = idx.lanes();
    if ctx.instrument {
        ctx.counters.add_arith(2);
        ctx.counters.add_load(lanes as u64);
        if lanes > 1 {
            // Classify the post-clamp indices, as the interpreter (which
            // sees them materialized) does.
            let clamped: Vec<i64> = match &idx {
                CValue::S(s) => vec![s.as_i64().min(hi_v).max(lo_v)],
                CValue::R {
                    base,
                    stride,
                    lanes,
                } => (0..*lanes as i64)
                    .map(|k| (base + stride * k).min(hi_v).max(lo_v))
                    .collect(),
                CValue::V(v) => v
                    .to_int_lanes()
                    .iter()
                    .map(|i| (*i).min(hi_v).max(lo_v))
                    .collect(),
            };
            ctx.counters
                .add_load_pattern(halide_runtime::classify_flat_indices(&clamped));
        }
    }
    let len = buffer.len();
    // Scalar: clamp, one bounds check, one typed read.
    if let CValue::S(s) = &idx {
        let i = s.as_i64().min(hi_v).max(lo_v);
        if i < 0 || i as usize >= len {
            return Err(oob(prog, buf, "load from", i, len));
        }
        return Ok(CValue::S(buffer.get_flat_scalar(i as usize)));
    }
    let idx = idx.into_value();
    let ints = idx.to_int_lanes();
    Ok(vv(if buffer.ty().is_float() {
        buffer
            .gather_flat_f64_clamped(&ints, lo_v, hi_v)
            .map(Value::Float)
            .map_err(|i| oob(prog, buf, "load from", i, len))?
    } else {
        buffer
            .gather_flat_i64_clamped(&ints, lo_v, hi_v)
            .map(Value::Int)
            .map_err(|i| oob(prog, buf, "load from", i, len))?
    }))
}

/// The reference per-lane store loop: broadcast the index, bounds-check and
/// write lane by lane — exactly the interpreter's semantics. The bulk store
/// paths above are shortcuts for the shapes they cover; everything else
/// lands here.
fn per_lane_store(
    prog: &Program,
    buf: u32,
    buffer: &Buffer,
    idx: CValue,
    val: CValue,
    lanes: usize,
) -> Result<()> {
    let len = buffer.len();
    let idx = idx.into_value().broadcast(lanes);
    let val = val.into_value();
    for lane in 0..lanes {
        let i = idx.lane_int(lane);
        if i < 0 || i as usize >= len {
            return Err(oob(prog, buf, "store to", i, len));
        }
        buffer.set_flat_lane(i as usize, &val, lane);
    }
    Ok(())
}

/// Applies an integer lane-wise function (the strength-reduced shift/mask
/// forms). The optimizer only emits these for registers proven integer, so
/// a float here is an internal error, not a user-visible one.
fn int_map(v: CValue, f: impl Fn(i64) -> i64, what: &str) -> Result<CValue> {
    match v {
        CValue::S(Scalar::Int(x)) => Ok(CValue::S(Scalar::Int(f(x)))),
        CValue::S(Scalar::Float(_)) => Err(ExecError::new(format!(
            "internal error: {what} applied to a float value"
        ))),
        other => match other.into_value() {
            Value::Int(xs) => Ok(vv(Value::Int(xs.into_iter().map(f).collect()))),
            Value::Float(_) => Err(ExecError::new(format!(
                "internal error: {what} applied to a float vector"
            ))),
        },
    }
}

fn f64_scalar(v: &CValue) -> Result<f64> {
    match v {
        CValue::S(s) => Ok(s.as_f64()),
        CValue::R { base, lanes: 1, .. } => Ok(*base as f64),
        CValue::V(v) if v.lanes() == 1 => Ok(v.lane_f64(0)),
        other => Err(ExecError::new(format!("expected a scalar, got {other:?}"))),
    }
}

fn oob(prog: &Program, buf: u32, what: &str, i: i64, len: usize) -> ExecError {
    ExecError::new(format!(
        "{what} {:?} at flat index {i} is outside the allocation of {len} elements",
        prog.buf_names[buf as usize]
    ))
}

/// Stores `lanes` lanes of `val` contiguously starting at `base_v`; the
/// compiled form of a store through a unit-stride ramp. `lanes` is the
/// already-counted max of ramp and value lanes.
#[allow(clippy::too_many_arguments)]
fn dense_store(
    prog: &Program,
    buf: u32,
    buffer: &Buffer,
    base_v: i64,
    ramp_lanes: usize,
    lanes: usize,
    val: CValue,
    len: usize,
) -> Result<()> {
    if lanes > ramp_lanes {
        // A wider value than the index: the interpreter broadcasts the
        // index's first lane. Rare; reproduce it faithfully.
        let val = val.into_value();
        for lane in 0..lanes {
            let i = base_v;
            if i < 0 || i as usize >= len {
                return Err(oob(prog, buf, "store to", i, len));
            }
            buffer.set_flat_lane(i as usize, &val, lane);
        }
        return Ok(());
    }
    if base_v < 0 || base_v as usize + lanes > len {
        let first_bad = if base_v < 0 {
            base_v
        } else {
            base_v.max(len as i64)
        };
        return Err(oob(prog, buf, "store to", first_bad, len));
    }
    let start = base_v as usize;
    match val {
        CValue::S(s) => {
            for lane in 0..lanes {
                buffer.set_flat_scalar(start + lane, s);
            }
        }
        other => match other.into_value() {
            Value::Float(fv) if fv.len() >= lanes => buffer.write_flat_f64s(start, &fv[..lanes]),
            Value::Int(iv) if iv.len() >= lanes => buffer.write_flat_i64s(start, &iv[..lanes]),
            // A value narrower than the ramp (but not scalar): mirror the
            // interpreter's per-lane clamp instead of slicing out of range.
            val => {
                for lane in 0..lanes {
                    buffer.set_flat_lane(start + lane, &val, lane);
                }
            }
        },
    }
    Ok(())
}

/// Applies a resolved intrinsic with the same lane semantics as
/// `eval::eval_intrinsic`.
fn apply_intrinsic(f: CIntrinsic, mut args: Vec<CValue>) -> CValue {
    match f {
        CIntrinsic::Unary(f) => match args.swap_remove(0) {
            CValue::S(s) => CValue::S(Scalar::Float(f(s.as_f64()))),
            other => vv(Value::Float(
                other
                    .into_value()
                    .to_f64_lanes()
                    .iter()
                    .map(|x| f(*x))
                    .collect(),
            )),
        },
        CIntrinsic::Binary(f) => {
            let b = args.swap_remove(1);
            let a = args.swap_remove(0);
            match (a, b) {
                (CValue::S(a), CValue::S(b)) => CValue::S(Scalar::Float(f(a.as_f64(), b.as_f64()))),
                (a, b) => {
                    let lanes = a.lanes();
                    let av = a.into_value().to_f64_lanes();
                    let bv = b.into_value().broadcast(lanes).to_f64_lanes();
                    vv(Value::Float(
                        av.iter().zip(bv.iter()).map(|(x, y)| f(*x, *y)).collect(),
                    ))
                }
            }
        }
        CIntrinsic::Abs => match args.swap_remove(0) {
            CValue::S(Scalar::Int(v)) => CValue::S(Scalar::Int(v.abs())),
            CValue::S(Scalar::Float(v)) => CValue::S(Scalar::Float(v.abs())),
            other => vv(match other.into_value() {
                Value::Int(v) => Value::Int(v.iter().map(|x| x.abs()).collect()),
                Value::Float(v) => Value::Float(v.iter().map(|x| x.abs()).collect()),
            }),
        },
        CIntrinsic::MinMax(op) => {
            let b = args.swap_remove(1);
            let a = args.swap_remove(0);
            match (a, b) {
                (CValue::S(a), CValue::S(b)) => CValue::S(scalar_binary_op(op, a, b)),
                (a, b) => vv(binary_op(op, &a.into_value(), &b.into_value())),
            }
        }
    }
}

/// Executes a compiled statement.
pub(crate) fn exec(prog: &Program, s: &CStmt, m: &mut Machine, ctx: &Context) -> Result<()> {
    match s {
        CStmt::SetSlot { slot, value } => {
            let v = eval(prog, value, m, ctx)?;
            m.regs[*slot as usize] = v;
            Ok(())
        }
        CStmt::Count { arith } => {
            if ctx.instrument {
                ctx.counters.add_arith(*arith as u64);
            }
            Ok(())
        }
        CStmt::Assert { cond, message } => {
            if eval(prog, cond, m, ctx)?.as_bool()? {
                Ok(())
            } else {
                Err(ExecError::new(format!("assertion failed: {message}")))
            }
        }
        CStmt::For {
            slot,
            min,
            extent,
            kind,
            hoisted,
            body,
            gpu,
        } => {
            let min_v = eval(prog, min, m, ctx)?.as_int()?;
            let extent_v = eval(prog, extent, m, ctx)?.as_int()?;
            match kind {
                ForKind::Serial | ForKind::Vectorized | ForKind::Unrolled => {
                    // Vectorized/unrolled loops only reach execution when the
                    // corresponding pass was disabled; run them serially.
                    for h in hoisted {
                        exec(prog, h, m, ctx)?;
                    }
                    for i in min_v..min_v + extent_v {
                        m.regs[*slot as usize] = CValue::S(Scalar::Int(i));
                        exec(prog, body, m, ctx)?;
                        if ctx.has_failed() {
                            break;
                        }
                    }
                    Ok(())
                }
                ForKind::Parallel => {
                    for h in hoisted {
                        exec(prog, h, m, ctx)?;
                    }
                    let base: &Machine = m;
                    ctx.pool
                        .parallel_for_chunks(min_v, extent_v, &ctx.counters, |start, end| {
                            if ctx.has_failed() {
                                return;
                            }
                            let mut mm = base.clone();
                            for i in start..end {
                                mm.regs[*slot as usize] = CValue::S(Scalar::Int(i));
                                if let Err(e) = exec(prog, body, &mut mm, ctx) {
                                    ctx.record_error(e);
                                }
                                if ctx.has_failed() {
                                    return;
                                }
                            }
                        });
                    match ctx.take_error() {
                        Some(e) => Err(e),
                        None => Ok(()),
                    }
                }
                ForKind::GpuBlock | ForKind::GpuThread => gpu_launch(
                    prog,
                    *slot,
                    min_v,
                    extent_v,
                    *kind,
                    hoisted,
                    body,
                    gpu.as_ref(),
                    m,
                    ctx,
                ),
            }
        }
        CStmt::Store { buf, value, index } => {
            let idx = eval(prog, index, m, ctx)?;
            let val = eval(prog, value, m, ctx)?;
            let buffer = m.buffer(prog, *buf)?;
            if ctx.gpu_in_use() {
                ctx.gpu.mark_host_dirty(&prog.buf_names[*buf as usize]);
            }
            let lanes = idx.lanes().max(val.lanes());
            if ctx.instrument {
                count_store(ctx, &idx, lanes);
            }
            let len = buffer.len();
            // Scalar fast path: one bounds check, one typed write.
            if let (CValue::S(i), CValue::S(v)) = (&idx, &val) {
                let i = i.as_i64();
                if i < 0 || i as usize >= len {
                    return Err(oob(prog, *buf, "store to", i, len));
                }
                buffer.set_flat_scalar(i as usize, *v);
                return Ok(());
            }
            vector_store(prog, *buf, buffer, idx, val, lanes)
        }
        CStmt::StoreMasked {
            buf,
            value,
            index,
            mask,
        } => {
            let idx = eval(prog, index, m, ctx)?;
            let val = eval(prog, value, m, ctx)?;
            let mv = eval(prog, mask, m, ctx)?;
            let buffer = m.buffer(prog, *buf)?;
            if ctx.gpu_in_use() {
                ctx.gpu.mark_host_dirty(&prog.buf_names[*buf as usize]);
            }
            let lanes = idx.lanes().max(val.lanes());
            if ctx.instrument {
                count_store(ctx, &idx, lanes);
                ctx.counters.add_masked_store();
            }
            masked_store(prog, *buf, buffer, idx, val, mv, lanes)
        }
        CStmt::StoreDense {
            buf,
            value,
            base,
            lanes,
        } => {
            let ramp_lanes = *lanes as usize;
            let base_v = eval(prog, base, m, ctx)?.as_int()?;
            let val = eval(prog, value, m, ctx)?;
            let buffer = m.buffer(prog, *buf)?;
            if ctx.gpu_in_use() {
                ctx.gpu.mark_host_dirty(&prog.buf_names[*buf as usize]);
            }
            let lanes = ramp_lanes.max(val.lanes());
            if ctx.instrument {
                ctx.counters.add_store(lanes as u64);
                if lanes > 1 {
                    // A value wider than the ramp broadcasts the ramp's
                    // first lane, which the shared classification rule calls
                    // a stride-0 strided store.
                    ctx.counters.add_store_pattern(if ramp_lanes == lanes {
                        AccessPattern::Dense
                    } else {
                        AccessPattern::Strided
                    });
                }
            }
            let len = buffer.len();
            dense_store(prog, *buf, buffer, base_v, ramp_lanes, lanes, val, len)
        }
        CStmt::Allocate {
            buf,
            ty,
            size,
            body,
        } => {
            let n = eval(prog, size, m, ctx)?.as_int()?;
            if n < 0 {
                return Err(ExecError::new(format!(
                    "allocation of {:?} has negative size {n}",
                    prog.buf_names[*buf as usize]
                )));
            }
            let buffer = Arc::new(ctx.alloc_scratch(*ty, &[n]));
            let bytes = buffer.size_bytes() as u64;
            ctx.counters.add_allocation(bytes);
            if let Some(p) = &ctx.profiler {
                p.record_alloc(&prog.buf_names[*buf as usize], bytes);
            }
            m.bufs[*buf as usize] = Some(buffer);
            let r = exec(prog, body, m, ctx);
            if let Some(buffer) = m.bufs[*buf as usize].take() {
                ctx.release_scratch(buffer);
            }
            ctx.counters.add_free(bytes);
            if let Some(p) = &ctx.profiler {
                p.record_free(&prog.buf_names[*buf as usize], bytes);
            }
            r
        }
        CStmt::Block(stmts) => {
            for s in stmts {
                exec(prog, s, m, ctx)?;
                if ctx.has_failed() {
                    break;
                }
            }
            Ok(())
        }
        CStmt::If {
            cond,
            then_case,
            else_case,
        } => {
            if eval(prog, cond, m, ctx)?.as_bool()? {
                exec(prog, then_case, m, ctx)
            } else if let Some(e) = else_case {
                exec(prog, e, m, ctx)
            } else {
                Ok(())
            }
        }
        CStmt::Evaluate(value) => {
            eval(prog, value, m, ctx)?;
            Ok(())
        }
        CStmt::Produce { func, body } => {
            if let Some(p) = &ctx.profiler {
                let prev = p.enter_named(&prog.func_names[*func as usize]);
                let r = exec(prog, body, m, ctx);
                p.exit(prev);
                r
            } else {
                exec(prog, body, m, ctx)
            }
        }
        CStmt::NoOp => Ok(()),
    }
}

/// Executes a GPU block/thread loop as a simulated kernel launch, mirroring
/// `eval::self_gpu_launch` but with the touched-buffer scan done at compile
/// time.
#[allow(clippy::too_many_arguments)]
fn gpu_launch(
    prog: &Program,
    slot: u32,
    min_v: i64,
    extent_v: i64,
    kind: ForKind,
    hoisted: &[CStmt],
    body: &CStmt,
    gpu: Option<&crate::compile::GpuTouch>,
    m: &mut Machine,
    ctx: &Context,
) -> Result<()> {
    if kind == ForKind::GpuBlock {
        ctx.mark_gpu_used();
    }
    // Count one launch per outermost block loop encountered while the device
    // is idle; nested block loops of the same kernel do not relaunch.
    let is_outer_block = kind == ForKind::GpuBlock && !m.in_gpu_kernel;
    if is_outer_block {
        ctx.gpu.launch(&ctx.counters);
        if let Some(touch) = gpu {
            for r in &touch.reads {
                if let Some(buf) = &m.bufs[*r as usize] {
                    ctx.gpu.ensure_on_device(
                        &prog.buf_names[*r as usize],
                        buf.size_bytes() as u64,
                        &ctx.counters,
                    );
                }
            }
            for w in &touch.writes {
                if let Some(buf) = &m.bufs[*w as usize] {
                    ctx.gpu
                        .mark_device_dirty(&prog.buf_names[*w as usize], buf.size_bytes() as u64);
                }
            }
        }
    }

    // Hoisted invariant lets: computed once per launch, visible to every
    // block/thread.
    let mut base = m.clone();
    if is_outer_block {
        base.in_gpu_kernel = true;
    }
    for h in hoisted {
        exec(prog, h, &mut base, ctx)?;
    }
    // Blocks run in parallel on the host pool; threads within a block run
    // serially (their data parallelism is already exposed by the block loop).
    if kind == ForKind::GpuBlock {
        let base_ref: &Machine = &base;
        ctx.pool
            .parallel_for_chunks(min_v, extent_v, &ctx.counters, |start, end| {
                if ctx.has_failed() {
                    return;
                }
                let mut mm = base_ref.clone();
                for i in start..end {
                    mm.regs[slot as usize] = CValue::S(Scalar::Int(i));
                    if let Err(e) = exec(prog, body, &mut mm, ctx) {
                        ctx.record_error(e);
                    }
                    if ctx.has_failed() {
                        return;
                    }
                }
            });
        match ctx.take_error() {
            Some(e) => Err(e),
            None => Ok(()),
        }
    } else {
        let mut mm = base;
        for i in min_v..min_v + extent_v {
            mm.regs[slot as usize] = CValue::S(Scalar::Int(i));
            exec(prog, body, &mut mm, ctx)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::{eval_stmt, Frame};
    use halide_ir::ScalarType;
    use halide_ir::{Expr, Stmt, Type};
    use halide_runtime::ThreadPool;

    fn ctx() -> Context {
        Context::new(ThreadPool::new(4), true)
    }

    /// Runs a statement through both backends against fresh float buffers of
    /// the given sizes and asserts bit-identical buffer contents and
    /// identical counters.
    fn assert_backends_agree(s: &Stmt, buffers: &[(&str, i64)]) {
        // Interpreter.
        let ictx = ctx();
        let mut frame = Frame::default();
        let mut interp_bufs = Vec::new();
        for (name, len) in buffers {
            let b = Arc::new(Buffer::with_extents(ScalarType::Float(32), &[*len]));
            frame.insert_buffer(name.to_string(), Arc::clone(&b));
            interp_bufs.push(b);
        }
        eval_stmt(s, &mut frame, &ictx).unwrap();

        // Compiled.
        let prog = Program::compile_stmt(s).unwrap();
        let cctx = ctx();
        let mut m = Machine::new(&prog);
        let mut compiled_bufs = Vec::new();
        for (name, len) in buffers {
            let b = Arc::new(Buffer::with_extents(ScalarType::Float(32), &[*len]));
            if let Some(idx) = prog.free_buf(name) {
                m.set_buf(idx, Arc::clone(&b));
            }
            compiled_bufs.push(b);
        }
        exec(&prog, &prog.body, &mut m, &cctx).unwrap();

        for ((name, _), (a, b)) in buffers.iter().zip(interp_bufs.iter().zip(&compiled_bufs)) {
            let av = a.to_f64_vec();
            let bv = b.to_f64_vec();
            assert_eq!(av.len(), bv.len());
            for (i, (x, y)) in av.iter().zip(bv.iter()).enumerate() {
                assert!(
                    x.to_bits() == y.to_bits(),
                    "buffer {name}[{i}]: interp {x} != compiled {y}"
                );
            }
        }
        // `peak_bytes_live` depends on how many parallel iterations happen
        // to overlap, which is scheduling- not semantics-dependent; compare
        // everything else exactly.
        let mut ic = ictx.counters.snapshot();
        let mut cc = cctx.counters.snapshot();
        ic.peak_bytes_live = 0;
        cc.peak_bytes_live = 0;
        assert_eq!(ic, cc, "counters diverge between backends");
    }

    /// Store `value(i)` for i in [0, n) — a loop wrapping an expression so
    /// both backends evaluate it the same number of times.
    fn store_loop(value: Expr, n: i64, kind: ForKind) -> Stmt {
        Stmt::for_loop(
            "i",
            Expr::int(0),
            Expr::int(n as i32),
            kind,
            Stmt::store("out", value, Expr::var_i32("i")),
        )
    }

    #[test]
    fn intrinsics_agree_on_both_backends() {
        let x = Expr::var_i32("i").cast(Type::f32()) + 0.5f32;
        let xi = Expr::var_i32("i") - 3;
        let cases: Vec<Expr> = vec![
            x.sqrt(),
            x.exp(),
            x.log(),
            x.pow(Expr::f32(1.7)),
            x.abs(),
            xi.abs().cast(Type::f32()),
            x.floor(),
            x.ceil(),
            Expr::intrinsic("round", vec![x.clone()], Type::f32()),
            Expr::intrinsic("sin", vec![x.clone()], Type::f32()),
            Expr::intrinsic("cos", vec![x.clone()], Type::f32()),
            Expr::intrinsic("tanh", vec![x.clone()], Type::f32()),
            Expr::intrinsic("atan2", vec![x.clone(), Expr::f32(2.0)], Type::f32()),
            Expr::intrinsic("min", vec![x.clone(), Expr::f32(3.0)], Type::f32()),
            Expr::intrinsic("max", vec![x.clone(), Expr::f32(3.0)], Type::f32()),
            Expr::intrinsic("min", vec![xi.clone(), Expr::int(0)], Type::i32()).cast(Type::f32()),
            Expr::intrinsic("max", vec![xi, Expr::int(0)], Type::i32()).cast(Type::f32()),
        ];
        for value in cases {
            assert_backends_agree(&store_loop(value, 8, ForKind::Serial), &[("out", 8)]);
        }
    }

    #[test]
    fn arithmetic_lets_selects_agree() {
        let i = Expr::var_i32("i");
        let cases: Vec<Expr> = vec![
            (i.clone() * 3 + 7).cast(Type::f32()) / 1.5f32,
            (i.clone() % 4).cast(Type::f32()),
            Expr::let_in(
                "t",
                i.clone() * 2,
                (Expr::var_i32("t") + Expr::var_i32("t")).cast(Type::f32()),
            ),
            Expr::select(
                Expr::lt(i.clone() % 2, Expr::int(1)),
                i.clone().cast(Type::f32()),
                -i.clone().cast(Type::f32()),
            ),
            Expr::select(
                Expr::and(
                    Expr::lt(i.clone(), Expr::int(6)),
                    Expr::gt(i.clone(), Expr::int(1)),
                ),
                Expr::f32(1.0),
                Expr::f32(0.0),
            ),
            Expr::select(
                Expr::or(
                    Expr::lt(i.clone(), Expr::int(2)),
                    Expr::not(Expr::lt(i.clone(), Expr::int(5))),
                ),
                Expr::f32(1.0),
                Expr::f32(0.0),
            ),
        ];
        for value in cases {
            assert_backends_agree(&store_loop(value, 8, ForKind::Serial), &[("out", 8)]);
        }
    }

    #[test]
    fn vector_ramps_agree() {
        // out[ramp(i*4, 1, 4)] = src-less vector arithmetic.
        let idx = Expr::ramp(Expr::var_i32("i") * 4, Expr::int(1), 4);
        let value = idx.clone().cast(Type::f32()) * 0.25f32 + 1.0f32;
        let s = Stmt::for_loop(
            "i",
            Expr::int(0),
            Expr::int(4),
            ForKind::Serial,
            Stmt::store("out", value, idx),
        );
        assert_backends_agree(&s, &[("out", 16)]);
    }

    #[test]
    fn parallel_loops_and_allocations_agree() {
        // A parallel loop whose body allocates a scratch buffer, fills it,
        // and reduces it into the output — exercises machine cloning,
        // per-chunk allocation scoping, and the structural counters.
        let scratch_store = Stmt::store(
            "tmp",
            Expr::var_i32("j").cast(Type::f32()) + Expr::var_i32("i").cast(Type::f32()),
            Expr::var_i32("j"),
        );
        let fill = Stmt::for_loop(
            "j",
            Expr::int(0),
            Expr::int(4),
            ForKind::Serial,
            scratch_store,
        );
        let reduce = Stmt::store(
            "out",
            Expr::load(Type::f32(), "tmp", Expr::int(0))
                + Expr::load(Type::f32(), "tmp", Expr::int(3)),
            Expr::var_i32("i"),
        );
        let body = Stmt::allocate(
            "tmp",
            Type::f32(),
            Expr::int(4),
            Stmt::block_of(vec![fill, reduce]),
        );
        let s = Stmt::for_loop("i", Expr::int(0), Expr::int(64), ForKind::Parallel, body);
        assert_backends_agree(&s, &[("out", 64)]);
    }

    #[test]
    fn hoisted_invariant_lets_agree() {
        // let a = 5; let b = a + 1 at the head of a loop body: peeled at
        // compile time by the compiled backend, per loop entry by the
        // interpreter — identical results and counters either way.
        let body = Stmt::let_stmt(
            "a",
            Expr::int(5),
            Stmt::let_stmt(
                "b",
                Expr::var_i32("a") + 1,
                Stmt::store(
                    "out",
                    (Expr::var_i32("b") + Expr::var_i32("i")).cast(Type::f32()),
                    Expr::var_i32("i"),
                ),
            ),
        );
        for kind in [ForKind::Serial, ForKind::Parallel] {
            let s = Stmt::for_loop("i", Expr::int(0), Expr::int(16), kind, body.clone());
            assert_backends_agree(&s, &[("out", 16)]);
        }
    }

    #[test]
    fn gpu_launches_agree() {
        let body = Stmt::store(
            "out",
            Expr::load(
                Type::f32(),
                "src",
                Expr::var_i32("bx") * 4 + Expr::var_i32("tx"),
            ) * 2.0f32,
            Expr::var_i32("bx") * 4 + Expr::var_i32("tx"),
        );
        let threads = Stmt::for_loop("tx", Expr::int(0), Expr::int(4), ForKind::GpuThread, body);
        let blocks = Stmt::for_loop("bx", Expr::int(0), Expr::int(4), ForKind::GpuBlock, threads);
        assert_backends_agree(&blocks, &[("src", 16), ("out", 16)]);
    }

    /// Fills `src[j] = j * 1.5 - 3.0` for j in [0, n) — gives loads real
    /// data to chew on inside a single differential statement.
    fn fill_loop(buf: &str, n: i64) -> Stmt {
        Stmt::for_loop(
            "j",
            Expr::int(0),
            Expr::int(n as i32),
            ForKind::Serial,
            Stmt::store(
                buf,
                Expr::var_i32("j").cast(Type::f32()) * 1.5f32 - 3.0f32,
                Expr::var_i32("j"),
            ),
        )
    }

    #[test]
    fn masked_selects_blend_identically() {
        // A vector-condition select whose arms are both loads: the engines
        // evaluate both arms and blend — outputs, masked-select and
        // dense-load counters must all match.
        let idx = Expr::ramp(Expr::var_i32("i") * 4, Expr::int(1), 4);
        let mask = Expr::lt(idx.clone() % 3, Expr::broadcast(Expr::int(2), 4));
        let value = Expr::select(
            mask,
            Expr::load(Type::f32(), "src", idx.clone()),
            Expr::load(Type::f32(), "src", idx.clone()) * -1.0f32,
        );
        let s = Stmt::block_of(vec![
            fill_loop("src", 16),
            Stmt::for_loop(
                "i",
                Expr::int(0),
                Expr::int(4),
                ForKind::Serial,
                Stmt::store("out", value, idx),
            ),
        ]);
        assert_backends_agree(&s, &[("src", 16), ("out", 16)]);
    }

    #[test]
    fn masked_select_with_oob_unless_masked_arm_errors_on_both_backends() {
        // The false arm loads 100 elements past the allocation. A masked
        // blend still evaluates both (side-effect-free) arms, so BOTH
        // engines must report the out-of-bounds load — the mask does not
        // license skipping the untaken lanes' bounds checks.
        let idx = Expr::ramp(Expr::int(0), Expr::int(1), 4);
        let value = Expr::select(
            Expr::lt(idx.clone(), Expr::broadcast(Expr::int(99), 4)),
            Expr::load(Type::f32(), "src", idx.clone()),
            Expr::load(Type::f32(), "src", idx.clone() + 100),
        );
        let s = Stmt::store("out", value, idx);

        let prog = Program::compile_stmt(&s).unwrap();
        let cctx = ctx();
        let mut m = Machine::new(&prog);
        for name in ["src", "out"] {
            m.set_buf(
                prog.free_buf(name).unwrap(),
                Arc::new(Buffer::with_extents(ScalarType::Float(32), &[8])),
            );
        }
        let compiled_err = exec(&prog, &prog.body, &mut m, &cctx).unwrap_err();
        assert!(compiled_err.to_string().contains("outside the allocation"));

        let ictx = ctx();
        let mut frame = Frame::default();
        for name in ["src", "out"] {
            frame.insert_buffer(
                name.to_string(),
                Arc::new(Buffer::with_extents(ScalarType::Float(32), &[8])),
            );
        }
        let interp_err = eval_stmt(&s, &mut frame, &ictx).unwrap_err();
        assert_eq!(compiled_err.to_string(), interp_err.to_string());
    }

    #[test]
    fn strided_loads_and_stores_agree() {
        // Non-unit-stride ramps on both the load and the store side: the
        // compiled engine's bulk strided paths against the interpreter's
        // per-lane loops, including the strided-access counters.
        let load_idx = Expr::ramp(Expr::var_i32("i"), Expr::int(3), 4);
        let store_idx = Expr::ramp(Expr::var_i32("i") * 8, Expr::int(2), 4);
        let s = Stmt::block_of(vec![
            fill_loop("src", 16),
            Stmt::for_loop(
                "i",
                Expr::int(0),
                Expr::int(4),
                ForKind::Serial,
                Stmt::store(
                    "out",
                    Expr::load(Type::f32(), "src", load_idx) * 2.0f32,
                    store_idx,
                ),
            ),
        ]);
        assert_backends_agree(&s, &[("src", 16), ("out", 32)]);
    }

    #[test]
    fn data_dependent_gather_and_scatter_agree() {
        // Indices loaded from a buffer (data-dependent): the load is a bulk
        // gather and the store a bulk scatter on the compiled engine; both
        // engines must agree on values and on the gather/scatter counters.
        let lane = Expr::ramp(Expr::var_i32("i") * 4, Expr::int(1), 4);
        let perm = Stmt::for_loop(
            "j",
            Expr::int(0),
            Expr::int(16),
            ForKind::Serial,
            Stmt::store("ind", (Expr::var_i32("j") * 7) % 16, Expr::var_i32("j")),
        );
        let gathered = Expr::load(
            Type::f32(),
            "src",
            Expr::load(Type::i32(), "ind", lane.clone()).cast(Type::i32()),
        );
        let s = Stmt::block_of(vec![
            perm,
            fill_loop("src", 16),
            Stmt::for_loop(
                "i",
                Expr::int(0),
                Expr::int(4),
                ForKind::Serial,
                Stmt::store(
                    "out",
                    gathered + 1.0f32,
                    Expr::load(Type::i32(), "ind", lane).cast(Type::i32()),
                ),
            ),
        ]);
        // `ind` is a float-storage buffer here (the helper allocates f32),
        // which exercises the trunc-to-int index conversions identically on
        // both engines.
        assert_backends_agree(&s, &[("ind", 16), ("src", 16), ("out", 16)]);
    }

    #[test]
    fn clamped_gather_loads_agree() {
        // The fused clamped-gather form against the interpreter's
        // min/max-then-load: identical values, arith counts, and pattern
        // counters — at the edges where the clamp actually bites.
        let idx = Expr::ramp(Expr::var_i32("i") * 4 - 6, Expr::int(1), 4);
        let clamped = Expr::max(
            Expr::min(idx, Expr::broadcast(Expr::int(15), 4)),
            Expr::broadcast(Expr::int(0), 4),
        );
        let s = Stmt::block_of(vec![
            fill_loop("src", 16),
            Stmt::for_loop(
                "i",
                Expr::int(0),
                Expr::int(6),
                ForKind::Serial,
                Stmt::store(
                    "out",
                    Expr::load(Type::f32(), "src", clamped),
                    Expr::ramp(Expr::var_i32("i") * 4, Expr::int(1), 4),
                ),
            ),
        ]);
        assert_backends_agree(&s, &[("src", 16), ("out", 24)]);
    }

    #[test]
    fn masked_dense_and_strided_ops_agree() {
        // Predicated (masked) loads and stores — the form predicate-tail
        // vectorization emits — on unit-stride and strided ramps with a
        // mixed mask: the compiled engine's bulk masked paths against the
        // interpreter's per-lane loop, values and masked-op counters alike.
        let dense = Expr::ramp(Expr::var_i32("i") * 4, Expr::int(1), 4);
        let strided = Expr::ramp(Expr::var_i32("i") * 8, Expr::int(2), 4);
        for idx in [dense, strided] {
            let mask = Expr::lt(idx.clone() % 3, Expr::broadcast(Expr::int(2), 4));
            let value =
                Expr::load_predicated(Type::f32(), "src", idx.clone(), mask.clone()) * 2.0f32;
            let s = Stmt::block_of(vec![
                fill_loop("src", 32),
                Stmt::for_loop(
                    "i",
                    Expr::int(0),
                    Expr::int(4),
                    ForKind::Serial,
                    Stmt::store_predicated("out", value, idx, mask),
                ),
            ]);
            assert_backends_agree(&s, &[("src", 32), ("out", 32)]);
        }

        // An all-true mask falls through to the unmasked bulk dispatch on
        // both engines — same values, same (unmasked) counters.
        let idx = Expr::ramp(Expr::var_i32("i") * 4, Expr::int(1), 4);
        let mask = Expr::lt(idx.clone(), Expr::broadcast(Expr::int(100), 4));
        let value = Expr::load_predicated(Type::f32(), "src", idx.clone(), mask.clone()) + 1.0f32;
        let s = Stmt::block_of(vec![
            fill_loop("src", 16),
            Stmt::for_loop(
                "i",
                Expr::int(0),
                Expr::int(4),
                ForKind::Serial,
                Stmt::store_predicated("out", value, idx, mask),
            ),
        ]);
        assert_backends_agree(&s, &[("src", 16), ("out", 16)]);
    }

    #[test]
    fn masked_oob_lanes_skip_checks_only_when_disabled() {
        // A ramp whose last two lanes run past the allocation — the shape
        // of a predicated tail. With those lanes masked off, both engines
        // skip them: no fault, disabled load lanes yield zero, disabled
        // store lanes stay untouched.
        let idx = Expr::ramp(Expr::int(4), Expr::int(1), 4); // lanes 4..8 of a 6-buffer
        let in_range = Expr::lt(idx.clone(), Expr::broadcast(Expr::int(6), 4));
        let value =
            Expr::load_predicated(Type::f32(), "src", idx.clone(), in_range.clone()) + 1.0f32;
        let ok = Stmt::block_of(vec![
            fill_loop("src", 6),
            Stmt::store_predicated("out", value, idx.clone(), in_range),
        ]);
        assert_backends_agree(&ok, &[("src", 6), ("out", 6)]);

        // The same lanes *enabled* must fault — the mask, not luck, is what
        // licenses the overhang — and both engines must report the very
        // same error, for the store and for the load.
        let enabled = Expr::lt(idx.clone(), Expr::broadcast(Expr::int(100), 4));
        let bad_store = Stmt::store_predicated(
            "out",
            Expr::broadcast(Expr::f32(1.0), 4),
            idx.clone(),
            enabled.clone(),
        );
        let bad_load = Stmt::store(
            "out",
            Expr::load_predicated(Type::f32(), "src", idx.clone() + 100, enabled),
            Expr::ramp(Expr::int(0), Expr::int(1), 4),
        );
        for s in [bad_store, bad_load] {
            let prog = Program::compile_stmt(&s).unwrap();
            let cctx = ctx();
            let mut m = Machine::new(&prog);
            for name in ["src", "out"] {
                if let Some(b) = prog.free_buf(name) {
                    m.set_buf(
                        b,
                        Arc::new(Buffer::with_extents(ScalarType::Float(32), &[6])),
                    );
                }
            }
            let compiled_err = exec(&prog, &prog.body, &mut m, &cctx).unwrap_err();
            assert!(
                compiled_err.to_string().contains("outside the allocation"),
                "{compiled_err}"
            );

            let ictx = ctx();
            let mut frame = Frame::default();
            for name in ["src", "out"] {
                frame.insert_buffer(
                    name.to_string(),
                    Arc::new(Buffer::with_extents(ScalarType::Float(32), &[6])),
                );
            }
            let interp_err = eval_stmt(&s, &mut frame, &ictx).unwrap_err();
            assert_eq!(compiled_err.to_string(), interp_err.to_string());
        }
    }

    #[test]
    fn narrow_value_through_wide_ramp_store_agrees() {
        // Regression: a 2-lane value stored through a 4-lane unit-stride
        // ramp must clamp lanes like the interpreter (set_flat_lane), not
        // panic slicing the value vector out of range.
        let value = Expr::ramp(Expr::int(10), Expr::int(1), 2).cast(Type::f32());
        let idx = Expr::ramp(Expr::int(0), Expr::int(1), 4);
        let s = Stmt::store("out", value, idx);
        assert_backends_agree(&s, &[("out", 8)]);
    }

    #[test]
    fn out_of_bounds_is_an_error() {
        let s = Stmt::store("out", Expr::f32(1.0), Expr::int(99));
        let prog = Program::compile_stmt(&s).unwrap();
        let c = ctx();
        let mut m = Machine::new(&prog);
        m.set_buf(
            prog.free_buf("out").unwrap(),
            Arc::new(Buffer::with_extents(ScalarType::Float(32), &[4])),
        );
        let err = exec(&prog, &prog.body, &mut m, &c).unwrap_err();
        assert!(err.to_string().contains("outside the allocation"));
    }

    #[test]
    fn out_of_bounds_inside_parallel_loop_is_reported() {
        let body = Stmt::store("out", Expr::f32(1.0), Expr::var_i32("i"));
        let s = Stmt::for_loop("i", Expr::int(0), Expr::int(100), ForKind::Parallel, body);
        let prog = Program::compile_stmt(&s).unwrap();
        let c = ctx();
        let mut m = Machine::new(&prog);
        m.set_buf(
            prog.free_buf("out").unwrap(),
            Arc::new(Buffer::with_extents(ScalarType::Float(32), &[4])),
        );
        assert!(exec(&prog, &prog.body, &mut m, &c).is_err());
    }

    #[test]
    fn unknown_intrinsics_fail_at_compile_time() {
        let s = Stmt::store(
            "out",
            Expr::intrinsic("no_such_intrinsic", vec![Expr::int(0)], Type::i32()),
            Expr::int(0),
        );
        let err = Program::compile_stmt(&s).unwrap_err();
        assert!(err.to_string().contains("no_such_intrinsic"));
    }

    #[test]
    fn asserts_and_conditionals_execute() {
        let s = Stmt::block_of(vec![
            Stmt::assert_stmt(Expr::bool(true), "fine"),
            Stmt::if_then_else(
                Expr::bool(false),
                Stmt::assert_stmt(Expr::bool(false), "unreachable"),
                Some(Stmt::store("out", Expr::f32(7.0), Expr::int(0))),
            ),
        ]);
        assert_backends_agree(&s, &[("out", 1)]);

        let failing = Stmt::assert_stmt(Expr::bool(false), "boom");
        let prog = Program::compile_stmt(&failing).unwrap();
        let c = ctx();
        let mut m = Machine::new(&prog);
        let err = exec(&prog, &prog.body, &mut m, &c).unwrap_err();
        assert!(err.to_string().contains("boom"));
    }
}
