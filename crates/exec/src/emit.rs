//! The emit layer: translates optimized [`crate::pir::PirProgram`]s into
//! the [`crate::machine`] instruction set (`CStmt`/`CExpr` trees).
//!
//! Emission is the inverse of linearization wherever that is profitable:
//! a register defined once and read once *in the same block* is fused back
//! into its consumer's expression tree, so the machine never materializes it
//! in a frame slot. Everything else — multi-use registers, registers read
//! from a nested block, and loads still pending when an effectful statement
//! could clobber their buffer — is emitted as an explicit
//! [`CStmt::SetSlot`]. PIR registers map one-to-one onto machine frame
//! slots, so no renumbering happens here.
//!
//! Counter exactness: a counted instruction whose `weight` is not 1 (LICM
//! sets hoisted instructions to 0) emits alongside a compensating
//! [`CStmt::Count`] / [`CExpr::Count`], and [`crate::pir::POp::Count`]
//! markers translate directly — the machine's dynamic arithmetic counter
//! stays bit-identical to the interpreter's.
//!
//! This boundary is deliberately thin: a future native backend replaces
//! this module (PIR in, machine code out) without touching linearization or
//! the optimizer.

use std::collections::HashMap;

use crate::compile::{CExpr, CStmt};
use crate::error::{ExecError, Result};
use crate::pir::{BlockId, PInst, POp, PirProgram, Reg};

/// Translates an (optimized) PIR program into a machine statement tree.
pub(crate) fn emit(p: &PirProgram) -> Result<CStmt> {
    let em = Emitter {
        p,
        uses: analyze_uses(p),
    };
    if p.blocks.is_empty() {
        return Ok(CStmt::NoOp);
    }
    em.block_stmt(0)
}

/// Where a register's reads happen, for the fusion decision.
#[derive(Clone, Copy, Default)]
struct UseInfo {
    count: u32,
    /// Block of the most recent recorded read. Only meaningful when
    /// `count == 1`.
    block: BlockId,
}

/// Counts reads per register, attributing a region's result-register reads
/// (`rhs_val`, `t_val`, `f_val`) to the *arm block* — that is where the
/// value is consumed at run time, and attributing them there keeps a
/// parent-block definition from fusing into a conditionally-evaluated arm.
fn analyze_uses(p: &PirProgram) -> Vec<UseInfo> {
    let mut uses = vec![UseInfo::default(); p.n_regs as usize];
    let record = |r: Reg, b: BlockId, uses: &mut Vec<UseInfo>| {
        let u = &mut uses[r as usize];
        u.count += 1;
        u.block = b;
    };
    for b in p.reachable() {
        for inst in &p.blocks[b as usize] {
            match &inst.op {
                POp::And { a, rhs, rhs_val } | POp::Or { a, rhs, rhs_val } => {
                    record(*a, b, &mut uses);
                    record(*rhs_val, *rhs, &mut uses);
                }
                POp::Select {
                    cond,
                    t,
                    t_val,
                    f,
                    f_val,
                } => {
                    record(*cond, b, &mut uses);
                    record(*t_val, *t, &mut uses);
                    record(*f_val, *f, &mut uses);
                }
                op => op.for_each_operand(|r| record(r, b, &mut uses)),
            }
        }
    }
    uses
}

/// An expression built for a not-yet-consumed single-use definition.
struct Pending {
    expr: CExpr,
    /// True when the expression (or anything fused into it) touches buffer
    /// memory — such pendings must flush before a statement that could
    /// write memory.
    loads: bool,
}

/// Per-block fusion state: definitions awaiting their single consumer, in
/// definition order.
#[derive(Default)]
struct BlockCx {
    pending: HashMap<Reg, Pending>,
    order: Vec<Reg>,
}

impl BlockCx {
    fn insert(&mut self, r: Reg, expr: CExpr, loads: bool) {
        self.pending.insert(r, Pending { expr, loads });
        self.order.push(r);
    }

    /// Consumes the pending expression for `r`, or reads its slot.
    fn take(&mut self, r: Reg) -> (CExpr, bool) {
        match self.pending.remove(&r) {
            Some(pend) => (pend.expr, pend.loads),
            None => (CExpr::Slot(r), false),
        }
    }

    /// Removes and returns, in definition order, every pending whose
    /// expression touches memory (`all` = every pending regardless).
    fn drain(&mut self, all: bool) -> Vec<(Reg, CExpr)> {
        let mut out = Vec::new();
        let order = std::mem::take(&mut self.order);
        for r in order {
            let loadish = self.pending.get(&r).map(|pend| pend.loads);
            match loadish {
                Some(l) if all || l => {
                    let pend = self.pending.remove(&r).unwrap();
                    out.push((r, pend.expr));
                }
                Some(_) => self.order.push(r),
                None => {} // already consumed
            }
        }
        out
    }
}

struct Emitter<'a> {
    p: &'a PirProgram,
    uses: Vec<UseInfo>,
}

impl Emitter<'_> {
    /// True when `inst`'s value can fuse into its consumer: exactly one
    /// read, in the defining block, and no counter compensation rides on
    /// the instruction (a weight-0 hoisted op must emit at its own site so
    /// the adjacent `Count` stays exact).
    fn fusable(&self, inst: &PInst, dst: Reg, b: BlockId) -> bool {
        let u = self.uses[dst as usize];
        u.count == 1 && u.block == b && !(inst.op.counted() && inst.weight != 1)
    }

    /// Builds the machine expression for a value instruction, consuming any
    /// pending operands. Returns the expression and whether it (or anything
    /// fused into it) touches buffer memory.
    fn value_expr(&self, inst: &PInst, cx: &mut BlockCx) -> Result<(CExpr, bool)> {
        let bx = Box::new;
        Ok(match &inst.op {
            POp::ConstI(v) => (CExpr::ConstI(*v), false),
            POp::ConstF(v) => (CExpr::ConstF(*v), false),
            POp::Copy(a) => cx.take(*a),
            POp::Cast { ty, a } => {
                let (e, l) = cx.take(*a);
                (
                    CExpr::Cast {
                        ty: *ty,
                        value: bx(e),
                    },
                    l,
                )
            }
            POp::Bin { op, a, b } => {
                let (ea, la) = cx.take(*a);
                let (eb, lb) = cx.take(*b);
                (
                    CExpr::Bin {
                        op: *op,
                        a: bx(ea),
                        b: bx(eb),
                    },
                    la || lb,
                )
            }
            POp::Cmp { op, a, b } => {
                let (ea, la) = cx.take(*a);
                let (eb, lb) = cx.take(*b);
                (
                    CExpr::Cmp {
                        op: *op,
                        a: bx(ea),
                        b: bx(eb),
                    },
                    la || lb,
                )
            }
            POp::Not { a } => {
                let (e, l) = cx.take(*a);
                (CExpr::Not { a: bx(e) }, l)
            }
            POp::Shl { a, bits } => {
                let (e, l) = cx.take(*a);
                (
                    CExpr::Shl {
                        a: bx(e),
                        bits: *bits,
                    },
                    l,
                )
            }
            POp::Shr { a, bits } => {
                let (e, l) = cx.take(*a);
                (
                    CExpr::Shr {
                        a: bx(e),
                        bits: *bits,
                    },
                    l,
                )
            }
            POp::AndMask { a, mask } => {
                let (e, l) = cx.take(*a);
                (
                    CExpr::AndMask {
                        a: bx(e),
                        mask: *mask,
                    },
                    l,
                )
            }
            POp::Ramp {
                base,
                stride,
                lanes,
            } => {
                let (eb, lb) = cx.take(*base);
                let (es, ls) = cx.take(*stride);
                (
                    CExpr::Ramp {
                        base: bx(eb),
                        stride: bx(es),
                        lanes: *lanes,
                    },
                    lb || ls,
                )
            }
            POp::Broadcast { a, lanes } => {
                let (e, l) = cx.take(*a);
                (
                    CExpr::Broadcast {
                        value: bx(e),
                        lanes: *lanes,
                    },
                    l,
                )
            }
            POp::And { a, rhs, rhs_val } => {
                let (ea, la) = cx.take(*a);
                let (eb, lb) = self.arm(*rhs, *rhs_val)?;
                (
                    CExpr::And {
                        a: bx(ea),
                        b: bx(eb),
                    },
                    la || lb,
                )
            }
            POp::Or { a, rhs, rhs_val } => {
                let (ea, la) = cx.take(*a);
                let (eb, lb) = self.arm(*rhs, *rhs_val)?;
                (
                    CExpr::Or {
                        a: bx(ea),
                        b: bx(eb),
                    },
                    la || lb,
                )
            }
            POp::Select {
                cond,
                t,
                t_val,
                f,
                f_val,
            } => {
                let (ec, lc) = cx.take(*cond);
                let (et, lt) = self.arm(*t, *t_val)?;
                let (ef, lf) = self.arm(*f, *f_val)?;
                (
                    CExpr::Select {
                        cond: bx(ec),
                        t: bx(et),
                        f: bx(ef),
                    },
                    lc || lt || lf,
                )
            }
            POp::Load { buf, index } => {
                let (e, _) = cx.take(*index);
                (
                    CExpr::Load {
                        buf: *buf,
                        index: bx(e),
                    },
                    true,
                )
            }
            POp::LoadDense { buf, base, lanes } => {
                let (e, _) = cx.take(*base);
                (
                    CExpr::LoadDense {
                        buf: *buf,
                        base: bx(e),
                        lanes: *lanes,
                    },
                    true,
                )
            }
            POp::LoadClamped { buf, index, lo, hi } => {
                let (ei, _) = cx.take(*index);
                let (elo, _) = cx.take(*lo);
                let (ehi, _) = cx.take(*hi);
                (
                    CExpr::LoadClamped {
                        buf: *buf,
                        index: bx(ei),
                        lo: bx(elo),
                        hi: bx(ehi),
                    },
                    true,
                )
            }
            POp::LoadMasked { buf, index, mask } => {
                let (ei, _) = cx.take(*index);
                let (em, _) = cx.take(*mask);
                (
                    CExpr::LoadMasked {
                        buf: *buf,
                        index: bx(ei),
                        mask: bx(em),
                    },
                    true,
                )
            }
            POp::Intrinsic { f, args, .. } => {
                let mut loads = false;
                let mut es = Vec::with_capacity(args.len());
                for a in args {
                    let (e, l) = cx.take(*a);
                    loads |= l;
                    es.push(e);
                }
                (CExpr::Intrinsic { f: *f, args: es }, loads)
            }
            other => {
                return Err(ExecError::new(format!(
                    "internal error: effect operation {other:?} in value position"
                )))
            }
        })
    }

    /// Emits a lazily-evaluated arm block as a single expression: non-fused
    /// definitions become `Let` wrappers, counter markers become `Count`
    /// wrappers, and the block's result register closes the chain. Returns
    /// the expression and whether anything inside touches memory.
    fn arm(&self, b: BlockId, val: Reg) -> Result<(CExpr, bool)> {
        enum Wrap {
            Let(Reg, CExpr),
            Count(i64),
        }
        let mut wraps: Vec<Wrap> = Vec::new();
        let mut cx = BlockCx::default();
        let mut any_loads = false;
        for inst in &self.p.blocks[b as usize] {
            if let POp::Count { arith } = inst.op {
                wraps.push(Wrap::Count(arith));
                continue;
            }
            let Some(dst) = inst.dst else {
                return Err(ExecError::new(format!(
                    "internal error: effect operation {:?} in an expression block",
                    inst.op
                )));
            };
            let (expr, loads) = self.value_expr(inst, &mut cx)?;
            any_loads |= loads;
            if self.fusable(inst, dst, b) {
                cx.insert(dst, expr, loads);
            } else {
                wraps.push(Wrap::Let(dst, expr));
                if inst.op.counted() && inst.weight != 1 {
                    wraps.push(Wrap::Count(inst.weight as i64 - 1));
                }
            }
        }
        let (mut result, l) = cx.take(val);
        any_loads |= l;
        // Anything still pending was never consumed (a zero-use definition
        // that must still evaluate, e.g. an unused load): bind it too.
        let stranded = cx.drain(true);
        for (r, e) in stranded.into_iter().rev() {
            result = CExpr::Let {
                slot: r,
                value: Box::new(e),
                body: Box::new(result),
            };
        }
        for w in wraps.into_iter().rev() {
            result = match w {
                Wrap::Let(slot, value) => CExpr::Let {
                    slot,
                    value: Box::new(value),
                    body: Box::new(result),
                },
                Wrap::Count(arith) => CExpr::Count {
                    arith,
                    inner: Box::new(result),
                },
            };
        }
        Ok((result, any_loads))
    }

    /// Emits a statement block, fusing single-use definitions into their
    /// consumers and flushing memory-touching pendings before any statement
    /// that could write memory.
    fn block_stmts(&self, b: BlockId) -> Result<Vec<CStmt>> {
        let mut out: Vec<CStmt> = Vec::new();
        let mut cx = BlockCx::default();
        // Produce markers are paired and well-nested within a block (the
        // linearizer emits both sides into the same block), so nesting is
        // rebuilt with a stack of output lists: `ProduceEnter` starts a
        // fresh list, `ProduceExit` wraps it into a `CStmt::Produce` and
        // resumes the enclosing one.
        let mut produce_stack: Vec<(u32, Vec<CStmt>)> = Vec::new();
        let flush = |cx: &mut BlockCx, out: &mut Vec<CStmt>, all: bool| {
            for (r, e) in cx.drain(all) {
                out.push(CStmt::SetSlot { slot: r, value: e });
            }
        };
        for inst in &self.p.blocks[b as usize] {
            match &inst.op {
                POp::Count { arith } => out.push(CStmt::Count { arith: *arith }),
                POp::ProduceEnter { func } => {
                    produce_stack.push((*func, std::mem::take(&mut out)));
                }
                POp::ProduceExit => {
                    let Some((func, outer)) = produce_stack.pop() else {
                        return Err(ExecError::new(
                            "internal error: unbalanced produce markers".to_string(),
                        ));
                    };
                    let body_stmts = std::mem::replace(&mut out, outer);
                    // An empty nest still emits: the profiler's invocation
                    // counts must match the interpreter's exactly.
                    let body = match body_stmts.len() {
                        0 => CStmt::NoOp,
                        1 => body_stmts.into_iter().next().unwrap(),
                        _ => CStmt::Block(body_stmts),
                    };
                    out.push(CStmt::Produce {
                        func,
                        body: Box::new(body),
                    });
                }
                POp::Store { buf, value, index } => {
                    let (val, _) = cx.take(*value);
                    let (idx, _) = cx.take(*index);
                    flush(&mut cx, &mut out, false);
                    out.push(CStmt::Store {
                        buf: *buf,
                        value: val,
                        index: idx,
                    });
                }
                POp::StoreDense {
                    buf,
                    value,
                    base,
                    lanes,
                } => {
                    let (val, _) = cx.take(*value);
                    let (base_e, _) = cx.take(*base);
                    flush(&mut cx, &mut out, false);
                    out.push(CStmt::StoreDense {
                        buf: *buf,
                        value: val,
                        base: base_e,
                        lanes: *lanes,
                    });
                }
                POp::StoreMasked {
                    buf,
                    value,
                    index,
                    mask,
                } => {
                    let (val, _) = cx.take(*value);
                    let (idx, _) = cx.take(*index);
                    let (m, _) = cx.take(*mask);
                    flush(&mut cx, &mut out, false);
                    out.push(CStmt::StoreMasked {
                        buf: *buf,
                        value: val,
                        index: idx,
                        mask: m,
                    });
                }
                POp::Assert { cond, message } => {
                    let (c, _) = cx.take(*cond);
                    flush(&mut cx, &mut out, false);
                    out.push(CStmt::Assert {
                        cond: c,
                        message: message.clone(),
                    });
                }
                POp::For {
                    var,
                    min,
                    extent,
                    kind,
                    header,
                    body,
                    gpu,
                } => {
                    let (min_e, _) = cx.take(*min);
                    let (ext_e, _) = cx.take(*extent);
                    flush(&mut cx, &mut out, false);
                    out.push(CStmt::For {
                        slot: *var,
                        min: min_e,
                        extent: ext_e,
                        kind: *kind,
                        hoisted: self.block_stmts(*header)?,
                        body: Box::new(self.block_stmt(*body)?),
                        gpu: gpu.clone(),
                    });
                }
                POp::Alloc {
                    buf,
                    ty,
                    size,
                    body,
                } => {
                    let (size_e, _) = cx.take(*size);
                    flush(&mut cx, &mut out, false);
                    out.push(CStmt::Allocate {
                        buf: *buf,
                        ty: *ty,
                        size: size_e,
                        body: Box::new(self.block_stmt(*body)?),
                    });
                }
                POp::If {
                    cond,
                    then_b,
                    else_b,
                } => {
                    let (c, _) = cx.take(*cond);
                    flush(&mut cx, &mut out, false);
                    out.push(CStmt::If {
                        cond: c,
                        then_case: Box::new(self.block_stmt(*then_b)?),
                        else_case: match else_b {
                            Some(e) => Some(Box::new(self.block_stmt(*e)?)),
                            None => None,
                        },
                    });
                }
                POp::Evaluate { a } => {
                    let (e, _) = cx.take(*a);
                    out.push(CStmt::Evaluate(e));
                }
                _ => {
                    let Some(dst) = inst.dst else {
                        return Err(ExecError::new(format!(
                            "internal error: value operation {:?} without a destination",
                            inst.op
                        )));
                    };
                    let (expr, loads) = self.value_expr(inst, &mut cx)?;
                    if self.fusable(inst, dst, b) {
                        cx.insert(dst, expr, loads);
                    } else {
                        out.push(CStmt::SetSlot {
                            slot: dst,
                            value: expr,
                        });
                        if inst.op.counted() && inst.weight != 1 {
                            out.push(CStmt::Count {
                                arith: inst.weight as i64 - 1,
                            });
                        }
                    }
                }
            }
        }
        if !produce_stack.is_empty() {
            return Err(ExecError::new(
                "internal error: produce marker left open at block end".to_string(),
            ));
        }
        // Anything still pending (a zero-use pure definition the optimizer
        // did not run over) must still evaluate, in definition order.
        flush(&mut cx, &mut out, true);
        Ok(out)
    }

    /// Emits a block as one statement node.
    fn block_stmt(&self, b: BlockId) -> Result<CStmt> {
        let mut stmts = self.block_stmts(b)?;
        Ok(match stmts.len() {
            0 => CStmt::NoOp,
            1 => stmts.pop().unwrap(),
            _ => CStmt::Block(stmts),
        })
    }
}
