//! # halide-exec
//!
//! The backend of the halide-rs reproduction. Where the paper's compiler
//! emits machine code through LLVM (Sec. 4.6), this crate executes the fully
//! lowered statement directly against the runtime: loops (serial, parallel,
//! GPU-simulated), vector values, buffer allocation and indexing, and
//! instrumentation counters.
//!
//! The substitution is documented in `DESIGN.md`: every scheduling decision
//! survives into execution, so the relative performance of schedules — the
//! quantity the paper's evaluation is about — is preserved, while absolute
//! times are those of a (fast-ish) interpreter rather than native code.
//!
//! The typical entry point is [`Realizer`]:
//!
//! ```
//! use halide_exec::Realizer;
//! use halide_ir::Type;
//! use halide_lang::{Func, ImageParam, Pipeline, Var};
//! use halide_lower::lower;
//! use halide_runtime::Buffer;
//!
//! // brighten(x, y) = input(x, y) * 2
//! let input = ImageParam::new("exec_doc_input", Type::f32(), 2);
//! let (x, y) = (Var::new("x"), Var::new("y"));
//! let f = Func::new("exec_doc_brighten");
//! f.define(&[x.clone(), y.clone()], input.at(vec![x.expr(), y.expr()]) * 2.0f32);
//!
//! let module = lower(&Pipeline::new(&f)).unwrap();
//! let data = Buffer::from_fn_2d(halide_ir::ScalarType::Float(32), 16, 16, |x, y| (x * y) as f64);
//! let result = Realizer::new(&module)
//!     .input("exec_doc_input", data)
//!     .realize(&[16, 16])
//!     .unwrap();
//! assert_eq!(result.output.at_f64(&[3, 4]), 24.0);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod error;
pub mod eval;
pub mod realize;

pub use error::{ExecError, Result};
pub use eval::{eval_expr, eval_stmt, Context, Frame};
pub use realize::{Realization, Realizer};
