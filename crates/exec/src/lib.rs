//! # halide-exec
//!
//! The backend of the halide-rs reproduction. Where the paper's compiler
//! emits machine code through LLVM (Sec. 4.6), this crate **compiles** the
//! fully lowered statement into a register-machine [`Program`] — variable
//! names resolved to frame slots, buffers to indices, intrinsics to function
//! pointers, scalars unboxed — and executes it against the runtime: loops
//! (serial, parallel, GPU-simulated), vector values, buffer allocation and
//! indexing, and instrumentation counters.
//!
//! A tree-walking interpreter ([`eval`]) is kept as the executable reference
//! semantics; [`Realizer::backend`] selects between the two and differential
//! tests assert they agree bit-for-bit. Every scheduling decision survives
//! into execution on both engines, so the relative performance of schedules
//! — the quantity the paper's evaluation is about — is preserved. The
//! engines are documented in `docs/execution.md` at the repository root.
//!
//! The typical entry point is [`Realizer`]:
//!
//! ```
//! use halide_exec::Realizer;
//! use halide_ir::Type;
//! use halide_lang::{Func, ImageParam, Pipeline, Var};
//! use halide_lower::lower;
//! use halide_runtime::Buffer;
//!
//! // brighten(x, y) = input(x, y) * 2
//! let input = ImageParam::new("exec_doc_input", Type::f32(), 2);
//! let (x, y) = (Var::new("x"), Var::new("y"));
//! let f = Func::new("exec_doc_brighten");
//! f.define(&[x.clone(), y.clone()], input.at(vec![x.expr(), y.expr()]) * 2.0f32);
//!
//! let module = lower(&Pipeline::new(&f)).unwrap();
//! let data = Buffer::from_fn_2d(halide_ir::ScalarType::Float(32), 16, 16, |x, y| (x * y) as f64);
//! let result = Realizer::new(&module)
//!     .input("exec_doc_input", data)
//!     .realize(&[16, 16])
//!     .unwrap();
//! assert_eq!(result.output.at_f64(&[3, 4]), 24.0);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod compile;
pub(crate) mod emit;
pub mod error;
pub mod eval;
pub mod machine;
pub mod opt;
pub(crate) mod pir;
pub mod realize;

pub use compile::Program;
pub use error::{ExecError, Result};
pub use eval::{eval_expr, eval_stmt, Context, Frame};
pub use opt::{OptLevel, OptReport, PassStat, PirStage};
pub use realize::{Backend, Realization, Realizer};
