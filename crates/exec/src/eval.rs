//! The evaluator: executes a lowered statement against runtime buffers.
//!
//! This is the repository's substitute for the paper's LLVM backend
//! (Sec. 4.6): every scheduling decision made by the compiler — loop
//! structure, producer/consumer interleaving, allocation lifetimes and sizes,
//! parallel / vectorized / unrolled / GPU loops — is preserved in the
//! statement and faithfully executed here, so schedule-to-schedule
//! comparisons exercise exactly the tradeoffs the paper studies.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use halide_ir::{CallType, Expr, ExprNode, ForKind, ScalarType, Scope, Stmt, StmtNode};
use halide_runtime::{
    binary_op, compare_op, select_op, Buffer, BufferPool, Counters, GpuDevice, ThreadPool, Value,
};

use crate::error::{ExecError, Result};

/// Shared, thread-safe execution context for one realization.
pub struct Context {
    /// Worker pool for parallel loops.
    pub pool: ThreadPool,
    /// Instrumentation counters.
    pub counters: Counters,
    /// The simulated GPU device.
    pub gpu: GpuDevice,
    /// When false, the per-operation counters (arithmetic, loads, stores) are
    /// skipped to keep multi-threaded wall-clock measurements free of shared
    /// atomic contention. Structural counters (allocations, tasks, kernels,
    /// copies) are always maintained.
    pub instrument: bool,
    /// When present, `Allocate` statements acquire their scratch buffers
    /// from this pool (and return them on scope exit) instead of hitting the
    /// allocator — the serving layer's steady-state zero-allocation path.
    pub buffer_pool: Option<Arc<BufferPool>>,
    /// When present, produce nests publish the currently-running Func to the
    /// sampling profiler, and scratch allocations are attributed to the Func
    /// whose storage they back. `None` (the default) keeps the hot path
    /// untouched: the cost of an unattached profiler is one pointer-sized
    /// branch per produce entry, never per operation.
    pub profiler: Option<Arc<halide_trace::Profiler>>,
    gpu_used: AtomicBool,
    error: Mutex<Option<ExecError>>,
    failed: AtomicBool,
}

impl Context {
    /// Creates a context with the given pool and instrumentation setting.
    pub fn new(pool: ThreadPool, instrument: bool) -> Self {
        Context {
            pool,
            counters: Counters::new(),
            gpu: GpuDevice::new(),
            instrument,
            buffer_pool: None,
            profiler: None,
            gpu_used: AtomicBool::new(false),
            error: Mutex::new(None),
            failed: AtomicBool::new(false),
        }
    }

    /// Configures the pool `Allocate` statements draw scratch buffers from
    /// (`None` allocates fresh buffers, the default).
    pub fn with_buffer_pool(mut self, pool: Option<Arc<BufferPool>>) -> Self {
        self.buffer_pool = pool;
        self
    }

    /// Attaches a sampling profiler; produce nests will publish the current
    /// Func and scratch allocations will be attributed to it.
    pub fn with_profiler(mut self, profiler: Option<Arc<halide_trace::Profiler>>) -> Self {
        self.profiler = profiler;
        self
    }

    /// Creates a zero-filled scratch buffer, recycled from the configured
    /// buffer pool when one is set (recording the hit or miss in the
    /// counters), freshly allocated otherwise.
    pub(crate) fn alloc_scratch(&self, ty: ScalarType, extents: &[i64]) -> Buffer {
        match &self.buffer_pool {
            Some(pool) => {
                let (buf, hit) = pool.acquire_raw(ty, extents);
                if hit {
                    self.counters.add_pool_hit();
                } else {
                    self.counters.add_pool_miss();
                }
                buf
            }
            None => Buffer::with_extents(ty, extents),
        }
    }

    /// Hands a scratch buffer's allocation back to the pool, if a pool is
    /// configured and this was the last reference (a buffer still referenced
    /// elsewhere — e.g. mirrored on the simulated GPU — just drops normally).
    pub(crate) fn release_scratch(&self, buf: Arc<Buffer>) {
        if let Some(pool) = &self.buffer_pool {
            if let Some(buf) = Arc::into_inner(buf) {
                pool.release(buf);
            }
        }
    }

    pub(crate) fn record_error(&self, e: ExecError) {
        self.failed.store(true, Ordering::Relaxed);
        let mut slot = self.error.lock();
        if slot.is_none() {
            *slot = Some(e);
        }
    }

    /// The first error recorded by any thread, if any.
    pub fn take_error(&self) -> Option<ExecError> {
        self.error.lock().take()
    }

    pub(crate) fn has_failed(&self) -> bool {
        self.failed.load(Ordering::Relaxed)
    }

    /// True once a GPU kernel has launched in this context (loads/stores
    /// then consult the simulated device's residency map).
    pub(crate) fn gpu_in_use(&self) -> bool {
        self.gpu_used.load(Ordering::Relaxed)
    }

    /// Marks the GPU as used; returns whether it already was.
    pub(crate) fn mark_gpu_used(&self) -> bool {
        self.gpu_used.swap(true, Ordering::Relaxed)
    }
}

/// The buffers visible in a scope: a persistent (structure-shared)
/// association list. The innermost binding of a name wins, so allocations
/// shadow naturally; cloning is a single `Arc` bump. The interpreter clones
/// a [`Frame`] for every parallel task, so this interning is what keeps the
/// reference backend usable for differential tests at full sizes (it used
/// to deep-clone a `HashMap<String, Arc<Buffer>>` per iteration).
#[derive(Clone, Default)]
struct BufferChain {
    head: Option<Arc<BufNode>>,
}

struct BufNode {
    name: String,
    buf: Arc<Buffer>,
    rest: Option<Arc<BufNode>>,
}

impl BufferChain {
    fn get(&self, name: &str) -> Option<&Arc<Buffer>> {
        let mut cur = self.head.as_ref();
        while let Some(node) = cur {
            if node.name == name {
                return Some(&node.buf);
            }
            cur = node.rest.as_ref();
        }
        None
    }

    fn push(&mut self, name: String, buf: Arc<Buffer>) {
        self.head = Some(Arc::new(BufNode {
            name,
            buf,
            rest: self.head.take(),
        }));
    }
}

/// A saved buffer-scope position; restoring it undoes pushes made since.
pub struct BufferMark(Option<Arc<BufNode>>);

/// Per-thread evaluation state: scalar bindings plus the buffers visible in
/// the current scope. Cloning is cheap (the buffer list is structure-shared
/// and buffers are `Arc`s) and gives each parallel iteration its own scope,
/// so allocations made inside a parallel loop body stay private to that
/// iteration.
#[derive(Clone, Default)]
pub struct Frame {
    /// Scalar variable bindings (loop indices, lets, buffer layout symbols,
    /// parameters).
    pub env: Scope<Value>,
    /// Buffers visible in this scope, innermost binding first.
    buffers: BufferChain,
}

impl Frame {
    fn buffer(&self, name: &str) -> Result<&Arc<Buffer>> {
        self.buffers
            .get(name)
            .ok_or_else(|| ExecError::new(format!("no buffer named {name:?} is in scope")))
    }

    /// Makes a buffer visible in this scope, shadowing any previous binding
    /// of the same name.
    pub fn insert_buffer(&mut self, name: impl Into<String>, buf: Arc<Buffer>) {
        self.buffers.push(name.into(), buf);
    }

    /// The innermost buffer bound to `name`, if any.
    pub fn buffer_named(&self, name: &str) -> Option<&Arc<Buffer>> {
        self.buffers.get(name)
    }

    /// Saves the current buffer-scope position (see [`Frame::restore_buffers`]).
    pub fn mark_buffers(&self) -> BufferMark {
        BufferMark(self.buffers.head.clone())
    }

    /// Restores a position saved by [`Frame::mark_buffers`], removing
    /// buffers inserted since.
    pub fn restore_buffers(&mut self, mark: BufferMark) {
        self.buffers.head = mark.0;
    }
}

pub(crate) fn eval_intrinsic(name: &str, args: &[Value]) -> Result<Value> {
    let unary = |f: fn(f64) -> f64| -> Result<Value> {
        Ok(Value::Float(
            args[0].to_f64_lanes().iter().map(|v| f(*v)).collect(),
        ))
    };
    let binary = |f: fn(f64, f64) -> f64| -> Result<Value> {
        let a = args[0].to_f64_lanes();
        let b = args[1].broadcast(args[0].lanes()).to_f64_lanes();
        Ok(Value::Float(
            a.iter().zip(b.iter()).map(|(x, y)| f(*x, *y)).collect(),
        ))
    };
    match name {
        "abs" => Ok(match &args[0] {
            Value::Int(v) => Value::Int(v.iter().map(|x| x.abs()).collect()),
            Value::Float(v) => Value::Float(v.iter().map(|x| x.abs()).collect()),
        }),
        "sqrt" => unary(f64::sqrt),
        "exp" => unary(f64::exp),
        "log" => unary(f64::ln),
        "sin" => unary(f64::sin),
        "cos" => unary(f64::cos),
        "floor" => unary(f64::floor),
        "ceil" => unary(f64::ceil),
        "round" => unary(f64::round),
        "tanh" => unary(f64::tanh),
        "pow" => binary(|x, y| x.powf(y)),
        "atan2" => binary(f64::atan2),
        // min/max as intrinsics: identical semantics to the binary operator
        // (kind-preserving, broadcasting the scalar side).
        "min" => Ok(binary_op(halide_ir::BinOp::Min, &args[0], &args[1])),
        "max" => Ok(binary_op(halide_ir::BinOp::Max, &args[0], &args[1])),
        other => Err(ExecError::new(format!("unknown intrinsic {other:?}"))),
    }
}

/// Evaluates an expression to a [`Value`].
pub fn eval_expr(e: &Expr, frame: &Frame, ctx: &Context) -> Result<Value> {
    match e.node() {
        ExprNode::IntImm { value, .. } => Ok(Value::int(*value)),
        ExprNode::UIntImm { value, .. } => Ok(Value::int(*value as i64)),
        ExprNode::FloatImm { value, .. } => Ok(Value::float(*value)),
        ExprNode::Var { name, .. } => frame
            .env
            .get(name)
            .cloned()
            .ok_or_else(|| ExecError::new(format!("unbound variable {name:?}"))),
        ExprNode::Cast { ty, value } => {
            let v = eval_expr(value, frame, ctx)?;
            Ok(v.cast_to(ty.scalar()))
        }
        ExprNode::Bin { op, a, b } => {
            let va = eval_expr(a, frame, ctx)?;
            let vb = eval_expr(b, frame, ctx)?;
            if ctx.instrument {
                ctx.counters.add_arith(1);
            }
            Ok(binary_op(*op, &va, &vb))
        }
        ExprNode::Cmp { op, a, b } => {
            let va = eval_expr(a, frame, ctx)?;
            let vb = eval_expr(b, frame, ctx)?;
            if ctx.instrument {
                ctx.counters.add_arith(1);
            }
            Ok(compare_op(*op, &va, &vb))
        }
        ExprNode::And { a, b } => {
            let va = eval_expr(a, frame, ctx)?;
            if va.is_scalar() && !va.as_bool() {
                return Ok(Value::bool(false));
            }
            let vb = eval_expr(b, frame, ctx)?;
            Ok(select_op(&va, &vb, &Value::bool(false)))
        }
        ExprNode::Or { a, b } => {
            let va = eval_expr(a, frame, ctx)?;
            if va.is_scalar() && va.as_bool() {
                return Ok(Value::bool(true));
            }
            let vb = eval_expr(b, frame, ctx)?;
            Ok(select_op(&va, &Value::bool(true), &vb))
        }
        ExprNode::Not { a } => {
            let va = eval_expr(a, frame, ctx)?;
            Ok(Value::Int(
                va.to_int_lanes().iter().map(|v| (*v == 0) as i64).collect(),
            ))
        }
        ExprNode::Select { cond, t, f } => {
            let c = eval_expr(cond, frame, ctx)?;
            // Scalar condition: evaluate only the taken branch (important for
            // the warm-up selects emitted by the sliding window pass).
            if c.is_scalar() {
                return if c.as_bool() {
                    eval_expr(t, frame, ctx)
                } else {
                    eval_expr(f, frame, ctx)
                };
            }
            if ctx.instrument {
                ctx.counters.add_masked_select();
            }
            let tv = eval_expr(t, frame, ctx)?;
            let fv = eval_expr(f, frame, ctx)?;
            Ok(select_op(&c, &tv, &fv))
        }
        ExprNode::Ramp {
            base,
            stride,
            lanes,
        } => {
            let b = eval_expr(base, frame, ctx)?;
            let s = eval_expr(stride, frame, ctx)?;
            match (&b, &s) {
                (Value::Float(_), _) | (_, Value::Float(_)) => {
                    let b = b.as_f64();
                    let s = s.as_f64();
                    Ok(Value::Float(
                        (0..*lanes as i64).map(|i| b + s * i as f64).collect(),
                    ))
                }
                _ => {
                    let b = b.as_int();
                    let s = s.as_int();
                    Ok(Value::Int((0..*lanes as i64).map(|i| b + s * i).collect()))
                }
            }
        }
        ExprNode::Broadcast { value, lanes } => {
            Ok(eval_expr(value, frame, ctx)?.broadcast(*lanes as usize))
        }
        ExprNode::Let { name, value, body } => {
            let v = eval_expr(value, frame, ctx)?;
            let mut inner = frame.clone();
            inner.env.push(name.clone(), v);
            eval_expr(body, &inner, ctx)
        }
        ExprNode::Load {
            name,
            index,
            predicate,
            ..
        } => {
            let idx = eval_expr(index, frame, ctx)?;
            let mask = match predicate {
                Some(p) => {
                    let m = eval_expr(p, frame, ctx)?;
                    Some(m.broadcast(idx.lanes()))
                }
                None => None,
            };
            let buf = frame.buffer(name)?;
            if ctx.gpu_used.load(Ordering::Relaxed) {
                ctx.gpu.ensure_on_host(name, &ctx.counters);
            }
            let lanes = idx.lanes();
            if ctx.instrument {
                ctx.counters.add_load(lanes as u64);
                if lanes > 1 {
                    ctx.counters
                        .add_load_pattern(halide_runtime::classify_flat_indices(
                            &idx.to_int_lanes(),
                        ));
                }
                if mask.is_some() {
                    ctx.counters.add_masked_load();
                }
            }
            let len = buf.len();
            let mut out_i: Vec<i64> = Vec::with_capacity(lanes);
            let mut out_f: Vec<f64> = Vec::with_capacity(lanes);
            let is_float = buf.ty().is_float();
            for lane in 0..lanes {
                // A masked-off lane is not read (and not bounds-checked);
                // it yields zero, which the predicate guarantees is never
                // observed by an enabled computation.
                if let Some(m) = &mask {
                    if m.lane_int(lane) == 0 {
                        if is_float {
                            out_f.push(0.0);
                        } else {
                            out_i.push(0);
                        }
                        continue;
                    }
                }
                let i = idx.lane_int(lane);
                if i < 0 || i as usize >= len {
                    return Err(ExecError::new(format!(
                        "load from {name:?} at flat index {i} is outside the allocation of {len} elements"
                    )));
                }
                if is_float {
                    out_f.push(buf.get_flat_f64(i as usize));
                } else {
                    out_i.push(buf.get_flat_i64(i as usize));
                }
            }
            Ok(if is_float {
                Value::Float(out_f)
            } else {
                Value::Int(out_i)
            })
        }
        ExprNode::Call {
            name,
            call_type,
            args,
            ..
        } => match call_type {
            CallType::Intrinsic => {
                let vals: Vec<Value> = args
                    .iter()
                    .map(|a| eval_expr(a, frame, ctx))
                    .collect::<Result<_>>()?;
                if ctx.instrument {
                    ctx.counters.add_arith(1);
                }
                eval_intrinsic(name, &vals)
            }
            CallType::Halide | CallType::Image => Err(ExecError::new(format!(
                "call to {name:?} survived lowering; the statement was not flattened"
            ))),
            CallType::Extern => Err(ExecError::new(format!(
                "extern function {name:?} is not registered with the executor"
            ))),
        },
    }
}

/// True if evaluating `e` would read a buffer; such expressions must not be
/// hoisted across statements that may write the buffer.
pub(crate) fn expr_has_load(e: &Expr) -> bool {
    use halide_ir::IrVisitor;
    struct Finder {
        found: bool,
    }
    impl IrVisitor for Finder {
        fn visit_expr(&mut self, e: &Expr) {
            if self.found {
                return;
            }
            if matches!(e.node(), ExprNode::Load { .. }) {
                self.found = true;
                return;
            }
            halide_ir::visit_expr_children(self, e);
        }
    }
    let mut f = Finder { found: false };
    f.visit_expr(e);
    f.found
}

/// Splits a loop body into its leading chain of `LetStmt`s whose values are
/// invariant in `loop_var` (and load from no buffer), plus the remaining
/// inner statement.
///
/// The let-dense statements produced by bounds inference put a realization's
/// `<func>.<dim>.min/.extent` bindings directly inside the enclosing loops;
/// evaluating the invariant ones once per loop *entry* instead of once per
/// iteration keeps the interpreter's per-iteration cost flat. Peeling stops
/// at the first dependent let so hoisted values can never observe the loop
/// variable (directly or through an un-hoisted predecessor).
pub(crate) fn peel_invariant_lets<'a>(
    body: &'a Stmt,
    loop_var: &str,
) -> (Vec<(&'a str, &'a Expr)>, &'a Stmt) {
    let mut hoisted = Vec::new();
    let mut cur = body;
    while let StmtNode::LetStmt { name, value, body } = cur.node() {
        if name == loop_var || halide_ir::expr_uses_var(value, loop_var) || expr_has_load(value) {
            break;
        }
        hoisted.push((name.as_str(), &*value));
        cur = body;
    }
    (hoisted, cur)
}

/// Names of buffers loaded from (reads) and stored to (writes) in a statement.
pub(crate) fn buffers_touched(stmt: &Stmt) -> (Vec<String>, Vec<String>) {
    use halide_ir::IrVisitor;
    struct Touch {
        reads: Vec<String>,
        writes: Vec<String>,
    }
    impl IrVisitor for Touch {
        fn visit_expr(&mut self, e: &Expr) {
            if let ExprNode::Load { name, .. } = e.node() {
                if !self.reads.contains(name) {
                    self.reads.push(name.clone());
                }
            }
            halide_ir::visit_expr_children(self, e);
        }
        fn visit_stmt(&mut self, s: &Stmt) {
            if let StmtNode::Store { name, .. } = s.node() {
                if !self.writes.contains(name) {
                    self.writes.push(name.clone());
                }
            }
            halide_ir::visit_stmt_children(self, s);
        }
    }
    let mut t = Touch {
        reads: Vec::new(),
        writes: Vec::new(),
    };
    t.visit_stmt(stmt);
    (t.reads, t.writes)
}

/// Executes a statement.
pub fn eval_stmt(s: &Stmt, frame: &mut Frame, ctx: &Context) -> Result<()> {
    if ctx.has_failed() {
        return Ok(()); // another thread already failed; unwind quietly
    }
    match s.node() {
        StmtNode::LetStmt { name, value, body } => {
            let v = eval_expr(value, frame, ctx)?;
            frame.env.push(name.clone(), v);
            let r = eval_stmt(body, frame, ctx);
            frame.env.pop(name);
            r
        }
        StmtNode::Assert { condition, message } => {
            let c = eval_expr(condition, frame, ctx)?;
            if c.as_bool() {
                Ok(())
            } else {
                Err(ExecError::new(format!("assertion failed: {message}")))
            }
        }
        StmtNode::Producer {
            name,
            is_produce,
            body,
        } => {
            if *is_produce {
                if let Some(p) = &ctx.profiler {
                    let prev = p.enter_named(name);
                    let r = eval_stmt(body, frame, ctx);
                    p.exit(prev);
                    return r;
                }
            }
            eval_stmt(body, frame, ctx)
        }
        StmtNode::For {
            name,
            min,
            extent,
            kind,
            body,
        } => {
            let min_v = eval_expr(min, frame, ctx)?.as_int();
            let extent_v = eval_expr(extent, frame, ctx)?.as_int();
            // Evaluate the loop body's leading invariant lets once per loop
            // entry rather than once per iteration.
            let (hoisted, inner) = peel_invariant_lets(body, name);
            match kind {
                ForKind::Serial | ForKind::Vectorized | ForKind::Unrolled => {
                    // Vectorized/unrolled loops only reach the executor when
                    // the corresponding pass was disabled; run them serially.
                    for (n, v) in &hoisted {
                        let value = eval_expr(v, frame, ctx)?;
                        frame.env.push(n.to_string(), value);
                    }
                    frame.env.push(name.clone(), Value::int(0));
                    for i in min_v..min_v + extent_v {
                        *frame.env.get_mut(name).expect("loop variable just pushed") =
                            Value::int(i);
                        eval_stmt(inner, frame, ctx)?;
                        if ctx.has_failed() {
                            break;
                        }
                    }
                    frame.env.pop(name);
                    for (n, _) in hoisted.iter().rev() {
                        frame.env.pop(n);
                    }
                    Ok(())
                }
                ForKind::Parallel => {
                    // Each hoisted value is evaluated against the frame
                    // extended so far, so later lets can reference earlier
                    // ones (and rebindings shadow correctly).
                    let mut base = frame.clone();
                    for (n, v) in &hoisted {
                        let value = eval_expr(v, &base, ctx)?;
                        base.env.push(n.to_string(), value);
                    }
                    ctx.pool.parallel_for(min_v, extent_v, &ctx.counters, |i| {
                        if ctx.has_failed() {
                            return;
                        }
                        let mut f = base.clone();
                        f.env.push(name.clone(), Value::int(i));
                        if let Err(e) = eval_stmt(inner, &mut f, ctx) {
                            ctx.record_error(e);
                        }
                    });
                    match ctx.take_error() {
                        Some(e) => Err(e),
                        None => Ok(()),
                    }
                }
                ForKind::GpuBlock | ForKind::GpuThread => {
                    self_gpu_launch(name, min_v, extent_v, *kind, body, frame, ctx)
                }
            }
        }
        StmtNode::Store {
            name,
            value,
            index,
            predicate,
        } => {
            let idx = eval_expr(index, frame, ctx)?;
            let val = eval_expr(value, frame, ctx)?;
            let buf = frame.buffer(name)?;
            if ctx.gpu_used.load(Ordering::Relaxed) {
                ctx.gpu.mark_host_dirty(name);
            }
            let lanes = idx.lanes().max(val.lanes());
            let idx = idx.broadcast(lanes);
            let mask = match predicate {
                Some(p) => {
                    let m = eval_expr(p, frame, ctx)?;
                    Some(m.broadcast(lanes))
                }
                None => None,
            };
            if ctx.instrument {
                ctx.counters.add_store(lanes as u64);
                if lanes > 1 {
                    ctx.counters
                        .add_store_pattern(halide_runtime::classify_flat_indices(
                            &idx.to_int_lanes(),
                        ));
                }
                if mask.is_some() {
                    ctx.counters.add_masked_store();
                }
            }
            let len = buf.len();
            for lane in 0..lanes {
                // A masked-off lane is skipped entirely: not written, not
                // bounds-checked.
                if let Some(m) = &mask {
                    if m.lane_int(lane) == 0 {
                        continue;
                    }
                }
                let i = idx.lane_int(lane);
                if i < 0 || i as usize >= len {
                    return Err(ExecError::new(format!(
                        "store to {name:?} at flat index {i} is outside the allocation of {len} elements"
                    )));
                }
                buf.set_flat_lane(i as usize, &val, lane);
            }
            Ok(())
        }
        StmtNode::Allocate {
            name,
            ty,
            size,
            body,
        } => {
            let n = eval_expr(size, frame, ctx)?.as_int();
            if n < 0 {
                return Err(ExecError::new(format!(
                    "allocation of {name:?} has negative size {n}"
                )));
            }
            let buf = Arc::new(ctx.alloc_scratch(ty.scalar(), &[n]));
            let bytes = buf.size_bytes() as u64;
            ctx.counters.add_allocation(bytes);
            if let Some(p) = &ctx.profiler {
                p.record_alloc(name, bytes);
            }
            let mark = frame.mark_buffers();
            frame.insert_buffer(name.clone(), Arc::clone(&buf));
            let r = eval_stmt(body, frame, ctx);
            frame.restore_buffers(mark);
            ctx.counters.add_free(bytes);
            if let Some(p) = &ctx.profiler {
                p.record_free(name, bytes);
            }
            ctx.release_scratch(buf);
            r
        }
        StmtNode::Block { stmts } => {
            for s in stmts {
                eval_stmt(s, frame, ctx)?;
            }
            Ok(())
        }
        StmtNode::IfThenElse {
            condition,
            then_case,
            else_case,
        } => {
            let c = eval_expr(condition, frame, ctx)?;
            if c.as_bool() {
                eval_stmt(then_case, frame, ctx)
            } else if let Some(e) = else_case {
                eval_stmt(e, frame, ctx)
            } else {
                Ok(())
            }
        }
        StmtNode::Evaluate { value } => {
            eval_expr(value, frame, ctx)?;
            Ok(())
        }
        StmtNode::NoOp => Ok(()),
        StmtNode::Provide { name, .. } | StmtNode::Realize { name, .. } => Err(ExecError::new(
            format!("{name:?} was not flattened before execution"),
        )),
    }
}

/// Executes a GPU block/thread loop nest as a simulated kernel launch: the
/// device performs lazy copies for the buffers the kernel touches, the launch
/// is counted, and the grid runs on the host thread pool.
fn self_gpu_launch(
    name: &str,
    min_v: i64,
    extent_v: i64,
    kind: ForKind,
    body: &Stmt,
    frame: &mut Frame,
    ctx: &Context,
) -> Result<()> {
    let launching = kind == ForKind::GpuBlock && !ctx.gpu_used.swap(true, Ordering::Relaxed);
    // Count one launch per outermost block loop encountered while the device
    // is idle; nested block loops of the same kernel do not relaunch.
    let is_outer_block = kind == ForKind::GpuBlock && !frame.env.contains("__in_gpu_kernel");
    if is_outer_block {
        ctx.gpu.launch(&ctx.counters);
        let (reads, writes) = buffers_touched(body);
        for r in &reads {
            if let Ok(buf) = frame.buffer(r) {
                ctx.gpu
                    .ensure_on_device(r, buf.size_bytes() as u64, &ctx.counters);
            }
        }
        for w in &writes {
            if let Ok(buf) = frame.buffer(w) {
                ctx.gpu.mark_device_dirty(w, buf.size_bytes() as u64);
            }
        }
    }
    let _ = launching;

    // Hoist the body's leading invariant (and load-free) lets: computed once
    // per launch, visible to every block/thread.
    let (hoisted, inner) = peel_invariant_lets(body, name);
    let base = {
        let mut f = frame.clone();
        if is_outer_block {
            f.env.push("__in_gpu_kernel", Value::bool(true));
        }
        // Evaluate against the frame extended so far, so chained hoisted
        // lets (a later value referencing an earlier name) resolve.
        for (n, v) in &hoisted {
            let value = eval_expr(v, &f, ctx)?;
            f.env.push(n.to_string(), value);
        }
        f
    };
    // Blocks run in parallel on the host pool; threads within a block run
    // serially (their data parallelism is already exposed by the block loop).
    if kind == ForKind::GpuBlock {
        ctx.pool.parallel_for(min_v, extent_v, &ctx.counters, |i| {
            if ctx.has_failed() {
                return;
            }
            let mut f = base.clone();
            f.env.push(name.to_string(), Value::int(i));
            if let Err(e) = eval_stmt(inner, &mut f, ctx) {
                ctx.record_error(e);
            }
        });
        match ctx.take_error() {
            Some(e) => Err(e),
            None => Ok(()),
        }
    } else {
        let mut f = base;
        f.env.push(name.to_string(), Value::int(0));
        for i in min_v..min_v + extent_v {
            *f.env.get_mut(name).expect("loop variable just pushed") = Value::int(i);
            eval_stmt(inner, &mut f, ctx)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use halide_ir::{ScalarType, Type};

    fn ctx() -> Context {
        Context::new(ThreadPool::new(4), true)
    }

    fn frame_with_buffer(name: &str, len: i64) -> Frame {
        let mut f = Frame::default();
        f.insert_buffer(
            name.to_string(),
            Arc::new(Buffer::with_extents(ScalarType::Float(32), &[len])),
        );
        f
    }

    #[test]
    fn arithmetic_and_variables() {
        let c = ctx();
        let mut f = Frame::default();
        f.env.push("x", Value::int(7));
        let e = Expr::var_i32("x") * 3 + 1;
        assert_eq!(eval_expr(&e, &f, &c).unwrap().as_int(), 22);
        assert!(eval_expr(&Expr::var_i32("missing"), &f, &c).is_err());
    }

    #[test]
    fn serial_loop_stores() {
        let c = ctx();
        let mut f = frame_with_buffer("buf", 10);
        let s = Stmt::for_loop(
            "i",
            Expr::int(0),
            Expr::int(10),
            ForKind::Serial,
            Stmt::store(
                "buf",
                Expr::var_i32("i").cast(Type::f32()) * 2.0f32,
                Expr::var_i32("i"),
            ),
        );
        eval_stmt(&s, &mut f, &c).unwrap();
        let buf = f.buffer_named("buf").unwrap().clone();
        assert_eq!(buf.get_flat_f64(3), 6.0);
        assert_eq!(c.counters.snapshot().stores, 10);
    }

    #[test]
    fn parallel_loop_matches_serial() {
        let c = ctx();
        let mut f = frame_with_buffer("buf", 100);
        let body = Stmt::store(
            "buf",
            Expr::var_i32("i").cast(Type::f32()),
            Expr::var_i32("i"),
        );
        let s = Stmt::for_loop("i", Expr::int(0), Expr::int(100), ForKind::Parallel, body);
        eval_stmt(&s, &mut f, &c).unwrap();
        let buf = f.buffer_named("buf").unwrap().clone();
        assert!((0..100).all(|i| buf.get_flat_f64(i as usize) == i as f64));
        assert!(c.counters.snapshot().parallel_tasks >= 100);
    }

    #[test]
    fn hoisted_let_chains_resolve_in_parallel_loops() {
        // Regression: a parallel loop body starting with a chain of
        // invariant lets (`let a = 5; let b = a + 1; ...`) must evaluate
        // each hoisted value against the frame extended so far, including
        // shadowing of an outer binding of the same name.
        let c = ctx();
        let mut f = frame_with_buffer("buf", 16);
        f.env.push("a", Value::int(1000)); // shadowed by the loop body's let
        let body = Stmt::let_stmt(
            "a",
            Expr::int(5),
            Stmt::let_stmt(
                "b",
                Expr::var_i32("a") + 1,
                Stmt::store(
                    "buf",
                    Expr::var_i32("b").cast(Type::f32()),
                    Expr::var_i32("i"),
                ),
            ),
        );
        let s = Stmt::for_loop("i", Expr::int(0), Expr::int(16), ForKind::Parallel, body);
        eval_stmt(&s, &mut f, &c).unwrap();
        assert_eq!(f.buffer_named("buf").unwrap().get_flat_f64(7), 6.0);
        // The hoisted bindings are popped with the loop: the outer `a`
        // binding is intact afterwards.
        assert_eq!(f.env.get("a").unwrap().as_int(), 1000);
    }

    #[test]
    fn out_of_bounds_is_an_error() {
        let c = ctx();
        let mut f = frame_with_buffer("buf", 4);
        let s = Stmt::store("buf", Expr::f32(1.0), Expr::int(9));
        assert!(eval_stmt(&s, &mut f, &c).is_err());
        let load = Expr::load(Type::f32(), "buf", Expr::int(-1));
        assert!(eval_expr(&load, &f, &c).is_err());
    }

    #[test]
    fn out_of_bounds_inside_parallel_loop_is_reported() {
        let c = ctx();
        let mut f = frame_with_buffer("buf", 4);
        let body = Stmt::store("buf", Expr::f32(1.0), Expr::var_i32("i"));
        let s = Stmt::for_loop("i", Expr::int(0), Expr::int(100), ForKind::Parallel, body);
        assert!(eval_stmt(&s, &mut f, &c).is_err());
    }

    #[test]
    fn allocation_scoping_and_counters() {
        let c = ctx();
        let mut f = Frame::default();
        let body = Stmt::store("tmp", Expr::f32(3.0), Expr::int(0));
        let s = Stmt::allocate("tmp", Type::f32(), Expr::int(16), body);
        eval_stmt(&s, &mut f, &c).unwrap();
        assert!(f.buffer_named("tmp").is_none());
        let snap = c.counters.snapshot();
        assert_eq!(snap.allocations, 1);
        assert_eq!(snap.bytes_allocated, 64);
    }

    #[test]
    fn vector_ramp_load_store() {
        let c = ctx();
        let mut f = frame_with_buffer("src", 8);
        for i in 0..8 {
            f.buffer_named("src").unwrap().set_flat_f64(i, i as f64);
        }
        f.insert_buffer(
            "dst".to_string(),
            Arc::new(Buffer::with_extents(ScalarType::Float(32), &[8])),
        );
        // dst[ramp(0,1,8)] = src[ramp(0,1,8)] * 2
        let idx = Expr::ramp(Expr::int(0), Expr::int(1), 8);
        let s = Stmt::store(
            "dst",
            Expr::load(Type::f32(), "src", idx.clone()) * 2.0f32,
            idx,
        );
        eval_stmt(&s, &mut f, &c).unwrap();
        assert_eq!(f.buffer_named("dst").unwrap().get_flat_f64(7), 14.0);
        let snap = c.counters.snapshot();
        // one vector load + one vector store
        assert_eq!(snap.loads, 1);
        assert_eq!(snap.stores, 1);
        assert_eq!(snap.elements_loaded, 8);
    }

    #[test]
    fn assertions_and_conditionals() {
        let c = ctx();
        let mut f = Frame::default();
        assert!(eval_stmt(&Stmt::assert_stmt(Expr::bool(true), "ok"), &mut f, &c).is_ok());
        assert!(eval_stmt(&Stmt::assert_stmt(Expr::bool(false), "boom"), &mut f, &c).is_err());
        let s = Stmt::if_then_else(
            Expr::bool(false),
            Stmt::assert_stmt(Expr::bool(false), "unreachable"),
            Some(Stmt::no_op()),
        );
        assert!(eval_stmt(&s, &mut f, &c).is_ok());
    }

    #[test]
    fn intrinsics() {
        let c = ctx();
        let f = Frame::default();
        assert_eq!(
            eval_expr(&Expr::f32(9.0).sqrt(), &f, &c).unwrap().as_f64(),
            3.0
        );
        assert_eq!(eval_expr(&Expr::int(-4).abs(), &f, &c).unwrap().as_int(), 4);
        assert_eq!(
            eval_expr(&Expr::f32(2.0).pow(Expr::f32(10.0)), &f, &c)
                .unwrap()
                .as_f64(),
            1024.0
        );
        assert!(eval_expr(
            &Expr::intrinsic("no_such_intrinsic", vec![Expr::int(0)], Type::i32()),
            &f,
            &c
        )
        .is_err());
        // The intrinsics added for upcoming pipelines: min/max, atan2, tanh.
        assert_eq!(
            eval_expr(
                &Expr::intrinsic("min", vec![Expr::int(3), Expr::int(-5)], Type::i32()),
                &f,
                &c
            )
            .unwrap()
            .as_int(),
            -5
        );
        assert_eq!(
            eval_expr(
                &Expr::intrinsic("max", vec![Expr::f32(1.5), Expr::f32(2.5)], Type::f32()),
                &f,
                &c
            )
            .unwrap()
            .as_f64(),
            2.5
        );
        assert_eq!(
            eval_expr(&Expr::f32(0.0).tanh(), &f, &c).unwrap().as_f64(),
            0.0
        );
        assert_eq!(
            eval_expr(&Expr::f32(1.0).atan2(Expr::f32(1.0)), &f, &c)
                .unwrap()
                .as_f64(),
            std::f64::consts::FRAC_PI_4
        );
    }

    #[test]
    fn gpu_loops_count_launches_and_copies() {
        let c = ctx();
        let mut f = frame_with_buffer("src", 16);
        f.insert_buffer(
            "dst".to_string(),
            Arc::new(Buffer::with_extents(ScalarType::Float(32), &[16])),
        );
        let body = Stmt::store(
            "dst",
            Expr::load(
                Type::f32(),
                "src",
                Expr::var_i32("bx") * 4 + Expr::var_i32("tx"),
            ),
            Expr::var_i32("bx") * 4 + Expr::var_i32("tx"),
        );
        let threads = Stmt::for_loop("tx", Expr::int(0), Expr::int(4), ForKind::GpuThread, body);
        let blocks = Stmt::for_loop("bx", Expr::int(0), Expr::int(4), ForKind::GpuBlock, threads);
        eval_stmt(&blocks, &mut f, &c).unwrap();
        let snap = c.counters.snapshot();
        assert_eq!(snap.kernel_launches, 1);
        assert!(snap.device_copies >= 1);
    }
}
