//! PIR — the linear program IR between lowering and code emission.
//!
//! The compile pipeline is split into three explicit layers:
//!
//! 1. **linearize** (this module): flatten a lowered [`halide_ir::Stmt`]
//!    into basic-block-structured instruction lists over virtual registers.
//!    Control constructs (loops, allocations, conditionals) own nested
//!    blocks; lazily-evaluated sub-expressions (select arms, the right-hand
//!    sides of short-circuiting `and`/`or`) are nested blocks yielding a
//!    result register, so "evaluate only the taken arm" survives the
//!    flattening. Buffer operations carry explicit side-effect annotations
//!    (they are never treated as pure by the optimizer).
//! 2. **optimize** ([`crate::opt`]): a fixed-point pass pipeline over PIR.
//! 3. **emit** ([`crate::emit`]): translate PIR to the [`crate::machine`]
//!    instruction set.
//!
//! The IR is printable ([`PirProgram::print`]) for golden tests and the
//! `--dump-pir` tooling.
//!
//! # Counter compensation
//!
//! The compiled engine is contractually bit-identical to the tree-walking
//! interpreter **including the instrumentation counters**. Passes that
//! remove or move a counted operation must keep the dynamic counts exact:
//! a [`POp::Count`] pseudo-instruction bumps the arithmetic counter by a
//! (possibly negative) amount at its execution site, and the `weight` field
//! of a counted instruction records how many arithmetic ops its execution
//! should report (hoisted instructions keep computing but stop counting at
//! weight 0; the `Count` left at the original site restores the per-
//! iteration total).

use std::collections::{HashMap, HashSet};
use std::fmt::Write as _;

use halide_ir::{BinOp, CallType, CmpOp, Expr, ExprNode, ForKind, ScalarType, Stmt, StmtNode};

use crate::compile::{CIntrinsic, GpuTouch};
use crate::error::{ExecError, Result};
use crate::eval::peel_invariant_lets;

/// A virtual register. Registers are in static single assignment form
/// (loop variables are assigned by their loop, once per iteration) and map
/// one-to-one onto machine frame slots at emission.
pub(crate) type Reg = u32;

/// Index of a basic block in [`PirProgram::blocks`]. Block 0 is the entry.
pub(crate) type BlockId = u32;

/// What a register may hold at run time, as far as the optimizer can prove.
/// Algebraic rules and strength reduction only fire on proven integers —
/// float identities like `x + 0.0` are not bit-exact (`-0.0 + 0.0 == 0.0`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum PKind {
    /// Guaranteed an integer (or integer lanes) at run time.
    Int,
    /// Guaranteed floating point at run time.
    Float,
    /// No runtime guarantee (loads, free symbols).
    Unknown,
}

/// One PIR operation. Value operations write their instruction's `dst`
/// register; effect operations (stores, asserts, control flow) have none.
#[derive(Debug)]
pub(crate) enum POp {
    /// Integer immediate.
    ConstI(i64),
    /// Float immediate.
    ConstF(f64),
    /// Register alias (introduced by CSE and folding; removed by copy
    /// propagation + DCE).
    Copy(Reg),
    /// Numeric conversion.
    Cast { ty: ScalarType, a: Reg },
    /// Binary arithmetic (counted).
    Bin { op: BinOp, a: Reg, b: Reg },
    /// Comparison producing 0/1 (counted).
    Cmp { op: CmpOp, a: Reg, b: Reg },
    /// Logical negation.
    Not { a: Reg },
    /// Strength-reduced `a * 2^bits` (counted; exact on wrapping i64).
    Shl { a: Reg, bits: u32 },
    /// Strength-reduced floor division `a / 2^bits` as an arithmetic shift
    /// (counted; exact for all i64 under Euclidean/floor division).
    Shr { a: Reg, bits: u32 },
    /// Strength-reduced `a mod 2^k` as `a & (2^k - 1)` (counted; exact for
    /// all i64 under floor modulo with a positive modulus).
    AndMask { a: Reg, mask: i64 },
    /// Affine vector constructor.
    Ramp { base: Reg, stride: Reg, lanes: u16 },
    /// Splat a scalar to lanes.
    Broadcast { a: Reg, lanes: u16 },
    /// Short-circuiting logical and: `rhs` is evaluated lazily (only when
    /// `a` is not a scalar false), yielding `rhs_val`.
    And { a: Reg, rhs: BlockId, rhs_val: Reg },
    /// Short-circuiting logical or; `rhs` evaluated only when `a` is not a
    /// scalar true.
    Or { a: Reg, rhs: BlockId, rhs_val: Reg },
    /// Select. Arm blocks are evaluated lazily for scalar conditions (only
    /// the taken arm) and both evaluated for vector conditions.
    Select {
        cond: Reg,
        t: BlockId,
        t_val: Reg,
        f: BlockId,
        f_val: Reg,
    },
    /// Load from a buffer at a flat (possibly vector) index. Side effect
    /// annotation: reads memory, counted as a load.
    Load { buf: u32, index: Reg },
    /// Dense vector load of `lanes` contiguous elements.
    LoadDense { buf: u32, base: Reg, lanes: u16 },
    /// Clamping gather `buf[max(min(index, hi), lo)]` (counts two arith ops
    /// plus the load, like the interpreter's explicit min/max).
    LoadClamped {
        buf: u32,
        index: Reg,
        lo: Reg,
        hi: Reg,
    },
    /// Predicated (masked) load: lanes whose `mask` lane is false are not
    /// read (and not bounds-checked) and yield zero. The machine dispatches
    /// dense/strided/gather forms from the runtime index shape, like
    /// [`POp::Load`].
    LoadMasked { buf: u32, index: Reg, mask: Reg },
    /// Intrinsic call (counted). `name` is kept for printing and CSE keys.
    Intrinsic {
        f: CIntrinsic,
        name: String,
        args: Vec<Reg>,
    },
    /// Store to a buffer at a flat index (side effect: writes memory).
    Store { buf: u32, value: Reg, index: Reg },
    /// Dense vector store of `lanes` contiguous elements.
    StoreDense {
        buf: u32,
        value: Reg,
        base: Reg,
        lanes: u16,
    },
    /// Predicated (masked) store: lanes whose `mask` lane is false are
    /// skipped entirely — not written, not bounds-checked.
    StoreMasked {
        buf: u32,
        value: Reg,
        index: Reg,
        mask: Reg,
    },
    /// Runtime check; failure aborts execution with `message`.
    Assert { cond: Reg, message: String },
    /// A loop region. `header` runs once per loop entry (the loop-invariant
    /// code region: peeled lets land here at linearization, LICM moves more
    /// in); `body` runs once per iteration with `var` bound.
    For {
        var: Reg,
        min: Reg,
        extent: Reg,
        kind: ForKind,
        header: BlockId,
        body: BlockId,
        gpu: Option<GpuTouch>,
    },
    /// A scoped allocation region.
    Alloc {
        buf: u32,
        ty: ScalarType,
        size: Reg,
        body: BlockId,
    },
    /// Conditional statement.
    If {
        cond: Reg,
        then_b: BlockId,
        else_b: Option<BlockId>,
    },
    /// Evaluate a register for effect (the value is discarded).
    Evaluate { a: Reg },
    /// Counter compensation: bump the arithmetic counter by `arith` (two's
    /// complement; may be negative) when instrumented. See the module docs.
    Count { arith: i64 },
    /// Profiler marker: a produce nest for func `func` (an index into
    /// [`PirProgram::func_names`]) begins here. Paired with a
    /// [`POp::ProduceExit`] in the same block (the linearizer emits both
    /// around the nest's statements, so pairs are well-nested within one
    /// block by construction). Not counted, not pure, no destination:
    /// every optimizer pass passes it through untouched, and
    /// [`PirProgram::exec_inst_count`] excludes it like [`POp::Count`].
    ProduceEnter { func: u32 },
    /// Profiler marker closing the innermost open [`POp::ProduceEnter`].
    ProduceExit,
}

/// One PIR instruction: an optional destination register, the operation,
/// and — for counted operations — how many arithmetic ops one execution
/// reports (1 normally, 0 after hoisting).
#[derive(Debug)]
pub(crate) struct PInst {
    pub(crate) dst: Option<Reg>,
    pub(crate) op: POp,
    pub(crate) weight: u32,
}

/// A linearized program: a block arena (block 0 is the entry), the register
/// count, and the same free-symbol/buffer interface as [`crate::Program`].
#[derive(Debug, Default)]
pub(crate) struct PirProgram {
    pub(crate) blocks: Vec<Vec<PInst>>,
    pub(crate) n_regs: u32,
    /// Per-register: may the value be multi-lane at run time? (Static types
    /// are stale after vectorization, so vector-ness is tracked through
    /// bindings, mirroring the old compiler's `vec_slots`.)
    pub(crate) vec: Vec<bool>,
    /// Per-register runtime kind guarantee.
    pub(crate) kind: Vec<PKind>,
    pub(crate) buf_names: Vec<String>,
    /// Func names referenced by [`POp::ProduceEnter`] markers, in
    /// first-appearance order.
    pub(crate) func_names: Vec<String>,
    pub(crate) free_slots: HashMap<String, Reg>,
    pub(crate) free_bufs: HashMap<String, u32>,
}

impl POp {
    /// Nested blocks this operation owns, in evaluation order.
    pub(crate) fn sub_blocks(&self) -> Vec<BlockId> {
        match self {
            POp::And { rhs, .. } | POp::Or { rhs, .. } => vec![*rhs],
            POp::Select { t, f, .. } => vec![*t, *f],
            POp::For { header, body, .. } => vec![*header, *body],
            POp::Alloc { body, .. } => vec![*body],
            POp::If { then_b, else_b, .. } => {
                let mut v = vec![*then_b];
                if let Some(e) = else_b {
                    v.push(*e);
                }
                v
            }
            _ => Vec::new(),
        }
    }

    /// Calls `f` for every register this operation reads. Result registers
    /// of nested blocks (`rhs_val`, `t_val`, `f_val`) count as reads.
    pub(crate) fn for_each_operand(&self, mut f: impl FnMut(Reg)) {
        self.for_each_operand_impl(&mut f);
    }

    fn for_each_operand_impl(&self, f: &mut dyn FnMut(Reg)) {
        match self {
            POp::ConstI(_)
            | POp::ConstF(_)
            | POp::Count { .. }
            | POp::ProduceEnter { .. }
            | POp::ProduceExit => {}
            POp::Copy(a)
            | POp::Cast { a, .. }
            | POp::Not { a }
            | POp::Shl { a, .. }
            | POp::Shr { a, .. }
            | POp::AndMask { a, .. }
            | POp::Broadcast { a, .. }
            | POp::Evaluate { a }
            | POp::Load { index: a, .. }
            | POp::LoadDense { base: a, .. }
            | POp::Assert { cond: a, .. }
            | POp::If { cond: a, .. } => f(*a),
            POp::Bin { a, b, .. }
            | POp::Cmp { a, b, .. }
            | POp::Ramp {
                base: a, stride: b, ..
            }
            | POp::Store {
                value: a, index: b, ..
            }
            | POp::StoreDense {
                value: a, base: b, ..
            } => {
                f(*a);
                f(*b);
            }
            POp::And { a, rhs_val, .. } | POp::Or { a, rhs_val, .. } => {
                f(*a);
                f(*rhs_val);
            }
            POp::Select {
                cond, t_val, f_val, ..
            } => {
                f(*cond);
                f(*t_val);
                f(*f_val);
            }
            POp::LoadClamped { index, lo, hi, .. } => {
                f(*index);
                f(*lo);
                f(*hi);
            }
            POp::LoadMasked { index, mask, .. } => {
                f(*index);
                f(*mask);
            }
            POp::StoreMasked {
                value, index, mask, ..
            } => {
                f(*value);
                f(*index);
                f(*mask);
            }
            POp::Intrinsic { args, .. } => {
                for a in args {
                    f(*a);
                }
            }
            POp::For { min, extent, .. } => {
                f(*min);
                f(*extent);
            }
            POp::Alloc { size, .. } => f(*size),
        }
    }

    /// Calls `f` with a mutable reference to every register this operation
    /// reads (used by copy propagation).
    pub(crate) fn for_each_operand_mut(&mut self, mut f: impl FnMut(&mut Reg)) {
        let g: &mut dyn FnMut(&mut Reg) = &mut f;
        match self {
            POp::ConstI(_)
            | POp::ConstF(_)
            | POp::Count { .. }
            | POp::ProduceEnter { .. }
            | POp::ProduceExit => {}
            POp::Copy(a)
            | POp::Cast { a, .. }
            | POp::Not { a }
            | POp::Shl { a, .. }
            | POp::Shr { a, .. }
            | POp::AndMask { a, .. }
            | POp::Broadcast { a, .. }
            | POp::Evaluate { a }
            | POp::Load { index: a, .. }
            | POp::LoadDense { base: a, .. }
            | POp::Assert { cond: a, .. }
            | POp::If { cond: a, .. } => g(a),
            POp::Bin { a, b, .. }
            | POp::Cmp { a, b, .. }
            | POp::Ramp {
                base: a, stride: b, ..
            }
            | POp::Store {
                value: a, index: b, ..
            }
            | POp::StoreDense {
                value: a, base: b, ..
            } => {
                g(a);
                g(b);
            }
            POp::And { a, rhs_val, .. } | POp::Or { a, rhs_val, .. } => {
                g(a);
                g(rhs_val);
            }
            POp::Select {
                cond, t_val, f_val, ..
            } => {
                g(cond);
                g(t_val);
                g(f_val);
            }
            POp::LoadClamped { index, lo, hi, .. } => {
                g(index);
                g(lo);
                g(hi);
            }
            POp::LoadMasked { index, mask, .. } => {
                g(index);
                g(mask);
            }
            POp::StoreMasked {
                value, index, mask, ..
            } => {
                g(value);
                g(index);
                g(mask);
            }
            POp::Intrinsic { args, .. } => {
                for a in args {
                    g(a);
                }
            }
            POp::For { min, extent, .. } => {
                g(min);
                g(extent);
            }
            POp::Alloc { size, .. } => g(size),
        }
    }

    /// True for operations whose execution reports one arithmetic op when
    /// instrumented (the counted kinds; their count is scaled by `weight`).
    pub(crate) fn counted(&self) -> bool {
        matches!(
            self,
            POp::Bin { .. }
                | POp::Cmp { .. }
                | POp::Shl { .. }
                | POp::Shr { .. }
                | POp::AndMask { .. }
                | POp::Intrinsic { .. }
        )
    }

    /// True for pure, flat (no nested block) value operations — the set
    /// DCE may delete and LICM may hoist. Loads are excluded: they touch
    /// memory and report load counters.
    pub(crate) fn pure_value(&self) -> bool {
        matches!(
            self,
            POp::ConstI(_)
                | POp::ConstF(_)
                | POp::Copy(_)
                | POp::Cast { .. }
                | POp::Bin { .. }
                | POp::Cmp { .. }
                | POp::Not { .. }
                | POp::Shl { .. }
                | POp::Shr { .. }
                | POp::AndMask { .. }
                | POp::Ramp { .. }
                | POp::Broadcast { .. }
                | POp::Intrinsic { .. }
        )
    }
}

impl PirProgram {
    /// Reachable blocks from the entry, in pre-order (textual order).
    pub(crate) fn reachable(&self) -> Vec<BlockId> {
        let mut out = Vec::with_capacity(self.blocks.len());
        fn walk(p: &PirProgram, b: BlockId, out: &mut Vec<BlockId>) {
            out.push(b);
            for inst in &p.blocks[b as usize] {
                for sb in inst.op.sub_blocks() {
                    walk(p, sb, out);
                }
            }
        }
        if !self.blocks.is_empty() {
            walk(self, 0, &mut out);
        }
        out
    }

    /// Number of executable instructions (everything except counter
    /// compensation and profiler markers) across reachable blocks — the
    /// optimizer's before/after size metric.
    pub(crate) fn exec_inst_count(&self) -> usize {
        self.reachable()
            .iter()
            .flat_map(|b| &self.blocks[*b as usize])
            .filter(|i| {
                !matches!(
                    i.op,
                    POp::Count { .. } | POp::ProduceEnter { .. } | POp::ProduceExit
                )
            })
            .count()
    }

    /// How many times each register is read (across reachable blocks).
    pub(crate) fn use_counts(&self) -> Vec<u32> {
        let mut counts = vec![0u32; self.n_regs as usize];
        for b in self.reachable() {
            for inst in &self.blocks[b as usize] {
                inst.op.for_each_operand(|r| counts[r as usize] += 1);
            }
        }
        counts
    }

    /// True when reading `r` is cheap enough to duplicate across uses: the
    /// register is scalar-valued, or an affine ramp over scalar integers
    /// (which the machine keeps in its compact `base/stride` form). Heap-
    /// backed vector registers are excluded — every extra read clones the
    /// lane vector, so CSE/LICM would trade recomputation for copies.
    pub(crate) fn cheap_reg(&self, r: Reg, op: &POp) -> bool {
        if !self.vec[r as usize] {
            return true;
        }
        if let POp::Ramp { base, stride, .. } = op {
            return !self.vec[*base as usize]
                && !self.vec[*stride as usize]
                && self.kind[*base as usize] == PKind::Int
                && self.kind[*stride as usize] == PKind::Int;
        }
        false
    }

    /// Renders the program in its stable textual form (golden tests,
    /// `--dump-pir`).
    pub(crate) fn print(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "pir {{");
        let mut frees: Vec<(&String, &Reg)> = self.free_slots.iter().collect();
        frees.sort_by_key(|(_, slot)| **slot);
        for (name, slot) in frees {
            let _ = writeln!(s, "  free r{slot} = {name:?}");
        }
        for (i, name) in self.buf_names.iter().enumerate() {
            let free = if self.free_bufs.contains_key(name) {
                " (free)"
            } else {
                ""
            };
            let _ = writeln!(s, "  buf b{i} = {name:?}{free}");
        }
        for b in self.reachable() {
            let _ = writeln!(s, "  L{b}:");
            for inst in &self.blocks[b as usize] {
                let _ = writeln!(s, "    {}", print_inst(inst));
            }
        }
        let _ = writeln!(s, "}}");
        s
    }
}

fn bin_name(op: BinOp) -> &'static str {
    match op {
        BinOp::Add => "add",
        BinOp::Sub => "sub",
        BinOp::Mul => "mul",
        BinOp::Div => "div",
        BinOp::Mod => "mod",
        BinOp::Min => "min",
        BinOp::Max => "max",
    }
}

fn cmp_name(op: CmpOp) -> &'static str {
    match op {
        CmpOp::Eq => "eq",
        CmpOp::Ne => "ne",
        CmpOp::Lt => "lt",
        CmpOp::Le => "le",
        CmpOp::Gt => "gt",
        CmpOp::Ge => "ge",
    }
}

fn print_inst(inst: &PInst) -> String {
    let mut s = String::new();
    if let Some(d) = inst.dst {
        let _ = write!(s, "r{d} = ");
    }
    let _ = match &inst.op {
        POp::ConstI(v) => write!(s, "const {v}"),
        POp::ConstF(v) => write!(s, "const {v:?}"),
        POp::Copy(a) => write!(s, "copy r{a}"),
        POp::Cast { ty, a } => write!(s, "cast.{ty} r{a}"),
        POp::Bin { op, a, b } => write!(s, "{} r{a}, r{b}", bin_name(*op)),
        POp::Cmp { op, a, b } => write!(s, "cmp.{} r{a}, r{b}", cmp_name(*op)),
        POp::Not { a } => write!(s, "not r{a}"),
        POp::Shl { a, bits } => write!(s, "shl r{a}, {bits}"),
        POp::Shr { a, bits } => write!(s, "shr r{a}, {bits}"),
        POp::AndMask { a, mask } => write!(s, "and_mask r{a}, {mask}"),
        POp::Ramp {
            base,
            stride,
            lanes,
        } => write!(s, "ramp r{base}, r{stride}, x{lanes}"),
        POp::Broadcast { a, lanes } => write!(s, "broadcast r{a}, x{lanes}"),
        POp::And { a, rhs, rhs_val } => write!(s, "and r{a}, [L{rhs} -> r{rhs_val}]"),
        POp::Or { a, rhs, rhs_val } => write!(s, "or r{a}, [L{rhs} -> r{rhs_val}]"),
        POp::Select {
            cond,
            t,
            t_val,
            f,
            f_val,
        } => write!(
            s,
            "select r{cond} ? [L{t} -> r{t_val}] : [L{f} -> r{f_val}]"
        ),
        POp::Load { buf, index } => write!(s, "load b{buf}[r{index}]"),
        POp::LoadDense { buf, base, lanes } => write!(s, "load.dense b{buf}[r{base}, x{lanes}]"),
        POp::LoadClamped { buf, index, lo, hi } => {
            write!(s, "load.clamped b{buf}[r{index} clamp r{lo}, r{hi}]")
        }
        POp::LoadMasked { buf, index, mask } => {
            write!(s, "load.masked b{buf}[r{index} if r{mask}]")
        }
        POp::Intrinsic { name, args, .. } => {
            let args: Vec<String> = args.iter().map(|a| format!("r{a}")).collect();
            write!(s, "call {name}({})", args.join(", "))
        }
        POp::Store { buf, value, index } => write!(s, "store b{buf}[r{index}] = r{value}"),
        POp::StoreDense {
            buf,
            value,
            base,
            lanes,
        } => write!(s, "store.dense b{buf}[r{base}, x{lanes}] = r{value}"),
        POp::StoreMasked {
            buf,
            value,
            index,
            mask,
        } => write!(s, "store.masked b{buf}[r{index} if r{mask}] = r{value}"),
        POp::Assert { cond, message } => write!(s, "assert r{cond}, {message:?}"),
        POp::For {
            var,
            min,
            extent,
            kind,
            header,
            body,
            gpu,
        } => {
            let gpu = match gpu {
                Some(_) => " gpu",
                None => "",
            };
            write!(
                s,
                "for r{var} in [r{min}, r{min}+r{extent}) {kind:?} header L{header} body L{body}{gpu}"
            )
        }
        POp::Alloc {
            buf,
            ty,
            size,
            body,
        } => {
            write!(s, "alloc b{buf}: {ty}[r{size}] body L{body}")
        }
        POp::If {
            cond,
            then_b,
            else_b,
        } => match else_b {
            Some(e) => write!(s, "if r{cond} then L{then_b} else L{e}"),
            None => write!(s, "if r{cond} then L{then_b}"),
        },
        POp::Evaluate { a } => write!(s, "eval r{a}"),
        POp::Count { arith } => write!(s, "count {arith}"),
        POp::ProduceEnter { func } => write!(s, "produce f{func}"),
        POp::ProduceExit => write!(s, "end_produce"),
    };
    if inst.op.counted() && inst.weight != 1 {
        let _ = write!(s, " !w{}", inst.weight);
    }
    s
}

// ---------------------------------------------------------------------------
// Pattern helpers shared with the old single-pass compiler's decisions.
// ---------------------------------------------------------------------------

/// If `e` is a broadcast whose lane count matches `other`'s static (vector)
/// lane count, returns the unbroadcast scalar value; otherwise `e` itself.
/// Used to avoid materializing splat vectors as binary-op operands.
fn fold_broadcast_against<'a>(e: &'a Expr, other: &Expr) -> &'a Expr {
    if let ExprNode::Broadcast { value, lanes } = e.node() {
        let other_lanes = other.ty().lanes();
        if other_lanes == *lanes && !matches!(other.node(), ExprNode::Broadcast { .. }) {
            return value;
        }
    }
    e
}

/// Strips a `broadcast` wrapper (vectorization splats scalar clamp bounds).
fn unbroadcast(e: &Expr) -> &Expr {
    if let ExprNode::Broadcast { value, .. } = e.node() {
        value
    } else {
        e
    }
}

/// True for expressions that are statically integer-valued and scalar-typed
/// (the requirement on clamp bounds for the fused clamped-gather form).
fn is_scalar_int(e: &Expr) -> bool {
    let ty = e.ty();
    !ty.is_float() && ty.lanes() == 1
}

/// Matches the clamped-index load pattern `max(min(index, hi), lo)` (what
/// [`halide_ir::Expr::clamp`] builds and `at_clamped` lowers to), returning
/// `(index, lo, hi)`. Only integer clamps with statically scalar bounds
/// qualify — exactly the shapes whose lane-wise `min`/`max` agree with
/// clamping each lane independently.
fn clamp_pattern(index: &Expr) -> Option<(&Expr, &Expr, &Expr)> {
    let ExprNode::Bin {
        op: BinOp::Max,
        a,
        b: lo,
    } = index.node()
    else {
        return None;
    };
    let ExprNode::Bin {
        op: BinOp::Min,
        a: inner,
        b: hi,
    } = a.node()
    else {
        return None;
    };
    let (lo, hi) = (unbroadcast(lo), unbroadcast(hi));
    if is_scalar_int(lo) && is_scalar_int(hi) && !inner.ty().is_float() {
        Some((inner, lo, hi))
    } else {
        None
    }
}

/// Matches a unit-stride integer ramp index, the dense vector access pattern
/// vectorization emits for contiguous loads/stores.
fn dense_ramp(index: &Expr) -> Option<(&Expr, u16)> {
    if let ExprNode::Ramp {
        base,
        stride,
        lanes,
    } = index.node()
    {
        if stride.is_const_int(1) && !base.ty().is_float() {
            return Some((base, *lanes));
        }
    }
    None
}

/// Names of buffers a statement allocates anywhere inside itself.
fn allocated_names(stmt: &Stmt) -> HashSet<String> {
    use halide_ir::IrVisitor;
    struct Alloc {
        names: HashSet<String>,
    }
    impl IrVisitor for Alloc {
        fn visit_stmt(&mut self, s: &Stmt) {
            if let StmtNode::Allocate { name, .. } | StmtNode::Realize { name, .. } = s.node() {
                self.names.insert(name.clone());
            }
            halide_ir::visit_stmt_children(self, s);
        }
    }
    let mut a = Alloc {
        names: HashSet::new(),
    };
    a.visit_stmt(stmt);
    a.names
}

/// Resolves an intrinsic name to its compiled form and arity.
pub(crate) fn resolve_intrinsic(name: &str) -> Option<(CIntrinsic, usize)> {
    fn powf(x: f64, y: f64) -> f64 {
        x.powf(y)
    }
    Some(match name {
        "abs" => (CIntrinsic::Abs, 1),
        "sqrt" => (CIntrinsic::Unary(f64::sqrt), 1),
        "exp" => (CIntrinsic::Unary(f64::exp), 1),
        "log" => (CIntrinsic::Unary(f64::ln), 1),
        "sin" => (CIntrinsic::Unary(f64::sin), 1),
        "cos" => (CIntrinsic::Unary(f64::cos), 1),
        "floor" => (CIntrinsic::Unary(f64::floor), 1),
        "ceil" => (CIntrinsic::Unary(f64::ceil), 1),
        "round" => (CIntrinsic::Unary(f64::round), 1),
        "tanh" => (CIntrinsic::Unary(f64::tanh), 1),
        "pow" => (CIntrinsic::Binary(powf), 2),
        "atan2" => (CIntrinsic::Binary(f64::atan2), 2),
        "min" => (CIntrinsic::MinMax(BinOp::Min), 2),
        "max" => (CIntrinsic::MinMax(BinOp::Max), 2),
        _ => return None,
    })
}

// ---------------------------------------------------------------------------
// Linearization
// ---------------------------------------------------------------------------

/// Flattens a lowered statement into PIR. Replicates every compile-time
/// decision the old single-pass compiler made (broadcast folding, dense
/// ramp fusion, clamped-gather fusion, loop-invariant let peeling into the
/// loop header, GPU touch-set resolution, free-on-first-reference symbol
/// interning), so emitting unoptimized PIR reproduces the old programs.
pub(crate) fn linearize(stmt: &Stmt) -> Result<PirProgram> {
    let mut lz = Linearizer::default();
    lz.prog.blocks.push(Vec::new());
    lz.stmt(stmt)?;
    Ok(lz.prog)
}

#[derive(Default)]
struct Linearizer {
    prog: PirProgram,
    cur: BlockId,
    /// Name → register binding stacks (lexical shadowing).
    vars: HashMap<String, Vec<Reg>>,
    bufs: HashMap<String, Vec<u32>>,
}

impl Linearizer {
    fn new_reg(&mut self, vec: bool, kind: PKind) -> Reg {
        let r = self.prog.n_regs;
        self.prog.n_regs += 1;
        self.prog.vec.push(vec);
        self.prog.kind.push(kind);
        r
    }

    fn push(&mut self, dst: Option<Reg>, op: POp) {
        self.prog.blocks[self.cur as usize].push(PInst { dst, op, weight: 1 });
    }

    /// Emits a value instruction into the current block.
    fn value(&mut self, op: POp, vec: bool, kind: PKind) -> Reg {
        let r = self.new_reg(vec, kind);
        self.push(Some(r), op);
        r
    }

    fn new_block(&mut self) -> BlockId {
        self.prog.blocks.push(Vec::new());
        (self.prog.blocks.len() - 1) as BlockId
    }

    /// Runs `f` with the current block switched to `b`.
    fn in_block<T>(&mut self, b: BlockId, f: impl FnOnce(&mut Self) -> T) -> T {
        let saved = self.cur;
        self.cur = b;
        let r = f(self);
        self.cur = saved;
        r
    }

    /// Resolves a variable reference: innermost binder, else a free slot.
    fn var(&mut self, name: &str) -> Reg {
        if let Some(r) = self.vars.get(name).and_then(|s| s.last()) {
            return *r;
        }
        if let Some(r) = self.prog.free_slots.get(name) {
            return *r;
        }
        let r = self.new_reg(false, PKind::Unknown);
        self.prog.free_slots.insert(name.to_string(), r);
        r
    }

    fn bind_var(&mut self, name: &str, r: Reg) {
        self.vars.entry(name.to_string()).or_default().push(r);
    }

    fn unbind_var(&mut self, name: &str) {
        self.vars
            .get_mut(name)
            .and_then(Vec::pop)
            .expect("unbalanced linearize-time scope");
    }

    fn bind_buf(&mut self, name: &str) -> u32 {
        let idx = self.prog.buf_names.len() as u32;
        self.prog.buf_names.push(name.to_string());
        self.bufs.entry(name.to_string()).or_default().push(idx);
        idx
    }

    fn unbind_buf(&mut self, name: &str) {
        self.bufs
            .get_mut(name)
            .and_then(Vec::pop)
            .expect("unbalanced linearize-time buffer scope");
    }

    /// Interns a produce-marker func name.
    fn func_id(&mut self, name: &str) -> u32 {
        if let Some(i) = self.prog.func_names.iter().position(|n| n == name) {
            return i as u32;
        }
        self.prog.func_names.push(name.to_string());
        (self.prog.func_names.len() - 1) as u32
    }

    fn buf(&mut self, name: &str) -> u32 {
        if let Some(idx) = self.bufs.get(name).and_then(|s| s.last()) {
            return *idx;
        }
        if let Some(idx) = self.prog.free_bufs.get(name) {
            return *idx;
        }
        let idx = self.prog.buf_names.len() as u32;
        self.prog.buf_names.push(name.to_string());
        self.prog.free_bufs.insert(name.to_string(), idx);
        idx
    }

    fn vec_of(&self, r: Reg) -> bool {
        self.prog.vec[r as usize]
    }

    fn kind_of(&self, r: Reg) -> PKind {
        self.prog.kind[r as usize]
    }

    /// True if `e` may evaluate to a multi-lane value at run time: it
    /// contains a `Ramp`/`Broadcast`, references a vector-possible binding,
    /// or loads through a vector-possible index. This (not the stale static
    /// type) gates vector fusion.
    fn may_vec(&self, e: &Expr) -> bool {
        match e.node() {
            ExprNode::Ramp { .. } | ExprNode::Broadcast { .. } => true,
            ExprNode::Var { name, .. } => self
                .vars
                .get(name)
                .and_then(|s| s.last())
                .is_some_and(|r| self.prog.vec[*r as usize]),
            ExprNode::IntImm { .. } | ExprNode::UIntImm { .. } | ExprNode::FloatImm { .. } => false,
            ExprNode::Cast { value, .. } | ExprNode::Not { a: value } => self.may_vec(value),
            ExprNode::Bin { a, b, .. }
            | ExprNode::Cmp { a, b, .. }
            | ExprNode::And { a, b }
            | ExprNode::Or { a, b } => self.may_vec(a) || self.may_vec(b),
            ExprNode::Select { cond, t, f } => {
                self.may_vec(cond) || self.may_vec(t) || self.may_vec(f)
            }
            ExprNode::Let { value, body, .. } => self.may_vec(value) || self.may_vec(body),
            ExprNode::Load { index, .. } => self.may_vec(index),
            ExprNode::Call { args, .. } => args.iter().any(|a| self.may_vec(a)),
        }
    }

    /// Runtime-kind meet for a binary arithmetic result: integer op integer
    /// stays integer, anything touching a float promotes to float, and an
    /// unknown operand (unless the other side forces promotion) stays
    /// unknown.
    fn bin_kind(a: PKind, b: PKind) -> PKind {
        match (a, b) {
            (PKind::Int, PKind::Int) => PKind::Int,
            (PKind::Float, _) | (_, PKind::Float) => PKind::Float,
            _ => PKind::Unknown,
        }
    }

    /// Kind of a value that is one of its operands verbatim (select arms,
    /// ramp elements): only a guarantee when both sides agree.
    fn same_kind(a: PKind, b: PKind) -> PKind {
        if a == b {
            a
        } else {
            PKind::Unknown
        }
    }

    fn expr(&mut self, e: &Expr) -> Result<Reg> {
        Ok(match e.node() {
            ExprNode::IntImm { value, .. } => self.value(POp::ConstI(*value), false, PKind::Int),
            ExprNode::UIntImm { value, .. } => {
                self.value(POp::ConstI(*value as i64), false, PKind::Int)
            }
            ExprNode::FloatImm { value, .. } => {
                self.value(POp::ConstF(*value), false, PKind::Float)
            }
            ExprNode::Var { name, .. } => self.var(name),
            ExprNode::Cast { ty, value } => {
                let a = self.expr(value)?;
                let kind = if ty.scalar().is_float() {
                    PKind::Float
                } else {
                    PKind::Int
                };
                self.value(POp::Cast { ty: ty.scalar(), a }, self.vec_of(a), kind)
            }
            ExprNode::Bin { op, a, b } => {
                // A broadcast operand against a vector operand need not be
                // materialized: the runtime op broadcasts the scalar side
                // lane-wise with identical results, so compile the scalar
                // value directly and skip the per-evaluation splat vector.
                // Only safe when the other side is statically a vector (the
                // result's lane count must not change).
                let (a, b) = (fold_broadcast_against(a, b), fold_broadcast_against(b, a));
                let (ra, rb) = (self.expr(a)?, self.expr(b)?);
                self.value(
                    POp::Bin {
                        op: *op,
                        a: ra,
                        b: rb,
                    },
                    self.vec_of(ra) || self.vec_of(rb),
                    Self::bin_kind(self.kind_of(ra), self.kind_of(rb)),
                )
            }
            ExprNode::Cmp { op, a, b } => {
                // Same splat-folding as binary arithmetic.
                let (a, b) = (fold_broadcast_against(a, b), fold_broadcast_against(b, a));
                let (ra, rb) = (self.expr(a)?, self.expr(b)?);
                self.value(
                    POp::Cmp {
                        op: *op,
                        a: ra,
                        b: rb,
                    },
                    self.vec_of(ra) || self.vec_of(rb),
                    PKind::Int,
                )
            }
            ExprNode::And { a, b } => {
                let ra = self.expr(a)?;
                let rhs = self.new_block();
                let rhs_val = self.in_block(rhs, |lz| lz.expr(b))?;
                let kind = Self::same_kind(PKind::Int, self.kind_of(rhs_val));
                self.value(
                    POp::And {
                        a: ra,
                        rhs,
                        rhs_val,
                    },
                    self.vec_of(ra) || self.vec_of(rhs_val),
                    kind,
                )
            }
            ExprNode::Or { a, b } => {
                let ra = self.expr(a)?;
                let rhs = self.new_block();
                let rhs_val = self.in_block(rhs, |lz| lz.expr(b))?;
                let kind = Self::same_kind(PKind::Int, self.kind_of(rhs_val));
                self.value(
                    POp::Or {
                        a: ra,
                        rhs,
                        rhs_val,
                    },
                    self.vec_of(ra) || self.vec_of(rhs_val),
                    kind,
                )
            }
            ExprNode::Not { a } => {
                let ra = self.expr(a)?;
                self.value(POp::Not { a: ra }, self.vec_of(ra), PKind::Int)
            }
            ExprNode::Select { cond, t, f } => {
                // When the condition is statically a vector the result's
                // width is pinned by the mask, so broadcast arms need not
                // materialize. (A statically-scalar condition must keep its
                // arms' widths — the taken arm IS the result.)
                let (t, f) = if cond.ty().lanes() > 1 {
                    (
                        fold_broadcast_against(t, cond),
                        fold_broadcast_against(f, cond),
                    )
                } else {
                    (t, f)
                };
                let rc = self.expr(cond)?;
                let t_blk = self.new_block();
                let t_val = self.in_block(t_blk, |lz| lz.expr(t))?;
                let f_blk = self.new_block();
                let f_val = self.in_block(f_blk, |lz| lz.expr(f))?;
                self.value(
                    POp::Select {
                        cond: rc,
                        t: t_blk,
                        t_val,
                        f: f_blk,
                        f_val,
                    },
                    self.vec_of(rc) || self.vec_of(t_val) || self.vec_of(f_val),
                    Self::same_kind(self.kind_of(t_val), self.kind_of(f_val)),
                )
            }
            ExprNode::Ramp {
                base,
                stride,
                lanes,
            } => {
                let rb = self.expr(base)?;
                let rs = self.expr(stride)?;
                self.value(
                    POp::Ramp {
                        base: rb,
                        stride: rs,
                        lanes: *lanes,
                    },
                    true,
                    Self::same_kind(self.kind_of(rb), self.kind_of(rs)),
                )
            }
            ExprNode::Broadcast { value, lanes } => {
                let rv = self.expr(value)?;
                self.value(
                    POp::Broadcast {
                        a: rv,
                        lanes: *lanes,
                    },
                    true,
                    self.kind_of(rv),
                )
            }
            ExprNode::Let { name, value, body } => {
                let rv = self.expr(value)?;
                self.bind_var(name, rv);
                let rb = self.expr(body);
                self.unbind_var(name);
                rb?
            }
            ExprNode::Load {
                name,
                index,
                predicate,
                ..
            } => {
                let buf = self.buf(name);
                if let Some(p) = predicate {
                    // Predicated loads keep the general index: the machine
                    // dispatches the dense/strided/gather masked form from
                    // the runtime index shape, like the generic Load path.
                    let ri = self.expr(index)?;
                    let rm = self.expr(p)?;
                    return Ok(self.value(
                        POp::LoadMasked {
                            buf,
                            index: ri,
                            mask: rm,
                        },
                        self.vec_of(ri),
                        PKind::Unknown,
                    ));
                }
                if let Some((base, lanes)) = dense_ramp(index) {
                    let rb = self.expr(base)?;
                    self.value(
                        POp::LoadDense {
                            buf,
                            base: rb,
                            lanes,
                        },
                        true,
                        PKind::Unknown,
                    )
                } else if let Some((inner, lo, hi)) = clamp_pattern(index) {
                    // Fusing the clamp into the gather requires the bounds
                    // to be scalars at run time too; `may_vec` is the
                    // binding-aware check (static types can be stale after
                    // vectorization).
                    if self.may_vec(lo) || self.may_vec(hi) {
                        let ri = self.expr(index)?;
                        self.value(
                            POp::Load { buf, index: ri },
                            self.vec_of(ri),
                            PKind::Unknown,
                        )
                    } else {
                        let ri = self.expr(inner)?;
                        let rlo = self.expr(lo)?;
                        let rhi = self.expr(hi)?;
                        self.value(
                            POp::LoadClamped {
                                buf,
                                index: ri,
                                lo: rlo,
                                hi: rhi,
                            },
                            self.vec_of(ri),
                            PKind::Unknown,
                        )
                    }
                } else {
                    let ri = self.expr(index)?;
                    self.value(
                        POp::Load { buf, index: ri },
                        self.vec_of(ri),
                        PKind::Unknown,
                    )
                }
            }
            ExprNode::Call {
                name,
                call_type,
                args,
                ..
            } => match call_type {
                CallType::Intrinsic => {
                    let Some((f, arity)) = resolve_intrinsic(name) else {
                        return Err(ExecError::new(format!("unknown intrinsic {name:?}")));
                    };
                    if args.len() < arity {
                        return Err(ExecError::new(format!(
                            "intrinsic {name:?} takes {arity} arguments, got {}",
                            args.len()
                        )));
                    }
                    // `min`/`max` intrinsics have exactly the binary
                    // operator's semantics and count as one arithmetic op
                    // either way — linearize them as `Bin` so evaluation
                    // skips the argument-vector allocation.
                    if let (CIntrinsic::MinMax(op), 2) = (f, args.len()) {
                        let (a, b) = (&args[0], &args[1]);
                        let (a, b) = (fold_broadcast_against(a, b), fold_broadcast_against(b, a));
                        let (ra, rb) = (self.expr(a)?, self.expr(b)?);
                        self.value(
                            POp::Bin { op, a: ra, b: rb },
                            self.vec_of(ra) || self.vec_of(rb),
                            Self::bin_kind(self.kind_of(ra), self.kind_of(rb)),
                        )
                    } else {
                        let regs = args
                            .iter()
                            .map(|a| self.expr(a))
                            .collect::<Result<Vec<_>>>()?;
                        let vec = regs.iter().any(|r| self.vec_of(*r));
                        let kind = match f {
                            CIntrinsic::Unary(_) | CIntrinsic::Binary(_) => PKind::Float,
                            CIntrinsic::Abs => self.kind_of(regs[0]),
                            CIntrinsic::MinMax(_) => PKind::Unknown,
                        };
                        self.value(
                            POp::Intrinsic {
                                f,
                                name: name.clone(),
                                args: regs,
                            },
                            vec,
                            kind,
                        )
                    }
                }
                CallType::Halide | CallType::Image => {
                    return Err(ExecError::new(format!(
                        "call to {name:?} survived lowering; the statement was not flattened"
                    )))
                }
                CallType::Extern => {
                    return Err(ExecError::new(format!(
                        "extern function {name:?} is not registered with the executor"
                    )))
                }
            },
        })
    }

    fn stmt(&mut self, s: &Stmt) -> Result<()> {
        match s.node() {
            StmtNode::LetStmt { name, value, body } => {
                let rv = self.expr(value)?;
                self.bind_var(name, rv);
                let r = self.stmt(body);
                self.unbind_var(name);
                r?;
            }
            StmtNode::Assert { condition, message } => {
                let rc = self.expr(condition)?;
                self.push(
                    None,
                    POp::Assert {
                        cond: rc,
                        message: message.clone(),
                    },
                );
            }
            StmtNode::Producer {
                name,
                is_produce,
                body,
            } => {
                // Produce nests become paired profiler markers; consume
                // markers stay transparent (their time attributes to the
                // enclosing producer). Enter and Exit land in the same
                // block as the nest's statements, so pairs stay balanced
                // under any block-level splicing the optimizer does.
                if *is_produce {
                    let func = self.func_id(name);
                    self.push(None, POp::ProduceEnter { func });
                    self.stmt(body)?;
                    self.push(None, POp::ProduceExit);
                } else {
                    self.stmt(body)?;
                }
            }
            StmtNode::For {
                name,
                min,
                extent,
                kind,
                body,
            } => {
                let rmin = self.expr(min)?;
                let rext = self.expr(extent)?;
                // GPU block loops pre-resolve the buffers the kernel touches
                // (for the simulated device's lazy copies). This looks at the
                // *full* body, like the interpreter does — but buffers the
                // kernel allocates itself are not in scope at launch time,
                // so they are excluded rather than registered as free.
                let gpu = if *kind == ForKind::GpuBlock {
                    let (reads, writes) = crate::eval::buffers_touched(body);
                    let inside = allocated_names(body);
                    Some(GpuTouch {
                        reads: reads
                            .iter()
                            .filter(|n| !inside.contains(*n))
                            .map(|n| self.buf(n))
                            .collect(),
                        writes: writes
                            .iter()
                            .filter(|n| !inside.contains(*n))
                            .map(|n| self.buf(n))
                            .collect(),
                    })
                } else {
                    None
                };
                // Peel the loop-invariant leading lets into the header block
                // (evaluated once per loop entry). Each value sees the
                // hoisted names bound before it.
                let (hoisted_src, inner) = peel_invariant_lets(body, name);
                let header = self.new_block();
                let mut bound_hoisted: Vec<&str> = Vec::with_capacity(hoisted_src.len());
                let mut first_err = None;
                for (n, v) in &hoisted_src {
                    let rv = self.in_block(header, |lz| lz.expr(v));
                    match rv {
                        Ok(rv) => {
                            self.bind_var(n, rv);
                            bound_hoisted.push(n);
                        }
                        Err(e) => {
                            first_err = Some(e);
                            break;
                        }
                    }
                }
                let body_done = match first_err {
                    Some(e) => Err(e),
                    None => {
                        let var = self.new_reg(false, PKind::Int);
                        self.bind_var(name, var);
                        let body_blk = self.new_block();
                        let r = self.in_block(body_blk, |lz| lz.stmt(inner));
                        self.unbind_var(name);
                        r.map(|()| (var, body_blk))
                    }
                };
                for n in bound_hoisted.iter().rev() {
                    self.unbind_var(n);
                }
                let (var, body_blk) = body_done?;
                self.push(
                    None,
                    POp::For {
                        var,
                        min: rmin,
                        extent: rext,
                        kind: *kind,
                        header,
                        body: body_blk,
                        gpu,
                    },
                );
            }
            StmtNode::Store {
                name,
                value,
                index,
                predicate,
            } => {
                let buf = self.buf(name);
                if let Some(p) = predicate {
                    let rv = self.expr(value)?;
                    let ri = self.expr(index)?;
                    let rm = self.expr(p)?;
                    self.push(
                        None,
                        POp::StoreMasked {
                            buf,
                            value: rv,
                            index: ri,
                            mask: rm,
                        },
                    );
                    return Ok(());
                }
                if let Some((base, lanes)) = dense_ramp(index) {
                    let rb = self.expr(base)?;
                    let rv = self.expr(value)?;
                    self.push(
                        None,
                        POp::StoreDense {
                            buf,
                            value: rv,
                            base: rb,
                            lanes,
                        },
                    );
                } else {
                    let rv = self.expr(value)?;
                    let ri = self.expr(index)?;
                    self.push(
                        None,
                        POp::Store {
                            buf,
                            value: rv,
                            index: ri,
                        },
                    );
                }
            }
            StmtNode::Allocate {
                name,
                ty,
                size,
                body,
            } => {
                let rs = self.expr(size)?;
                let buf = self.bind_buf(name);
                let body_blk = self.new_block();
                let r = self.in_block(body_blk, |lz| lz.stmt(body));
                self.unbind_buf(name);
                r?;
                self.push(
                    None,
                    POp::Alloc {
                        buf,
                        ty: ty.scalar(),
                        size: rs,
                        body: body_blk,
                    },
                );
            }
            StmtNode::Block { stmts } => {
                for s in stmts {
                    self.stmt(s)?;
                }
            }
            StmtNode::IfThenElse {
                condition,
                then_case,
                else_case,
            } => {
                let rc = self.expr(condition)?;
                let then_b = self.new_block();
                self.in_block(then_b, |lz| lz.stmt(then_case))?;
                let else_b = match else_case {
                    Some(e) => {
                        let b = self.new_block();
                        self.in_block(b, |lz| lz.stmt(e))?;
                        Some(b)
                    }
                    None => None,
                };
                self.push(
                    None,
                    POp::If {
                        cond: rc,
                        then_b,
                        else_b,
                    },
                );
            }
            StmtNode::Evaluate { value } => {
                let rv = self.expr(value)?;
                self.push(None, POp::Evaluate { a: rv });
            }
            StmtNode::NoOp => {}
            StmtNode::Provide { name, .. } | StmtNode::Realize { name, .. } => {
                return Err(ExecError::new(format!(
                    "{name:?} was not flattened before execution"
                )))
            }
        }
        Ok(())
    }
}
