//! The PIR optimizer: a fixed-point pass pipeline between linearization
//! and emission.
//!
//! Passes (in pipeline order; see `docs/optimizer.md` for the catalog):
//!
//! * **const-fold** — evaluates operations over constant operands using the
//!   *same* runtime scalar routines the machine uses (bit-exact by
//!   construction), takes statically-decided selects/branches, and splices
//!   their taken arm inline.
//! * **simplify** — algebraic identities at the register level, integer
//!   only (float identities are not bit-exact): `x+0`, `x*1`, `x*0`,
//!   `x-x`, `x/1`, `x%1`, `min(x,x)`, `x==x`, …
//! * **strength-reduce** — `div`/`mod` by a constant power of two become an
//!   arithmetic shift / mask (exact under floor division), `mul` by a power
//!   of two becomes a shift (exact under wrapping arithmetic).
//! * **cse** — global value numbering over pure, cheap operations, scoped
//!   by the region tree; address arithmetic and ramp construction are the
//!   big wins.
//! * **licm** — hoists loop-invariant cheap registers into the loop header
//!   region, subsuming (and extending) the old compile-time let-peeling.
//! * **copy-prop** + **dce** — clean up the aliases and dead code the other
//!   passes leave behind.
//!
//! Every pass preserves the interpreter contract exactly — bit-identical
//! outputs *and* identical instrumentation counters — via the counter-
//! compensation scheme described in `pir.rs`.

use std::collections::{HashMap, HashSet};

use halide_ir::{BinOp, CmpOp, ScalarType};
use halide_runtime::{scalar_binary_op, scalar_compare_op, Scalar};

use crate::pir::{BlockId, PInst, PKind, POp, PirProgram, Reg};

/// How hard the compile pipeline optimizes.
///
/// The default is read from the `HALIDE_OPT` environment variable
/// (`none`/`0` or `default`/`full`/`1`), falling back to
/// [`OptLevel::Default`]; CI runs the whole suite once under
/// `HALIDE_OPT=none` as a differential job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum OptLevel {
    /// Linearize and emit only — no optimization passes. Observationally
    /// identical to the old single-pass compiler.
    None,
    /// The full fixed-point pass pipeline.
    #[default]
    Default,
}

impl OptLevel {
    /// Stable lowercase name (used in bench output and cache keys).
    pub fn name(self) -> &'static str {
        match self {
            OptLevel::None => "none",
            OptLevel::Default => "default",
        }
    }

    /// Parses a level name as accepted by `HALIDE_OPT`.
    pub fn from_name(s: &str) -> Option<OptLevel> {
        match s.to_ascii_lowercase().as_str() {
            "none" | "0" => Some(OptLevel::None),
            "default" | "full" | "1" => Some(OptLevel::Default),
            _ => None,
        }
    }

    /// The process-wide default: `HALIDE_OPT` if set and valid, else
    /// [`OptLevel::Default`].
    pub fn from_env() -> OptLevel {
        match std::env::var("HALIDE_OPT") {
            Ok(v) => match OptLevel::from_name(&v) {
                Some(l) => l,
                None => {
                    eprintln!("warning: unknown HALIDE_OPT value {v:?}; using \"default\"");
                    OptLevel::Default
                }
            },
            Err(_) => OptLevel::Default,
        }
    }
}

/// Change count and wall time for one pass across all fixed-point
/// iterations.
#[derive(Debug, Clone)]
pub struct PassStat {
    /// Pass name (stable; used in bench JSON).
    pub name: &'static str,
    /// Number of rewrites the pass performed.
    pub changes: u64,
    /// Wall time spent in the pass, summed over iterations, in
    /// nanoseconds (the compile-telemetry surface).
    pub nanos: u64,
}

/// What the optimizer did to one program: the before/after instruction
/// counts (counter-compensation markers excluded) and per-pass change
/// totals. Attached to every compiled [`crate::Program`].
#[derive(Debug, Clone, Default)]
pub struct OptReport {
    /// The level the program was compiled at.
    pub level: OptLevel,
    /// Executable PIR instructions before optimization.
    pub before_insts: usize,
    /// Executable PIR instructions after optimization.
    pub after_insts: usize,
    /// Fixed-point iterations run (0 at [`OptLevel::None`]).
    pub iterations: u32,
    /// Per-pass aggregated change counts, in pipeline order.
    pub passes: Vec<PassStat>,
}

/// One snapshot of the PIR for `--dump-pir` / `examples/pir_stages.rs`:
/// the printed program after a named stage.
#[derive(Debug, Clone)]
pub struct PirStage {
    /// Stage label (`"linearized"`, or `"<pass> (iteration N)"`).
    pub name: String,
    /// Rewrites this stage performed (0 for the initial snapshot).
    pub changes: u64,
    /// The printed PIR.
    pub pir: String,
}

/// The pass pipeline, in order.
const PASSES: &[(&str, fn(&mut PirProgram) -> u64)] = &[
    ("const-fold", const_fold),
    ("simplify", simplify),
    ("strength-reduce", strength_reduce),
    ("cse", cse),
    ("licm", licm),
    ("copy-prop", copy_prop),
    ("dce", dce),
];

/// Safety valve: the pipeline converges in 2-4 iterations on every app;
/// cap it in case a future pass pair oscillates.
const MAX_ITERATIONS: u32 = 10;

/// Runs the pass pipeline on `p` to a fixed point. When `trace` is given,
/// a printed snapshot is pushed after every pass application that changed
/// the program.
pub(crate) fn optimize(
    p: &mut PirProgram,
    level: OptLevel,
    mut trace: Option<&mut Vec<PirStage>>,
) -> OptReport {
    let before = p.exec_inst_count();
    let mut report = OptReport {
        level,
        before_insts: before,
        after_insts: before,
        iterations: 0,
        passes: PASSES
            .iter()
            .map(|(name, _)| PassStat {
                name,
                changes: 0,
                nanos: 0,
            })
            .collect(),
    };
    if level == OptLevel::None {
        return report;
    }
    for iter in 1..=MAX_ITERATIONS {
        let mut total = 0;
        for (i, (name, pass)) in PASSES.iter().enumerate() {
            let start = std::time::Instant::now();
            let changes = pass(p);
            report.passes[i].nanos += start.elapsed().as_nanos() as u64;
            report.passes[i].changes += changes;
            total += changes;
            if changes > 0 {
                if let Some(t) = trace.as_deref_mut() {
                    t.push(PirStage {
                        name: format!("{name} (iteration {iter})"),
                        changes,
                        pir: p.print(),
                    });
                }
            }
        }
        report.iterations = iter;
        if total == 0 {
            break;
        }
    }
    report.after_insts = p.exec_inst_count();
    report
}

/// Registers currently holding a known integer constant (defined by a
/// reachable `const` instruction).
fn const_int_map(p: &PirProgram) -> Vec<Option<i64>> {
    let mut m = vec![None; p.n_regs as usize];
    for b in p.reachable() {
        for inst in &p.blocks[b as usize] {
            if let (Some(d), POp::ConstI(v)) = (inst.dst, &inst.op) {
                m[d as usize] = Some(*v);
            }
        }
    }
    m
}

/// Rewrites `inst` into a constant, updating the analysis side tables.
fn set_const(p: &mut PirProgram, inst: &mut PInst, consts: &mut [Option<Scalar>], s: Scalar) {
    let dst = inst.dst.expect("const rewrite requires a destination");
    inst.op = match s {
        Scalar::Int(v) => POp::ConstI(v),
        Scalar::Float(v) => POp::ConstF(v),
    };
    inst.weight = 1;
    p.vec[dst as usize] = false;
    p.kind[dst as usize] = if s.is_float() {
        PKind::Float
    } else {
        PKind::Int
    };
    consts[dst as usize] = Some(s);
}

/// Rewrites `inst` into a copy of `src`, updating the analysis side tables.
fn set_copy(p: &mut PirProgram, inst: &mut PInst, src: Reg) {
    let dst = inst.dst.expect("copy rewrite requires a destination");
    inst.op = POp::Copy(src);
    inst.weight = 1;
    p.vec[dst as usize] = p.vec[src as usize];
    p.kind[dst as usize] = p.kind[src as usize];
}

fn count_inst(arith: i64) -> PInst {
    PInst {
        dst: None,
        op: POp::Count { arith },
        weight: 1,
    }
}

// ---------------------------------------------------------------------------
// const-fold
// ---------------------------------------------------------------------------

fn const_fold(p: &mut PirProgram) -> u64 {
    let mut consts: Vec<Option<Scalar>> = vec![None; p.n_regs as usize];
    let mut changes = 0;
    fold_block(p, 0, &mut consts, &mut changes);
    changes
}

fn fold_block(p: &mut PirProgram, b: BlockId, consts: &mut Vec<Option<Scalar>>, changes: &mut u64) {
    let old = std::mem::take(&mut p.blocks[b as usize]);
    let mut new: Vec<PInst> = Vec::with_capacity(old.len());
    for mut inst in old {
        for sb in inst.op.sub_blocks() {
            fold_block(p, sb, consts, changes);
        }
        // How many arithmetic ops to compensate if this rewrite removes a
        // counted execution (the interpreter still performs it).
        let weight = if inst.op.counted() {
            inst.weight as i64
        } else {
            0
        };
        let mut comp = 0i64;
        match &inst.op {
            POp::ConstI(v) => consts[inst.dst.unwrap() as usize] = Some(Scalar::Int(*v)),
            POp::ConstF(v) => consts[inst.dst.unwrap() as usize] = Some(Scalar::Float(*v)),
            POp::Copy(a) => consts[inst.dst.unwrap() as usize] = consts[*a as usize],
            POp::Cast { ty, a } => {
                let folded = consts[*a as usize].map(|s| s.cast_to(*ty));
                if let Some(s) = folded {
                    set_const(p, &mut inst, consts, s);
                    *changes += 1;
                }
            }
            POp::Bin { op, a, b } => {
                let folded = match (consts[*a as usize], consts[*b as usize]) {
                    (Some(x), Some(y)) => Some(scalar_binary_op(*op, x, y)),
                    _ => None,
                };
                if let Some(s) = folded {
                    set_const(p, &mut inst, consts, s);
                    comp = weight;
                    *changes += 1;
                }
            }
            POp::Cmp { op, a, b } => {
                let folded = match (consts[*a as usize], consts[*b as usize]) {
                    (Some(x), Some(y)) => Some(scalar_compare_op(*op, x, y)),
                    _ => None,
                };
                if let Some(s) = folded {
                    set_const(p, &mut inst, consts, s);
                    comp = weight;
                    *changes += 1;
                }
            }
            POp::Not { a } => {
                // Matches the machine: `Int((s.as_i64() == 0) as i64)`.
                let folded = consts[*a as usize].map(|s| Scalar::Int((s.as_i64() == 0) as i64));
                if let Some(s) = folded {
                    set_const(p, &mut inst, consts, s);
                    *changes += 1;
                }
            }
            POp::Shl { a, bits } => {
                let folded = match consts[*a as usize] {
                    Some(Scalar::Int(x)) => Some(Scalar::Int(x.wrapping_shl(*bits))),
                    _ => None,
                };
                if let Some(s) = folded {
                    set_const(p, &mut inst, consts, s);
                    comp = weight;
                    *changes += 1;
                }
            }
            POp::Shr { a, bits } => {
                let folded = match consts[*a as usize] {
                    Some(Scalar::Int(x)) => Some(Scalar::Int(x >> bits)),
                    _ => None,
                };
                if let Some(s) = folded {
                    set_const(p, &mut inst, consts, s);
                    comp = weight;
                    *changes += 1;
                }
            }
            POp::AndMask { a, mask } => {
                let folded = match consts[*a as usize] {
                    Some(Scalar::Int(x)) => Some(Scalar::Int(x & mask)),
                    _ => None,
                };
                if let Some(s) = folded {
                    set_const(p, &mut inst, consts, s);
                    comp = weight;
                    *changes += 1;
                }
            }
            POp::Select {
                cond,
                t,
                t_val,
                f,
                f_val,
            } => {
                // A constant scalar condition decides the select statically:
                // splice the taken arm inline (its instructions — including
                // any counter compensation — now execute unconditionally,
                // exactly as the interpreter evaluates the taken arm) and
                // drop the untaken arm, which neither engine evaluates.
                if let Some(Scalar::Int(c)) = consts[*cond as usize] {
                    let (blk, val) = if c != 0 { (*t, *t_val) } else { (*f, *f_val) };
                    let arm = std::mem::take(&mut p.blocks[blk as usize]);
                    new.extend(arm);
                    consts[inst.dst.unwrap() as usize] = consts[val as usize];
                    set_copy(p, &mut inst, val);
                    *changes += 1;
                }
            }
            POp::And { a, rhs, rhs_val } => {
                if let Some(Scalar::Int(c)) = consts[*a as usize] {
                    if c == 0 {
                        set_const(p, &mut inst, consts, Scalar::Int(0));
                    } else {
                        // A scalar-true left side: the result is exactly the
                        // right side, which now evaluates unconditionally.
                        let (rhs, rhs_val) = (*rhs, *rhs_val);
                        let arm = std::mem::take(&mut p.blocks[rhs as usize]);
                        new.extend(arm);
                        consts[inst.dst.unwrap() as usize] = consts[rhs_val as usize];
                        set_copy(p, &mut inst, rhs_val);
                    }
                    *changes += 1;
                }
            }
            POp::Or { a, rhs, rhs_val } => {
                if let Some(Scalar::Int(c)) = consts[*a as usize] {
                    if c != 0 {
                        set_const(p, &mut inst, consts, Scalar::Int(1));
                    } else {
                        let (rhs, rhs_val) = (*rhs, *rhs_val);
                        let arm = std::mem::take(&mut p.blocks[rhs as usize]);
                        new.extend(arm);
                        consts[inst.dst.unwrap() as usize] = consts[rhs_val as usize];
                        set_copy(p, &mut inst, rhs_val);
                    }
                    *changes += 1;
                }
            }
            POp::If {
                cond,
                then_b,
                else_b,
            } => {
                if let Some(Scalar::Int(c)) = consts[*cond as usize] {
                    *changes += 1;
                    let taken = if c != 0 { Some(*then_b) } else { *else_b };
                    if let Some(blk) = taken {
                        let body = std::mem::take(&mut p.blocks[blk as usize]);
                        new.extend(body);
                    }
                    continue; // the branch itself is decided; drop it
                }
            }
            POp::Assert { cond, .. } => {
                // A statically-true assertion can never fire; false (or
                // unknown) conditions must stay for their runtime error.
                if let Some(Scalar::Int(c)) = consts[*cond as usize] {
                    if c != 0 {
                        *changes += 1;
                        continue;
                    }
                }
            }
            _ => {}
        }
        new.push(inst);
        if comp > 0 {
            new.push(count_inst(comp));
        }
    }
    p.blocks[b as usize] = new;
}

// ---------------------------------------------------------------------------
// simplify
// ---------------------------------------------------------------------------

fn simplify(p: &mut PirProgram) -> u64 {
    enum Rewrite {
        CopyOf(Reg),
        IntConst(i64),
    }
    let consts = const_int_map(p);
    let mut changes = 0;
    for blk in p.reachable() {
        let old = std::mem::take(&mut p.blocks[blk as usize]);
        let mut new: Vec<PInst> = Vec::with_capacity(old.len());
        for mut inst in old {
            let rewrite = match (&inst.op, inst.dst) {
                // Integer-only algebra: the result register must be a
                // proven integer (float identities like `x + 0.0` and
                // NaN-afflicted comparisons are not bit-exact).
                (POp::Bin { op, a, b }, Some(dst)) if p.kind[dst as usize] == PKind::Int => {
                    let (ca, cb) = (consts[*a as usize], consts[*b as usize]);
                    match op {
                        BinOp::Add if cb == Some(0) => Some(Rewrite::CopyOf(*a)),
                        BinOp::Add if ca == Some(0) => Some(Rewrite::CopyOf(*b)),
                        BinOp::Sub if cb == Some(0) => Some(Rewrite::CopyOf(*a)),
                        BinOp::Sub if a == b => Some(Rewrite::IntConst(0)),
                        BinOp::Mul if cb == Some(1) => Some(Rewrite::CopyOf(*a)),
                        BinOp::Mul if ca == Some(1) => Some(Rewrite::CopyOf(*b)),
                        BinOp::Mul if cb == Some(0) || ca == Some(0) => Some(Rewrite::IntConst(0)),
                        BinOp::Div if cb == Some(1) => Some(Rewrite::CopyOf(*a)),
                        // Halide semantics: x/0 == 0 and x%0 == 0.
                        BinOp::Div if cb == Some(0) => Some(Rewrite::IntConst(0)),
                        BinOp::Mod if cb == Some(1) || cb == Some(0) => Some(Rewrite::IntConst(0)),
                        BinOp::Min | BinOp::Max if a == b => Some(Rewrite::CopyOf(*a)),
                        _ => None,
                    }
                }
                (POp::Cmp { op, a, b }, Some(_)) if a == b && p.kind[*a as usize] == PKind::Int => {
                    match op {
                        CmpOp::Eq | CmpOp::Le | CmpOp::Ge => Some(Rewrite::IntConst(1)),
                        CmpOp::Ne | CmpOp::Lt | CmpOp::Gt => Some(Rewrite::IntConst(0)),
                    }
                }
                _ => None,
            };
            if let Some(rw) = rewrite {
                changes += 1;
                let comp = if inst.op.counted() {
                    inst.weight as i64
                } else {
                    0
                };
                match rw {
                    Rewrite::CopyOf(src) => set_copy(p, &mut inst, src),
                    Rewrite::IntConst(v) => {
                        let dst = inst.dst.expect("rewritten ops have a destination");
                        inst.op = POp::ConstI(v);
                        inst.weight = 1;
                        p.vec[dst as usize] = false;
                        p.kind[dst as usize] = PKind::Int;
                    }
                }
                new.push(inst);
                if comp > 0 {
                    new.push(count_inst(comp));
                }
            } else {
                new.push(inst);
            }
        }
        p.blocks[blk as usize] = new;
    }
    changes
}

// ---------------------------------------------------------------------------
// strength reduction
// ---------------------------------------------------------------------------

/// `Some(log2(c))` when `c` is a power of two of at least 2.
fn pow2_exponent(c: i64) -> Option<u32> {
    if c >= 2 && (c & (c - 1)) == 0 {
        Some(c.trailing_zeros())
    } else {
        None
    }
}

fn strength_reduce(p: &mut PirProgram) -> u64 {
    let consts = const_int_map(p);
    let mut changes = 0;
    for blk in p.reachable() {
        // Rewrites are in place (no insertions): the shift/mask forms keep
        // the original instruction's weight, so counters are untouched.
        for i in 0..p.blocks[blk as usize].len() {
            let new_op = {
                let inst = &p.blocks[blk as usize][i];
                let &POp::Bin { op, a, b } = &inst.op else {
                    continue;
                };
                let int_a = p.kind[a as usize] == PKind::Int;
                let int_b = p.kind[b as usize] == PKind::Int;
                match op {
                    // Floor division by 2^k is an arithmetic shift for *all*
                    // i64 (including negatives), and floor modulo by 2^k is
                    // a mask — that is what makes Euclidean semantics
                    // shiftable.
                    BinOp::Div if int_a => consts[b as usize]
                        .and_then(pow2_exponent)
                        .map(|bits| POp::Shr { a, bits }),
                    BinOp::Mod if int_a => consts[b as usize]
                        .filter(|c| pow2_exponent(*c).is_some())
                        .map(|c| POp::AndMask { a, mask: c - 1 }),
                    // Wrapping multiplication by 2^k is a left shift.
                    BinOp::Mul => {
                        let by_b = if int_a {
                            consts[b as usize]
                                .and_then(pow2_exponent)
                                .map(|bits| POp::Shl { a, bits })
                        } else {
                            None
                        };
                        by_b.or_else(|| {
                            if int_b {
                                consts[a as usize]
                                    .and_then(pow2_exponent)
                                    .map(|bits| POp::Shl { a: b, bits })
                            } else {
                                None
                            }
                        })
                    }
                    _ => None,
                }
            };
            if let Some(new_op) = new_op {
                p.blocks[blk as usize][i].op = new_op;
                changes += 1;
            }
        }
    }
    changes
}

// ---------------------------------------------------------------------------
// CSE / GVN
// ---------------------------------------------------------------------------

#[derive(PartialEq, Eq, Hash)]
enum Key {
    ConstI(i64),
    ConstF(u64),
    Cast(ScalarType, Reg),
    Bin(BinOp, Reg, Reg),
    Cmp(CmpOp, Reg, Reg),
    Not(Reg),
    Shl(Reg, u32),
    Shr(Reg, u32),
    Mask(Reg, i64),
    Ramp(Reg, Reg, u16),
    Call(String, Vec<Reg>),
}

/// The value number of a pure operation, when it has one. Operands of
/// commutative operators are sorted so `a + b` and `b + a` unify.
fn key_of(op: &POp) -> Option<Key> {
    Some(match op {
        POp::ConstI(v) => Key::ConstI(*v),
        POp::ConstF(v) => Key::ConstF(v.to_bits()),
        POp::Cast { ty, a } => Key::Cast(*ty, *a),
        POp::Bin { op, a, b } => {
            let (a, b) = match op {
                BinOp::Add | BinOp::Mul | BinOp::Min | BinOp::Max => (*a.min(b), *a.max(b)),
                _ => (*a, *b),
            };
            Key::Bin(*op, a, b)
        }
        POp::Cmp { op, a, b } => {
            let (a, b) = match op {
                CmpOp::Eq | CmpOp::Ne => (*a.min(b), *a.max(b)),
                _ => (*a, *b),
            };
            Key::Cmp(*op, a, b)
        }
        POp::Not { a } => Key::Not(*a),
        POp::Shl { a, bits } => Key::Shl(*a, *bits),
        POp::Shr { a, bits } => Key::Shr(*a, *bits),
        POp::AndMask { a, mask } => Key::Mask(*a, *mask),
        POp::Ramp {
            base,
            stride,
            lanes,
        } => Key::Ramp(*base, *stride, *lanes),
        POp::Intrinsic { name, args, .. } => Key::Call(name.clone(), args.clone()),
        _ => return None,
    })
}

fn cse(p: &mut PirProgram) -> u64 {
    let mut changes = 0;
    let mut scopes: Vec<HashMap<Key, Reg>> = vec![HashMap::new()];
    cse_block(p, 0, &mut scopes, &mut changes);
    changes
}

fn lookup(scopes: &[HashMap<Key, Reg>], key: &Key) -> Option<Reg> {
    scopes.iter().rev().find_map(|s| s.get(key).copied())
}

fn cse_block(
    p: &mut PirProgram,
    b: BlockId,
    scopes: &mut Vec<HashMap<Key, Reg>>,
    changes: &mut u64,
) {
    let old = std::mem::take(&mut p.blocks[b as usize]);
    let mut new: Vec<PInst> = Vec::with_capacity(old.len());
    for mut inst in old {
        match &inst.op {
            // A loop header's values are computed before any iteration, so
            // they stay available inside the body; everything defined in
            // either dies with the loop.
            POp::For { header, body, .. } => {
                let (header, body) = (*header, *body);
                scopes.push(HashMap::new());
                cse_block(p, header, scopes, changes);
                scopes.push(HashMap::new());
                cse_block(p, body, scopes, changes);
                scopes.pop();
                scopes.pop();
            }
            op if !op.sub_blocks().is_empty() => {
                // Conditional / scoped regions: values computed inside are
                // not available after the region.
                for sb in op.sub_blocks() {
                    scopes.push(HashMap::new());
                    cse_block(p, sb, scopes, changes);
                    scopes.pop();
                }
            }
            _ => {
                if let (Some(dst), Some(key)) = (inst.dst, key_of(&inst.op)) {
                    if p.cheap_reg(dst, &inst.op) {
                        if let Some(prev) = lookup(scopes, &key) {
                            *changes += 1;
                            // The interpreter still evaluates the duplicate
                            // at this site: compensate its count here.
                            let comp = if inst.op.counted() && inst.weight > 0 {
                                inst.weight as i64
                            } else {
                                0
                            };
                            set_copy(p, &mut inst, prev);
                            new.push(inst);
                            if comp > 0 {
                                new.push(count_inst(comp));
                            }
                            continue;
                        }
                        scopes
                            .last_mut()
                            .expect("cse scope stack is never empty")
                            .insert(key, dst);
                    }
                }
            }
        }
        new.push(inst);
    }
    p.blocks[b as usize] = new;
}

// ---------------------------------------------------------------------------
// LICM
// ---------------------------------------------------------------------------

fn licm(p: &mut PirProgram) -> u64 {
    let mut changes = 0;
    for b in p.reachable() {
        for idx in 0..p.blocks[b as usize].len() {
            if let POp::For {
                var, header, body, ..
            } = p.blocks[b as usize][idx].op
            {
                changes += hoist_loop(p, var, header, body);
            }
        }
    }
    changes
}

/// True when `inst` computes a pure, cheap value whose operands are all
/// defined outside `defined` — safe and profitable to evaluate once per
/// loop entry instead of once per iteration. (Pure integer/float register
/// arithmetic cannot trap: division by zero is total under Halide
/// semantics, so executing it for a zero-iteration loop is harmless.)
fn hoistable(p: &PirProgram, inst: &PInst, defined: &HashSet<Reg>) -> bool {
    let Some(dst) = inst.dst else { return false };
    if !inst.op.pure_value()
        || matches!(inst.op, POp::Copy(_) | POp::ConstI(_) | POp::ConstF(_))
        || !p.cheap_reg(dst, &inst.op)
    {
        return false;
    }
    let mut ok = true;
    inst.op.for_each_operand(|r| {
        if defined.contains(&r) {
            ok = false;
        }
    });
    ok
}

/// Moves an instruction out of `src` position into `dest_header`, leaving a
/// counter-compensation marker at the original site when the instruction is
/// counted (it keeps executing — once per entry instead of per iteration —
/// but stops counting; emission pairs the weight-0 instruction with a
/// negative count so the per-entry total is zero).
fn hoist_insts(
    p: &mut PirProgram,
    src: BlockId,
    dest_header: BlockId,
    defined: &HashSet<Reg>,
) -> u64 {
    let mut moved: Vec<PInst> = Vec::new();
    let old = std::mem::take(&mut p.blocks[src as usize]);
    let mut new: Vec<PInst> = Vec::with_capacity(old.len());
    for mut inst in old {
        if hoistable(p, &inst, defined) {
            if inst.op.counted() && inst.weight > 0 {
                new.push(count_inst(inst.weight as i64));
                inst.weight = 0;
            }
            moved.push(inst);
        } else {
            new.push(inst);
        }
    }
    let n = moved.len() as u64;
    p.blocks[src as usize] = new;
    p.blocks[dest_header as usize].extend(moved);
    n
}

fn hoist_loop(p: &mut PirProgram, var: Reg, header: BlockId, body: BlockId) -> u64 {
    // Registers whose value changes across iterations: the loop variable
    // and everything the body computes.
    let mut defined: HashSet<Reg> = p.blocks[body as usize]
        .iter()
        .filter_map(|i| i.dst)
        .collect();
    defined.insert(var);
    let mut changes = hoist_insts(p, body, header, &defined);

    // Inner-loop headers run once per outer iteration; instructions there
    // that do not depend on this loop either can move one level further out
    // (multi-level hoisting happens across fixed-point iterations).
    for idx in 0..p.blocks[body as usize].len() {
        if let POp::For {
            header: inner_header,
            ..
        } = p.blocks[body as usize][idx].op
        {
            let mut forbidden = defined.clone();
            for i in &p.blocks[inner_header as usize] {
                if let Some(d) = i.dst {
                    forbidden.insert(d);
                }
            }
            changes += hoist_insts(p, inner_header, header, &forbidden);
        }
    }
    changes
}

// ---------------------------------------------------------------------------
// copy propagation
// ---------------------------------------------------------------------------

fn copy_prop(p: &mut PirProgram) -> u64 {
    let reachable = p.reachable();
    let mut resolve: Vec<Option<Reg>> = vec![None; p.n_regs as usize];
    let mut any = false;
    for b in &reachable {
        for inst in &p.blocks[*b as usize] {
            if let (Some(dst), POp::Copy(src)) = (inst.dst, &inst.op) {
                resolve[dst as usize] = Some(*src);
                any = true;
            }
        }
    }
    if !any {
        return 0;
    }
    let chase = |mut r: Reg| {
        // SSA defs are acyclic, so the chain terminates.
        while let Some(s) = resolve[r as usize] {
            r = s;
        }
        r
    };
    let mut changes = 0;
    for b in &reachable {
        for inst in &mut p.blocks[*b as usize] {
            if matches!(inst.op, POp::Copy(_)) {
                continue; // keep the definition itself; DCE removes it
            }
            inst.op.for_each_operand_mut(|r| {
                let t = chase(*r);
                if t != *r {
                    *r = t;
                    changes += 1;
                }
            });
        }
    }
    changes
}

// ---------------------------------------------------------------------------
// DCE
// ---------------------------------------------------------------------------

fn dce(p: &mut PirProgram) -> u64 {
    let mut changes = 0;
    loop {
        let counts = p.use_counts();
        let mut removed = 0u64;
        for b in p.reachable() {
            let old = std::mem::take(&mut p.blocks[b as usize]);
            let mut new: Vec<PInst> = Vec::with_capacity(old.len());
            for inst in old {
                let dead =
                    inst.op.pure_value() && inst.dst.is_some_and(|d| counts[d as usize] == 0);
                if dead {
                    removed += 1;
                    // The interpreter still evaluates the (textually
                    // present) dead expression and counts it.
                    if inst.op.counted() && inst.weight > 0 {
                        new.push(count_inst(inst.weight as i64));
                    }
                } else {
                    new.push(inst);
                }
            }
            p.blocks[b as usize] = new;
        }
        changes += removed;
        if removed == 0 {
            break;
        }
    }
    // Tidy the compensation stream: merge adjacent markers, drop zeros.
    // (Not counted as changes — merging is cosmetic and idempotent.)
    for b in p.reachable() {
        let old = std::mem::take(&mut p.blocks[b as usize]);
        let mut new: Vec<PInst> = Vec::with_capacity(old.len());
        for inst in old {
            if let POp::Count { arith } = inst.op {
                if let Some(PInst {
                    op: POp::Count { arith: prev },
                    ..
                }) = new.last_mut()
                {
                    *prev += arith;
                    continue;
                }
                if arith == 0 {
                    continue;
                }
            }
            new.push(inst);
        }
        new.retain(|i| !matches!(i.op, POp::Count { arith: 0 }));
        p.blocks[b as usize] = new;
    }
    changes
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use super::*;
    use crate::compile::Program;
    use crate::eval::{eval_stmt, Context, Frame};
    use crate::machine::{exec, Machine};
    use crate::pir::linearize;
    use halide_ir::{Expr, ForKind, ScalarType as IrScalarType, Stmt, Type};
    use halide_runtime::{Buffer, ThreadPool};
    use proptest::prelude::*;

    // ---- golden-IR tests: one small program per pass, exact printed PIR ----

    /// Linearizes `s`, runs one pass over it, and returns the printed PIR.
    fn pir_after(s: &Stmt, pass: fn(&mut PirProgram) -> u64) -> String {
        let mut p = linearize(s).expect("test statement linearizes");
        pass(&mut p);
        p.print()
    }

    /// Exact-match golden assertion with a paste-ready diff on failure.
    fn assert_golden(actual: &str, expected: &str, what: &str) {
        assert!(
            actual.trim_end() == expected.trim_end(),
            "{what}: golden PIR mismatch.\n-- actual --\n{actual}\n-- expected --\n{expected}"
        );
    }

    /// `for i in [0, n): out[i] = value` — the loop body every pass test
    /// hangs its expression under.
    fn store_loop(value: Expr, n: i32) -> Stmt {
        Stmt::for_loop(
            "i",
            Expr::int(0),
            Expr::int(n),
            ForKind::Serial,
            Stmt::store("out", value, Expr::var_i32("i")),
        )
    }

    #[test]
    fn golden_const_fold_evaluates_constant_arithmetic() {
        // out[2*3 + 5] = 1.5 — the whole index folds to 11, with count
        // markers keeping the interpreter's two arithmetic ops accounted.
        let s = Stmt::store("out", Expr::f32(1.5), Expr::int(2) * 3 + 5);
        let actual = pir_after(&s, const_fold);
        assert_golden(&actual, GOLDEN_CONST_FOLD, "const-fold");
    }

    #[test]
    fn golden_simplify_removes_integer_identities() {
        // out[i*1 + 0] = 2.0 — `*1` and `+0` reduce to copies of i.
        let s = Stmt::for_loop(
            "i",
            Expr::int(0),
            Expr::int(4),
            ForKind::Serial,
            Stmt::store("out", Expr::f32(2.0), Expr::var_i32("i") * 1 + 0),
        );
        let actual = pir_after(&s, simplify);
        assert_golden(&actual, GOLDEN_SIMPLIFY, "simplify");
    }

    #[test]
    fn golden_strength_reduce_uses_shifts_and_masks() {
        // i*8 -> shl 3, i/4 -> shr 2, i%8 -> and_mask 7 (floor semantics).
        let i = Expr::var_i32("i");
        let value = (i.clone() * 8 + i.clone() / 4 + i.clone() % 8).cast(Type::f32());
        let actual = pir_after(&store_loop(value, 8), strength_reduce);
        assert_golden(&actual, GOLDEN_STRENGTH_REDUCE, "strength-reduce");
    }

    #[test]
    fn golden_cse_dedupes_pure_subexpressions() {
        // (i*3) + (i*3): the second multiply becomes a copy plus a count
        // marker compensating the arithmetic op the interpreter still does.
        let i = Expr::var_i32("i");
        let value = (i.clone() * 3 + i.clone() * 3).cast(Type::f32());
        let actual = pir_after(&store_loop(value, 4), cse);
        assert_golden(&actual, GOLDEN_CSE, "cse");
    }

    #[test]
    fn golden_licm_hoists_invariant_arithmetic() {
        // n*n is invariant in i (both operands defined outside the loop):
        // it moves to the loop's header region and its weight drops to 0
        // (executed once per loop entry, counted once per iteration).
        let n = Expr::var_i32("n");
        let value = (n.clone() * n.clone()).cast(Type::f32());
        let actual = pir_after(&store_loop(value, 4), licm);
        assert_golden(&actual, GOLDEN_LICM, "licm");
    }

    #[test]
    fn golden_dce_drops_unused_pure_code() {
        // let t = i*7 in (i as f32): t is dead; the multiply disappears and
        // a count marker keeps the interpreter's evaluation accounted.
        let i = Expr::var_i32("i");
        let value = Expr::let_in("t", i.clone() * 7, i.clone().cast(Type::f32()));
        let actual = pir_after(&store_loop(value, 4), dce);
        assert_golden(&actual, GOLDEN_DCE, "dce");
    }

    const GOLDEN_CONST_FOLD: &str = "\
pir {
  buf b0 = \"out\" (free)
  L0:
    r0 = const 1.5
    r1 = const 2
    r2 = const 3
    r3 = const 6
    count 1
    r4 = const 5
    r5 = const 11
    count 1
    store b0[r5] = r0
}";

    const GOLDEN_SIMPLIFY: &str = "\
pir {
  buf b0 = \"out\" (free)
  L0:
    r0 = const 0
    r1 = const 4
    for r2 in [r0, r0+r1) Serial header L1 body L2
  L1:
  L2:
    r3 = const 2.0
    r4 = const 1
    r5 = copy r2
    count 1
    r6 = const 0
    r7 = copy r5
    count 1
    store b0[r7] = r3
}";

    const GOLDEN_STRENGTH_REDUCE: &str = "\
pir {
  buf b0 = \"out\" (free)
  L0:
    r0 = const 0
    r1 = const 8
    for r2 in [r0, r0+r1) Serial header L1 body L2
  L1:
  L2:
    r3 = const 8
    r4 = shl r2, 3
    r5 = const 4
    r6 = shr r2, 2
    r7 = add r4, r6
    r8 = const 8
    r9 = and_mask r2, 7
    r10 = add r7, r9
    r11 = cast.float32 r10
    store b0[r2] = r11
}";

    // One cse application value-numbers the repeated constant; the second
    // multiply dedupes on the next fixed-point iteration, once copy-prop
    // has rewritten its operand to r3.
    const GOLDEN_CSE: &str = "\
pir {
  buf b0 = \"out\" (free)
  L0:
    r0 = const 0
    r1 = const 4
    for r2 in [r0, r0+r1) Serial header L1 body L2
  L1:
  L2:
    r3 = const 3
    r4 = mul r2, r3
    r5 = copy r3
    r6 = mul r2, r5
    r7 = add r4, r6
    r8 = cast.float32 r7
    store b0[r2] = r8
}";

    const GOLDEN_LICM: &str = "\
pir {
  free r3 = \"n\"
  buf b0 = \"out\" (free)
  L0:
    r0 = const 0
    r1 = const 4
    for r2 in [r0, r0+r1) Serial header L1 body L2
  L1:
    r4 = mul r3, r3 !w0
  L2:
    count 1
    r5 = cast.float32 r4
    store b0[r2] = r5
}";

    const GOLDEN_DCE: &str = "\
pir {
  buf b0 = \"out\" (free)
  L0:
    r0 = const 0
    r1 = const 4
    for r2 in [r0, r0+r1) Serial header L1 body L2
  L1:
  L2:
    count 1
    r5 = cast.float32 r2
    store b0[r2] = r5
}";

    #[test]
    fn report_tracks_fixed_point_and_sizes() {
        let i = Expr::var_i32("i");
        let value = (i.clone() * 8 + i.clone() * 8 + Expr::int(2) * 3).cast(Type::f32());
        let mut p = linearize(&store_loop(value, 8)).unwrap();
        let before = p.exec_inst_count();
        let report = optimize(&mut p, OptLevel::Default, None);
        assert_eq!(report.level, OptLevel::Default);
        assert_eq!(report.before_insts, before);
        assert_eq!(report.after_insts, p.exec_inst_count());
        assert!(report.after_insts < report.before_insts);
        assert!(report.iterations >= 1);
        let names: Vec<&str> = report.passes.iter().map(|p| p.name).collect();
        assert_eq!(
            names,
            [
                "const-fold",
                "simplify",
                "strength-reduce",
                "cse",
                "licm",
                "copy-prop",
                "dce"
            ]
        );
        // At least the folder, the deduper, and the strength reducer fired.
        for name in ["const-fold", "cse", "strength-reduce"] {
            let stat = report.passes.iter().find(|p| p.name == name).unwrap();
            assert!(stat.changes > 0, "{name} reported no changes");
        }

        // OptLevel::None is the identity.
        let mut q = linearize(&store_loop((Expr::var_i32("i") * 8).cast(Type::f32()), 8)).unwrap();
        let printed = q.print();
        let report = optimize(&mut q, OptLevel::None, None);
        assert_eq!(report.iterations, 0);
        assert_eq!(report.before_insts, report.after_insts);
        assert_eq!(q.print(), printed);
    }

    // ---- property tests: passes preserve results and counters -------------

    /// Runs `s` on the interpreter and on the compiled engine at both
    /// optimizer levels; asserts bit-identical float buffers and identical
    /// counters across all three.
    fn assert_levels_agree(s: &Stmt, out_len: i64, bind_n: Option<i64>) {
        let run_ctx = || Context::new(ThreadPool::new(2), true);

        // Interpreter reference.
        let ictx = run_ctx();
        let mut frame = Frame::default();
        let iout = Arc::new(Buffer::with_extents(IrScalarType::Float(32), &[out_len]));
        frame.insert_buffer("out".to_string(), Arc::clone(&iout));
        if let Some(n) = bind_n {
            frame
                .env
                .push("n".to_string(), halide_runtime::Value::int(n));
        }
        eval_stmt(s, &mut frame, &ictx).unwrap();
        let reference = iout.to_f64_vec();
        let mut rc = ictx.counters.snapshot();
        rc.peak_bytes_live = 0;

        for level in [OptLevel::None, OptLevel::Default] {
            let prog = Program::compile_stmt_with(s, level).unwrap();
            let cctx = run_ctx();
            let mut m = Machine::new(&prog);
            let cout = Arc::new(Buffer::with_extents(IrScalarType::Float(32), &[out_len]));
            if let Some(idx) = prog.free_buf("out") {
                m.set_buf(idx, Arc::clone(&cout));
            }
            if let Some(n) = bind_n {
                if let Some(slot) = prog.free_slot("n") {
                    m.set_reg(slot, halide_runtime::Scalar::Int(n));
                }
            }
            exec(&prog, &prog.body, &mut m, &cctx).unwrap();
            let got = cout.to_f64_vec();
            assert_eq!(got.len(), reference.len());
            for (i, (x, y)) in got.iter().zip(reference.iter()).enumerate() {
                assert!(
                    x.to_bits() == y.to_bits(),
                    "out[{i}] at {level:?}: compiled {x} != interp {y}"
                );
            }
            let mut cc = cctx.counters.snapshot();
            cc.peak_bytes_live = 0;
            assert_eq!(cc, rc, "counters diverge at {level:?}");
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// Random integer expression shapes through the full pipeline:
        /// every optimizer level produces the interpreter's exact outputs
        /// and counters. The constants are chosen to tickle every pass —
        /// pow2 and non-pow2 divisors, foldable subtrees, repeated
        /// subexpressions, loop-invariant terms.
        #[test]
        fn random_programs_agree_at_every_opt_level(
            a in -7i64..8,
            b in 1i64..9,
            c in prop_oneof![Just(2i64), Just(3), Just(4), Just(5), Just(8), Just(16)],
            n in -3i64..12,
            shape in 0u8..6,
        ) {
            let i = Expr::var_i32("i");
            let nv = Expr::var_i32("n");
            let ai = Expr::int(a as i32);
            let bi = Expr::int(b as i32);
            let ci = Expr::int(c as i32);
            let base: Expr = match shape {
                // repeated subexpression (cse) + pow2 mul (strength-reduce)
                0 => i.clone() * 8 + i.clone() * 8 + ai.clone() * bi.clone(),
                // floor div/mod by drawn divisor (strength-reduce + fold)
                1 => i.clone() / ci.clone() + i.clone() % ci.clone() + ai.clone(),
                // loop-invariant term (licm) over a free scalar
                2 => nv.clone() * bi.clone() + i.clone(),
                // identities (simplify) around a live core
                3 => (i.clone() * 1 + 0) * bi.clone() - i.clone() + ai.clone(),
                // branchy: select with a data-dependent condition
                4 => Expr::select(
                    Expr::lt(i.clone() % ci.clone(), bi.clone()),
                    i.clone() * ai.clone(),
                    i.clone() + bi.clone(),
                ),
                // dead let (dce) wrapping the value
                _ => Expr::let_in("t", i.clone() * 7, i.clone() * bi.clone() + ai.clone()),
            };
            let value = base.cast(Type::f32());
            assert_levels_agree(&store_loop(value, 8), 8, Some(n));
        }
    }
}
