//! The compile pass: lowers a [`halide_ir::Stmt`] into a flat
//! register-machine program.
//!
//! The tree-walking interpreter in [`crate::eval`] re-hashes variable names,
//! re-matches `ExprNode` variants and heap-allocates a `Vec`-backed
//! [`halide_runtime::Value`] for every scalar on every iteration.
//! Compilation removes all of that **ahead of execution**, playing the role
//! of the paper's LLVM code generation step (Sec. 4.6) for this repository's
//! runtime. It runs as three explicit layers (see `docs/optimizer.md` at the
//! repository root):
//!
//! 1. **linearize** (`pir.rs`): resolve every variable to a numeric
//!    frame slot, every buffer to an index, every intrinsic to a function
//!    pointer, and flatten the statement into the linear program IR —
//!    basic blocks over virtual registers, with explicit loop/alloc regions
//!    and side-effect annotations on buffer operations;
//! 2. **optimize** ([`crate::opt`]): a fixed-point pass pipeline over PIR —
//!    constant folding, algebraic simplification, CSE, strength reduction,
//!    loop-invariant hoisting (which subsumes the old compile-time peeling
//!    of loop-leading `let`s), copy propagation, and DCE — selected by
//!    [`OptLevel`];
//! 3. **emit** (`emit.rs`): translate the optimized PIR to the
//!    [`crate::machine`] instruction set: expressions become linearized
//!    trees of `CExpr` nodes over **unboxed** [`halide_runtime::Scalar`]
//!    values; vector lanes are only materialized where vectorization
//!    actually put `ramp`/`broadcast` nodes.
//!
//! Symbols and buffers the statement does not bind internally become the
//! program's *free* slots; [`crate::Realizer`] binds them from the module's
//! inputs, parameters, and output metadata before execution
//! ([`halide_lower::Module::free_symbols`] documents the same contract on
//! the lowering side).
//!
//! Execution of a compiled program lives in [`crate::machine`].

use std::collections::HashMap;

use halide_ir::{BinOp, CmpOp, ForKind, ScalarType, Stmt};
use halide_lower::Module;

use crate::error::Result;
use crate::opt::{optimize, OptLevel, OptReport, PirStage};

/// A unary math intrinsic, resolved to its function pointer.
pub(crate) type UnaryFn = fn(f64) -> f64;
/// A binary math intrinsic, resolved to its function pointer.
pub(crate) type BinaryFn = fn(f64, f64) -> f64;

/// An intrinsic call with its resolution decided at compile time.
#[derive(Debug, Clone, Copy)]
pub(crate) enum CIntrinsic {
    /// `f(x)` over lanes converted to `f64` (result is float).
    Unary(UnaryFn),
    /// `f(a, b)` over lanes converted to `f64` (result is float).
    Binary(BinaryFn),
    /// Kind-preserving absolute value.
    Abs,
    /// `min`/`max` as intrinsics: same semantics as the binary operator.
    MinMax(BinOp),
}

/// A compiled expression node. Slots and buffer indices are resolved;
/// evaluation is allocation-free on scalar paths.
#[derive(Debug)]
pub(crate) enum CExpr {
    /// Integer immediate.
    ConstI(i64),
    /// Float immediate.
    ConstF(f64),
    /// Read a register.
    Slot(u32),
    /// Numeric conversion.
    Cast { ty: ScalarType, value: Box<CExpr> },
    /// Binary arithmetic.
    Bin {
        op: BinOp,
        a: Box<CExpr>,
        b: Box<CExpr>,
    },
    /// Comparison producing 0/1.
    Cmp {
        op: CmpOp,
        a: Box<CExpr>,
        b: Box<CExpr>,
    },
    /// Short-circuiting logical and (on scalar conditions).
    And { a: Box<CExpr>, b: Box<CExpr> },
    /// Short-circuiting logical or (on scalar conditions).
    Or { a: Box<CExpr>, b: Box<CExpr> },
    /// Logical negation.
    Not { a: Box<CExpr> },
    /// Select; evaluates only the taken branch for scalar conditions.
    Select {
        cond: Box<CExpr>,
        t: Box<CExpr>,
        f: Box<CExpr>,
    },
    /// Affine vector constructor (vector path).
    Ramp {
        base: Box<CExpr>,
        stride: Box<CExpr>,
        lanes: u16,
    },
    /// Splat a scalar to lanes (vector path).
    Broadcast { value: Box<CExpr>, lanes: u16 },
    /// Scoped binding: write the slot, evaluate the body.
    Let {
        slot: u32,
        value: Box<CExpr>,
        body: Box<CExpr>,
    },
    /// Strength-reduced integer `value << bits` (from `mul` by a power of
    /// two; exact on the wrapping i64 lane ring).
    Shl { a: Box<CExpr>, bits: u32 },
    /// Strength-reduced integer arithmetic shift `value >> bits` (from
    /// floor division by a power of two; exact for all i64).
    Shr { a: Box<CExpr>, bits: u32 },
    /// Strength-reduced integer `value & mask` (from floor modulo by a
    /// power of two; exact for all i64 with a positive modulus).
    AndMask { a: Box<CExpr>, mask: i64 },
    /// Counter compensation wrapper: bumps the arithmetic counter by
    /// `arith` (two's complement; may be negative) when instrumented, then
    /// evaluates `inner`. Keeps optimized programs' dynamic counts
    /// bit-identical to the interpreter inside lazily-evaluated arms.
    Count { arith: i64, inner: Box<CExpr> },
    /// Load from a buffer at a flat index.
    Load { buf: u32, index: Box<CExpr> },
    /// Load `lanes` contiguous elements starting at `base` — the compiled
    /// form of a load through `ramp(base, 1, lanes)`: one bounds check, no
    /// index vector.
    LoadDense {
        buf: u32,
        base: Box<CExpr>,
        lanes: u16,
    },
    /// Load through `max(min(index, hi), lo)` — the clamped-index access
    /// `at_clamped` lowers to (and the camera pipe's LUT stage performs with
    /// a data-dependent index). Compiled as one clamping gather: the `min`/
    /// `max` intermediate vectors never materialize, though they still count
    /// as the two arithmetic operations the interpreter executes.
    LoadClamped {
        buf: u32,
        index: Box<CExpr>,
        lo: Box<CExpr>,
        hi: Box<CExpr>,
    },
    /// Predicated (masked) load: lanes whose mask lane is false are not
    /// read (and not bounds-checked) and yield zero. The dense/strided/
    /// gather masked forms are dispatched from the runtime index shape,
    /// like [`CExpr::Load`].
    LoadMasked {
        buf: u32,
        index: Box<CExpr>,
        mask: Box<CExpr>,
    },
    /// Intrinsic call through a resolved function pointer.
    Intrinsic { f: CIntrinsic, args: Vec<CExpr> },
}

/// Buffers a GPU kernel body touches, resolved to indices at compile time
/// (the interpreter re-scans the body on every launch).
#[derive(Debug, Clone, Default)]
pub(crate) struct GpuTouch {
    pub(crate) reads: Vec<u32>,
    pub(crate) writes: Vec<u32>,
}

/// A compiled statement node.
#[derive(Debug)]
pub(crate) enum CStmt {
    /// Evaluate `value` and write it to a register (the statement form of a
    /// binding — emission splits the old scoped `let` into a plain register
    /// write, since slots are unique per binder anyway).
    SetSlot { slot: u32, value: CExpr },
    /// Runtime check.
    Assert { cond: CExpr, message: String },
    /// A loop. `hoisted` is the loop-invariant code region: statements run
    /// once per loop entry (peeled loop-leading lets plus whatever LICM
    /// moved there), visible to every iteration; `gpu` is populated for
    /// `GpuBlock` loops.
    For {
        slot: u32,
        min: CExpr,
        extent: CExpr,
        kind: ForKind,
        hoisted: Vec<CStmt>,
        body: Box<CStmt>,
        gpu: Option<GpuTouch>,
    },
    /// Store to a buffer at a flat index.
    Store {
        buf: u32,
        value: CExpr,
        index: CExpr,
    },
    /// Store `lanes` contiguous elements starting at `base` — the compiled
    /// form of a store through `ramp(base, 1, lanes)`.
    StoreDense {
        buf: u32,
        value: CExpr,
        base: CExpr,
        lanes: u16,
    },
    /// Predicated (masked) store: lanes whose mask lane is false are
    /// skipped entirely — not written, not bounds-checked.
    StoreMasked {
        buf: u32,
        value: CExpr,
        index: CExpr,
        mask: CExpr,
    },
    /// Scoped allocation bound to a buffer index.
    Allocate {
        buf: u32,
        ty: ScalarType,
        size: CExpr,
        body: Box<CStmt>,
    },
    /// Sequential composition.
    Block(Vec<CStmt>),
    /// Conditional.
    If {
        cond: CExpr,
        then_case: Box<CStmt>,
        else_case: Option<Box<CStmt>>,
    },
    /// Evaluate for effect.
    Evaluate(CExpr),
    /// Counter compensation: bump the arithmetic counter by `arith` (two's
    /// complement; may be negative) when instrumented.
    Count { arith: i64 },
    /// A produce nest for func `func` (an index into
    /// [`Program::func_names`]): when a profiler is attached to the
    /// execution context, entry publishes the func as the sampler's
    /// current-func token (and counts one invocation) and exit restores
    /// the previous token. Without a profiler this is a plain `body`.
    Produce { func: u32, body: Box<CStmt> },
    /// Does nothing.
    NoOp,
}

/// A compiled pipeline body: the register-machine program the
/// [`crate::Realizer`] executes under [`crate::Backend::Compiled`].
///
/// Obtain one with [`Program::compile`]; run it by realizing the module it
/// was compiled from. The program records the *free* slots and buffers —
/// names the statement references but does not bind — which the realizer
/// must bind before execution.
#[derive(Debug)]
pub struct Program {
    pub(crate) body: CStmt,
    /// Register file size; every binder and free symbol has a unique slot.
    pub(crate) n_slots: usize,
    /// Buffer table size.
    pub(crate) n_bufs: usize,
    /// Buffer index → buffer name (diagnostics and the GPU residency map).
    pub(crate) buf_names: Vec<String>,
    /// Free scalar symbols: name → slot. All must be bound before running.
    pub(crate) free_slots: HashMap<String, u32>,
    /// Free buffers: name → index. All must be bound before running.
    pub(crate) free_bufs: HashMap<String, u32>,
    /// Func index → func name for [`CStmt::Produce`] markers (the
    /// per-Func profiler's id space).
    pub(crate) func_names: Vec<String>,
    /// What the optimizer did (pass statistics; see [`OptReport`]).
    pub(crate) opt_report: OptReport,
}

impl Program {
    /// Compiles a lowered module into a register-machine program, at the
    /// optimization level selected by the environment
    /// ([`OptLevel::from_env`]; `HALIDE_OPT=none` disables the optimizer).
    ///
    /// # Errors
    ///
    /// Fails on statements that did not finish lowering (`Provide`/`Realize`
    /// nodes, calls to non-intrinsic functions) and on unknown or mis-used
    /// intrinsics.
    pub fn compile(module: &Module) -> Result<Program> {
        Program::compile_stmt(&module.stmt)
    }

    /// Compiles a lowered module at an explicit [`OptLevel`].
    ///
    /// # Errors
    ///
    /// Same failure modes as [`Program::compile`].
    pub fn compile_with(module: &Module, level: OptLevel) -> Result<Program> {
        Program::compile_stmt_with(&module.stmt, level)
    }

    /// Compiles a lowered module, recording a printable PIR snapshot after
    /// linearization and after every pass that changed the program (the
    /// `--dump-pir` / `pir_stages` debugging surface).
    ///
    /// # Errors
    ///
    /// Same failure modes as [`Program::compile`].
    pub fn compile_traced(module: &Module, level: OptLevel) -> Result<(Program, Vec<PirStage>)> {
        let mut pir = crate::pir::linearize(&module.stmt)?;
        let mut stages = vec![PirStage {
            name: "linearized".to_string(),
            changes: 0,
            pir: pir.print(),
        }];
        let report = optimize(&mut pir, level, Some(&mut stages));
        let program = Program::assemble(pir, report)?;
        Ok((program, stages))
    }

    /// Compiles a bare statement (the module-independent core, also used by
    /// unit tests) at the environment-selected level.
    pub(crate) fn compile_stmt(stmt: &Stmt) -> Result<Program> {
        Program::compile_stmt_with(stmt, OptLevel::from_env())
    }

    /// Compiles a bare statement at an explicit [`OptLevel`]: linearize to
    /// PIR, run the optimizer, emit machine statements. Each phase records
    /// a `compile`-category span into the global trace sink when tracing
    /// is enabled.
    pub(crate) fn compile_stmt_with(stmt: &Stmt, level: OptLevel) -> Result<Program> {
        let pir = {
            let _span = halide_trace::span("compile/linearize", "compile");
            crate::pir::linearize(stmt)?
        };
        let mut pir = pir;
        let report = {
            let _span = halide_trace::span("compile/optimize", "compile");
            optimize(&mut pir, level, None)
        };
        Program::assemble(pir, report)
    }

    /// Emits an optimized PIR program and packages it with its interface
    /// tables.
    fn assemble(pir: crate::pir::PirProgram, opt_report: OptReport) -> Result<Program> {
        let body = {
            let _span = halide_trace::span("compile/emit", "compile");
            crate::emit::emit(&pir)?
        };
        Ok(Program {
            body,
            n_slots: pir.n_regs as usize,
            n_bufs: pir.buf_names.len(),
            buf_names: pir.buf_names,
            free_slots: pir.free_slots,
            free_bufs: pir.free_bufs,
            func_names: pir.func_names,
            opt_report,
        })
    }

    /// The slot of a free symbol, if the program references it.
    pub(crate) fn free_slot(&self, name: &str) -> Option<u32> {
        self.free_slots.get(name).copied()
    }

    /// The buffer index of a free buffer, if the program references it.
    pub(crate) fn free_buf(&self, name: &str) -> Option<u32> {
        self.free_bufs.get(name).copied()
    }

    /// What the optimizer did to this program: instruction counts before
    /// and after, iterations to the fixed point, and per-pass change
    /// counters.
    pub fn opt_report(&self) -> &OptReport {
        &self.opt_report
    }

    /// Func names referenced by the program's produce markers — the name
    /// space the per-Func profiler attributes time to.
    pub fn func_names(&self) -> &[String] {
        &self.func_names
    }
}
