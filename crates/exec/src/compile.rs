//! The compile pass: lowers a [`halide_ir::Stmt`] into a flat
//! register-machine program.
//!
//! The tree-walking interpreter in [`crate::eval`] re-hashes variable names,
//! re-matches `ExprNode` variants and heap-allocates a `Vec`-backed
//! [`halide_runtime::Value`] for every scalar on every iteration. This pass
//! removes all of that **ahead of execution**, playing the role of the
//! paper's LLVM code generation step (Sec. 4.6) for this repository's
//! runtime:
//!
//! * every variable reference is resolved to a numeric **frame slot** (an
//!   index into the machine's register file) — no `HashMap`/`Scope` lookups
//!   at run time;
//! * every buffer reference is resolved to a **buffer index** — allocation
//!   and lookup are array indexing;
//! * every intrinsic call is resolved to a **function pointer** — no name
//!   dispatch at run time;
//! * expressions become a linearized tree of `CExpr` nodes evaluated over
//!   **unboxed** [`halide_runtime::Scalar`] values; vector lanes are only
//!   materialized where vectorization actually put `ramp`/`broadcast` nodes;
//! * the leading loop-invariant `let`s of every loop body are peeled at
//!   compile time, so their values are computed once per loop entry (the
//!   interpreter discovers this per loop entry, the compiler once).
//!
//! Symbols and buffers the statement does not bind internally become the
//! program's *free* slots; [`crate::Realizer`] binds them from the module's
//! inputs, parameters, and output metadata before execution
//! ([`halide_lower::Module::free_symbols`] documents the same contract on
//! the lowering side).
//!
//! Execution of a compiled program lives in [`crate::machine`].

use std::collections::HashMap;

use halide_ir::{BinOp, CallType, CmpOp, Expr, ExprNode, ForKind, ScalarType, Stmt, StmtNode};
use halide_lower::Module;

use crate::error::{ExecError, Result};
use crate::eval::peel_invariant_lets;

/// A unary math intrinsic, resolved to its function pointer.
pub(crate) type UnaryFn = fn(f64) -> f64;
/// A binary math intrinsic, resolved to its function pointer.
pub(crate) type BinaryFn = fn(f64, f64) -> f64;

/// An intrinsic call with its resolution decided at compile time.
#[derive(Debug, Clone, Copy)]
pub(crate) enum CIntrinsic {
    /// `f(x)` over lanes converted to `f64` (result is float).
    Unary(UnaryFn),
    /// `f(a, b)` over lanes converted to `f64` (result is float).
    Binary(BinaryFn),
    /// Kind-preserving absolute value.
    Abs,
    /// `min`/`max` as intrinsics: same semantics as the binary operator.
    MinMax(BinOp),
}

/// A compiled expression node. Slots and buffer indices are resolved;
/// evaluation is allocation-free on scalar paths.
#[derive(Debug)]
pub(crate) enum CExpr {
    /// Integer immediate.
    ConstI(i64),
    /// Float immediate.
    ConstF(f64),
    /// Read a register.
    Slot(u32),
    /// Numeric conversion.
    Cast { ty: ScalarType, value: Box<CExpr> },
    /// Binary arithmetic.
    Bin {
        op: BinOp,
        a: Box<CExpr>,
        b: Box<CExpr>,
    },
    /// Comparison producing 0/1.
    Cmp {
        op: CmpOp,
        a: Box<CExpr>,
        b: Box<CExpr>,
    },
    /// Short-circuiting logical and (on scalar conditions).
    And { a: Box<CExpr>, b: Box<CExpr> },
    /// Short-circuiting logical or (on scalar conditions).
    Or { a: Box<CExpr>, b: Box<CExpr> },
    /// Logical negation.
    Not { a: Box<CExpr> },
    /// Select; evaluates only the taken branch for scalar conditions.
    Select {
        cond: Box<CExpr>,
        t: Box<CExpr>,
        f: Box<CExpr>,
    },
    /// Affine vector constructor (vector path).
    Ramp {
        base: Box<CExpr>,
        stride: Box<CExpr>,
        lanes: u16,
    },
    /// Splat a scalar to lanes (vector path).
    Broadcast { value: Box<CExpr>, lanes: u16 },
    /// Scoped binding: write the slot, evaluate the body.
    Let {
        slot: u32,
        value: Box<CExpr>,
        body: Box<CExpr>,
    },
    /// Load from a buffer at a flat index.
    Load { buf: u32, index: Box<CExpr> },
    /// Load `lanes` contiguous elements starting at `base` — the compiled
    /// form of a load through `ramp(base, 1, lanes)`: one bounds check, no
    /// index vector.
    LoadDense {
        buf: u32,
        base: Box<CExpr>,
        lanes: u16,
    },
    /// Load through `max(min(index, hi), lo)` — the clamped-index access
    /// `at_clamped` lowers to (and the camera pipe's LUT stage performs with
    /// a data-dependent index). Compiled as one clamping gather: the `min`/
    /// `max` intermediate vectors never materialize, though they still count
    /// as the two arithmetic operations the interpreter executes.
    LoadClamped {
        buf: u32,
        index: Box<CExpr>,
        lo: Box<CExpr>,
        hi: Box<CExpr>,
    },
    /// Intrinsic call through a resolved function pointer.
    Intrinsic { f: CIntrinsic, args: Vec<CExpr> },
}

/// Buffers a GPU kernel body touches, resolved to indices at compile time
/// (the interpreter re-scans the body on every launch).
#[derive(Debug, Default)]
pub(crate) struct GpuTouch {
    pub(crate) reads: Vec<u32>,
    pub(crate) writes: Vec<u32>,
}

/// A compiled statement node.
#[derive(Debug)]
pub(crate) enum CStmt {
    /// `let slot = value in body`.
    Let {
        slot: u32,
        value: CExpr,
        body: Box<CStmt>,
    },
    /// Runtime check.
    Assert { cond: CExpr, message: String },
    /// A loop. `hoisted` holds the loop-invariant leading lets of the body,
    /// peeled at compile time and evaluated once per loop entry; `gpu` is
    /// populated for `GpuBlock` loops.
    For {
        slot: u32,
        min: CExpr,
        extent: CExpr,
        kind: ForKind,
        hoisted: Vec<(u32, CExpr)>,
        body: Box<CStmt>,
        gpu: Option<GpuTouch>,
    },
    /// Store to a buffer at a flat index.
    Store {
        buf: u32,
        value: CExpr,
        index: CExpr,
    },
    /// Store `lanes` contiguous elements starting at `base` — the compiled
    /// form of a store through `ramp(base, 1, lanes)`.
    StoreDense {
        buf: u32,
        value: CExpr,
        base: CExpr,
        lanes: u16,
    },
    /// Scoped allocation bound to a buffer index.
    Allocate {
        buf: u32,
        ty: ScalarType,
        size: CExpr,
        body: Box<CStmt>,
    },
    /// Sequential composition.
    Block(Vec<CStmt>),
    /// Conditional.
    If {
        cond: CExpr,
        then_case: Box<CStmt>,
        else_case: Option<Box<CStmt>>,
    },
    /// Evaluate for effect.
    Evaluate(CExpr),
    /// Does nothing.
    NoOp,
}

/// A compiled pipeline body: the register-machine program the
/// [`crate::Realizer`] executes under [`crate::Backend::Compiled`].
///
/// Obtain one with [`Program::compile`]; run it by realizing the module it
/// was compiled from. The program records the *free* slots and buffers —
/// names the statement references but does not bind — which the realizer
/// must bind before execution.
#[derive(Debug)]
pub struct Program {
    pub(crate) body: CStmt,
    /// Register file size; every binder and free symbol has a unique slot.
    pub(crate) n_slots: usize,
    /// Buffer table size.
    pub(crate) n_bufs: usize,
    /// Buffer index → buffer name (diagnostics and the GPU residency map).
    pub(crate) buf_names: Vec<String>,
    /// Free scalar symbols: name → slot. All must be bound before running.
    pub(crate) free_slots: HashMap<String, u32>,
    /// Free buffers: name → index. All must be bound before running.
    pub(crate) free_bufs: HashMap<String, u32>,
}

impl Program {
    /// Compiles a lowered module into a register-machine program.
    ///
    /// # Errors
    ///
    /// Fails on statements that did not finish lowering (`Provide`/`Realize`
    /// nodes, calls to non-intrinsic functions) and on unknown or mis-used
    /// intrinsics.
    pub fn compile(module: &Module) -> Result<Program> {
        Program::compile_stmt(&module.stmt)
    }

    /// Compiles a bare statement (the module-independent core, also used by
    /// unit tests).
    pub(crate) fn compile_stmt(stmt: &Stmt) -> Result<Program> {
        let mut c = Compiler::default();
        let body = c.stmt(stmt)?;
        Ok(Program {
            body,
            n_slots: c.n_slots,
            n_bufs: c.buf_names.len(),
            buf_names: c.buf_names,
            free_slots: c.free_slots,
            free_bufs: c.free_bufs,
        })
    }

    /// The slot of a free symbol, if the program references it.
    pub(crate) fn free_slot(&self, name: &str) -> Option<u32> {
        self.free_slots.get(name).copied()
    }

    /// The buffer index of a free buffer, if the program references it.
    pub(crate) fn free_buf(&self, name: &str) -> Option<u32> {
        self.free_bufs.get(name).copied()
    }
}

/// If `e` is a broadcast whose lane count matches `other`'s static (vector)
/// lane count, returns the unbroadcast scalar value; otherwise `e` itself.
/// Used to avoid materializing splat vectors as binary-op operands.
fn fold_broadcast_against<'a>(e: &'a Expr, other: &Expr) -> &'a Expr {
    if let ExprNode::Broadcast { value, lanes } = e.node() {
        let other_lanes = other.ty().lanes();
        if other_lanes == *lanes && !matches!(other.node(), ExprNode::Broadcast { .. }) {
            return value;
        }
    }
    e
}

/// Strips a `broadcast` wrapper (vectorization splats scalar clamp bounds).
fn unbroadcast(e: &Expr) -> &Expr {
    if let ExprNode::Broadcast { value, .. } = e.node() {
        value
    } else {
        e
    }
}

/// True for expressions that are statically integer-valued and scalar-typed
/// (the requirement on clamp bounds for the fused clamped-gather form).
fn is_scalar_int(e: &Expr) -> bool {
    let ty = e.ty();
    !ty.is_float() && ty.lanes() == 1
}

/// Matches the clamped-index load pattern `max(min(index, hi), lo)` (what
/// [`halide_ir::Expr::clamp`] builds and `at_clamped` lowers to), returning
/// `(index, lo, hi)`. Only integer clamps with statically scalar bounds
/// qualify — exactly the shapes whose lane-wise `min`/`max` agree with
/// clamping each lane independently.
fn clamp_pattern(index: &Expr) -> Option<(&Expr, &Expr, &Expr)> {
    let ExprNode::Bin {
        op: BinOp::Max,
        a,
        b: lo,
    } = index.node()
    else {
        return None;
    };
    let ExprNode::Bin {
        op: BinOp::Min,
        a: inner,
        b: hi,
    } = a.node()
    else {
        return None;
    };
    let (lo, hi) = (unbroadcast(lo), unbroadcast(hi));
    if is_scalar_int(lo) && is_scalar_int(hi) && !inner.ty().is_float() {
        Some((inner, lo, hi))
    } else {
        None
    }
}

/// Matches a unit-stride integer ramp index, the dense vector access pattern
/// vectorization emits for contiguous loads/stores.
fn dense_ramp(index: &Expr) -> Option<(&Expr, u16)> {
    if let ExprNode::Ramp {
        base,
        stride,
        lanes,
    } = index.node()
    {
        if stride.is_const_int(1) && !base.ty().is_float() {
            return Some((base, *lanes));
        }
    }
    None
}

/// Names of buffers a statement allocates anywhere inside itself.
fn allocated_names(stmt: &Stmt) -> std::collections::HashSet<String> {
    use halide_ir::IrVisitor;
    struct Alloc {
        names: std::collections::HashSet<String>,
    }
    impl IrVisitor for Alloc {
        fn visit_stmt(&mut self, s: &Stmt) {
            if let StmtNode::Allocate { name, .. } | StmtNode::Realize { name, .. } = s.node() {
                self.names.insert(name.clone());
            }
            halide_ir::visit_stmt_children(self, s);
        }
    }
    let mut a = Alloc {
        names: std::collections::HashSet::new(),
    };
    a.visit_stmt(stmt);
    a.names
}

/// Resolves an intrinsic name to its compiled form and arity.
fn resolve_intrinsic(name: &str) -> Option<(CIntrinsic, usize)> {
    fn powf(x: f64, y: f64) -> f64 {
        x.powf(y)
    }
    Some(match name {
        "abs" => (CIntrinsic::Abs, 1),
        "sqrt" => (CIntrinsic::Unary(f64::sqrt), 1),
        "exp" => (CIntrinsic::Unary(f64::exp), 1),
        "log" => (CIntrinsic::Unary(f64::ln), 1),
        "sin" => (CIntrinsic::Unary(f64::sin), 1),
        "cos" => (CIntrinsic::Unary(f64::cos), 1),
        "floor" => (CIntrinsic::Unary(f64::floor), 1),
        "ceil" => (CIntrinsic::Unary(f64::ceil), 1),
        "round" => (CIntrinsic::Unary(f64::round), 1),
        "tanh" => (CIntrinsic::Unary(f64::tanh), 1),
        "pow" => (CIntrinsic::Binary(powf), 2),
        "atan2" => (CIntrinsic::Binary(f64::atan2), 2),
        "min" => (CIntrinsic::MinMax(BinOp::Min), 2),
        "max" => (CIntrinsic::MinMax(BinOp::Max), 2),
        _ => return None,
    })
}

/// Compile-time name resolution state: stacks model lexical shadowing, and
/// names with no enclosing binder become free slots/buffers.
#[derive(Default)]
struct Compiler {
    n_slots: usize,
    buf_names: Vec<String>,
    vars: HashMap<String, Vec<u32>>,
    bufs: HashMap<String, Vec<u32>>,
    free_slots: HashMap<String, u32>,
    free_bufs: HashMap<String, u32>,
    /// Slots whose bound value may hold a vector at run time. Post-
    /// vectorization static types are stale (a `Var` use of a ramp-valued
    /// `let` still claims a scalar type), so vector-ness is tracked through
    /// bindings instead; see [`Compiler::may_vec`].
    vec_slots: std::collections::HashSet<u32>,
}

impl Compiler {
    /// Allocates a fresh slot for a binder of `name` and pushes it.
    fn bind_var(&mut self, name: &str) -> u32 {
        let slot = self.n_slots as u32;
        self.n_slots += 1;
        self.vars.entry(name.to_string()).or_default().push(slot);
        slot
    }

    fn unbind_var(&mut self, name: &str) {
        self.vars
            .get_mut(name)
            .and_then(Vec::pop)
            .expect("unbalanced compile-time scope");
    }

    /// Resolves a variable reference: innermost binder, else a free slot.
    fn var(&mut self, name: &str) -> u32 {
        if let Some(slot) = self.vars.get(name).and_then(|s| s.last()) {
            return *slot;
        }
        if let Some(slot) = self.free_slots.get(name) {
            return *slot;
        }
        let slot = self.n_slots as u32;
        self.n_slots += 1;
        self.free_slots.insert(name.to_string(), slot);
        slot
    }

    fn bind_buf(&mut self, name: &str) -> u32 {
        let idx = self.buf_names.len() as u32;
        self.buf_names.push(name.to_string());
        self.bufs.entry(name.to_string()).or_default().push(idx);
        idx
    }

    fn unbind_buf(&mut self, name: &str) {
        self.bufs
            .get_mut(name)
            .and_then(Vec::pop)
            .expect("unbalanced compile-time buffer scope");
    }

    fn buf(&mut self, name: &str) -> u32 {
        if let Some(idx) = self.bufs.get(name).and_then(|s| s.last()) {
            return *idx;
        }
        if let Some(idx) = self.free_bufs.get(name) {
            return *idx;
        }
        let idx = self.buf_names.len() as u32;
        self.buf_names.push(name.to_string());
        self.free_bufs.insert(name.to_string(), idx);
        idx
    }

    /// True if `e` may evaluate to a multi-lane value at run time: it
    /// contains a `Ramp`/`Broadcast`, references a vector-possible binding,
    /// or loads through a vector-possible index. This (not the stale static
    /// type) gates vector fusion.
    fn may_vec(&self, e: &Expr) -> bool {
        match e.node() {
            ExprNode::Ramp { .. } | ExprNode::Broadcast { .. } => true,
            ExprNode::Var { name, .. } => self
                .vars
                .get(name)
                .and_then(|s| s.last())
                .is_some_and(|slot| self.vec_slots.contains(slot)),
            ExprNode::IntImm { .. } | ExprNode::UIntImm { .. } | ExprNode::FloatImm { .. } => false,
            ExprNode::Cast { value, .. } | ExprNode::Not { a: value } => self.may_vec(value),
            ExprNode::Bin { a, b, .. }
            | ExprNode::Cmp { a, b, .. }
            | ExprNode::And { a, b }
            | ExprNode::Or { a, b } => self.may_vec(a) || self.may_vec(b),
            ExprNode::Select { cond, t, f } => {
                self.may_vec(cond) || self.may_vec(t) || self.may_vec(f)
            }
            ExprNode::Let { value, body, .. } => self.may_vec(value) || self.may_vec(body),
            ExprNode::Load { index, .. } => self.may_vec(index),
            ExprNode::Call { args, .. } => args.iter().any(|a| self.may_vec(a)),
        }
    }

    /// Binds `name` for the duration of a body whose value is `value`,
    /// recording whether the binding may be vector-valued.
    fn bind_var_for(&mut self, name: &str, value: &Expr) -> u32 {
        let mv = self.may_vec(value);
        let slot = self.bind_var(name);
        if mv {
            self.vec_slots.insert(slot);
        }
        slot
    }

    fn expr(&mut self, e: &Expr) -> Result<CExpr> {
        Ok(match e.node() {
            ExprNode::IntImm { value, .. } => CExpr::ConstI(*value),
            ExprNode::UIntImm { value, .. } => CExpr::ConstI(*value as i64),
            ExprNode::FloatImm { value, .. } => CExpr::ConstF(*value),
            ExprNode::Var { name, .. } => CExpr::Slot(self.var(name)),
            ExprNode::Cast { ty, value } => CExpr::Cast {
                ty: ty.scalar(),
                value: Box::new(self.expr(value)?),
            },
            ExprNode::Bin { op, a, b } => {
                // A broadcast operand against a vector operand need not be
                // materialized: the runtime op broadcasts the scalar side
                // lane-wise with identical results, so compile the scalar
                // value directly and skip the per-evaluation splat vector.
                // Only safe when the other side is statically a vector (the
                // result's lane count must not change).
                let (a, b) = (fold_broadcast_against(a, b), fold_broadcast_against(b, a));
                CExpr::Bin {
                    op: *op,
                    a: Box::new(self.expr(a)?),
                    b: Box::new(self.expr(b)?),
                }
            }
            ExprNode::Cmp { op, a, b } => {
                // Same splat-folding as binary arithmetic: a broadcast
                // compared against a static vector need not materialize.
                let (a, b) = (fold_broadcast_against(a, b), fold_broadcast_against(b, a));
                CExpr::Cmp {
                    op: *op,
                    a: Box::new(self.expr(a)?),
                    b: Box::new(self.expr(b)?),
                }
            }
            ExprNode::And { a, b } => CExpr::And {
                a: Box::new(self.expr(a)?),
                b: Box::new(self.expr(b)?),
            },
            ExprNode::Or { a, b } => CExpr::Or {
                a: Box::new(self.expr(a)?),
                b: Box::new(self.expr(b)?),
            },
            ExprNode::Not { a } => CExpr::Not {
                a: Box::new(self.expr(a)?),
            },
            ExprNode::Select { cond, t, f } => {
                // When the condition is statically a vector the result's
                // width is pinned by the mask, so broadcast arms need not
                // materialize: the blend splats the scalar side lane-wise
                // with identical results. (A statically-scalar condition
                // must keep its arms' widths — the taken arm IS the result.)
                let (t, f) = if cond.ty().lanes() > 1 {
                    (
                        fold_broadcast_against(t, cond),
                        fold_broadcast_against(f, cond),
                    )
                } else {
                    (t, f)
                };
                CExpr::Select {
                    cond: Box::new(self.expr(cond)?),
                    t: Box::new(self.expr(t)?),
                    f: Box::new(self.expr(f)?),
                }
            }
            ExprNode::Ramp {
                base,
                stride,
                lanes,
            } => CExpr::Ramp {
                base: Box::new(self.expr(base)?),
                stride: Box::new(self.expr(stride)?),
                lanes: *lanes,
            },
            ExprNode::Broadcast { value, lanes } => CExpr::Broadcast {
                value: Box::new(self.expr(value)?),
                lanes: *lanes,
            },
            ExprNode::Let { name, value, body } => {
                let cvalue = self.expr(value)?;
                let slot = self.bind_var_for(name, value);
                let body = self.expr(body);
                self.unbind_var(name);
                CExpr::Let {
                    slot,
                    value: Box::new(cvalue),
                    body: Box::new(body?),
                }
            }
            ExprNode::Load { name, index, .. } => {
                let buf = self.buf(name);
                if let Some((base, lanes)) = dense_ramp(index) {
                    CExpr::LoadDense {
                        buf,
                        base: Box::new(self.expr(base)?),
                        lanes,
                    }
                } else if let Some((inner, lo, hi)) = clamp_pattern(index) {
                    // Fusing the clamp into the gather requires the bounds
                    // to be scalars at run time too; `may_vec` is the
                    // binding-aware check (static types can be stale after
                    // vectorization).
                    if self.may_vec(lo) || self.may_vec(hi) {
                        CExpr::Load {
                            buf,
                            index: Box::new(self.expr(index)?),
                        }
                    } else {
                        CExpr::LoadClamped {
                            buf,
                            index: Box::new(self.expr(inner)?),
                            lo: Box::new(self.expr(lo)?),
                            hi: Box::new(self.expr(hi)?),
                        }
                    }
                } else {
                    CExpr::Load {
                        buf,
                        index: Box::new(self.expr(index)?),
                    }
                }
            }
            ExprNode::Call {
                name,
                call_type,
                args,
                ..
            } => match call_type {
                CallType::Intrinsic => {
                    let Some((f, arity)) = resolve_intrinsic(name) else {
                        return Err(ExecError::new(format!("unknown intrinsic {name:?}")));
                    };
                    if args.len() < arity {
                        return Err(ExecError::new(format!(
                            "intrinsic {name:?} takes {arity} arguments, got {}",
                            args.len()
                        )));
                    }
                    // `min`/`max` intrinsics have exactly the binary
                    // operator's semantics and count as one arithmetic op
                    // either way — compile them as `Bin` so evaluation skips
                    // the argument-vector allocation.
                    if let (CIntrinsic::MinMax(op), 2) = (f, args.len()) {
                        let (a, b) = (&args[0], &args[1]);
                        let (a, b) = (fold_broadcast_against(a, b), fold_broadcast_against(b, a));
                        CExpr::Bin {
                            op,
                            a: Box::new(self.expr(a)?),
                            b: Box::new(self.expr(b)?),
                        }
                    } else {
                        let args = args
                            .iter()
                            .map(|a| self.expr(a))
                            .collect::<Result<Vec<_>>>()?;
                        CExpr::Intrinsic { f, args }
                    }
                }
                CallType::Halide | CallType::Image => {
                    return Err(ExecError::new(format!(
                        "call to {name:?} survived lowering; the statement was not flattened"
                    )))
                }
                CallType::Extern => {
                    return Err(ExecError::new(format!(
                        "extern function {name:?} is not registered with the executor"
                    )))
                }
            },
        })
    }

    fn stmt(&mut self, s: &Stmt) -> Result<CStmt> {
        Ok(match s.node() {
            StmtNode::LetStmt { name, value, body } => {
                let cvalue = self.expr(value)?;
                let slot = self.bind_var_for(name, value);
                let body = self.stmt(body);
                self.unbind_var(name);
                CStmt::Let {
                    slot,
                    value: cvalue,
                    body: Box::new(body?),
                }
            }
            StmtNode::Assert { condition, message } => CStmt::Assert {
                cond: self.expr(condition)?,
                message: message.clone(),
            },
            StmtNode::Producer { body, .. } => self.stmt(body)?,
            StmtNode::For {
                name,
                min,
                extent,
                kind,
                body,
            } => {
                let cmin = self.expr(min)?;
                let cextent = self.expr(extent)?;
                // GPU block loops pre-resolve the buffers the kernel touches
                // (for the simulated device's lazy copies). This looks at the
                // *full* body, like the interpreter does — but buffers the
                // kernel allocates itself are not in scope at launch time
                // (the interpreter's lookup fails for them and it moves on),
                // so they are excluded here rather than registered as free.
                let gpu = if *kind == ForKind::GpuBlock {
                    let (reads, writes) = crate::eval::buffers_touched(body);
                    let inside = allocated_names(body);
                    Some(GpuTouch {
                        reads: reads
                            .iter()
                            .filter(|n| !inside.contains(*n))
                            .map(|n| self.buf(n))
                            .collect(),
                        writes: writes
                            .iter()
                            .filter(|n| !inside.contains(*n))
                            .map(|n| self.buf(n))
                            .collect(),
                    })
                } else {
                    None
                };
                // Peel the loop-invariant leading lets once, at compile time.
                let (hoisted_src, inner) = peel_invariant_lets(body, name);
                let mut hoisted = Vec::with_capacity(hoisted_src.len());
                let mut bound_hoisted: Vec<&str> = Vec::with_capacity(hoisted_src.len());
                let mut first_err = None;
                for (n, v) in &hoisted_src {
                    // Each value sees the hoisted names bound before it.
                    match self.expr(v) {
                        Ok(cv) => {
                            let slot = self.bind_var_for(n, v);
                            bound_hoisted.push(n);
                            hoisted.push((slot, cv));
                        }
                        Err(e) => {
                            first_err = Some(e);
                            break;
                        }
                    }
                }
                let body_compiled = match first_err {
                    Some(e) => Err(e),
                    None => {
                        let slot = self.bind_var(name);
                        let r = self.stmt(inner);
                        self.unbind_var(name);
                        r.map(|b| (slot, b))
                    }
                };
                for n in bound_hoisted.iter().rev() {
                    self.unbind_var(n);
                }
                let (slot, body) = body_compiled?;
                CStmt::For {
                    slot,
                    min: cmin,
                    extent: cextent,
                    kind: *kind,
                    hoisted,
                    body: Box::new(body),
                    gpu,
                }
            }
            StmtNode::Store { name, value, index } => {
                let buf = self.buf(name);
                if let Some((base, lanes)) = dense_ramp(index) {
                    CStmt::StoreDense {
                        buf,
                        base: self.expr(base)?,
                        value: self.expr(value)?,
                        lanes,
                    }
                } else {
                    CStmt::Store {
                        buf,
                        value: self.expr(value)?,
                        index: self.expr(index)?,
                    }
                }
            }
            StmtNode::Allocate {
                name,
                ty,
                size,
                body,
            } => {
                let size = self.expr(size)?;
                let buf = self.bind_buf(name);
                let body = self.stmt(body);
                self.unbind_buf(name);
                CStmt::Allocate {
                    buf,
                    ty: ty.scalar(),
                    size,
                    body: Box::new(body?),
                }
            }
            StmtNode::Block { stmts } => CStmt::Block(
                stmts
                    .iter()
                    .map(|s| self.stmt(s))
                    .collect::<Result<Vec<_>>>()?,
            ),
            StmtNode::IfThenElse {
                condition,
                then_case,
                else_case,
            } => CStmt::If {
                cond: self.expr(condition)?,
                then_case: Box::new(self.stmt(then_case)?),
                else_case: match else_case {
                    Some(e) => Some(Box::new(self.stmt(e)?)),
                    None => None,
                },
            },
            StmtNode::Evaluate { value } => CStmt::Evaluate(self.expr(value)?),
            StmtNode::NoOp => CStmt::NoOp,
            StmtNode::Provide { name, .. } | StmtNode::Realize { name, .. } => {
                return Err(ExecError::new(format!(
                    "{name:?} was not flattened before execution"
                )))
            }
        })
    }
}
